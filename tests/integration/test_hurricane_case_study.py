"""Integration tests: the §3.3 Hurricane case study, asserted exactly.

These check the actual *answers* of the five multi-step queries against
the Figure 2 instance — who owned parcel A, which parcels the hurricane
crossed, and the exact crossing intervals derived from the piecewise-
linear path.
"""

from fractions import Fraction

import pytest

from repro.experiments.hurricane_queries import run as run_case_study
from repro.query import QuerySession
from repro.workloads.hurricane import paper_queries


@pytest.fixture(scope="module")
def results(hurricane_db):
    return {r.query_name: r for r in run_case_study(hurricane_db)}


class TestQuery1:
    def test_owners_of_a(self, results):
        result = results["q1_owners_of_A"].result
        assert result.schema.names == ("name", "t")
        owners = {t.value("name") for t in result}
        assert owners == {"Smith", "Jones"}

    def test_ownership_periods(self, results):
        result = results["q1_owners_of_A"].result
        assert result.contains_point({"name": "Smith", "t": 5})
        assert not result.contains_point({"name": "Smith", "t": 11})
        assert result.contains_point({"name": "Jones", "t": 11})
        assert not result.contains_point({"name": "Jones", "t": 9})


class TestQuery2:
    def test_lands_hit(self, results):
        result = results["q2_lands_hit"].result
        assert {t.value("landId") for t in result} == {"B", "C"}


class TestQuery3:
    def test_names_hit_between_4_and_9(self, results):
        result = results["q3_names_hit_4_9"].result
        names = {t.value("name") for t in result}
        # Garcia owned C until t=6; the hurricane is inside C up to t=5,
        # so Garcia is hit within [4,9].  Lee owns B, which the hurricane
        # clips between t=20/3 and t=8.  Smith's parcel A is never hit.
        assert names == {"Lee", "Garcia"}


class TestQuery4:
    def test_crossing_times_exact(self, results):
        result = results["q4_crossing_times"].result
        # Parcel C ([0,4]x[0,5]): the path is inside from t=0 until it
        # leaves y<=5 at t=5 (segment 2: y = 4 + (t-4)).
        assert result.contains_point({"landId": "C", "t": 0})
        assert result.contains_point({"landId": "C", "t": 5})
        assert not result.contains_point({"landId": "C", "t": Fraction(51, 10)})
        # Parcel B ([5,9]x[6,10]): inside from x>=5 and y>=6 (t=20/3) to
        # segment end t=8, then continues on segment 3 until x=9 at t=11.
        assert result.contains_point({"landId": "B", "t": 7})
        assert result.contains_point({"landId": "B", "t": 11})
        assert not result.contains_point({"landId": "B", "t": 6})
        assert not result.contains_point({"landId": "B", "t": Fraction(23, 2)})

    def test_missed_parcels_absent(self, results):
        result = results["q4_crossing_times"].result
        assert {t.value("landId") for t in result} == {"B", "C"}


class TestQuery5:
    def test_lands_missed(self, results):
        result = results["q5_lands_missed"].result
        assert {t.value("landId") for t in result} == {"A", "D"}


class TestOptimizerConsistency:
    """Every case-study query returns identical results with and without
    the optimizer — the rewrites are semantics-preserving end to end."""

    @pytest.mark.parametrize("query_name", sorted(paper_queries()))
    def test_optimized_equals_unoptimized(self, hurricane_db, query_name):
        script = paper_queries()[query_name]
        with_opt = QuerySession(hurricane_db, use_optimizer=True).run_script(script)
        without_opt = QuerySession(hurricane_db, use_optimizer=False).run_script(script)
        assert with_opt.equivalent(without_opt)


class TestCaseStudyHarness:
    def test_formatting(self, results):
        text = results["q1_owners_of_A"].format()
        assert "q1_owners_of_A" in text
        assert "operators:" in text

    def test_operator_metrics_recorded(self, results):
        calls = results["q3_names_hit_4_9"].operator_calls
        assert calls.get("join", 0) >= 1
        assert calls.get("project", 0) >= 1
