"""Smoke tests: every example script runs cleanly end to end.

The examples double as documentation; these tests keep them from rotting.
The heavyweight indexing experiment runs in its fast configuration.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=EXAMPLES.parent,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "active at t=7" in out
    assert "NULL matches nothing" in out


def test_hurricane():
    out = run_example("hurricane.py")
    assert "q1_owners_of_A" in out
    assert "Smith" in out
    assert "True" in out and "False" in out  # exact membership probes


def test_spatial_analysis():
    out = run_example("spatial_analysis.py")
    assert "Buffer-Join(Parcels, Roads, 2)" in out
    assert "SafetyError" in out


def test_visualize_map(tmp_path):
    run_example("visualize_map.py", str(tmp_path))
    assert (tmp_path / "hurricane_map.svg").exists()
    assert (tmp_path / "town_map.geojson").exists()
    svg = (tmp_path / "hurricane_map.svg").read_text()
    assert svg.count("<polygon") == 4  # the four parcels


@pytest.mark.slow
def test_indexing_experiment_fast_scale():
    out = run_example("indexing_experiment.py")
    assert "figure-4" in out
    assert "advantage" in out
    assert "index groups" in out
