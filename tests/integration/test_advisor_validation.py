"""The grouping advisor's recommendations hold up against measurement.

Section 5.4 poses attribute grouping as an open problem; our heuristic
must at least agree with the actual access counts of the two §5.4
workload archetypes it was built from.
"""

import pytest

from repro.indexing import JointIndex, SeparateIndexes, WorkloadQuery, recommend_grouping
from repro.workloads import rectangles


@pytest.fixture(scope="module")
def setup():
    data = rectangles.generate_data(800, seed=77)
    relation = rectangles.build_constraint_relation(data)
    joint = JointIndex(relation, ["x", "y"], max_entries=32)
    separate = SeparateIndexes(relation, ["x", "y"], max_entries=32)
    queries = rectangles.generate_queries(40, seed=78)
    return relation, joint, separate, queries


def measured_accesses(strategy, boxes):
    strategy.reset_counters()
    for box in boxes:
        strategy.query(box)
    return strategy.accesses


class TestAdvisorAgreesWithMeasurement:
    def test_two_attribute_workload(self, setup):
        relation, joint, separate, queries = setup
        boxes = [rectangles.query_box_two_attributes(q) for q in queries]
        joint_cost = measured_accesses(joint, boxes)
        separate_cost = measured_accesses(separate, boxes)
        recommendation = recommend_grouping(
            ["x", "y"],
            [WorkloadQuery(frozenset({"x", "y"}), selectivity=0.01)],
            relation_size=len(relation),
            fanout=32,
        )
        # Measurement says joint wins; the advisor must agree.
        assert joint_cost < separate_cost
        assert recommendation.groups == (frozenset({"x", "y"}),)

    def test_single_attribute_workload(self, setup):
        relation, joint, separate, queries = setup
        boxes = [rectangles.query_box_one_attribute(q, "x") for q in queries]
        joint_cost = measured_accesses(joint, boxes)
        separate_cost = measured_accesses(separate, boxes)
        recommendation = recommend_grouping(
            ["x", "y"],
            [
                WorkloadQuery(frozenset({"x"}), selectivity=0.03),
                WorkloadQuery(frozenset({"y"}), selectivity=0.03),
            ],
            relation_size=len(relation),
            fanout=32,
        )
        assert separate_cost < joint_cost
        assert set(recommendation.groups) == {frozenset({"x"}), frozenset({"y"})}
