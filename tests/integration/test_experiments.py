"""Integration tests: scaled-down experiment runs assert the paper's shapes.

The absolute numbers depend on the simulated page size, but the *shape*
claims of section 5.4 must hold at any reasonable scale:

* Figure 4 — joint beats separate for two-attribute queries (both
  variants), joint is flatter in query area, and the advantage is larger
  for constraint attributes at small areas;
* Figure 5 — separate beats (or matches) joint for one-attribute queries,
  by less than the Figure 4 margin;
* Experiment 3 — separate grows linearly with data size, joint stays
  polylogarithmic.
"""

import pytest

from repro.experiments import expt3, fig4, fig5
from repro.storage import PageConfig

CONFIG = PageConfig(page_size=1024)  # smaller pages: deeper trees at small n


@pytest.fixture(scope="module")
def fig4_result():
    return fig4.run(data_size=1500, query_count=60, config=CONFIG)


@pytest.fixture(scope="module")
def fig5_result():
    return fig5.run(data_size=1500, query_count=60, config=CONFIG)


class TestFigure4:
    def test_joint_wins_for_both_variants(self, fig4_result):
        for series in fig4_result.series:
            assert series.mean_joint < series.mean_separate, series.label

    def test_constraint_advantage_at_least_relational(self, fig4_result):
        constraint_series, relational_series = fig4_result.series
        assert "1-A" in constraint_series.label
        assert constraint_series.joint_advantage >= relational_series.joint_advantage * 0.9

    def test_joint_flatter_in_query_area(self, fig4_result):
        """'The disk access count depends on query selectivity (query
        area) a lot less in the case of joint than … separate indices.'"""
        for series in fig4_result.series:
            rows = series.binned(4)
            assert len(rows) >= 2
            joint_spread = max(r[1] for r in rows) - min(r[1] for r in rows)
            separate_spread = max(r[2] for r in rows) - min(r[2] for r in rows)
            assert joint_spread <= separate_spread + 1e-9, series.label

    def test_full_measurement_count(self, fig4_result):
        for series in fig4_result.series:
            assert len(series.measurements) == 60

    def test_table_renders(self, fig4_result):
        text = fig4_result.format_table()
        assert "figure-4" in text and "advantage" in text


class TestFigure5:
    def test_separate_wins_or_ties_for_single_attribute(self, fig5_result):
        for series in fig5_result.series:
            assert series.mean_separate <= series.mean_joint, series.label

    def test_figure5_margin_smaller_than_figure4(self, fig4_result, fig5_result):
        """'this advantage is not as significant as the advantage of
        joint indices when queries use both attributes.'"""
        fig4_margin = max(s.joint_advantage for s in fig4_result.series)
        fig5_margin = max(
            s.mean_joint / s.mean_separate for s in fig5_result.series
        )
        assert fig5_margin < fig4_margin


class TestExperiment3:
    def test_separate_linear_joint_sublinear(self):
        result = expt3.run(
            data_sizes=(500, 1000, 2000, 4000), query_count=60, config=CONFIG
        )
        (series,) = result.series
        points = {int(m.x_value): m for m in series.measurements}
        small, large = points[500], points[4000]
        separate_growth = large.separate_accesses / max(1, small.separate_accesses)
        joint_growth = large.joint_accesses / max(1, small.joint_accesses)
        # Data grew 8x: separate accesses grow near-linearly (>4x), joint
        # stays well below (the paper's linear vs logarithmic contrast).
        assert separate_growth > 4.0
        assert joint_growth < separate_growth / 2
        assert large.joint_accesses < large.separate_accesses / 4

    def test_notes_mention_selectivity(self):
        result = expt3.run(data_sizes=(500,), query_count=20, config=CONFIG)
        assert "selectivity" in result.notes


class TestRepresentationExperiment:
    def test_costs_grow_and_vector_wins(self):
        from repro.experiments import representation

        rows = representation.run(
            polyline_sizes=(4, 16), region_spikes=(4, 8), extra_attributes=3
        )
        assert len(rows) == 4
        for row in rows:
            assert row.constraint.coordinates > row.vector.coordinates
            assert row.constraint.duplicated_attributes > 0
            assert row.constraint.shared_boundary_constraints > 0
        polylines = [r for r in rows if r.kind == "polyline"]
        assert polylines[1].coordinate_ratio >= polylines[0].coordinate_ratio * 0.9

    def test_table_renders(self):
        from repro.experiments import representation

        rows = representation.run(polyline_sizes=(4,), region_spikes=(4,))
        text = representation.format_table(rows)
        assert "ratio" in text
