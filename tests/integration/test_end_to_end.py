"""Cross-module integration: storage → query → spatial → indexing flows."""

import pytest

from repro.model import Database
from repro.query import QuerySession
from repro.storage import PageConfig, dumps, loads
from repro.workloads import generate_gis_scenario


class TestStorageThroughQueries:
    def test_serialized_database_answers_queries_identically(self, hurricane_db):
        from repro.workloads import paper_queries

        restored = loads(dumps(hurricane_db))
        for name, script in paper_queries().items():
            original = QuerySession(hurricane_db).run_script(script)
            reloaded = QuerySession(restored).run_script(script)
            assert original.equivalent(reloaded), name

    def test_query_results_can_be_serialized(self, hurricane_db):
        session = QuerySession(hurricane_db)
        result = session.run_script(
            "R0 = join Hurricane and Land\nR1 = project R0 on landId, t\n"
        )
        db = Database({"CrossingTimes": result})
        restored = loads(dumps(db))
        assert restored["CrossingTimes"].equivalent(result)


class TestGisPipeline:
    @pytest.fixture(scope="class")
    def scenario(self):
        return generate_gis_scenario(parcels_per_side=4, roads=2, shelters=5, seed=17)

    def test_buffer_join_through_query_language(self, scenario):
        db = scenario.to_database()
        session = QuerySession(db)
        near_road = session.execute(
            "R0 = bufferjoin Parcels and Roads within 2 as parcel, road"
        )
        # Sanity: the pairing agrees with the direct spatial API.
        from repro.spatial import buffer_join

        direct = buffer_join(scenario.parcels, scenario.roads, 2, "parcel", "road")
        assert set(near_road.tuples) == set(direct.tuples)
        assert len(near_road) > 0  # roads cross the parcel grid

    def test_knearest_and_join_back_to_attributes(self, scenario):
        db = scenario.to_database()
        session = QuerySession(db)
        session.execute("R0 = knearest 3 near parcel_0_0 of Parcels in Shelters")
        # Join ranks back to shelter geometry through the fid attribute.
        result = session.execute("R1 = join R0 and Shelters")
        assert len(result) >= 3  # one tuple per convex part per ranked shelter
        assert set(result.schema.names) >= {"fid", "rank", "x", "y"}

    def test_spatial_selection_with_index(self, scenario):
        from repro.indexing import JointIndex

        db = scenario.to_database()
        parcels = db["Parcels"]
        indexes = {"Parcels": {frozenset({"x", "y"}): JointIndex(parcels, ["x", "y"], config=PageConfig())}}
        with_index = QuerySession(db, indexes=indexes)
        without_index = QuerySession(db)
        script = "R0 = select 0 <= x, x <= 20, 0 <= y, y <= 20 from Parcels\nR1 = project R0 on fid\n"
        a = with_index.run_script(script)
        b = without_index.run_script(script)
        assert a.equivalent(b)
        assert with_index.metrics.operator_calls.get("index_scan", 0) >= 1


class TestHeterogeneousEndToEnd:
    def test_mixed_query_with_strings_rationals_constraints(self, hurricane_db):
        session = QuerySession(hurricane_db)
        result = session.run_script(
            "R0 = select landId=A from Landownership\n"
            "R1 = select t >= 5, t <= 20 from R0\n"
            "R2 = project R1 on name\n"
        )
        assert {t.value("name") for t in result} == {"Smith", "Jones"}

    def test_union_and_difference_round(self, hurricane_db):
        session = QuerySession(hurricane_db)
        session.execute("A = select landId=A from Landownership")
        session.execute("B = select landId=B from Landownership")
        session.execute("AB = union A and B")
        session.execute("BACK = diff AB and B")
        assert session["BACK"].equivalent(session["A"])
