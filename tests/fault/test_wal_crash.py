"""The crash-injection matrix: kill the writer at every byte, recover,
and assert the database equals the pre-crash committed prefix.

This is the durability acceptance test for :mod:`repro.storage.wal`: a
reference run records, for each transaction, the WAL offset where its
commit record ends and the exact serialized database state after it.
Then, for *every byte offset k* of the log, a fresh run is killed at k
(:class:`~repro.governor.faultinject.CrashingFile` persists the prefix
and raises :class:`~repro.governor.faultinject.SimulatedCrash`), the
database is re-opened, and recovery must land on the state of the last
transaction whose commit made it to disk — old state or new state, never
a torn mixture, never an error.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.governor.faultinject import (
    CRASH,
    CrashingFile,
    FaultPlan,
    FaultyWAL,
    SimulatedCrash,
)
from repro.model.relation import ConstraintRelation
from repro.model.schema import Attribute, Schema
from repro.model.tuples import point_tuple
from repro.model.types import AttributeKind, DataType
from repro.storage import dumps
from repro.storage.wal import DurableDatabase, open_durable, wal_path_for

SCHEMA = Schema(
    [
        Attribute("id", DataType.STRING, AttributeKind.RELATIONAL),
        Attribute("x", DataType.RATIONAL, AttributeKind.CONSTRAINT),
    ]
)


def relation(ids):
    return ConstraintRelation(
        SCHEMA, [point_tuple(SCHEMA, {"id": i, "x": n}) for n, i in enumerate(ids)], "R"
    )


def run_script(durable, ops):
    """Apply ``ops`` one transaction each; returns [(commit_end_offset,
    serialized_state)] checkpoints."""
    marks = []
    for op in ops:
        kind = op[0]
        with durable.begin() as txn:
            if kind == "put":
                txn.put_relation(op[1], relation(op[2]))
            elif kind == "append":
                txn.append_tuples(op[1], [point_tuple(SCHEMA, {"id": i, "x": 99}) for i in op[2]])
            elif kind == "drop":
                txn.drop_relation(op[1])
        marks.append((durable.wal.position, dumps(durable.database)))
    return marks


def expected_state(marks, empty_state, k):
    """The committed state recovery must produce after a crash at byte k:
    the last transaction whose commit record fully precedes k."""
    state = empty_state
    for end, snapshot in marks:
        if end <= k:
            state = snapshot
    return state


SCRIPT = [
    ("put", "R", ["a", "b"]),
    ("append", "R", ["c"]),
    ("put", "S", ["x"]),
    ("drop", "R"),
]


@pytest.mark.timeout(120)
def test_crash_at_every_byte_recovers_to_committed_prefix(tmp_path):
    reference = tmp_path / "ref" / "db.cdb"
    reference.parent.mkdir()
    with open_durable(reference, fsync=False) as durable:
        empty_state = dumps(durable.database)
        marks = run_script(durable, SCRIPT)
        total = durable.wal.position

    failures = []
    for k in range(total + 1):
        workdir = tmp_path / f"crash-{k}"
        workdir.mkdir()
        path = workdir / "db.cdb"
        try:
            wal = FaultyWAL(wal_path_for(path), crash_at_byte=k, fsync=False)
            durable = DurableDatabase(path, wal=wal)
            run_script(durable, SCRIPT)
            durable.close()
        except SimulatedCrash:
            pass
        with open_durable(path, fsync=False) as recovered:
            got = dumps(recovered.database)
        want = expected_state(marks, empty_state, k)
        if got != want:
            failures.append(k)
    assert not failures, f"recovery mismatch at byte offsets {failures} of {total}"
    # Sanity: the sweep actually covered a non-trivial log.
    assert total > 200


@pytest.mark.timeout(60)
def test_crash_during_checkpoint_preserves_committed_state(tmp_path):
    """A crash between the image rewrite and the WAL reset replays
    idempotently: the committed state survives either ordering."""
    path = tmp_path / "db.cdb"
    with open_durable(path, fsync=False) as durable:
        with durable.begin() as txn:
            txn.put_relation("R", relation(["a", "b"]))
        committed = dumps(durable.database)
        # Simulate the crash point: image durably rewritten, WAL not yet
        # reset (checkpoint does image-first precisely for this).
        from repro.storage.serialization import save_database

        save_database(durable.database, path)
    # WAL still holds the committed txn; image already has it too.
    with open_durable(path, fsync=False) as recovered:
        assert dumps(recovered.database) == committed


@pytest.mark.timeout(60)
def test_plan_scheduled_crash_kind(tmp_path):
    plan = FaultPlan(fail_ops={2: CRASH})  # third WAL write dies
    path = tmp_path / "db.cdb"
    wal = FaultyWAL(wal_path_for(path), plan=plan, fsync=False)
    durable = DurableDatabase(path, wal=wal)
    with pytest.raises(SimulatedCrash):
        with durable.begin() as txn:  # write 0 = magic precedes; begin, put, commit
            txn.put_relation("R", relation(["a"]))
    with open_durable(path, fsync=False) as recovered:
        assert recovered.database.names() == ()  # commit never landed
        assert recovered.recovery.rolled_back_transactions <= 1


@pytest.mark.timeout(60)
def test_dead_handle_stays_dead(tmp_path):
    raw = open(tmp_path / "f.bin", "ab")
    handle = CrashingFile(raw, crash_at_byte=4)
    with pytest.raises(SimulatedCrash):
        handle.write(b"12345678")
    with pytest.raises(SimulatedCrash):
        handle.write(b"more")
    with pytest.raises(SimulatedCrash):
        handle.flush()
    handle.close()  # cleanup is allowed
    assert (tmp_path / "f.bin").read_bytes() == b"1234"  # the torn prefix


@pytest.mark.timeout(300)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=st.lists(
        st.sampled_from(
            [
                ("put", "R", ["a"]),
                ("put", "R", ["a", "b", "c"]),
                ("put", "S", ["s1", "s2"]),
                ("append", "R", ["z"]),
                ("drop", "R"),
                ("drop", "S"),
            ]
        ),
        min_size=1,
        max_size=5,
    ),
    crash_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_random_scripts_recover_to_committed_prefix(tmp_path_factory, ops, crash_fraction):
    """Property form of the matrix: any op script, any crash point —
    recovery equals the last committed state before the crash byte."""
    # Drop ops that would touch a missing relation (the script must be
    # *valid*; invalid scripts fail before logging, which is tested in
    # the unit suite).
    live: set[str] = set()
    script = []
    for op in ops:
        if op[0] == "put":
            live.add(op[1])
        elif op[1] not in live:
            continue
        elif op[0] == "drop":
            live.discard(op[1])
        script.append(op)
    if not script:
        script = [("put", "R", ["a"])]

    tmp = tmp_path_factory.mktemp("walprop")
    with open_durable(tmp / "ref.cdb", fsync=False) as durable:
        empty_state = dumps(durable.database)
        marks = run_script(durable, script)
        total = durable.wal.position

    k = min(int(crash_fraction * total), total)
    path = tmp / "crash" / "db.cdb"
    path.parent.mkdir()
    try:
        wal = FaultyWAL(wal_path_for(path), crash_at_byte=k, fsync=False)
        durable = DurableDatabase(path, wal=wal)
        run_script(durable, script)
        durable.close()
    except SimulatedCrash:
        pass
    with open_durable(path, fsync=False) as recovered:
        assert dumps(recovered.database) == expected_state(marks, empty_state, k)
