"""Server failure modes: these must *terminate cleanly*, never hang.

Three behaviours the ISSUE's acceptance criteria name:

* a client that disconnects mid-query releases the tenant session back
  to the pool (the next client of that tenant is served, the reply that
  could not be delivered is accounted, nothing leaks);
* queue-depth shedding answers immediately with the structured 429-style
  ``overloaded`` reply — not a hang and not a raw traceback;
* graceful shutdown under ``workers=2`` drains every in-flight query
  (replies delivered) before the connections close.

The suite-wide timeout ceiling from ``tests/fault/conftest.py`` applies:
a wedged server fails loudly.
"""

import threading
import time

import pytest

from repro.constraints import parse_constraints
from repro.model import ConstraintRelation, Database, HTuple, Schema, constraint, relational
from repro.obs import SERVER_DISCONNECTS, SERVER_DRAINED, SERVER_SHED
from repro.server import ServerConfig, ServerThread
from repro.server.protocol import encode_frame, recv_frame


def _database() -> Database:
    s = Schema([relational("id"), constraint("t")])
    r = ConstraintRelation(
        s,
        [
            HTuple(s, {"id": "a"}, parse_constraints("0 <= t, t <= 10")),
            HTuple(s, {"id": "b"}, parse_constraints("5 <= t, t <= 20")),
        ],
        "R",
    )
    return Database({"R": r})


@pytest.mark.timeout(30)
class TestClientDisconnect:
    def test_disconnect_mid_query_releases_the_tenant(self):
        with ServerThread(_database(), ServerConfig(workers=2, max_queue=4)) as harness:
            # Occupy tenant "t" with a held query, then vanish without
            # reading the reply.
            doomed = harness.client(tenant="t")
            doomed._sock.sendall(
                encode_frame({"op": "sleep", "seconds": 0.4, "tenant": "t", "id": 1})
            )
            time.sleep(0.1)  # let the server start processing
            doomed.close()  # mid-query disconnect

            # The same tenant must be served again once the in-flight
            # request finishes — the lock/session were released.
            with harness.client(tenant="t") as client:
                result = client.execute("R0 = select t >= 15 from R")
            assert result["rows"] == 1
            # The undeliverable reply was accounted as a disconnect.
            deadline = time.monotonic() + 5
            while harness.counter(SERVER_DISCONNECTS) < 1:
                assert time.monotonic() < deadline, "disconnect never accounted"
                time.sleep(0.02)

    def test_garbage_frame_gets_structured_reply_then_close(self):
        with ServerThread(_database(), ServerConfig(workers=1)) as harness:
            client = harness.client()
            try:
                # A frame that is length-valid but not JSON.
                client._sock.sendall(b"\x00\x00\x00\x04oops")
                reply = recv_frame(client._sock)
                assert reply is not None
                assert reply["status"] == 400
                assert reply["error"]["kind"] == "protocol_error"
                # After a framing error the server closes the connection.
                assert recv_frame(client._sock) is None
            finally:
                client.close()


@pytest.mark.timeout(30)
class TestQueueShedding:
    def test_overload_sheds_with_429_not_a_hang(self):
        config = ServerConfig(workers=1, max_queue=0)
        with ServerThread(_database(), config) as harness:
            occupier = harness.client()
            shed_seen = threading.Event()

            def occupy():
                occupier.sleep(1.0)

            thread = threading.Thread(target=occupy)
            thread.start()
            try:
                time.sleep(0.15)  # ensure the sleep occupies the only worker
                started = time.monotonic()
                with harness.client() as client:
                    reply = client.query("R0 = select t >= 0 from R")
                elapsed = time.monotonic() - started
                assert not reply["ok"]
                assert reply["status"] == 429
                assert reply["error"]["kind"] == "overloaded"
                assert reply["error"]["resource"] == "admission_queue"
                # Shed immediately: far sooner than the occupying sleep.
                assert elapsed < 0.5
                shed_seen.set()
            finally:
                thread.join()
                occupier.close()
            assert shed_seen.is_set()
            assert harness.counter(SERVER_SHED) >= 1

    def test_queue_admits_up_to_capacity(self):
        config = ServerConfig(workers=1, max_queue=2)
        with ServerThread(_database(), config) as harness:
            clients = [harness.client() for _ in range(3)]
            replies = {}

            def run(i, seconds):
                replies[i] = clients[i].sleep(seconds)

            threads = [
                threading.Thread(target=run, args=(i, 0.3)) for i in range(3)
            ]
            try:
                for thread in threads:
                    thread.start()
                    time.sleep(0.05)  # deterministic admission order
                for thread in threads:
                    thread.join()
            finally:
                for client in clients:
                    client.close()
            # 1 running + 2 queued all fit: nothing shed.
            assert all(reply["ok"] for reply in replies.values())
            assert harness.counter(SERVER_SHED) == 0


@pytest.mark.timeout(30)
class TestGracefulDrain:
    def test_drain_completes_in_flight_queries_at_workers_2(self):
        config = ServerConfig(workers=2, max_queue=4, drain_timeout=10.0)
        harness = ServerThread(_database(), config).start()
        clients = [harness.client(tenant=f"drain{i}") for i in range(2)]
        replies = {}

        def run(i):
            replies[i] = clients[i].sleep(0.5, tenant=f"drain{i}")

        threads = [threading.Thread(target=run, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        time.sleep(0.15)  # both queries in flight on the 2 workers
        stop_started = time.monotonic()
        harness.stop()  # graceful shutdown: must drain both
        drain_elapsed = time.monotonic() - stop_started
        for thread in threads:
            thread.join()
        for client in clients:
            client.close()
        # Both in-flight replies were delivered despite the shutdown.
        assert replies[0]["ok"] and replies[1]["ok"]
        assert harness.counter(SERVER_DRAINED) >= 2
        # ...and the drain actually waited for them.
        assert drain_elapsed >= 0.2

    def test_new_requests_refused_while_draining(self):
        config = ServerConfig(workers=1, max_queue=4, drain_timeout=10.0)
        harness = ServerThread(_database(), config).start()
        occupier = harness.client()
        probe = harness.client()  # connected before the listener closes
        result = {}

        def occupy():
            result["occupier"] = occupier.sleep(0.6)

        thread = threading.Thread(target=occupy)
        thread.start()
        time.sleep(0.15)

        stopper = threading.Thread(target=harness.stop)
        stopper.start()
        time.sleep(0.1)  # shutdown is now draining the occupier
        try:
            reply = probe.query("R0 = select t >= 0 from R")
            assert not reply["ok"]
            assert reply["status"] == 503
            assert reply["error"]["kind"] == "shutting_down"
        finally:
            thread.join()
            stopper.join()
            probe.close()
            occupier.close()
        assert result["occupier"]["ok"]
