"""Queries engineered to blow up must terminate with a budget error.

These are the acceptance tests for cooperative cancellation: each
workload, left ungoverned, would run far past the suite's timeout ceiling
(Fourier–Motzkin and DNF complementation are worst-case exponential).
Under a budget they must stop *quickly* with the right
:class:`~repro.errors.ResourceExhausted` subclass carrying a
consumed-resources snapshot.
"""

import pytest

from repro.constraints import Conjunction, DNFFormula, le
from repro.constraints.terms import var
from repro.errors import (
    DeadlineExceeded,
    DNFBudgetExceeded,
    ResourceExhausted,
    SolverBudgetExceeded,
)
from repro.governor import Budget


def _explosive_conjunction(n: int = 12) -> Conjunction:
    """Dense pairwise difference constraints: projecting onto one variable
    forces Fourier–Motzkin cross products that grow exponentially."""
    vs = [var(f"v{i}") for i in range(n)]
    atoms = []
    for i in range(n):
        for j in range(i + 1, n):
            atoms.append(le(vs[i] - vs[j], i + j + 1))
            atoms.append(le(vs[j] - vs[i], i + j + 2))
    return Conjunction(atoms)


@pytest.mark.timeout(20)
class TestExplosiveElimination:
    def test_solver_budget_stops_fm_blowup(self):
        budget = Budget(solver_steps=20_000)
        with pytest.raises(SolverBudgetExceeded) as excinfo:
            with budget.activate():
                _explosive_conjunction().project(("v0",))
        err = excinfo.value
        assert err.resource == "solver_steps"
        assert err.consumed > err.limit == 20_000
        assert err.snapshot["consumed.solver_steps"] == err.consumed
        assert err.snapshot["limit.solver_steps"] == 20_000

    def test_deadline_stops_fm_blowup(self):
        budget = Budget(deadline_seconds=0.2)
        with pytest.raises(DeadlineExceeded) as excinfo:
            with budget.activate():
                _explosive_conjunction().project(("v0",))
        assert excinfo.value.snapshot["deadline.remaining_seconds"] <= 0

    def test_budget_reusable_after_exhaustion(self):
        budget = Budget(solver_steps=20_000)
        with pytest.raises(SolverBudgetExceeded):
            with budget.activate():
                _explosive_conjunction().project(("v0",))
        # A fresh window: small work fits comfortably.
        x, y = var("x"), var("y")
        with budget.activate():
            Conjunction([le(x, y), le(y, 3)]).project(("x",))
        assert budget.consumed["solver_steps"] < 100


@pytest.mark.timeout(20)
class TestExplosiveComplement:
    def test_dnf_budget_stops_complement_blowup(self):
        # Complementing a many-disjunct DNF multiplies branches per round:
        # with 2 negatable atoms per disjunct over distinct variables every
        # combination survives pruning, so the branch count doubles each of
        # the 15 rounds (2^15 conjunctions if left unchecked).  Disjuncts
        # are axis-aligned boxes, so each branch solve is an O(d) interval
        # decision — the blow-up under test is purely the clause count.
        vs = [var(f"w{i}") for i in range(15)]
        formula = DNFFormula(
            Conjunction([le(i, vs[i]), le(vs[i], i + 1)]) for i in range(15)
        )
        budget = Budget(dnf_clauses=10_000)
        with pytest.raises(DNFBudgetExceeded) as excinfo:
            with budget.activate():
                formula.complement()
        assert excinfo.value.resource == "dnf_clauses"
        assert excinfo.value.consumed > excinfo.value.limit

    def test_exhaustion_is_catchable_as_base_class(self):
        budget = Budget(solver_steps=10_000)
        with pytest.raises(ResourceExhausted):
            with budget.activate():
                _explosive_conjunction().project(("v0",))
