"""Hot reload under live traffic: zero torn reads.

Eight client threads hammer the server with selects over a relation
whose every tuple carries the image's version marker (``v1`` in the old
file, ``v2`` in the new) while the main thread repeatedly rewrites the
source file and triggers ``reload``.  The acceptance condition: every
single reply is served entirely from one snapshot — its text mentions
one version marker, never both — and both versions are actually observed
(the swap really happened under load).
"""

from __future__ import annotations

import threading

import pytest

from repro.server import ServerConfig
from repro.server.harness import ServerThread
from repro.storage.wal import atomic_write_text, open_durable

CLIENTS = 8
QUERIES_PER_CLIENT = 30
RELOADS = 12


def image_text(version: str) -> str:
    lines = ["# CQA/CDB database file", "relation R"]
    lines.append("attribute id string relational")
    lines.append("attribute x rational constraint")
    tuple_lines = [
        f'tuple id="{version}-{i}" | {i} <= x, x <= {i + 1}' for i in range(4)
    ]
    lines.extend(tuple_lines)
    import zlib

    crc = zlib.crc32("\n".join(tuple_lines).encode()) & 0xFFFFFFFF
    lines.append(f"checksum {len(tuple_lines)} {crc:08x}")
    lines.append("end")
    return "\n".join(lines) + "\n"


@pytest.mark.timeout(120)
def test_reload_under_concurrent_clients_serves_no_torn_reads(tmp_path):
    path = tmp_path / "db.cdb"
    path.write_text(image_text("v1"))
    with open_durable(path) as durable:
        database = durable.database

    torn: list[str] = []
    seen_versions: set[str] = set()
    errors: list[str] = []
    stop = threading.Event()
    lock = threading.Lock()

    with ServerThread(
        database, ServerConfig(workers=4, max_queue=64), source=path
    ) as harness:

        def reader(n: int) -> None:
            try:
                with harness.client(tenant=f"reader-{n}") as client:
                    for _ in range(QUERIES_PER_CLIENT):
                        if stop.is_set():
                            break
                        reply = client.query("X = select x >= 0 from R", limit=50)
                        if not reply.get("ok"):
                            with lock:
                                errors.append(str(reply.get("error")))
                            continue
                        text = reply["result"]["text"]
                        has_v1 = "v1-" in text
                        has_v2 = "v2-" in text
                        with lock:
                            if has_v1:
                                seen_versions.add("v1")
                            if has_v2:
                                seen_versions.add("v2")
                            if has_v1 and has_v2:
                                torn.append(text)
                            if not has_v1 and not has_v2:
                                errors.append(f"versionless reply: {text!r}")
            except Exception as exc:  # surfaced via the errors list
                with lock:
                    errors.append(f"reader {n}: {exc!r}")

        threads = [
            threading.Thread(target=reader, args=(n,), name=f"reload-reader-{n}")
            for n in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        try:
            with harness.client() as control:
                for round_no in range(RELOADS):
                    version = "v2" if round_no % 2 == 0 else "v1"
                    atomic_write_text(path, image_text(version))
                    reply = control.reload()
                    # A concurrent SIGHUP-style reload could 503; the only
                    # acceptable non-ok reply is the structured 'reloading'.
                    if not reply.get("ok"):
                        assert reply["error"]["kind"] == "reloading", reply
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=60)
        stats = harness.client().stats()

    assert not torn, f"torn replies mixing two snapshots: {torn[:2]}"
    assert not errors, f"reader errors: {errors[:5]}"
    assert seen_versions == {"v1", "v2"}, (
        f"both snapshot versions should be observed under load, saw {seen_versions}"
    )
    assert stats["counters"]["server.reload.count"] >= 1
    assert stats["counters"]["server.reload.retired_sessions"] >= 1


@pytest.mark.timeout(60)
def test_reload_resets_tenant_bindings(tmp_path):
    """Documented contract: a reload retires sessions, so multi-step
    bindings (``R0`` from an earlier statement) are dropped."""
    path = tmp_path / "db.cdb"
    path.write_text(image_text("v1"))
    with open_durable(path) as durable:
        database = durable.database
    with ServerThread(database, ServerConfig(workers=2), source=path) as harness:
        with harness.client(tenant="t") as client:
            client.execute("B0 = select x >= 0 from R")
            assert client.execute("B1 = select x >= 1 from B0")["rows"] >= 1
            assert client.reload()["ok"]
            reply = client.query("B2 = select x >= 2 from B0")  # B0 is gone
            assert not reply["ok"]
            assert reply["status"] == 400


@pytest.mark.timeout(60)
def test_reload_without_source_is_a_protocol_error(tmp_path):
    path = tmp_path / "db.cdb"
    path.write_text(image_text("v1"))
    with open_durable(path) as durable:
        database = durable.database
    with ServerThread(database, ServerConfig(workers=1)) as harness:  # no source
        with harness.client() as client:
            reply = client.reload()
            assert not reply["ok"]
            assert reply["error"]["kind"] == "protocol_error"


@pytest.mark.timeout(60)
def test_reload_recovers_wal_content(tmp_path):
    """A reload picks up transactions committed through the WAL (the
    ``repro ingest`` → ``SIGHUP`` workflow) without a checkpoint."""
    from repro.model.relation import ConstraintRelation
    from repro.model.schema import Attribute, Schema
    from repro.model.tuples import point_tuple
    from repro.model.types import AttributeKind, DataType

    path = tmp_path / "db.cdb"
    path.write_text(image_text("v1"))
    with open_durable(path) as durable:
        database = durable.database
    with ServerThread(database, ServerConfig(workers=1), source=path) as harness:
        with harness.client() as client:
            schema = Schema(
                [
                    Attribute("id", DataType.STRING, AttributeKind.RELATIONAL),
                    Attribute("x", DataType.RATIONAL, AttributeKind.CONSTRAINT),
                ]
            )
            with open_durable(path) as writer:
                with writer.begin() as txn:
                    txn.put_relation(
                        "Extra",
                        ConstraintRelation(
                            schema, [point_tuple(schema, {"id": "w", "x": 5})], "Extra"
                        ),
                    )
            reply = client.reload()
            assert reply["ok"] and "Extra" in reply["relations"]
            assert reply["recovery"]["committed_transactions"] == 1
            assert client.execute("Y = select x >= 5 from Extra")["rows"] == 1
