"""Fault-suite plumbing: enforce ``@pytest.mark.timeout`` everywhere.

The point of this suite is that governed queries and faulted storage
*terminate* — a hang is the failure mode under test.  CI installs
``pytest-timeout``; when it is absent (the pinned local environment has no
network) a SIGALRM-based fallback enforces the same marker, so a hanging
test still fails loudly instead of wedging the run.
"""

from __future__ import annotations

import signal

import pytest

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PLUGIN = True
except ImportError:
    _HAVE_PLUGIN = False

#: Ceiling applied when a test does not carry its own timeout marker.
DEFAULT_TIMEOUT_SECONDS = 30


@pytest.fixture(autouse=True)
def _enforce_timeout(request):
    marker = request.node.get_closest_marker("timeout")
    seconds = int(marker.args[0]) if marker and marker.args else DEFAULT_TIMEOUT_SECONDS
    if (_HAVE_PLUGIN and marker is not None) or not hasattr(signal, "SIGALRM"):
        # The plugin enforces marked tests itself; without SIGALRM
        # (Windows) there is no portable fallback — run unguarded.
        yield
        return

    def _alarm(signum, frame):  # pragma: no cover - only fires on a hang
        raise TimeoutError(f"test exceeded the {seconds}s fault-suite ceiling")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
