"""Deterministic storage fault injection: failures are structured, bounded
retries recover transients, corruption is caught — and nothing hangs."""

from fractions import Fraction

import pytest

from repro.constraints import Conjunction, le
from repro.constraints.terms import var
from repro.errors import CorruptPageError, StorageError, TransientStorageError
from repro.governor import (
    FaultPlan,
    FaultyBufferPool,
    FaultyHeapFile,
    RetryPolicy,
    call_with_retries,
    corrupt_database_text,
    scan_with_retries,
)
from repro.model.database import Database
from repro.model.relation import ConstraintRelation
from repro.model.schema import Schema, constraint, relational
from repro.model.tuples import HTuple
from repro.storage import BufferPool, HeapFile, dumps, loads
from repro.storage.pages import PageConfig


def _relation(rows: int = 40) -> ConstraintRelation:
    x = var("x")
    schema = Schema([relational("rid"), constraint("x")])
    tuples = [
        HTuple(schema, {"rid": f"r{i}"}, Conjunction([le(i, x), le(x, i + 1)]))
        for i in range(rows)
    ]
    return ConstraintRelation(schema, tuples, "R")


@pytest.fixture
def heapfile() -> HeapFile:
    return HeapFile(_relation(), PageConfig(page_size=512))


class TestFaultPlanDeterminism:
    def test_same_seed_same_schedule(self):
        draws = []
        for _ in range(2):
            plan = FaultPlan(seed=7, transient_rate=0.3, corrupt_rate=0.1)
            draws.append([plan.next_fault() for _ in range(200)])
        assert draws[0] == draws[1]
        assert "transient" in draws[0] and "corrupt" in draws[0]

    def test_rate_independent_stream_position(self):
        # Adding a corrupt rate must not shift *which* operations draw
        # transient faults (both draws happen every operation).
        base = FaultPlan(seed=3, transient_rate=0.5)
        mixed = FaultPlan(seed=3, transient_rate=0.5, corrupt_rate=0.0)
        assert [base.next_fault() for _ in range(100)] == [
            mixed.next_fault() for _ in range(100)
        ]

    def test_explicit_schedule_wins(self):
        plan = FaultPlan(seed=0, fail_ops={0: "transient", 2: "corrupt"})
        assert plan.next_fault() == "transient"
        assert plan.next_fault() is None
        assert plan.next_fault() == "corrupt"
        assert plan.injected_transients == 1
        assert plan.injected_corruptions == 1

    def test_max_transients_bounds_rate_faults(self):
        plan = FaultPlan(seed=1, transient_rate=1.0, max_transients=3)
        faults = [plan.next_fault() for _ in range(10)]
        assert faults[:3] == ["transient"] * 3
        assert faults[3:] == [None] * 7

    def test_rejects_bad_rates_and_kinds(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(fail_ops={0: "meltdown"})


class TestFaultyHeapFile:
    def test_scan_raises_mid_iteration(self, heapfile):
        assert heapfile.page_count > 2
        plan = FaultPlan(fail_ops={1: "transient"})
        faulty = FaultyHeapFile(heapfile, plan)
        seen = []
        with pytest.raises(TransientStorageError):
            for t in faulty.scan():
                seen.append(t)
        # Page 0 was delivered before the fault on page 1.
        assert 0 < len(seen) < len(heapfile)

    def test_corruption_is_permanent_storage_error(self, heapfile):
        faulty = FaultyHeapFile(heapfile, FaultPlan(fail_ops={0: "corrupt"}))
        with pytest.raises(CorruptPageError):
            faulty.read_page(0)

    def test_fault_free_scan_matches_plain_scan(self, heapfile):
        faulty = FaultyHeapFile(heapfile, FaultPlan())
        assert list(faulty.scan()) == list(heapfile.scan())


class TestFaultyBufferPool:
    def test_hits_never_fault(self):
        pool = BufferPool(capacity=8)
        faulty = FaultyBufferPool(pool, FaultPlan(transient_rate=1.0, max_transients=None))
        with pytest.raises(TransientStorageError):
            faulty.access("p1")  # miss: faulted
        pool.access("p1")  # page becomes resident
        assert faulty.access("p1") is True  # hit: served, no fault drawn


class TestRetries:
    def test_transient_then_success(self, heapfile):
        plan = FaultPlan(fail_ops={0: "transient", 1: "transient"})
        faulty = FaultyHeapFile(heapfile, plan)
        delays: list[float] = []
        policy = RetryPolicy(attempts=3, base_delay=0.01, sleep=delays.append)
        page = call_with_retries(lambda: faulty.read_page(0), policy)
        assert page == heapfile.read_page(0)
        assert delays == [0.01, 0.02]  # exponential backoff, sleep injected

    def test_backoff_is_capped(self):
        policy = RetryPolicy(attempts=8, base_delay=0.01, multiplier=4.0, max_delay=0.05)
        assert policy.delay_for(0) == 0.01
        assert policy.delay_for(5) == 0.05

    def test_retry_bound_reraises_last_transient(self):
        calls = []

        def always_failing():
            calls.append(1)
            raise TransientStorageError("still down")

        policy = RetryPolicy(attempts=3, sleep=lambda _: None)
        with pytest.raises(TransientStorageError):
            call_with_retries(always_failing, policy)
        assert len(calls) == 3  # bounded: no infinite retry loop

    def test_corruption_not_retried(self, heapfile):
        plan = FaultPlan(fail_ops={0: "corrupt"})
        faulty = FaultyHeapFile(heapfile, plan)
        with pytest.raises(CorruptPageError):
            call_with_retries(lambda: faulty.read_page(0), RetryPolicy(sleep=lambda _: None))
        assert plan.operations == 1  # a permanent fault gets exactly one try

    def test_scan_with_retries_delivers_each_tuple_once(self, heapfile):
        # Ops 0 and 2 fault: the first read of page 0 and its retry's
        # successor (the first read of page 1) — both recover on retry.
        plan = FaultPlan(fail_ops={0: "transient", 2: "transient"})
        faulty = FaultyHeapFile(heapfile, plan)
        policy = RetryPolicy(attempts=3, sleep=lambda _: None)
        tuples = scan_with_retries(faulty, policy)
        assert tuples == list(heapfile.scan())
        assert plan.injected_transients == 2  # the run actually saw faults

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestSerializationCorruption:
    def test_checksum_catches_flipped_digit(self):
        database = Database({"R": _relation(10)})
        text = dumps(database)
        corrupted = corrupt_database_text(text, FaultPlan(fail_ops={3: "corrupt"}))
        assert corrupted != text  # a tuple line actually changed
        with pytest.raises(CorruptPageError) as excinfo:
            loads(corrupted)
        assert "checksum mismatch" in str(excinfo.value)
        assert isinstance(excinfo.value, StorageError)  # structured, catchable

    def test_clean_text_round_trips(self):
        database = Database({"R": _relation(10)})
        text = corrupt_database_text(dumps(database), FaultPlan())  # no faults drawn
        assert loads(text)["R"] == database["R"]

    def test_dropped_tuple_line_detected_by_count(self):
        database = Database({"R": _relation(10)})
        lines = dumps(database).split("\n")
        del lines[next(i for i, line in enumerate(lines) if line.startswith("tuple"))]
        with pytest.raises(CorruptPageError) as excinfo:
            loads("\n".join(lines))
        assert "truncated or corrupted" in str(excinfo.value)

    def test_files_without_checksums_still_load(self):
        # Backwards compatibility: pre-checksum files have no checksum line.
        database = Database({"R": _relation(10)})
        lines = [
            line for line in dumps(database).split("\n") if not line.startswith("checksum")
        ]
        assert loads("\n".join(lines))["R"] == database["R"]
