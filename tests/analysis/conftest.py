"""Fixtures for the static-analyzer tests.

``analysis_db`` is the paper's Hurricane database (§3.3) extended with
two crafted relations the built-in corpus deliberately lacks:

* ``Readings`` — sensor samples whose ``t`` is a *relational* rational.
  Joining it with ``Hurricane`` (where ``t`` is a constraint attribute)
  makes :meth:`~repro.model.schema.Schema.join` demote ``t`` to
  relational — the C-flag drop rule CQA201 warns about.
* ``Ghost`` — a relation whose only relational attribute is NULL in every
  tuple, so any selection conditioned on it is provably empty (CQA202).
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.constraints import Conjunction, LinearExpression, ge, le
from repro.model.database import Database
from repro.model.relation import ConstraintRelation
from repro.model.schema import Schema, constraint, relational
from repro.model.tuples import HTuple
from repro.model.types import DataType, Null
from repro.workloads.hurricane import figure2_database


def readings_relation() -> ConstraintRelation:
    schema = Schema([relational("sensor"), relational("t", DataType.RATIONAL)])
    return ConstraintRelation(
        schema,
        [
            HTuple(schema, {"sensor": "s1", "t": Fraction(4)}),
            HTuple(schema, {"sensor": "s2", "t": Fraction(7)}),
        ],
        name="Readings",
    )


def ghost_relation() -> ConstraintRelation:
    schema = Schema([relational("owner"), constraint("x")])
    x = LinearExpression.variable("x")
    return ConstraintRelation(
        schema,
        [
            HTuple(schema, {"owner": Null()}, Conjunction([ge(x, 0), le(x, 1)])),
            HTuple(schema, {"owner": Null()}, Conjunction([ge(x, 2), le(x, 3)])),
        ],
        name="Ghost",
    )


@pytest.fixture
def analysis_db() -> Database:
    database = figure2_database()
    database.add("Readings", readings_relation())
    database.add("Ghost", ghost_relation())
    return database
