"""Unit tests for the static analyzer: rules, spans, and enforcement."""

from __future__ import annotations

import pytest

from repro.algebra.plan import Scan
from repro.algebra.safety import UnsafeDistance, check_safe, find_unsafe, is_safe
from repro.analysis import Severity, analyze_script, diagnostic
from repro.errors import OutputLimitExceeded, SafetyError, StaticAnalysisError
from repro.governor import Budget
from repro.query import QuerySession


def codes(diagnostics) -> list[str]:
    return [d.code for d in diagnostics]


class TestSafetyRules:
    def test_raw_distance_is_an_error_with_identifier_span(self, analysis_db):
        script = "R0 = select distance <= 5 from Hurricane"
        diags = analyze_script(script, analysis_db)
        assert codes(diags) == ["CQA101"]
        (diag,) = diags
        assert diag.severity is Severity.ERROR
        # The span covers exactly the identifier `distance`.
        assert script[diag.span.column - 1 : diag.span.end_column - 1] == "distance"
        assert diag.span.line == 1

    def test_distance_as_a_real_attribute_is_fine(self, analysis_db):
        # Hurricane has no `distance`, but a derived rename can create one;
        # referencing a *real* attribute named distance is not unsafe.
        script = (
            "R0 = rename t to distance in Hurricane\n"
            "R1 = select distance <= 5 from R0"
        )
        assert not analyze_script(script, analysis_db)

    def test_distance_as_string_constant_does_not_fire(self, analysis_db):
        # In a string equality a bare unknown identifier is a constant.
        script = "R0 = select landId = distance from Land"
        assert not analyze_script(script, analysis_db)

    def test_find_unsafe_reports_node_and_path(self):
        plan = UnsafeDistance(Scan("A"), Scan("B"))
        (site,) = find_unsafe(plan)
        assert site.path == "plan"
        assert "distance" in site.reason
        assert site.to_diagnostic().code == "CQA102"
        assert not is_safe(plan)
        with pytest.raises(SafetyError, match="closed form"):
            check_safe(plan)

    def test_check_safe_names_the_operator_and_location(self):
        plan = UnsafeDistance(Scan("A"), Scan("B"), output_attribute="dist")
        with pytest.raises(SafetyError, match=r"UnsafeDistance\(-> dist\) at plan"):
            check_safe(plan)


class TestSchemaRules:
    def test_join_dropping_c_flag_warns(self, analysis_db):
        diags = analyze_script("R0 = join Readings and Hurricane", analysis_db)
        assert codes(diags) == ["CQA201"]
        (diag,) = diags
        assert diag.severity is Severity.WARNING
        assert "'t'" in diag.message

    def test_flag_compatible_join_is_clean(self, analysis_db):
        assert not analyze_script("R0 = join Hurricane and Land", analysis_db)

    def test_all_null_relational_attribute_warns_empty(self, analysis_db):
        diags = analyze_script('R0 = select owner = "alice" from Ghost', analysis_db)
        assert codes(diags) == ["CQA202"]
        assert "provably empty" in diags.render()

    def test_unknown_relation_reports_once_and_poisons(self, analysis_db):
        script = "R0 = join Missing and Hurricane\nR1 = project R0 on t"
        diags = analyze_script(script, analysis_db)
        # One CQA002 for Missing; the reference to the poisoned R0 is not
        # re-reported as a second unknown relation.
        assert codes(diags) == ["CQA002"]

    def test_schema_violation_is_cqa003(self, analysis_db):
        diags = analyze_script("R0 = project Hurricane on nosuch", analysis_db)
        assert codes(diags) == ["CQA003"]

    def test_condition_schema_violation_is_cqa003(self, analysis_db):
        diags = analyze_script("R0 = select nosuch >= 4 from Hurricane", analysis_db)
        assert codes(diags) == ["CQA003"]


class TestSatisfiabilityRules:
    def test_empty_interval_is_vacuous(self, analysis_db):
        script = "R0 = select t >= 9, t <= 4 from Hurricane"
        diags = analyze_script(script, analysis_db)
        assert codes(diags) == ["CQA301"]
        (diag,) = diags
        assert diag.severity is Severity.WARNING
        # Span covers the whole condition list.
        assert script[diag.span.column - 1 : diag.span.end_column - 1] == "t >= 9, t <= 4"

    def test_ground_false_condition(self, analysis_db):
        diags = analyze_script("R0 = select 1 = 2 from Hurricane", analysis_db)
        assert codes(diags) == ["CQA301"]

    def test_conflicting_string_equalities(self, analysis_db):
        script = 'R0 = select landId = "A", landId = "B" from Land'
        diags = analyze_script(script, analysis_db)
        assert codes(diags) == ["CQA301"]

    def test_ground_true_condition_is_info(self, analysis_db):
        diags = analyze_script("R0 = select 1 <= 2, t >= 4 from Hurricane", analysis_db)
        assert codes(diags) == ["CQA302"]
        assert diags.max_severity is Severity.INFO

    def test_satisfiable_conditions_are_clean(self, analysis_db):
        assert not analyze_script(
            "R0 = select t >= 4, t <= 9 from Hurricane", analysis_db
        )


class TestBudgetRules:
    def test_output_lower_bound_exceeding_budget_is_error(self, analysis_db):
        diags = analyze_script(
            "R0 = project Landownership on name",
            analysis_db,
            budget=Budget(output_tuples=2),
        )
        assert codes(diags) == ["CQA402"]
        assert diags.has_errors

    def test_no_budget_means_no_budget_rules(self, analysis_db):
        assert not analyze_script("R0 = project Landownership on name", analysis_db)

    def test_dnf_blowup_warns_under_tight_budget(self, analysis_db):
        diags = analyze_script(
            "R0 = diff Land and Land",
            analysis_db,
            budget=Budget(dnf_clauses=10),
        )
        assert "CQA401" in codes(diags)

    def test_selection_resets_the_charged_lower_bound(self, analysis_db):
        # select may filter everything, so project-after-select proves nothing.
        script = (
            "R0 = select t >= 4 from Landownership\n"
            "R1 = project R0 on name"
        )
        diags = analyze_script(script, analysis_db, budget=Budget(output_tuples=2))
        assert "CQA402" not in codes(diags)


class TestSyntaxDiagnostics:
    def test_parse_error_becomes_cqa001_and_analysis_continues(self, analysis_db):
        script = (
            "R0 = selec t >= 4 from Hurricane\n"
            "R1 = select t >= 4, t <= 9 from Hurricane"
        )
        diags = analyze_script(script, analysis_db)
        assert codes(diags) == ["CQA001"]
        (diag,) = diags
        assert diag.span.line == 1

    def test_multi_line_scripts_report_real_line_numbers(self, analysis_db):
        script = (
            "# comment\n"
            "R0 = select t >= 4 from Hurricane\n"
            "\n"
            "R1 = select t >= 9, t <= 4 from R0\n"
        )
        (diag,) = analyze_script(script, analysis_db)
        assert diag.code == "CQA301"
        assert diag.span.line == 4


class TestSessionIntegration:
    def test_analyze_does_not_execute(self, analysis_db):
        session = QuerySession(analysis_db)
        diags = session.analyze("R0 = select t >= 4 from Hurricane")
        assert not diags
        assert "R0" not in session
        assert session.last_diagnostics is diags

    def test_strict_mode_blocks_errors(self, analysis_db):
        session = QuerySession(analysis_db, analysis="strict")
        with pytest.raises(StaticAnalysisError) as excinfo:
            session.execute("R0 = select distance <= 5 from Hurricane")
        assert excinfo.value.diagnostics.has_errors
        assert "R0" not in session

    def test_strict_mode_allows_warnings(self, analysis_db):
        session = QuerySession(analysis_db, analysis="strict")
        result = session.execute("R0 = select t >= 9, t <= 4 from Hurricane")
        assert len(result) == 0
        assert codes(session.last_diagnostics) == ["CQA301"]

    def test_strict_cqa402_raises_output_limit_exceeded(self, analysis_db):
        session = QuerySession(
            analysis_db, analysis="strict", budget=Budget(output_tuples=2)
        )
        with pytest.raises(OutputLimitExceeded) as excinfo:
            session.execute("R0 = project Landownership on name")
        assert excinfo.value.resource == "output_tuples"
        assert excinfo.value.limit == 2

    def test_strict_cqa402_partial_budget_truncates_instead(self, analysis_db):
        session = QuerySession(
            analysis_db,
            analysis="strict",
            budget=Budget(output_tuples=2, on_exhausted="partial"),
        )
        result = session.execute("R0 = project Landownership on name")
        assert result.truncated
        assert len(result) == 2

    def test_invalid_analysis_mode_rejected(self, analysis_db):
        with pytest.raises(ValueError, match="analysis"):
            QuerySession(analysis_db, analysis="loud")

    def test_analysis_mode_is_settable(self, analysis_db):
        session = QuerySession(analysis_db)
        session.analysis = "warn"
        session.execute("R0 = select 1 = 2 from Hurricane")
        assert codes(session.last_diagnostics) == ["CQA301"]


class TestDiagnosticTypes:
    def test_catalog_severity_is_applied(self):
        assert diagnostic("CQA101", "x").severity is Severity.ERROR
        assert diagnostic("CQA201", "x").severity is Severity.WARNING
        assert diagnostic("CQA403", "x").severity is Severity.INFO

    def test_render_includes_caret_line(self, analysis_db):
        (diag,) = analyze_script(
            "R0 = select distance <= 5 from Hurricane", analysis_db
        )
        rendered = diag.render()
        caret_line = rendered.splitlines()[2]
        assert caret_line.strip("| ") == "^" * len("distance")
