"""Golden-file tests for diagnostic rendering.

Each ``cases/NAME.cqa`` script is analyzed against the shared fixture
database and its full :meth:`~repro.analysis.Diagnostics.render` output is
compared, byte for byte, against ``cases/NAME.expected``.  This pins the
rendering contract: codes, severities, line/column spans, quoted
statements, caret placement, hints, and the summary line.

To regenerate after an intentional rendering change::

    PYTHONPATH=src python tests/analysis/test_golden.py --regen
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

CASES_DIR = Path(__file__).parent / "cases"
CASE_NAMES = sorted(p.stem for p in CASES_DIR.glob("*.cqa"))


def _build_db():
    from tests.analysis.conftest import ghost_relation, readings_relation
    from repro.workloads.hurricane import figure2_database

    database = figure2_database()
    database.add("Readings", readings_relation())
    database.add("Ghost", ghost_relation())
    return database


def _render(name: str) -> str:
    from repro.analysis import analyze_script

    script = (CASES_DIR / f"{name}.cqa").read_text(encoding="utf-8")
    return analyze_script(script, _build_db()).render() + "\n"


@pytest.mark.parametrize("name", CASE_NAMES)
def test_golden(name: str) -> None:
    expected_path = CASES_DIR / f"{name}.expected"
    assert expected_path.exists(), f"missing golden file {expected_path}"
    assert _render(name) == expected_path.read_text(encoding="utf-8")


def test_cases_exist() -> None:
    assert CASE_NAMES, "no golden cases found"


if __name__ == "__main__":
    if "--regen" in sys.argv:
        for case in CASE_NAMES:
            (CASES_DIR / f"{case}.expected").write_text(_render(case), encoding="utf-8")
            print(f"regenerated {case}.expected")
    else:
        print(__doc__)
