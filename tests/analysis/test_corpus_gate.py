"""Zero-false-positive gate: the analyzer must stay silent on every query
we ship.

The paper's five §3.3 scripts and every ``examples/data/*.cqa`` script are
legitimate queries; any diagnostic of severity WARNING or above on them is
a false positive and fails this gate.  The CLI half checks the ``--lint``
surface end to end (exit code 0, ``ok`` rendering).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Severity, analyze_script
from repro.cli import main as cli_main
from repro.workloads.hurricane import figure2_database, paper_queries

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "data"
EXAMPLE_SCRIPTS = sorted(EXAMPLES.glob("*.cqa"))
HURRICANE_CDB = EXAMPLES / "hurricane.cdb"


class TestHurricaneWorkload:
    @pytest.mark.parametrize("name", sorted(paper_queries()))
    def test_paper_query_has_no_warnings(self, name: str) -> None:
        diagnostics = analyze_script(paper_queries()[name], figure2_database())
        flagged = diagnostics.at_least(Severity.WARNING)
        assert not flagged, f"false positive on {name}:\n{flagged.render()}"


class TestExampleScripts:
    @pytest.mark.parametrize(
        "script", EXAMPLE_SCRIPTS, ids=[p.stem for p in EXAMPLE_SCRIPTS]
    )
    def test_example_has_no_warnings(self, script: Path) -> None:
        diagnostics = analyze_script(
            script.read_text(encoding="utf-8"), figure2_database()
        )
        flagged = diagnostics.at_least(Severity.WARNING)
        assert not flagged, f"false positive on {script.name}:\n{flagged.render()}"

    def test_examples_exist(self) -> None:
        assert EXAMPLE_SCRIPTS, f"no example scripts under {EXAMPLES}"


class TestLintCli:
    @pytest.mark.parametrize(
        "script", EXAMPLE_SCRIPTS, ids=[p.stem for p in EXAMPLE_SCRIPTS]
    )
    def test_lint_exits_zero_on_examples(self, script: Path, capsys) -> None:
        code = cli_main(["query", str(HURRICANE_CDB), str(script), "--lint"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "ok: no diagnostics" in out

    def test_lint_exits_two_on_errors(self, tmp_path, capsys) -> None:
        bad = tmp_path / "bad.cqa"
        bad.write_text("R0 = select distance <= 5 from Hurricane\n", encoding="utf-8")
        code = cli_main(["query", str(HURRICANE_CDB), str(bad), "--lint"])
        out = capsys.readouterr().out
        assert code == 2
        assert "CQA101" in out

    def test_lint_exits_zero_on_warnings_only(self, tmp_path, capsys) -> None:
        warn = tmp_path / "warn.cqa"
        warn.write_text("R0 = select t >= 9, t <= 4 from Hurricane\n", encoding="utf-8")
        code = cli_main(["query", str(HURRICANE_CDB), str(warn), "--lint"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CQA301" in out

    def test_strict_cli_blocks_unsafe(self, tmp_path, capsys) -> None:
        bad = tmp_path / "bad.cqa"
        bad.write_text("R0 = select distance <= 5 from Hurricane\n", encoding="utf-8")
        code = cli_main(
            ["query", str(HURRICANE_CDB), str(bad), "--analysis", "strict"]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "error[analysis]" in err
