"""Property tests: parallel evaluation is bit-identical to serial.

The execution engine's contract (docs/PARALLELISM.md) is that for every
workload and every worker count, parallel evaluation returns *the same
relation* as serial evaluation — same tuples in the same order, same
truncation flag, same diagnostics, and the same governed-failure taxonomy.
These tests drive that contract over random rectangle workloads and the
paper's workloads at ``workers ∈ {1, 2, 4}``.

Engines are module-scoped (pool startup is the dominant cost) and run in
thread mode under hypothesis; process mode gets targeted non-hypothesis
coverage at the end.
"""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constraints import parse_constraints
from repro.errors import ResourceExhausted
from repro.exec import ExecutionConfig, ExecutionEngine
from repro.governor import Budget
from repro.model.database import Database
from repro.query import QuerySession
from repro.spatial.buffer_join import buffer_join
from repro.spatial.features import Feature, FeatureSet
from repro.spatial.geometry import Point
from repro.spatial.k_nearest import k_nearest
from repro.spatial.polygon import ConvexPolygon
from repro.workloads import build_constraint_relation, generate_data
from repro.algebra.operators import select

WORKER_COUNTS = (2, 4)

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def engines():
    made = {
        workers: ExecutionEngine(
            ExecutionConfig(workers=workers, mode="thread", min_parallel_items=1)
        )
        for workers in WORKER_COUNTS
    }
    yield made
    for engine in made.values():
        engine.close()


def _relations_identical(a, b):
    assert list(a.tuples) == list(b.tuples)
    assert a.truncated == b.truncated
    assert a.schema == b.schema


def _rect_features(count: int, seed: int) -> FeatureSet:
    import random

    rng = random.Random(seed)
    features = []
    for i in range(count):
        x = Fraction(rng.randint(0, 900), rng.randint(1, 4))
        y = Fraction(rng.randint(0, 900), rng.randint(1, 4))
        w = Fraction(rng.randint(1, 40), 1)
        h = Fraction(rng.randint(1, 40), 1)
        poly = ConvexPolygon(
            [Point(x, y), Point(x + w, y), Point(x + w, y + h), Point(x, y + h)]
        )
        features.append(Feature(f"f{i:03d}", [poly]))
    return FeatureSet(features)


class TestSelectDeterminism:
    @SETTINGS
    @given(
        data_seed=st.integers(0, 10_000),
        size=st.integers(20, 60),
        lo=st.integers(0, 400),
        width=st.integers(50, 600),
    )
    def test_random_rectangles(self, engines, data_seed, size, lo, width):
        relation = build_constraint_relation(generate_data(size, data_seed))
        predicates = parse_constraints(
            f"x >= {lo}, x <= {lo + width}, y >= {lo}, y <= {lo + width}"
        )
        serial = select(relation, predicates)
        for workers in WORKER_COUNTS:
            with engines[workers].activate():
                parallel = select(relation, predicates)
            _relations_identical(serial, parallel)

    @SETTINGS
    @given(data_seed=st.integers(0, 10_000), cap=st.integers(1, 30))
    def test_partial_truncation_matches(self, engines, data_seed, cap):
        relation = build_constraint_relation(generate_data(40, data_seed))
        predicates = parse_constraints("x >= 0, x <= 900, y >= 0, y <= 900")

        def run(engine):
            budget = Budget(output_tuples=cap, on_exhausted="partial")
            if engine is None:
                with budget.activate():
                    return select(relation, predicates), budget
            with engine.activate(), budget.activate():
                return select(relation, predicates), budget

        serial, serial_budget = run(None)
        for workers in WORKER_COUNTS:
            parallel, parallel_budget = run(engines[workers])
            _relations_identical(serial, parallel)
            assert serial_budget.truncated == parallel_budget.truncated

    @SETTINGS
    @given(data_seed=st.integers(0, 10_000), steps=st.integers(1, 40))
    def test_raise_mode_surfaces_same_taxonomy(self, engines, data_seed, steps):
        relation = build_constraint_relation(generate_data(40, data_seed))
        # Multi-attribute conjuncts defeat the interval fast path, so the
        # full solver runs and the step budget actually bites.
        predicates = parse_constraints("x + y >= 100, x - y <= 800")

        def run(engine):
            budget = Budget(solver_steps=steps)
            try:
                if engine is None:
                    with budget.activate():
                        return select(relation, predicates), None
                with engine.activate(), budget.activate():
                    return select(relation, predicates), None
            except ResourceExhausted as exc:
                return None, (type(exc).__name__, exc.resource)

        serial_result, serial_failure = run(None)
        for workers in WORKER_COUNTS:
            parallel_result, parallel_failure = run(engines[workers])
            assert serial_failure == parallel_failure
            if serial_result is not None:
                _relations_identical(serial_result, parallel_result)


class TestSpatialDeterminism:
    @SETTINGS
    @given(seed=st.integers(0, 10_000), distance=st.integers(5, 120))
    def test_buffer_join(self, engines, seed, distance):
        serial_set = _rect_features(30, seed)
        serial = buffer_join(serial_set, serial_set, distance)
        for workers in WORKER_COUNTS:
            fresh = _rect_features(30, seed)
            with engines[workers].activate():
                parallel = buffer_join(fresh, fresh, distance)
            _relations_identical(serial, parallel)

    @SETTINGS
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 12))
    def test_k_nearest(self, engines, seed, k):
        serial_set = _rect_features(30, seed)
        query = serial_set["f000"]
        serial = k_nearest(serial_set, query, k)
        for workers in WORKER_COUNTS:
            fresh = _rect_features(30, seed)
            with engines[workers].activate():
                parallel = k_nearest(fresh, fresh["f000"], k)
            _relations_identical(serial, parallel)

    @SETTINGS
    @given(seed=st.integers(0, 10_000), cap=st.integers(1, 20))
    def test_buffer_join_partial_truncation_matches(self, engines, seed, cap):
        def run(engine):
            features = _rect_features(30, seed)
            budget = Budget(output_tuples=cap, on_exhausted="partial")
            if engine is None:
                with budget.activate():
                    return buffer_join(features, features, 60), budget
            with engine.activate(), budget.activate():
                return buffer_join(features, features, 60), budget

        serial, serial_budget = run(None)
        for workers in WORKER_COUNTS:
            parallel, parallel_budget = run(engines[workers])
            _relations_identical(serial, parallel)
            assert serial_budget.truncated == parallel_budget.truncated


class TestSessionDeterminism:
    """Whole-session parity on a paper-shaped workload, including the
    analyzer's diagnostics."""

    SCRIPT = (
        "inside = select x >= 100, x <= 700, y >= 100, y <= 700 from boxes\n"
        "narrow = select x + y >= 300 from inside\n"
    )

    def _database(self):
        relation = build_constraint_relation(generate_data(80, seed=23)).with_name("boxes")
        return Database({"boxes": relation})

    def _run_session(self, workers):
        with QuerySession(
            self._database(), workers=workers, exec_mode="thread", analysis="warn"
        ) as session:
            result = session.run_script(self.SCRIPT)
            diagnostics = session.last_diagnostics.render()
            bound = {name: rel for name, rel in session.results.items()}
        return result, diagnostics, bound

    @pytest.mark.parametrize("workers", [2, 4])
    def test_script_results_and_diagnostics_match(self, workers):
        serial_result, serial_diag, serial_bound = self._run_session(1)
        parallel_result, parallel_diag, parallel_bound = self._run_session(workers)
        _relations_identical(serial_result, parallel_result)
        assert serial_diag == parallel_diag
        assert serial_bound.keys() == parallel_bound.keys()
        for name in serial_bound:
            _relations_identical(serial_bound[name], parallel_bound[name])


class TestProcessModeDeterminism:
    """Targeted process-pool coverage (one pool spin-up per test)."""

    def test_select_and_buffer_join(self):
        relation = build_constraint_relation(generate_data(60, seed=3))
        predicates = parse_constraints("x >= 50, x <= 800, y >= 50, y <= 800")
        serial_select = select(relation, predicates)
        features = _rect_features(40, 3)
        serial_join = buffer_join(features, features, 50)
        with ExecutionEngine(
            ExecutionConfig(workers=2, mode="process", min_parallel_items=1)
        ) as engine:
            with engine.activate():
                parallel_select = select(relation, predicates)
                fresh = _rect_features(40, 3)
                parallel_join = buffer_join(fresh, fresh, 50)
        _relations_identical(serial_select, parallel_select)
        _relations_identical(serial_join, parallel_join)

    def test_worker_exhaustion_surfaces_same_subclass(self):
        relation = build_constraint_relation(generate_data(60, seed=3))
        predicates = parse_constraints("x + y >= 100, x - y <= 800")

        def run(workers):
            budget = Budget(solver_steps=2)
            try:
                if workers == 1:
                    with budget.activate():
                        select(relation, predicates)
                else:
                    with ExecutionEngine(
                        ExecutionConfig(workers=workers, mode="process",
                                        min_parallel_items=1)
                    ) as engine:
                        with engine.activate(), budget.activate():
                            select(relation, predicates)
                return None
            except ResourceExhausted as exc:
                return (type(exc).__name__, exc.resource)

        serial = run(1)
        assert serial is not None
        assert run(2) == serial
