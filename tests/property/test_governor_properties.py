"""Property tests for the resource governor.

The governor's contract is *observational transparency*: a query governed
by a budget it never exhausts must produce byte-for-byte the same answer
as the same query run ungoverned.  The checkpoints and charges threaded
through elimination, DNF manipulation, the solver, and the operators may
only *stop* work — never change it.
"""

from hypothesis import given, settings

from repro.algebra.operators import natural_join, project, select
from repro.constraints import Conjunction, solver
from repro.errors import ResourceExhausted
from repro.governor import Budget
from repro.model.relation import ConstraintRelation
from repro.model.schema import Schema, constraint
from repro.model.tuples import HTuple
from tests.conftest import conjunctions

SETTINGS = settings(max_examples=80, deadline=None)

#: Generous enough that the small generated systems never trip it; the
#: test asserts that explicitly so a silent exhaustion can't hide a
#: transparency violation behind a truncated result.
_ROOMY = dict(
    solver_steps=10_000_000,
    dnf_clauses=10_000_000,
    output_tuples=10_000_000,
    io_accesses=10_000_000,
    deadline_seconds=300.0,
)


def _relation(systems: list[Conjunction]) -> ConstraintRelation:
    schema = Schema([constraint("x"), constraint("y"), constraint("z")])
    return ConstraintRelation(schema, [HTuple(schema, {}, c) for c in systems])


@given(conjunctions())
@SETTINGS
def test_governed_satisfiability_matches_ungoverned(conjunction):
    ungoverned = solver.is_satisfiable(conjunction)
    with Budget(**_ROOMY).activate() as budget:
        governed = solver.is_satisfiable(conjunction)
    assert governed == ungoverned
    assert not budget.truncated


@given(conjunctions())
@SETTINGS
def test_governed_projection_matches_ungoverned(conjunction):
    ungoverned = conjunction.project(("x", "y"))
    with Budget(**_ROOMY).activate() as budget:
        governed = conjunction.project(("x", "y"))
    assert governed == ungoverned
    assert not budget.truncated


@given(conjunctions(), conjunctions())
@SETTINGS
def test_governed_algebra_matches_ungoverned(left_system, right_system):
    left = _relation([left_system])
    right = _relation([right_system])

    def pipeline():
        joined = natural_join(left, right)
        selected = select(joined, right_system)
        return project(selected, ("x", "y"))

    ungoverned = pipeline()
    with Budget(**_ROOMY).activate() as budget:
        governed = pipeline()
    assert list(governed) == list(ungoverned)
    assert not governed.truncated
    assert not budget.truncated


@given(conjunctions())
@SETTINGS
def test_partial_mode_never_raises_from_operators(conjunction):
    # In partial mode exhaustion degrades; ResourceExhausted must not
    # escape an operator even with a budget tight enough to truncate.
    relation = _relation([conjunction] * 4)
    budget = Budget(output_tuples=2, on_exhausted="partial")
    try:
        with budget.activate():
            result = select(relation, conjunction)
    except ResourceExhausted as exc:  # pragma: no cover - the failure mode
        raise AssertionError(f"partial mode leaked {type(exc).__name__}") from exc
    assert len(result) <= 2
