"""Property-based tests for the R*-tree: random operation sequences keep
the tree equivalent to a brute-force set and structurally sound."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexing import MBR, RStarTree

SETTINGS = settings(max_examples=40, deadline=None)

coords = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False)
extents = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False)


@st.composite
def boxes(draw):
    x, y = draw(coords), draw(coords)
    return MBR((x, y), (x + draw(extents), y + draw(extents)))


@st.composite
def operation_sequences(draw):
    """Interleaved inserts and deletes; deletes reference earlier inserts."""
    inserts = draw(st.lists(boxes(), min_size=1, max_size=60))
    delete_choices = draw(
        st.lists(st.integers(min_value=0, max_value=len(inserts) - 1), max_size=20)
    )
    return inserts, delete_choices


class TestTreeVsBruteForce:
    @SETTINGS
    @given(operation_sequences(), boxes(), st.integers(min_value=4, max_value=12))
    def test_search_matches_set_after_mixed_ops(self, ops, query, fanout):
        inserts, deletes = ops
        tree = RStarTree(dimensions=2, max_entries=fanout)
        live: dict[int, MBR] = {}
        for i, mbr in enumerate(inserts):
            tree.insert(mbr, i)
            live[i] = mbr
        for i in deletes:
            if i in live:
                assert tree.delete(live[i], i)
                del live[i]
        tree.check_invariants()
        assert len(tree) == len(live)
        expected = sorted(i for i, mbr in live.items() if mbr.intersects(query))
        assert sorted(tree.search(query)) == expected

    @SETTINGS
    @given(st.lists(boxes(), min_size=1, max_size=60), boxes(), st.integers(min_value=1, max_value=5))
    def test_nearest_matches_bruteforce(self, inserts, target, k):
        tree = RStarTree(dimensions=2, max_entries=6)
        for i, mbr in enumerate(inserts):
            tree.insert(mbr, i)
        got = [round(d, 9) for d, _ in tree.nearest(target, k=k)]
        expected = sorted(
            round(target.min_distance_sq(mbr) ** 0.5, 9) for mbr in inserts
        )[:k]
        assert got == expected

    @SETTINGS
    @given(st.lists(boxes(), min_size=1, max_size=40), st.booleans())
    def test_invariants_hold_with_and_without_reinsert(self, inserts, reinsert):
        tree = RStarTree(dimensions=2, max_entries=5, forced_reinsert=reinsert)
        for i, mbr in enumerate(inserts):
            tree.insert(mbr, i)
            tree.check_invariants()

    @SETTINGS
    @given(st.lists(boxes(), min_size=1, max_size=50))
    def test_nearest_iter_monotone_and_complete(self, inserts):
        tree = RStarTree(dimensions=2, max_entries=6)
        for i, mbr in enumerate(inserts):
            tree.insert(mbr, i)
        stream = list(tree.nearest_iter(MBR.point((500.0, 500.0))))
        assert len(stream) == len(inserts)
        distances = [d for d, _ in stream]
        assert distances == sorted(distances)


class TestBulkLoadProperties:
    @SETTINGS
    @given(st.lists(boxes(), min_size=0, max_size=120), boxes(), st.integers(min_value=5, max_value=14))
    def test_str_packed_tree_equals_linear_scan(self, inserts, query, fanout):
        from repro.indexing import str_bulk_load

        items = list(enumerate(inserts))
        tree = str_bulk_load(((mbr, i) for i, mbr in items), dimensions=2, max_entries=fanout)
        tree.check_invariants()
        assert len(tree) == len(items)
        expected = sorted(i for i, mbr in items if mbr.intersects(query))
        assert sorted(tree.search(query)) == expected


class TestStrategyProperties:
    @SETTINGS
    @given(st.integers(min_value=0, max_value=2**31 - 1), st.integers(min_value=10, max_value=80))
    def test_joint_and_separate_always_agree(self, seed, n):
        from repro.indexing import JointIndex, SeparateIndexes
        from repro.workloads import rectangles

        data = rectangles.generate_data(n, seed=seed)
        relation = rectangles.build_constraint_relation(data)
        joint = JointIndex(relation, ["x", "y"], max_entries=4)
        separate = SeparateIndexes(relation, ["x", "y"], max_entries=4)
        # A distinct query seed: reusing the data seed makes query corners
        # coincide *exactly* with box corners, where the relation's
        # 6-decimal coordinate rounding legitimately flips touch-boundary
        # outcomes vs the raw floats.
        rng = random.Random(seed ^ 0x5EED)
        for _ in range(5):
            qx, qy = rng.uniform(0, 3000), rng.uniform(0, 3000)
            box = {"x": (qx, qx + rng.uniform(1, 500)), "y": (qy, qy + rng.uniform(1, 500))}
            expected = rectangles.brute_force_matches(data, box)
            assert joint.query(box) == expected
            assert separate.query(box) == expected
