"""Property-based tests for the query language front end.

The printed form of any constraint atom must survive the full pipeline:
``str(atom)`` → select statement → parser → compiler → the same atom.
This ties the three text surfaces (atom printing, the constraints parser,
the query language) together.
"""

from hypothesis import given, settings

from repro.constraints import LinearConstraint
from repro.model import Schema, constraint
from repro.query import parse_statement
from repro.query.compiler import compile_conditions
from tests.conftest import linear_atoms

SETTINGS = settings(max_examples=100, deadline=None)

SCHEMA = Schema([constraint("x"), constraint("y"), constraint("z")])


class TestAtomRoundTrip:
    @SETTINGS
    @given(linear_atoms())
    def test_printed_atom_compiles_back(self, atom: LinearConstraint):
        if atom.is_trivial:
            return
        statement = parse_statement(f"R0 = select {atom} from R")
        (compiled,) = compile_conditions(statement.body.conditions, SCHEMA)
        assert compiled == atom

    @SETTINGS
    @given(linear_atoms(), linear_atoms())
    def test_conjunction_order_preserved(self, a, b):
        if a.is_trivial or b.is_trivial:
            return
        statement = parse_statement(f"R0 = select {a}, {b} from R")
        compiled = compile_conditions(statement.body.conditions, SCHEMA)
        assert compiled == [a, b]
