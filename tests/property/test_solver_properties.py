"""Property tests for the layered satisfiability front-end.

The layered solver (intervals → memo cache → adaptive dispatch) must give
the *same verdict* as a fresh Fourier–Motzkin run and as the exact simplex
on every system — including the strict-inequality and equality-only
corners where interval bookkeeping is easiest to get wrong — and must not
change the result of any algebra operation.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.operators import natural_join
from repro.constraints import Conjunction, solver
from repro.constraints import elimination, simplex
from repro.constraints.atoms import Comparator, LinearConstraint, eq, ge, lt
from repro.constraints.terms import LinearExpression, var
from repro.model.relation import ConstraintRelation
from repro.model.schema import Schema, constraint
from repro.model.tuples import HTuple
from tests.conftest import conjunctions, linear_atoms

SETTINGS = settings(max_examples=120, deadline=None)

_small_rationals = st.builds(
    Fraction,
    st.integers(min_value=-6, max_value=6),
    st.integers(min_value=1, max_value=3),
)


@st.composite
def strict_heavy_atoms(draw):
    """Single-variable atoms biased towards strict comparators and shared
    bounds — the regime where strict-vs-non-strict merging matters."""
    variable = draw(st.sampled_from(["x", "y"]))
    bound = draw(_small_rationals)
    comparator = draw(
        st.sampled_from([Comparator.LT, Comparator.LE, Comparator.LT, Comparator.EQ])
    )
    sign = draw(st.sampled_from([1, -1]))
    expression = LinearExpression({variable: Fraction(sign)}, -bound * sign)
    return LinearConstraint(expression, comparator)


@st.composite
def equality_only_systems(draw):
    atoms = draw(
        st.lists(
            st.builds(
                eq,
                st.sampled_from([var("x"), var("y"), var("x") + var("y")]),
                _small_rationals,
            ),
            min_size=1,
            max_size=4,
        )
    )
    return tuple(atoms)


class TestLayeredAgreement:
    @SETTINGS
    @given(conjunctions())
    def test_agrees_with_fresh_fm_and_simplex(self, conjunction: Conjunction):
        layered = solver.is_satisfiable(conjunction.atoms)
        assert layered == elimination.is_satisfiable(conjunction.atoms)
        assert layered == simplex.is_satisfiable(conjunction.atoms)

    @SETTINGS
    @given(st.lists(strict_heavy_atoms(), min_size=0, max_size=6))
    def test_strict_inequality_corners(self, atoms):
        atoms = tuple(atoms)
        assert solver.is_satisfiable(atoms) == elimination.is_satisfiable(atoms)

    @SETTINGS
    @given(equality_only_systems())
    def test_equality_only_systems(self, atoms):
        assert solver.is_satisfiable(atoms) == elimination.is_satisfiable(atoms)

    @SETTINGS
    @given(conjunctions())
    def test_cached_verdict_is_stable(self, conjunction: Conjunction):
        first = solver.is_satisfiable(conjunction.atoms)
        second = solver.is_satisfiable(conjunction.atoms)  # likely a cache hit
        assert first == second

    @SETTINGS
    @given(st.lists(linear_atoms(), min_size=0, max_size=4))
    def test_interval_prune_is_sound(self, atoms):
        summary = solver.summarise(atoms)
        if summary.inconsistent:
            assert not elimination.is_satisfiable(atoms)
        elif summary.pure_box:
            assert elimination.is_satisfiable(atoms)

    @SETTINGS
    @given(conjunctions(), conjunctions())
    def test_join_prune_is_sound(self, left: Conjunction, right: Conjunction):
        if solver.summaries_disjoint(left.interval_summary(), right.interval_summary()):
            assert not elimination.is_satisfiable(left.atoms + right.atoms)


def _interval_relation(bounds: list[tuple[Fraction, Fraction]], attr: str):
    schema = Schema([constraint(attr)])
    tuples = [
        HTuple(schema, {}, Conjunction([ge(var(attr), lo), lt(var(attr), hi)]))
        for lo, hi in bounds
        if lo < hi
    ]
    return ConstraintRelation(schema, tuples)


class TestAlgebraInvariance:
    @SETTINGS
    @given(
        st.lists(st.tuples(_small_rationals, _small_rationals), min_size=0, max_size=6),
        st.lists(st.tuples(_small_rationals, _small_rationals), min_size=0, max_size=6),
    )
    def test_join_results_identical_with_fast_path_on_and_off(self, lb, rb):
        with solver.fast_path(True):
            on = natural_join(_interval_relation(lb, "x"), _interval_relation(rb, "x"))
        with solver.fast_path(False):
            off = natural_join(_interval_relation(lb, "x"), _interval_relation(rb, "x"))
        assert set(on) == set(off)

    @SETTINGS
    @given(conjunctions())
    def test_simplify_preserves_meaning(self, conjunction: Conjunction):
        simplified = conjunction.simplify()
        if conjunction.is_satisfiable():
            assert simplified.equivalent(conjunction)
        else:
            assert simplified == Conjunction.false()

    @SETTINGS
    @given(st.lists(strict_heavy_atoms(), min_size=1, max_size=5))
    def test_variable_bounds_matches_satisfiability(self, atoms):
        atoms = tuple(atoms)
        satisfiable = elimination.is_satisfiable(atoms)
        for variable in {v for a in atoms for v in a.variables}:
            try:
                lower, _, upper, _ = elimination.variable_bounds(atoms, variable)
            except ValueError:
                assert not satisfiable
            else:
                assert satisfiable
                if lower is not None and upper is not None:
                    assert lower <= upper
