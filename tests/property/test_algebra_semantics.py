"""Property-based tests: the semantic closure principle (section 2.5).

Each CQA operator is checked against its *point-set* definition from
section 2.4: for random heterogeneous relations and random points, the
operator's finite-representation output contains exactly the points the
infinite-semantics definition prescribes.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import difference, natural_join, project, rename, select, union
from repro.constraints import Conjunction, simplex
from repro.model import ConstraintRelation, DataType, HTuple, Schema, constraint, relational
from tests.conftest import rationals

SETTINGS = settings(max_examples=60, deadline=None)

# Schemas: id (string relational), v (rational relational), x, y (constraint).
SCHEMA = Schema(
    [
        relational("id"),
        relational("v", DataType.RATIONAL),
        constraint("x"),
        constraint("y"),
    ]
)

ids = st.sampled_from(["a", "b"])
small_rationals = st.integers(min_value=-3, max_value=3).map(Fraction)


@st.composite
def box_formulas(draw):
    """Small axis-aligned (possibly degenerate/empty) formulas."""
    atoms = []
    for var in ("x", "y"):
        if draw(st.booleans()):
            low = draw(small_rationals)
            high = draw(small_rationals)
            from repro.constraints import ge, le, var as v

            atoms.append(ge(v(var), low))
            atoms.append(le(v(var), high))
    return Conjunction(atoms)


@st.composite
def h_tuples(draw):
    values = {}
    if draw(st.booleans()):
        values["id"] = draw(ids)
    if draw(st.booleans()):
        values["v"] = draw(small_rationals)
    return HTuple(SCHEMA, values, draw(box_formulas()))


@st.composite
def relations(draw, max_tuples: int = 3):
    return ConstraintRelation(
        SCHEMA, draw(st.lists(h_tuples(), min_size=0, max_size=max_tuples))
    )


@st.composite
def sample_points(draw):
    return {
        "id": draw(ids),
        "v": draw(small_rationals),
        "x": draw(small_rationals),
        "y": draw(small_rationals),
    }


class TestSelectSemantics:
    @SETTINGS
    @given(relations(), sample_points(), small_rationals)
    def test_constraint_select(self, r, point, bound):
        from repro.constraints import le, var

        predicate = le(var("x"), bound)
        result = select(r, [predicate])
        expected = r.contains_point(point) and point["x"] <= bound
        assert result.contains_point(point) == expected

    @SETTINGS
    @given(relations(), sample_points(), small_rationals)
    def test_relational_rational_select(self, r, point, bound):
        from repro.constraints import ge, var

        result = select(r, [ge(var("v"), bound)])
        expected = r.contains_point(point) and point["v"] >= bound
        assert result.contains_point(point) == expected

    @SETTINGS
    @given(relations(), sample_points())
    def test_string_select(self, r, point):
        from repro.algebra import StringPredicate

        result = select(r, [StringPredicate("id", "a")])
        expected = r.contains_point(point) and point["id"] == "a"
        assert result.contains_point(point) == expected


class TestProjectSemantics:
    @SETTINGS
    @given(relations(max_tuples=2), sample_points())
    def test_exists_semantics(self, r, point):
        """t[X] ∈ π_X(R) ⇔ ∃ a tuple matching t[X] whose constraint
        formula admits the kept coordinates.

        Note the SQL-compatible treatment of dropped relational
        attributes: a NULL in a *dropped* attribute does not erase the row
        (upward compatibility — relational projections keep rows with
        NULLs in unprojected columns), so the oracle below only checks the
        kept attributes.
        """
        from repro.model.types import Null

        kept = ["id", "x"]
        result = project(r, kept)
        restricted = {"id": point["id"], "x": point["x"]}
        lhs = result.contains_point(restricted)
        rhs = False
        for t in r:
            id_value = t.values["id"]
            if isinstance(id_value, Null) or id_value != point["id"]:
                continue  # narrow semantics on the kept relational attribute
            pinned = t.formula.conjoin(Conjunction.point({"x": point["x"]}))
            if simplex.is_satisfiable(pinned.atoms):
                rhs = True
                break
        assert lhs == rhs


class TestJoinSemantics:
    @SETTINGS
    @given(relations(max_tuples=2), relations(max_tuples=2), sample_points())
    def test_join_is_pointwise_conjunction(self, r1, r2, point):
        """Same-schema natural join: E(t) ⇔ R₁(t) ∧ R₂(t) (intersection)."""
        joined = natural_join(r1, r2)
        assert joined.contains_point(point) == (
            r1.contains_point(point) and r2.contains_point(point)
        )


class TestSetSemantics:
    @SETTINGS
    @given(relations(max_tuples=2), relations(max_tuples=2), sample_points())
    def test_union(self, r1, r2, point):
        assert union(r1, r2).contains_point(point) == (
            r1.contains_point(point) or r2.contains_point(point)
        )

    @SETTINGS
    @given(relations(max_tuples=2), relations(max_tuples=2), sample_points())
    def test_difference(self, r1, r2, point):
        assert difference(r1, r2).contains_point(point) == (
            r1.contains_point(point) and not r2.contains_point(point)
        )

    @SETTINGS
    @given(relations(max_tuples=2), relations(max_tuples=2), relations(max_tuples=2))
    def test_union_difference_algebraic_identity(self, r1, r2, r3):
        """(R₁ ∪ R₂) − R₂ ⊆ R₁, as relations (checked semantically)."""
        lhs = difference(union(r1, r2), r2)
        # every group formula of lhs is entailed by r1's
        lhs_groups = lhs.groups()
        r1_groups = r1.groups()
        for key, formula in lhs_groups.items():
            assert key in r1_groups
            assert formula.entails(r1_groups[key])


class TestRenameSemantics:
    @SETTINGS
    @given(relations(max_tuples=2), sample_points())
    def test_rename_is_relabeling(self, r, point):
        renamed = rename(r, "x", "q")
        relabeled = {("q" if k == "x" else k): v for k, v in point.items()}
        assert renamed.contains_point(relabeled) == r.contains_point(point)

    @SETTINGS
    @given(relations(max_tuples=2))
    def test_rename_roundtrip_identity(self, r):
        assert rename(rename(r, "x", "q"), "q", "x") == r
