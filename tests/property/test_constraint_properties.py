"""Property-based tests for the constraint layer.

The two independent decision procedures (Fourier–Motzkin elimination and
exact simplex) must agree on satisfiability; projection must have exact
∃-semantics; negation and canonicalisation must respect point semantics.
"""

from fractions import Fraction

from hypothesis import given, settings

from repro.constraints import Conjunction, DNFFormula, LinearConstraint
from repro.constraints import elimination, simplex
from tests.conftest import conjunctions, linear_atoms, points, rationals

SETTINGS = settings(max_examples=120, deadline=None)


class TestSolverAgreement:
    @SETTINGS
    @given(conjunctions())
    def test_fm_and_simplex_agree(self, conj: Conjunction):
        fm = elimination.is_satisfiable(conj.atoms)
        sx = simplex.is_satisfiable(conj.atoms)
        assert fm == sx

    @SETTINGS
    @given(conjunctions())
    def test_simplex_witness_satisfies(self, conj: Conjunction):
        result = simplex.find_rational_solution(conj.atoms)
        if result.feasible:
            witness = dict(result.witness)
            for v in conj.variables:
                witness.setdefault(v, Fraction(0))
            assert conj.satisfied_by(witness)


class TestPointSemantics:
    @SETTINGS
    @given(conjunctions(), points())
    def test_satisfying_point_implies_satisfiable(self, conj, point):
        if conj.satisfied_by(point):
            assert conj.is_satisfiable()

    @SETTINGS
    @given(linear_atoms(), points())
    def test_negation_is_complement(self, atom: LinearConstraint, point):
        if atom.is_trivial:
            return
        satisfied = atom.satisfied_by(point)
        negated = any(d.satisfied_by(point) for d in atom.negate())
        assert satisfied != negated

    @SETTINGS
    @given(linear_atoms(), points(), rationals)
    def test_canonicalisation_invariant_under_scaling(self, atom, point, scale):
        if atom.is_trivial or scale <= 0:
            return
        scaled = LinearConstraint(atom.expression * scale, atom.comparator)
        assert scaled == atom
        assert scaled.satisfied_by(point) == atom.satisfied_by(point)

    @SETTINGS
    @given(linear_atoms(), points())
    def test_split_equality_preserves_semantics(self, atom, point):
        if atom.is_trivial:
            return
        split = atom.split_equality()
        assert atom.satisfied_by(point) == all(p.satisfied_by(point) for p in split)


class TestProjection:
    @SETTINGS
    @given(conjunctions(), points())
    def test_projection_exact_exists_semantics(self, conj: Conjunction, point):
        """p ⊨ π_x(C)  ⇔  C ∧ (x = p.x) is satisfiable — the defining
        property of geometric projection, checked with the independent
        simplex oracle."""
        keep = "x"
        projected = conj.project([keep])
        restricted = {keep: point[keep]}
        lhs = projected.satisfied_by(restricted)
        pinned = conj.conjoin(Conjunction.point(restricted))
        rhs = simplex.is_satisfiable(pinned.atoms)
        assert lhs == rhs

    @SETTINGS
    @given(conjunctions())
    def test_projection_preserves_satisfiability(self, conj: Conjunction):
        assert conj.project(["x"]).is_satisfiable() == conj.is_satisfiable()

    @SETTINGS
    @given(conjunctions(), points())
    def test_satisfying_point_projects_into_projection(self, conj, point):
        if conj.satisfied_by(point):
            assert conj.project(["x", "y"]).satisfied_by({"x": point["x"], "y": point["y"]})


class TestSimplification:
    @SETTINGS
    @given(conjunctions(), points())
    def test_simplify_preserves_point_semantics(self, conj, point):
        assert conj.simplify().satisfied_by(point) == conj.satisfied_by(point) or (
            not conj.is_satisfiable()
        )

    @SETTINGS
    @given(conjunctions())
    def test_simplify_equivalent(self, conj):
        assert conj.simplify().equivalent(conj)


class TestDNFProperties:
    @SETTINGS
    @given(conjunctions(max_atoms=2), conjunctions(max_atoms=2), points())
    def test_union_conjoin_semantics(self, a, b, point):
        fa, fb = DNFFormula([a]), DNFFormula([b])
        assert fa.union(fb).satisfied_by(point) == (
            a.satisfied_by(point) or b.satisfied_by(point)
        )
        assert fa.conjoin(fb).satisfied_by(point) == (
            a.satisfied_by(point) and b.satisfied_by(point)
        )

    @SETTINGS
    @given(conjunctions(max_atoms=2), points())
    def test_complement_point_semantics(self, conj, point):
        formula = DNFFormula([conj])
        assert formula.complement().satisfied_by(point) != formula.satisfied_by(point)

    @SETTINGS
    @given(conjunctions(max_atoms=2), conjunctions(max_atoms=2), points())
    def test_difference_point_semantics(self, a, b, point):
        fa, fb = DNFFormula([a]), DNFFormula([b])
        assert fa.difference(fb).satisfied_by(point) == (
            a.satisfied_by(point) and not b.satisfied_by(point)
        )
