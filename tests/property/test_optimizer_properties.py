"""Property-based test: optimization never changes query results.

Random plan trees (selects, projects, renames, joins, unions, differences
over two small base relations) are evaluated before and after the full
rewrite pipeline; results must be identical tuple sets with identical
schemas.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    Difference,
    EvaluationContext,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    StringPredicate,
    Union,
    evaluate,
    optimize,
)
from repro.algebra.optimizer import infer_schema
from repro.constraints import ge, le, parse_constraints, var
from repro.indexing import JointIndex
from repro.model import ConstraintRelation, Database, HTuple, Schema, constraint, relational

SETTINGS = settings(max_examples=40, deadline=None)


def _db() -> Database:
    r_schema = Schema([relational("id"), constraint("t")])
    s_schema = Schema([relational("id"), constraint("v")])
    r = ConstraintRelation(
        r_schema,
        [
            HTuple(r_schema, {"id": "a"}, parse_constraints("0 <= t, t <= 10")),
            HTuple(r_schema, {"id": "b"}, parse_constraints("5 <= t, t <= 20")),
            HTuple(r_schema, {}, parse_constraints("t = 7")),
        ],
    )
    s = ConstraintRelation(
        s_schema,
        [
            HTuple(s_schema, {"id": "a"}, parse_constraints("v = 1")),
            HTuple(s_schema, {"id": "c"}, parse_constraints("0 <= v, v <= 3")),
        ],
    )
    return Database({"R": r, "S": s})


DB = _db()
INDEXES = {"R": {frozenset({"t"}): JointIndex(DB["R"], ["t"], max_entries=4)}}

small = st.integers(min_value=-2, max_value=22).map(Fraction)


@st.composite
def plans(draw, depth: int = 3):
    """A random valid plan; schemas are tracked via infer_schema."""
    if depth == 0 or draw(st.booleans()) and depth < 3:
        return Scan(draw(st.sampled_from(["R", "S"])))
    kind = draw(
        st.sampled_from(["select", "project", "rename", "join", "union", "difference"])
    )
    if kind in ("join", "union", "difference"):
        left = draw(plans(depth=depth - 1))
        right = draw(plans(depth=depth - 1))
        if kind == "join":
            return Join(left, right)
        left_schema = infer_schema(left, DB)
        right_schema = infer_schema(right, DB)
        try:
            left_schema.union_compatible(right_schema)
        except Exception:
            return Join(left, right)  # fall back to the always-valid operator
        return (Union if kind == "union" else Difference)(left, right)
    child = draw(plans(depth=depth - 1))
    schema = infer_schema(child, DB)
    if kind == "project":
        names = list(schema.names)
        keep_mask = draw(
            st.lists(st.booleans(), min_size=len(names), max_size=len(names))
        )
        kept = [n for n, keep in zip(names, keep_mask) if keep] or [names[0]]
        return Project(child, kept)
    if kind == "rename":
        old = draw(st.sampled_from(list(schema.names)))
        # The obvious "{old}_rn" can collide when a renamed branch was
        # joined with its original; keep suffixing until the name is fresh.
        new = f"{old}_rn"
        while new in schema.names:
            new += "_rn"
        return Rename(child, old, new)
    # select
    rational_attrs = [
        a.name for a in schema if a.data_type.value == "rational"
    ]
    predicates = []
    if rational_attrs and draw(st.booleans()):
        attr = draw(st.sampled_from(rational_attrs))
        bound = draw(small)
        factory = draw(st.sampled_from([le, ge]))
        predicates.append(factory(var(attr), bound))
    string_attrs = [
        a.name for a in schema if a.is_relational and a.data_type.value == "string"
    ]
    if string_attrs and draw(st.booleans()):
        attr = draw(st.sampled_from(string_attrs))
        predicates.append(
            StringPredicate(attr, draw(st.sampled_from(["a", "b", "z"])))
        )
    if not predicates and rational_attrs:
        predicates.append(le(var(rational_attrs[0]), draw(small)))
    if not predicates:
        return child
    return Select(child, predicates)


class TestOptimizerPreservesSemantics:
    @SETTINGS
    @given(plans())
    def test_results_identical(self, plan):
        base = evaluate(plan, EvaluationContext(DB))
        optimized_plan = optimize(plan, DB)
        rewritten = evaluate(optimized_plan, EvaluationContext(DB))
        assert rewritten.schema == base.schema
        assert set(rewritten.tuples) == set(base.tuples)

    @SETTINGS
    @given(plans())
    def test_results_identical_with_indexes(self, plan):
        base = evaluate(plan, EvaluationContext(DB))
        optimized_plan = optimize(plan, DB, INDEXES)
        rewritten = evaluate(optimized_plan, EvaluationContext(DB, INDEXES))
        assert rewritten.schema == base.schema
        assert set(rewritten.tuples) == set(base.tuples)

    @SETTINGS
    @given(plans())
    def test_optimization_idempotent(self, plan):
        once = optimize(plan, DB)
        twice = optimize(once, DB)
        assert twice is once
