"""Property-based tests for convex geometry and conversions."""

from fractions import Fraction

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.spatial import ConvexPolygon, Point

SETTINGS = settings(max_examples=60, deadline=None)

small_coords = st.builds(
    Fraction,
    st.integers(min_value=-20, max_value=20),
    st.integers(min_value=1, max_value=4),
)


@st.composite
def points_strategy(draw):
    return Point(draw(small_coords), draw(small_coords))


@st.composite
def polygons(draw, min_points: int = 1, max_points: int = 7):
    pts = draw(st.lists(points_strategy(), min_size=min_points, max_size=max_points))
    return ConvexPolygon(pts)


class TestConversionRoundtrip:
    @SETTINGS
    @given(polygons())
    def test_vertex_roundtrip(self, poly):
        back = ConvexPolygon.from_conjunction(poly.to_conjunction())
        assert set(back.vertices) == set(poly.vertices)

    @SETTINGS
    @given(polygons(), points_strategy())
    def test_containment_matches_formula(self, poly, point):
        formula = poly.to_conjunction()
        geometric = poly.contains_point(point)
        symbolic = formula.satisfied_by({"x": point.x, "y": point.y})
        assert geometric == symbolic

    @SETTINGS
    @given(polygons())
    def test_area_preserved(self, poly):
        back = ConvexPolygon.from_conjunction(poly.to_conjunction())
        assert back.area() == poly.area()


class TestMetricProperties:
    @SETTINGS
    @given(polygons(), polygons())
    def test_distance_symmetry(self, a, b):
        assert a.distance(b) == b.distance(a)

    @SETTINGS
    @given(polygons(), polygons())
    def test_distance_zero_iff_intersects(self, a, b):
        if a.intersects(b):
            assert a.distance(b) == 0.0
        else:
            assert a.distance(b) > 0.0

    @SETTINGS
    @given(polygons())
    def test_self_distance_zero(self, poly):
        assert poly.distance(poly) == 0.0

    @SETTINGS
    @given(polygons(), polygons(), polygons())
    def test_triangle_inequality_ish(self, a, b, c):
        """Set distance satisfies d(a,c) <= d(a,b) + diam(b) + d(b,c);
        we check the weaker monotone fact that going through b cannot give
        a *negative* slack beyond b's diameter."""
        diameter = max(
            (u.distance_to(v) for u in b.vertices for v in b.vertices), default=0.0
        )
        assert a.distance(c) <= a.distance(b) + diameter + b.distance(c) + 1e-9

    @SETTINGS
    @given(polygons())
    def test_vertices_on_boundary_contained(self, poly):
        for vertex in poly.vertices:
            assert poly.contains_point(vertex)

    @SETTINGS
    @given(polygons(), points_strategy())
    def test_bounding_box_contains_polygon_points(self, poly, point):
        if poly.contains_point(point):
            box = poly.bounding_box()
            assert box.min_x <= point.x <= box.max_x
            assert box.min_y <= point.y <= box.max_y


class TestRegionTriangulation:
    @SETTINGS
    @given(st.integers(min_value=3, max_value=10), st.integers(min_value=0, max_value=2**31 - 1))
    def test_star_polygon_triangulation_preserves_area(self, spikes, seed):
        """Random star-shaped (hence simple) polygons triangulate into
        parts whose areas sum exactly to the outline's area."""
        import math
        import random

        from repro.spatial import RegionFeature

        rng = random.Random(seed)
        outline = []
        count = 2 * spikes
        for i in range(count):
            angle = 2 * math.pi * i / count
            radius = rng.randint(5, 20) if i % 2 == 0 else rng.randint(1, 4)
            outline.append(
                Point(
                    Fraction(round(radius * math.cos(angle) * 100), 100),
                    Fraction(round(radius * math.sin(angle) * 100), 100),
                )
            )
        try:
            region = RegionFeature("star", outline)
        except GeometryError:
            assume(False)  # degenerate sample (repeated rounded points)
            return
        parts = region.triangulate()
        assert sum((p.area() for p in parts), Fraction(0)) == region.area()
