"""Property-based round-trip tests for the .cdb format."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    NULL,
    ConstraintRelation,
    Database,
    DataType,
    HTuple,
    Schema,
    constraint,
    relational,
)
from repro.storage import dumps, loads
from tests.conftest import conjunctions

SETTINGS = settings(max_examples=40, deadline=None)

SCHEMA = Schema(
    [
        relational("name"),
        relational("score", DataType.RATIONAL),
        constraint("x"),
        constraint("y"),
        constraint("z"),
    ]
)

#: Strings including quotes, backslashes, unicode and spaces.
tricky_strings = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_characters="\n\r", categories=("L", "N", "P", "S", "Z")
    ),
    min_size=0,
    max_size=12,
)

values = st.one_of(
    st.just(NULL),
    tricky_strings,
)
scores = st.one_of(
    st.just(NULL),
    st.builds(Fraction, st.integers(-1000, 1000), st.integers(1, 97)),
)


@st.composite
def h_tuples(draw):
    vals = {}
    if draw(st.booleans()):
        vals["name"] = draw(tricky_strings)
    if draw(st.booleans()):
        vals["score"] = draw(scores)
    return HTuple(SCHEMA, vals, draw(conjunctions(max_atoms=3)))


@st.composite
def databases(draw):
    tuples = draw(st.lists(h_tuples(), max_size=5))
    return Database({"R": ConstraintRelation(SCHEMA, tuples, "R")})


class TestRoundTrip:
    @SETTINGS
    @given(databases())
    def test_dumps_loads_identity(self, db):
        restored = loads(dumps(db))
        assert restored.names() == db.names()
        original = db["R"]
        loaded = restored["R"]
        assert loaded.schema == original.schema
        assert set(loaded.tuples) == set(original.tuples)

    @SETTINGS
    @given(databases())
    def test_double_roundtrip_stable(self, db):
        once = dumps(loads(dumps(db)))
        twice = dumps(loads(once))
        assert once == twice
