"""Property tests: the columnar float filter is a sound over-approximation.

The columnar fast path (docs/COLUMNAR.md) may only ever *keep* a tuple the
exact row path would keep — it must never drop one.  That soundness rests
on three layered facts, each tested here against the exact rational layer:

1. directed rounding — ``float_down``/``float_up`` bracket every rational;
2. the per-conjunction float interval summary *contains* the exact
   rational interval summary (widened bounds, strictness dropped);
3. the vectorized candidate mask keeps every tuple the exact row-mode
   selection keeps.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.operators import filter_tuples
from repro.constraints import parse_constraints, solver
from repro.exec import columnar
from repro.rational import float_down, float_up
from repro.workloads import build_constraint_relation, generate_data

SETTINGS = settings(max_examples=100, deadline=None)

rationals = st.fractions(
    min_value=Fraction(-10**12), max_value=Fraction(10**12), max_denominator=10**9
)


class TestDirectedRounding:
    @SETTINGS
    @given(value=rationals)
    def test_down_below_up_above(self, value):
        lo, hi = float_down(value), float_up(value)
        assert Fraction(lo) <= value <= Fraction(hi)

    @SETTINGS
    @given(value=rationals)
    def test_rounding_is_tight(self, value):
        # The widened bound is never further than one ulp from the
        # round-to-nearest conversion.
        import math

        lo, hi = float_down(value), float_up(value)
        nearest = float(value)
        assert lo in (nearest, math.nextafter(nearest, -math.inf))
        assert hi in (nearest, math.nextafter(nearest, math.inf))

    @SETTINGS
    @given(value=rationals)
    def test_exact_floats_round_trip(self, value):
        f = float(value)
        if Fraction(f) == value:  # exactly representable
            assert float_down(value) == float_up(value) == f

    def test_overflow_saturates(self):
        huge = Fraction(10) ** 400
        assert float_up(huge) == float("inf")
        assert float_down(-huge) == float("-inf")
        # The finite side stays finite: a sound lower bound for a huge
        # positive rational is the largest float, not +inf.
        assert float_down(huge) > 0 and float_down(huge) < float("inf")
        assert float_up(-huge) < 0 and float_up(-huge) > float("-inf")


def _constraint_text(lo_x, hi_x, lo_y, hi_y):
    return f"x >= {lo_x}, x <= {hi_x}, y >= {lo_y}, y <= {hi_y}"


class TestFloatSummaryContainsExact:
    @SETTINGS
    @given(
        lo=st.fractions(min_value=Fraction(-1000), max_value=Fraction(1000), max_denominator=997),
        width=st.fractions(min_value=Fraction(0), max_value=Fraction(500), max_denominator=991),
    )
    def test_interval_widens(self, lo, width):
        atoms = parse_constraints(f"x >= {lo}, x <= {lo + width}")
        summary = solver.summarise(atoms)
        f_lo, f_hi = solver.float_interval(summary.bounds["x"])
        exact_lo = summary.bounds["x"][0]
        exact_hi = summary.bounds["x"][2]
        assert Fraction(f_lo) <= exact_lo
        assert Fraction(f_hi) >= exact_hi

    @SETTINGS
    @given(bound=rationals)
    def test_strict_bounds_are_closed(self, bound):
        # x < b widens to the closed float interval (-inf, float_up(b)]:
        # strictness is dropped, which only ever keeps more candidates.
        atoms = parse_constraints(f"x < {bound}")
        summary = solver.summarise(atoms)
        _, f_hi = solver.float_interval(summary.bounds["x"])
        assert Fraction(f_hi) >= bound


class TestMaskNeverDropsSurvivors:
    @SETTINGS
    @given(
        seed=st.integers(0, 10_000),
        size=st.integers(columnar.MIN_BATCH, 60),
        lo=st.integers(0, 500),
        width=st.integers(0, 500),
    )
    def test_mask_keeps_every_row_survivor(self, seed, size, lo, width):
        relation = build_constraint_relation(generate_data(size, seed))
        predicates = parse_constraints(_constraint_text(lo, lo + width, lo, lo + width))
        tuples = list(relation.tuples)
        plan = columnar.selection_plan(predicates, relation.schema)
        assert plan is not None  # box predicates always produce bounds
        block = columnar.block_for(tuples, plan.variables)
        mask = columnar.candidate_mask(block, plan)
        survivors = set(filter_tuples(tuples, predicates, columnar_on=False))
        for i, t in enumerate(tuples):
            if t in survivors:
                assert mask[i], f"mask dropped surviving tuple {i}"

    @SETTINGS
    @given(
        seed=st.integers(0, 10_000),
        lo=st.integers(0, 500),
        width=st.integers(0, 500),
    )
    def test_columnar_filter_equals_row_filter(self, seed, lo, width):
        relation = build_constraint_relation(generate_data(40, seed))
        predicates = parse_constraints(_constraint_text(lo, lo + width, lo, lo + width))
        tuples = list(relation.tuples)
        row = filter_tuples(tuples, predicates, columnar_on=False)
        col = filter_tuples(tuples, predicates, columnar_on=True)
        assert row == col

    def test_inconsistent_static_atoms_empty_mask(self):
        relation = build_constraint_relation(generate_data(30, 1))
        predicates = parse_constraints("x >= 10, x <= 5")
        plan = columnar.selection_plan(predicates, relation.schema)
        assert plan is not None and plan.empty
        block = columnar.block_for(list(relation.tuples), plan.variables)
        assert not columnar.candidate_mask(block, plan).any()
        assert filter_tuples(list(relation.tuples), predicates, columnar_on=True) == []
