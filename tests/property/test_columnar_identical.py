"""Property tests: columnar execution is bit-identical to row execution.

The columnar fast path's contract (docs/COLUMNAR.md) mirrors the parallel
engine's: for every workload, every operator, and every worker count, the
vectorized filter-then-refine path returns *the same relation* as the row
path — same tuples in the same order, same truncation point in partial
mode, and the same governed-failure taxonomy.  These tests drive that
contract over random rectangle workloads at ``workers ∈ {1, 2, 4}``.
"""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import SeqScan, evaluate
from repro.algebra.operators import select
from repro.algebra.plan import EvaluationContext
from repro.constraints import parse_constraints
from repro.errors import ResourceExhausted
from repro.exec import ExecutionConfig, ExecutionEngine, columnar_mode
from repro.governor import Budget
from repro.model.database import Database
from repro.obs import MetricsRegistry
from repro.query import QuerySession
from repro.spatial.buffer_join import buffer_join
from repro.spatial.features import Feature, FeatureSet
from repro.spatial.geometry import Point
from repro.spatial.k_nearest import k_nearest
from repro.spatial.polygon import ConvexPolygon
from repro.storage.heapfile import HeapFile
from repro.workloads import build_constraint_relation, generate_data

WORKER_COUNTS = (2, 4)

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def engines():
    made = {
        workers: ExecutionEngine(
            ExecutionConfig(workers=workers, mode="thread", min_parallel_items=1)
        )
        for workers in WORKER_COUNTS
    }
    yield made
    for engine in made.values():
        engine.close()


def _relations_identical(a, b):
    assert list(a.tuples) == list(b.tuples)
    assert a.truncated == b.truncated
    assert a.schema == b.schema


def _rect_features(count: int, seed: int) -> FeatureSet:
    import random

    rng = random.Random(seed)
    features = []
    for i in range(count):
        x = Fraction(rng.randint(0, 900), rng.randint(1, 4))
        y = Fraction(rng.randint(0, 900), rng.randint(1, 4))
        w = Fraction(rng.randint(1, 40), 1)
        h = Fraction(rng.randint(1, 40), 1)
        poly = ConvexPolygon(
            [Point(x, y), Point(x + w, y), Point(x + w, y + h), Point(x, y + h)]
        )
        features.append(Feature(f"f{i:03d}", [poly]))
    return FeatureSet(features)


def _multipart_features(count: int, seed: int) -> FeatureSet:
    """Features with enough convex parts that the part-pair matrix crosses
    the columnar batch threshold inside ``Feature.distance``."""
    import random

    rng = random.Random(seed)
    features = []
    for i in range(count):
        parts = []
        for _ in range(rng.randint(4, 6)):
            x = Fraction(rng.randint(0, 400), rng.randint(1, 3))
            y = Fraction(rng.randint(0, 400), rng.randint(1, 3))
            w = Fraction(rng.randint(1, 25))
            h = Fraction(rng.randint(1, 25))
            parts.append(
                ConvexPolygon(
                    [Point(x, y), Point(x + w, y), Point(x + w, y + h), Point(x, y + h)]
                )
            )
        features.append(Feature(f"m{i:03d}", parts))
    return FeatureSet(features)


class TestSelectIdentical:
    @SETTINGS
    @given(
        seed=st.integers(0, 10_000),
        size=st.integers(20, 60),
        lo=st.integers(0, 400),
        width=st.integers(50, 600),
    )
    def test_row_vs_columnar_across_workers(self, engines, seed, size, lo, width):
        relation = build_constraint_relation(generate_data(size, seed))
        predicates = parse_constraints(
            f"x >= {lo}, x <= {lo + width}, y >= {lo}, y <= {lo + width}"
        )
        row = select(relation, predicates)
        with columnar_mode():
            col = select(relation, predicates)
        _relations_identical(row, col)
        for workers in WORKER_COUNTS:
            with engines[workers].activate(), columnar_mode():
                col_parallel = select(relation, predicates)
            _relations_identical(row, col_parallel)

    @SETTINGS
    @given(seed=st.integers(0, 10_000), cap=st.integers(1, 30))
    def test_partial_truncation_point_identical(self, engines, seed, cap):
        relation = build_constraint_relation(generate_data(40, seed))
        predicates = parse_constraints("x >= 0, x <= 900, y >= 0, y <= 900")

        def run(engine, columnar_on):
            budget = Budget(output_tuples=cap, on_exhausted="partial")
            with columnar_mode(columnar_on):
                if engine is None:
                    with budget.activate():
                        return select(relation, predicates), budget
                with engine.activate(), budget.activate():
                    return select(relation, predicates), budget

        row, row_budget = run(None, False)
        for engine in (None, *(engines[w] for w in WORKER_COUNTS)):
            col, col_budget = run(engine, True)
            _relations_identical(row, col)
            assert row_budget.truncated == col_budget.truncated

    @SETTINGS
    @given(seed=st.integers(0, 10_000), steps=st.integers(1, 40))
    def test_exhaustion_taxonomy_identical(self, engines, seed, steps):
        relation = build_constraint_relation(generate_data(40, seed))
        # Multi-attribute conjuncts defeat the interval fast path (and the
        # columnar mask, which is built from the same single-variable
        # bounds), so the full solver runs and the step budget bites at
        # the same tuple in both modes.
        predicates = parse_constraints("x + y >= 100, x - y <= 800")

        def run(columnar_on):
            budget = Budget(solver_steps=steps)
            try:
                with columnar_mode(columnar_on), budget.activate():
                    return select(relation, predicates), None
            except ResourceExhausted as exc:
                return None, (type(exc).__name__, exc.resource)

        row_result, row_failure = run(False)
        col_result, col_failure = run(True)
        assert row_failure == col_failure
        if row_result is not None:
            _relations_identical(row_result, col_result)


class TestSeqScanIdentical:
    def _context(self):
        relation = build_constraint_relation(generate_data(80, seed=9)).with_name("boxes")
        database = Database({"boxes": relation})
        return EvaluationContext(
            database, registry=MetricsRegistry(), heapfiles={"boxes": HeapFile(relation)}
        )

    @SETTINGS
    @given(lo=st.integers(0, 400), width=st.integers(50, 600))
    def test_paged_columnar_scan_identical(self, lo, width):
        preds = tuple(
            parse_constraints(f"x >= {lo}, x <= {lo + width}, y >= {lo}, y <= {lo + width}")
        )
        row = evaluate(SeqScan("boxes", preds), self._context())
        with columnar_mode():
            col = evaluate(SeqScan("boxes", preds), self._context())
        _relations_identical(row, col)

    def test_page_io_charges_identical(self):
        preds = tuple(parse_constraints("x >= 100, x <= 600"))

        def run(columnar_on):
            context = self._context()
            budget = Budget(io_accesses=10**6)
            with columnar_mode(columnar_on), budget.activate():
                result = evaluate(SeqScan("boxes", preds), context)
            return result, budget.consumed["io_accesses"]

        row, row_io = run(False)
        col, col_io = run(True)
        _relations_identical(row, col)
        assert row_io == col_io

    def test_truncation_point_identical(self):
        preds = tuple(parse_constraints("x >= 0, x <= 900"))
        for cap in (1, 5, 17):
            def run(columnar_on):
                budget = Budget(output_tuples=cap, on_exhausted="partial")
                with columnar_mode(columnar_on), budget.activate():
                    return evaluate(SeqScan("boxes", preds), self._context())

            _relations_identical(run(False), run(True))


class TestSpatialIdentical:
    @SETTINGS
    @given(seed=st.integers(0, 10_000), distance=st.integers(5, 120))
    def test_buffer_join(self, engines, seed, distance):
        row_set = _rect_features(30, seed)
        row = buffer_join(row_set, row_set, distance)
        fresh = _rect_features(30, seed)
        with columnar_mode():
            col = buffer_join(fresh, fresh, distance)
        _relations_identical(row, col)
        for workers in WORKER_COUNTS:
            fresh = _rect_features(30, seed)
            with engines[workers].activate(), columnar_mode():
                col_parallel = buffer_join(fresh, fresh, distance)
            _relations_identical(row, col_parallel)

    @SETTINGS
    @given(seed=st.integers(0, 10_000), distance=st.integers(20, 200))
    def test_buffer_join_multipart(self, seed, distance):
        # Multi-part features drive the vectorized Feature.distance kernel
        # (part-pair matrix >= the batch threshold).
        row_set = _multipart_features(12, seed)
        row = buffer_join(row_set, row_set, distance)
        fresh = _multipart_features(12, seed)
        with columnar_mode():
            col = buffer_join(fresh, fresh, distance)
        _relations_identical(row, col)

    @SETTINGS
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 12))
    def test_k_nearest(self, engines, seed, k):
        row_set = _rect_features(30, seed)
        row = k_nearest(row_set, row_set["f000"], k)
        fresh = _rect_features(30, seed)
        with columnar_mode():
            col = k_nearest(fresh, fresh["f000"], k)
        _relations_identical(row, col)
        for workers in WORKER_COUNTS:
            fresh = _rect_features(30, seed)
            with engines[workers].activate(), columnar_mode():
                col_parallel = k_nearest(fresh, fresh["f000"], k)
            _relations_identical(row, col_parallel)

    @SETTINGS
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 8))
    def test_k_nearest_multipart(self, seed, k):
        row_set = _multipart_features(12, seed)
        row = k_nearest(row_set, row_set["m000"], k)
        fresh = _multipart_features(12, seed)
        with columnar_mode():
            col = k_nearest(fresh, fresh["m000"], k)
        _relations_identical(row, col)

    @SETTINGS
    @given(seed=st.integers(0, 10_000), cap=st.integers(1, 20))
    def test_buffer_join_truncation_identical(self, seed, cap):
        def run(columnar_on):
            features = _rect_features(30, seed)
            budget = Budget(output_tuples=cap, on_exhausted="partial")
            with columnar_mode(columnar_on), budget.activate():
                return buffer_join(features, features, 60), budget

        row, row_budget = run(False)
        col, col_budget = run(True)
        _relations_identical(row, col)
        assert row_budget.truncated == col_budget.truncated


class TestSessionIdentical:
    """Whole-session parity: exec_mode="columnar" vs the default row mode,
    serial and with workers."""

    SCRIPT = (
        "inside = select x >= 100, x <= 700, y >= 100, y <= 700 from boxes\n"
        "narrow = select x + y >= 300 from inside\n"
    )

    def _database(self):
        relation = build_constraint_relation(generate_data(80, seed=23)).with_name("boxes")
        return Database({"boxes": relation})

    def _run_session(self, exec_mode, workers=1):
        with QuerySession(
            self._database(), workers=workers, exec_mode=exec_mode
        ) as session:
            result = session.run_script(self.SCRIPT)
            bound = dict(session.results)
        return result, bound

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_script_results_match(self, workers):
        row_result, row_bound = self._run_session("row", workers=workers)
        col_result, col_bound = self._run_session("columnar", workers=workers)
        _relations_identical(row_result, col_result)
        assert row_bound.keys() == col_bound.keys()
        for name in row_bound:
            _relations_identical(row_bound[name], col_bound[name])

    def test_columnar_counters_surface_in_explain_analyze(self):
        with QuerySession(self._database(), exec_mode="columnar") as session:
            report = session.explain_analyze(
                "inside = select x >= 100, x <= 700 from boxes"
            )
        line = report.columnar_summary()
        assert line is not None and "columnar:" in line
        assert "hit_rate=" in line
        assert line in report.format()

    def test_row_session_reports_no_columnar_line(self):
        with QuerySession(self._database(), exec_mode="row") as session:
            report = session.explain_analyze(
                "inside = select x >= 100, x <= 700 from boxes"
            )
        assert report.columnar_summary() is None
