"""Property tests for the static analyzer's non-interference guarantee.

``analysis="warn"`` must be purely observational: for any statement the
language can express, a warn-mode session produces *exactly* the results
an off-mode session does — same tuples, same bindings, same errors.  The
strategies below generate random single- and multi-step scripts over the
Hurricane database, including vacuous and empty-result statements that
trip the analyzer's warning rules.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.query import QuerySession
from repro.workloads.hurricane import figure2_database

SETTINGS = settings(max_examples=60, deadline=None)

RELATIONS = st.sampled_from(["Hurricane", "Land", "Landownership"])
ATTRS = st.sampled_from(["t", "x", "y", "landId", "name", "nosuch"])
NUMBERS = st.integers(min_value=-12, max_value=12)
COMPARATORS = st.sampled_from(["<=", "<", ">=", ">", "="])


@st.composite
def conditions(draw) -> str:
    n = draw(st.integers(min_value=1, max_value=3))
    parts = []
    for _ in range(n):
        attr = draw(ATTRS)
        op = draw(COMPARATORS)
        value = draw(NUMBERS)
        parts.append(f"{attr} {op} {value}")
    return ", ".join(parts)


@st.composite
def statements(draw, target: str = "R0") -> str:
    kind = draw(st.sampled_from(["select", "project", "join", "union", "diff"]))
    if kind == "select":
        return f"{target} = select {draw(conditions())} from {draw(RELATIONS)}"
    if kind == "project":
        relation = draw(RELATIONS)
        attrs = {"Hurricane": "t", "Land": "landId", "Landownership": "name"}[relation]
        return f"{target} = project {relation} on {attrs}"
    if kind == "join":
        return f"{target} = join {draw(RELATIONS)} and {draw(RELATIONS)}"
    left = draw(RELATIONS)
    return f"{target} = {kind} {left} and {left}"


def run(script: str, analysis: str):
    """(outcome, payload): results of every binding, or the error text."""
    session = QuerySession(figure2_database(), analysis=analysis)
    try:
        session.run_script(script)
    except ReproError as exc:
        return ("error", f"{type(exc).__name__}: {exc}")
    return ("ok", {name: set(rel) for name, rel in session.results.items()})


class TestWarnModeNonInterference:
    @SETTINGS
    @given(statements())
    def test_single_statement_results_identical(self, statement: str) -> None:
        assert run(statement, "off") == run(statement, "warn")

    @SETTINGS
    @given(st.lists(st.integers(0, 0), min_size=1, max_size=1), statements("R0"))
    def test_vacuous_pipeline_results_identical(self, _seed, first: str) -> None:
        script = f"{first}\nR1 = select t >= 9, t <= 4 from Hurricane"
        assert run(script, "off") == run(script, "warn")

    def test_warn_mode_records_diagnostics_without_changing_result(self) -> None:
        script = "R0 = select t >= 9, t <= 4 from Hurricane"
        off = QuerySession(figure2_database())
        warn = QuerySession(figure2_database(), analysis="warn")
        assert set(off.run_script(script)) == set(warn.run_script(script))
        assert warn.last_diagnostics is not None
        assert [d.code for d in warn.last_diagnostics] == ["CQA301"]
        assert off.last_diagnostics is None
