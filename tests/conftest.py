"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import strategies as st

# Install the RT5xx runtime sanitizer BEFORE anything else imports repro:
# locks created at import time (solver caches) only get order-tracked if
# the sanitizer is already active when their module loads.
from repro.devtools.sanitize import active_sanitizer, install_from_env

install_from_env()

from repro.constraints import Comparator, Conjunction, LinearConstraint, LinearExpression  # noqa: E402


@pytest.fixture(autouse=True)
def _sanitizer_clean():
    """Under REPRO_SANITIZE=1, fail any test that ends with a lock-order
    violation recorded or a retired-but-pinned snapshot (RT501/RT502)."""
    yield
    sanitizer = active_sanitizer()
    if sanitizer is not None:
        sanitizer.assert_clean()


# -- hypothesis strategies ----------------------------------------------------

#: Small exact rationals: numerators/denominators kept small so Fourier-
#: Motzkin blow-up stays cheap and failures minimise nicely.
rationals = st.builds(
    Fraction,
    st.integers(min_value=-30, max_value=30),
    st.integers(min_value=1, max_value=6),
)

variable_names = st.sampled_from(["x", "y", "z"])


@st.composite
def linear_expressions(draw, max_terms: int = 3):
    terms = draw(
        st.dictionaries(variable_names, rationals, min_size=0, max_size=max_terms)
    )
    constant = draw(rationals)
    return LinearExpression(terms, constant)


@st.composite
def linear_atoms(draw):
    expr = draw(linear_expressions())
    comparator = draw(st.sampled_from(list(Comparator)))
    return LinearConstraint(expr, comparator)


@st.composite
def conjunctions(draw, max_atoms: int = 4):
    atoms = draw(st.lists(linear_atoms(), min_size=0, max_size=max_atoms))
    return Conjunction(atoms)


@st.composite
def points(draw):
    return {name: draw(rationals) for name in ["x", "y", "z"]}


# -- fixtures -------------------------------------------------------------------


@pytest.fixture(scope="session")
def hurricane_db():
    from repro.workloads.hurricane import figure2_database

    return figure2_database()


@pytest.fixture(scope="session")
def small_rect_workload():
    """A small seeded §5.4 workload shared across index tests."""
    from repro.workloads import rectangles

    data = rectangles.generate_data(300, seed=11)
    queries = rectangles.generate_queries(30, seed=12)
    return data, queries
