"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import strategies as st

from repro.constraints import Comparator, Conjunction, LinearConstraint, LinearExpression


# -- hypothesis strategies ----------------------------------------------------

#: Small exact rationals: numerators/denominators kept small so Fourier-
#: Motzkin blow-up stays cheap and failures minimise nicely.
rationals = st.builds(
    Fraction,
    st.integers(min_value=-30, max_value=30),
    st.integers(min_value=1, max_value=6),
)

variable_names = st.sampled_from(["x", "y", "z"])


@st.composite
def linear_expressions(draw, max_terms: int = 3):
    terms = draw(
        st.dictionaries(variable_names, rationals, min_size=0, max_size=max_terms)
    )
    constant = draw(rationals)
    return LinearExpression(terms, constant)


@st.composite
def linear_atoms(draw):
    expr = draw(linear_expressions())
    comparator = draw(st.sampled_from(list(Comparator)))
    return LinearConstraint(expr, comparator)


@st.composite
def conjunctions(draw, max_atoms: int = 4):
    atoms = draw(st.lists(linear_atoms(), min_size=0, max_size=max_atoms))
    return Conjunction(atoms)


@st.composite
def points(draw):
    return {name: draw(rationals) for name in ["x", "y", "z"]}


# -- fixtures -------------------------------------------------------------------


@pytest.fixture(scope="session")
def hurricane_db():
    from repro.workloads.hurricane import figure2_database

    return figure2_database()


@pytest.fixture(scope="session")
def small_rect_workload():
    """A small seeded §5.4 workload shared across index tests."""
    from repro.workloads import rectangles

    data = rectangles.generate_data(300, seed=11)
    queries = rectangles.generate_queries(30, seed=12)
    return data, queries
