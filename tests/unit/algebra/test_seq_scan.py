"""Unit tests for the SeqScan plan node (heapfile paging + filtering)."""

from repro.algebra import Scan, Select, SeqScan, evaluate
from repro.algebra.plan import EvaluationContext
from repro.constraints import parse_constraints
from repro.exec import ExecutionConfig, ExecutionEngine
from repro.governor import Budget
from repro.model.database import Database
from repro.obs import MetricsRegistry
from repro.storage.heapfile import HeapFile
from repro.workloads import build_constraint_relation, generate_data

PREDS = tuple(parse_constraints("x >= 100, x <= 600, y >= 100, y <= 600"))


def _context(with_heap: bool):
    relation = build_constraint_relation(generate_data(80, seed=9)).with_name("boxes")
    database = Database({"boxes": relation})
    heapfiles = {"boxes": HeapFile(relation)} if with_heap else None
    return EvaluationContext(database, registry=MetricsRegistry(), heapfiles=heapfiles)


class TestSeqScan:
    def test_equals_select_over_scan(self):
        context = _context(with_heap=False)
        via_seq = evaluate(SeqScan("boxes", PREDS), context)
        via_select = evaluate(Select(Scan("boxes"), list(PREDS)), context)
        assert list(via_seq.tuples) == list(via_select.tuples)

    def test_no_predicates_returns_everything(self):
        context = _context(with_heap=False)
        result = evaluate(SeqScan("boxes"), context)
        assert len(result) == len(context.database.get("boxes"))

    def test_heapfile_path_charges_page_io(self):
        context = _context(with_heap=True)
        heap = context.heapfiles["boxes"]
        budget = Budget(io_accesses=10 ** 6)
        with budget.activate():
            result = evaluate(SeqScan("boxes", PREDS), context)
        memory = evaluate(SeqScan("boxes", PREDS), _context(with_heap=False))
        assert list(result.tuples) == list(memory.tuples)
        assert budget.consumed["io_accesses"] >= heap.page_count

    def test_parallel_matches_serial(self):
        serial = evaluate(SeqScan("boxes", PREDS), _context(with_heap=True))
        with ExecutionEngine(
            ExecutionConfig(workers=2, mode="thread", min_parallel_items=1)
        ) as engine:
            with engine.activate():
                parallel = evaluate(SeqScan("boxes", PREDS), _context(with_heap=True))
        assert list(serial.tuples) == list(parallel.tuples)

    def test_describe(self):
        assert SeqScan("boxes").describe() == "SeqScan(boxes)"
        assert "SeqScan(boxes; " in SeqScan("boxes", PREDS).describe()
