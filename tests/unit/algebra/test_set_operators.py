"""Unit tests for ∪, − and ϱ."""

import pytest

from repro.algebra import difference, rename, union
from repro.constraints import parse_constraints
from repro.errors import SchemaError
from repro.model import ConstraintRelation, HTuple, Schema, constraint, relational


def schema() -> Schema:
    return Schema([relational("id"), constraint("t")])


def rel(*pairs) -> ConstraintRelation:
    s = schema()
    return ConstraintRelation(
        s,
        [
            HTuple(s, {"id": i} if i is not None else {}, parse_constraints(f) if f else ())
            for i, f in pairs
        ],
    )


class TestUnion:
    def test_combines_and_deduplicates(self):
        result = union(rel(("a", "t <= 1")), rel(("a", "t <= 1"), ("b", "")))
        assert len(result) == 2

    def test_schema_mismatch(self):
        other = Schema([relational("id"), constraint("q")])
        with pytest.raises(SchemaError):
            union(rel(), ConstraintRelation(other, []))

    def test_union_with_reordered_schema(self):
        reordered = Schema([constraint("t"), relational("id")])
        r2 = ConstraintRelation(reordered, [HTuple(reordered, {"id": "z"})])
        result = union(rel(("a", "")), r2)
        assert len(result) == 2
        assert result.schema == schema()  # left operand's order wins

    def test_semantics(self):
        result = union(rel(("a", "t <= 0")), rel(("a", "t >= 5")))
        assert result.contains_point({"id": "a", "t": -1})
        assert result.contains_point({"id": "a", "t": 6})
        assert not result.contains_point({"id": "a", "t": 3})


class TestDifference:
    def test_interval_subtraction(self):
        result = difference(rel(("a", "0 <= t, t <= 10")), rel(("a", "3 <= t, t <= 5")))
        assert result.contains_point({"id": "a", "t": 2})
        assert result.contains_point({"id": "a", "t": 6})
        assert not result.contains_point({"id": "a", "t": 4})
        assert not result.contains_point({"id": "a", "t": 3})
        assert not result.contains_point({"id": "a", "t": 5})

    def test_different_group_untouched(self):
        result = difference(rel(("a", "0 <= t, t <= 10")), rel(("b", "0 <= t, t <= 10")))
        assert result.contains_point({"id": "a", "t": 5})

    def test_total_subtraction(self):
        result = difference(rel(("a", "0 <= t, t <= 1")), rel(("a", "")))
        assert len(result) == 0

    def test_multiple_subtrahend_tuples(self):
        result = difference(
            rel(("a", "0 <= t, t <= 10")),
            rel(("a", "t <= 3"), ("a", "t >= 7")),
        )
        assert not result.contains_point({"id": "a", "t": 2})
        assert result.contains_point({"id": "a", "t": 5})
        assert not result.contains_point({"id": "a", "t": 8})

    def test_null_groups_match_as_markers(self):
        # SQL-style set semantics: two NULL-id tuples belong to the same
        # group, so the subtraction applies.
        result = difference(rel((None, "0 <= t, t <= 10")), rel((None, "")))
        assert len(result) == 0

    def test_relational_only_difference(self):
        s = Schema([relational("id")])
        r1 = ConstraintRelation(s, [HTuple(s, {"id": "a"}), HTuple(s, {"id": "b"})])
        r2 = ConstraintRelation(s, [HTuple(s, {"id": "a"})])
        result = difference(r1, r2)
        assert [t.value("id") for t in result] == ["b"]

    def test_schema_mismatch(self):
        other = Schema([relational("id"), constraint("q")])
        with pytest.raises(SchemaError):
            difference(rel(), ConstraintRelation(other, []))

    def test_difference_then_union_restores_subset(self):
        a = rel(("a", "0 <= t, t <= 10"))
        b = rel(("a", "3 <= t, t <= 5"))
        restored = union(difference(a, b), b)
        assert restored.equivalent(a)


class TestRename:
    def test_renames_constraint_attribute(self):
        result = rename(rel(("a", "t <= 1")), "t", "time")
        assert result.schema.names == ("id", "time")
        assert result.contains_point({"id": "a", "time": 0})

    def test_renames_relational_attribute(self):
        result = rename(rel(("a", "")), "id", "parcel")
        assert result.tuples[0].value("parcel") == "a"

    def test_rename_collision(self):
        with pytest.raises(SchemaError):
            rename(rel(), "t", "id")

    def test_rename_roundtrip(self):
        r = rel(("a", "t <= 1"))
        assert rename(rename(r, "t", "q"), "q", "t") == r
