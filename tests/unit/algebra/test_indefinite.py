"""Unit tests for possible/certain selection (§3.1 indefinite semantics)."""

import pytest

from repro.algebra import StringPredicate, select
from repro.algebra.indefinite import select_certain, select_possible
from repro.constraints import parse_constraints
from repro.model import ConstraintRelation, HTuple, Schema, constraint, relational


def schema() -> Schema:
    return Schema([relational("name"), constraint("age")])


def rel(*rows) -> ConstraintRelation:
    s = schema()
    return ConstraintRelation(
        s,
        [HTuple(s, {"name": n}, parse_constraints(f) if f else ()) for n, f in rows],
    )


@pytest.fixture
def people():
    # ann's age is known exactly; bob's is known to be in [30, 50];
    # cat's is entirely unknown (only that it is non-negative).
    return rel(
        ("ann", "age = 40"),
        ("bob", "30 <= age, age <= 50"),
        ("cat", "age >= 0"),
    )


class TestPossible:
    def test_possible_is_consistency(self, people):
        result = select_possible(people, parse_constraints("age >= 45"))
        assert {t.value("name") for t in result} == {"bob", "cat"}

    def test_possible_narrows_candidates(self, people):
        result = select_possible(people, parse_constraints("age >= 45"))
        bob = next(t for t in result if t.value("name") == "bob")
        assert not bob.formula.satisfied_by({"age": 40})
        assert bob.formula.satisfied_by({"age": 47})

    def test_possible_equals_ordinary_select(self, people):
        """Syntactically, possible selection *is* CQA selection — the two
        semantics diverge only in reading, exactly as §3.1 says."""
        condition = parse_constraints("age >= 45")
        assert select_possible(people, condition).equivalent(select(people, condition))


class TestCertain:
    def test_certain_is_entailment(self, people):
        result = select_certain(people, parse_constraints("age >= 35"))
        assert {t.value("name") for t in result} == {"ann"}

    def test_certain_keeps_original_formula(self, people):
        result = select_certain(people, parse_constraints("age >= 20"))
        bob = next(t for t in result if t.value("name") == "bob")
        assert bob.formula.satisfied_by({"age": 30})
        assert bob.formula.satisfied_by({"age": 50})

    def test_certain_subset_of_possible(self, people):
        for condition in ("age >= 35", "age <= 45", "age = 40"):
            predicates = parse_constraints(condition)
            certain = {t.value("name") for t in select_certain(people, predicates)}
            possible = {t.value("name") for t in select_possible(people, predicates)}
            assert certain <= possible, condition

    def test_definite_tuples_coincide(self):
        definite = rel(("ann", "age = 40"), ("bob", "age = 25"))
        predicates = parse_constraints("age >= 30")
        certain = select_certain(definite, predicates)
        possible = select_possible(definite, predicates)
        assert certain.equivalent(possible)
        assert {t.value("name") for t in certain} == {"ann"}


class TestSharedSemantics:
    def test_string_predicates_apply_in_both(self, people):
        predicates = [StringPredicate("name", "bob")] + parse_constraints("age >= 0")
        assert {t.value("name") for t in select_possible(people, predicates)} == {"bob"}
        assert {t.value("name") for t in select_certain(people, predicates)} == {"bob"}

    def test_unsatisfiable_condition(self, people):
        predicates = parse_constraints("age < 0, age > 0")
        assert len(select_possible(people, predicates)) == 0
        assert len(select_certain(people, predicates)) == 0

    def test_tautological_condition_keeps_everyone(self, people):
        predicates = parse_constraints("age >= 0")
        assert len(select_certain(people, predicates)) == 3
