"""Unit tests for π (project) and ⋈ (natural join)."""

import pytest

from repro.algebra import cross_product, intersection, natural_join, project
from repro.constraints import parse_constraints
from repro.errors import AlgebraError
from repro.model import (
    ConstraintRelation,
    DataType,
    HTuple,
    Schema,
    constraint,
    relational,
)


class TestProject:
    def setup_method(self):
        self.schema = Schema([relational("id"), constraint("x"), constraint("y")])
        self.rel = ConstraintRelation(
            self.schema,
            [
                HTuple(
                    self.schema, {"id": "a"}, parse_constraints("x = y, 0 <= y, y <= 2")
                )
            ],
        )

    def test_projection_eliminates_variables(self):
        result = project(self.rel, ["id", "x"])
        assert result.schema.names == ("id", "x")
        (t,) = result.tuples
        assert t.formula.satisfied_by({"x": 2})
        assert not t.formula.satisfied_by({"x": 3})

    def test_projection_merges_duplicates(self):
        rel = ConstraintRelation(
            self.schema,
            [
                HTuple(self.schema, {"id": "a"}, parse_constraints("0 <= x, x <= 1, y = 1")),
                HTuple(self.schema, {"id": "a"}, parse_constraints("0 <= x, x <= 1, y = 2")),
            ],
        )
        result = project(rel, ["id", "x"])
        assert len(result) == 1  # identical after eliminating y

    def test_projection_order(self):
        assert project(self.rel, ["y", "id"]).schema.names == ("y", "id")

    def test_projection_to_relational_only(self):
        result = project(self.rel, ["id"])
        assert len(result) == 1
        assert result.tuples[0].formula.is_true


class TestNaturalJoin:
    def test_shared_constraint_attribute(self):
        s1 = Schema([constraint("t"), constraint("x")])
        s2 = Schema([constraint("t"), constraint("y")])
        r1 = ConstraintRelation(s1, [HTuple(s1, {}, parse_constraints("0 <= t, t <= 5, x = t"))])
        r2 = ConstraintRelation(s2, [HTuple(s2, {}, parse_constraints("3 <= t, t <= 9, y = 1"))])
        joined = natural_join(r1, r2)
        assert joined.schema.names == ("t", "x", "y")
        (t,) = joined.tuples
        assert t.formula.satisfied_by({"t": 4, "x": 4, "y": 1})
        assert not t.formula.satisfied_by({"t": 2, "x": 2, "y": 1})

    def test_unsatisfiable_combination_dropped(self):
        s1 = Schema([constraint("t")])
        s2 = Schema([constraint("t")])
        r1 = ConstraintRelation(s1, [HTuple(s1, {}, parse_constraints("t <= 1"))])
        r2 = ConstraintRelation(s2, [HTuple(s2, {}, parse_constraints("t >= 2"))])
        assert len(natural_join(r1, r2)) == 0

    def test_shared_relational_attribute(self):
        s1 = Schema([relational("id"), constraint("x")])
        s2 = Schema([relational("id"), constraint("y")])
        r1 = ConstraintRelation(
            s1,
            [
                HTuple(s1, {"id": "a"}, parse_constraints("x = 1")),
                HTuple(s1, {"id": "b"}, parse_constraints("x = 2")),
            ],
        )
        r2 = ConstraintRelation(s2, [HTuple(s2, {"id": "a"}, parse_constraints("y = 9"))])
        joined = natural_join(r1, r2)
        assert len(joined) == 1
        assert joined.tuples[0].value("id") == "a"

    def test_null_never_joins(self):
        s1 = Schema([relational("id"), constraint("x")])
        s2 = Schema([relational("id"), constraint("y")])
        r1 = ConstraintRelation(s1, [HTuple(s1, {}, parse_constraints("x = 1"))])
        r2 = ConstraintRelation(s2, [HTuple(s2, {}, parse_constraints("y = 1"))])
        assert len(natural_join(r1, r2)) == 0

    def test_mixed_kind_shared_attribute(self):
        # v is relational on one side, constraint on the other: the join
        # substitutes the concrete value into the constraint formula and
        # the output attribute is relational.
        s1 = Schema([relational("v", DataType.RATIONAL)])
        s2 = Schema([constraint("v"), constraint("y")])
        r1 = ConstraintRelation(s1, [HTuple(s1, {"v": 3})])
        r2 = ConstraintRelation(
            s2, [HTuple(s2, {}, parse_constraints("0 <= v, v <= 5, y = v"))]
        )
        joined = natural_join(r1, r2)
        assert joined.schema["v"].is_relational
        (t,) = joined.tuples
        assert t.value("v") == 3
        assert t.formula.satisfied_by({"y": 3})
        assert not t.formula.satisfied_by({"y": 4})

    def test_mixed_kind_out_of_range_dropped(self):
        s1 = Schema([relational("v", DataType.RATIONAL)])
        s2 = Schema([constraint("v")])
        r1 = ConstraintRelation(s1, [HTuple(s1, {"v": 9})])
        r2 = ConstraintRelation(s2, [HTuple(s2, {}, parse_constraints("0 <= v, v <= 5"))])
        assert len(natural_join(r1, r2)) == 0

    def test_cross_product_when_disjoint(self):
        s1 = Schema([constraint("x")])
        s2 = Schema([constraint("y")])
        r1 = ConstraintRelation(s1, [HTuple(s1, {}, parse_constraints("x = 1")),
                                     HTuple(s1, {}, parse_constraints("x = 2"))])
        r2 = ConstraintRelation(s2, [HTuple(s2, {}, parse_constraints("y = 1")),
                                     HTuple(s2, {}, parse_constraints("y = 2"))])
        assert len(natural_join(r1, r2)) == 4


class TestSpecialCases:
    def test_intersection_same_schema(self):
        s = Schema([constraint("x")])
        r1 = ConstraintRelation(s, [HTuple(s, {}, parse_constraints("0 <= x, x <= 5"))])
        r2 = ConstraintRelation(s, [HTuple(s, {}, parse_constraints("3 <= x, x <= 9"))])
        result = intersection(r1, r2)
        assert result.contains_point({"x": 4})
        assert not result.contains_point({"x": 1})
        assert not result.contains_point({"x": 8})

    def test_cross_product_requires_disjoint(self):
        s = Schema([constraint("x")])
        r = ConstraintRelation(s, [])
        with pytest.raises(AlgebraError):
            cross_product(r, r)

    def test_cross_product_disjoint(self):
        s1 = Schema([constraint("x")])
        s2 = Schema([constraint("y")])
        r1 = ConstraintRelation(s1, [HTuple(s1, {}, parse_constraints("x = 1"))])
        r2 = ConstraintRelation(s2, [HTuple(s2, {}, parse_constraints("y = 2"))])
        result = cross_product(r1, r2)
        assert result.contains_point({"x": 1, "y": 2})
