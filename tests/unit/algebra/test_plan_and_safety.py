"""Unit tests for plan nodes, evaluation metrics and the safety checker."""

import pytest

from repro.algebra import (
    Difference,
    EvaluationContext,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    Union,
    UnsafeDistance,
    check_safe,
    evaluate,
    is_safe,
)
from repro.constraints import parse_constraints
from repro.errors import SafetyError, SchemaError
from repro.model import ConstraintRelation, Database, HTuple, Schema, constraint, relational


@pytest.fixture
def db():
    s = Schema([relational("id"), constraint("t")])
    r = ConstraintRelation(
        s,
        [
            HTuple(s, {"id": "a"}, parse_constraints("0 <= t, t <= 10")),
            HTuple(s, {"id": "b"}, parse_constraints("5 <= t, t <= 20")),
        ],
    )
    return Database({"R": r, "S": r.with_name("S")})


class TestEvaluation:
    def test_scan(self, db):
        result = evaluate(Scan("R"), EvaluationContext(db))
        assert len(result) == 2

    def test_scan_missing_relation(self, db):
        with pytest.raises(SchemaError):
            evaluate(Scan("missing"), EvaluationContext(db))

    def test_nested_plan(self, db):
        plan = Project(Select(Scan("R"), parse_constraints("t >= 15")), ["id"])
        result = evaluate(plan, EvaluationContext(db))
        assert [t.value("id") for t in result] == ["b"]

    def test_join_union_difference_rename(self, db):
        ctx = EvaluationContext(db)
        assert len(evaluate(Join(Scan("R"), Scan("S")), ctx)) >= 2
        assert len(evaluate(Union(Scan("R"), Scan("S")), ctx)) == 2
        assert len(evaluate(Difference(Scan("R"), Scan("S")), ctx)) == 0
        renamed = evaluate(Rename(Scan("R"), "t", "q"), ctx)
        assert renamed.schema.names == ("id", "q")

    def test_metrics_accumulate(self, db):
        ctx = EvaluationContext(db)
        evaluate(Select(Scan("R"), parse_constraints("t >= 0")), ctx)
        assert ctx.metrics.operator_calls["scan"] == 1
        assert ctx.metrics.operator_calls["select"] == 1
        assert ctx.metrics.tuples_produced >= 2

    def test_with_children_rebuilds(self, db):
        plan = Select(Scan("R"), parse_constraints("t >= 15"))
        rebuilt = plan.with_children([Scan("S")])
        assert isinstance(rebuilt, Select)
        assert rebuilt.child.relation_name == "S"
        assert rebuilt.predicates == plan.predicates

    def test_pretty_renders_tree(self, db):
        plan = Project(Select(Scan("R"), parse_constraints("t >= 15")), ["id"])
        text = plan.pretty()
        assert "Project(id)" in text and "Scan(R)" in text


class TestSafety:
    def test_primitives_are_safe(self, db):
        plan = Project(Select(Scan("R"), parse_constraints("t >= 0")), ["id"])
        check_safe(plan)  # no raise
        assert is_safe(plan)

    def test_unsafe_distance_rejected_by_checker(self, db):
        plan = UnsafeDistance(Scan("R"), Scan("S"))
        with pytest.raises(SafetyError, match="closed form"):
            check_safe(plan)
        assert not is_safe(plan)

    def test_unsafe_node_nested_anywhere_is_detected(self, db):
        plan = Project(UnsafeDistance(Scan("R"), Scan("S")), ["id"])
        assert not is_safe(plan)

    def test_evaluate_refuses_unsafe_plan(self, db):
        with pytest.raises(SafetyError):
            evaluate(UnsafeDistance(Scan("R"), Scan("S")), EvaluationContext(db))

    def test_unsafe_node_evaluation_is_impossible_by_construction(self, db):
        # Even bypassing the top-level check, the node itself refuses.
        with pytest.raises(SafetyError, match="Buffer-Join"):
            UnsafeDistance(Scan("R"), Scan("S")).evaluate(EvaluationContext(db))

    def test_whole_feature_operators_are_safe(self):
        from repro.spatial import BufferJoinNode, KNearestNode

        plan = BufferJoinNode(Scan("A"), Scan("B"), 5)
        assert is_safe(plan)
        assert is_safe(KNearestNode(Scan("A"), "f1", 3))
