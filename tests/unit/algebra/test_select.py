"""Unit tests for the ς (select) operator."""

import pytest

from repro.algebra import StringPredicate, select
from repro.constraints import parse_constraints
from repro.errors import SchemaError
from repro.model import (
    ConstraintRelation,
    DataType,
    HTuple,
    Schema,
    constraint,
    relational,
)


def schema() -> Schema:
    return Schema(
        [relational("name"), relational("age", DataType.RATIONAL), constraint("t")]
    )


def rel(*tuples) -> ConstraintRelation:
    return ConstraintRelation(schema(), tuples)


def tup(name=None, age=None, formula=""):
    values = {}
    if name is not None:
        values["name"] = name
    if age is not None:
        values["age"] = age
    return HTuple(schema(), values, parse_constraints(formula) if formula else ())


class TestConstraintPredicates:
    def test_conjoins_onto_formula(self):
        r = rel(tup("a", 1, "0 <= t, t <= 10"))
        result = select(r, parse_constraints("t >= 5"))
        assert len(result) == 1
        assert result.tuples[0].formula.satisfied_by({"t": 7})
        assert not result.tuples[0].formula.satisfied_by({"t": 4})

    def test_drops_unsatisfiable(self):
        r = rel(tup("a", 1, "t <= 10"))
        assert len(select(r, parse_constraints("t >= 11"))) == 0

    def test_empty_predicate_list_is_identity(self):
        r = rel(tup("a", 1, "t <= 10"))
        assert select(r, []) == r


class TestRelationalRationalPredicates:
    def test_value_substitution(self):
        r = rel(tup("a", 30), tup("b", 40))
        result = select(r, parse_constraints("age >= 35"))
        assert [t.value("name") for t in result] == ["b"]

    def test_null_fails_narrow(self):
        r = rel(tup("a"), tup("b", 40))
        result = select(r, parse_constraints("age = 40"))
        assert [t.value("name") for t in result] == ["b"]

    def test_mixed_relational_and_constraint_expression(self):
        # age + t <= 45: substitutes age per tuple, constrains t.
        r = rel(tup("a", 40, "0 <= t, t <= 10"), tup("b", 45, "0 <= t, t <= 10"))
        result = select(r, parse_constraints("age + t <= 45"))
        by_name = {t.value("name"): t for t in result}
        assert by_name["a"].formula.satisfied_by({"t": 5})
        assert not by_name["a"].formula.satisfied_by({"t": 6})
        assert by_name["b"].formula.satisfied_by({"t": 0})
        assert not by_name["b"].formula.satisfied_by({"t": 1})


class TestStringPredicates:
    def test_equality(self):
        r = rel(tup("a", 1), tup("b", 2))
        result = select(r, [StringPredicate("name", "a")])
        assert [t.value("name") for t in result] == ["a"]

    def test_inequality(self):
        r = rel(tup("a", 1), tup("b", 2))
        result = select(r, [StringPredicate("name", "a", negated=True)])
        assert [t.value("name") for t in result] == ["b"]

    def test_null_matches_nothing_even_negated(self):
        r = rel(tup(None, 1))
        assert len(select(r, [StringPredicate("name", "a")])) == 0
        assert len(select(r, [StringPredicate("name", "a", negated=True)])) == 0

    def test_attribute_to_attribute(self):
        two_strings = Schema([relational("a"), relational("b")])
        r = ConstraintRelation(
            two_strings,
            [
                HTuple(two_strings, {"a": "x", "b": "x"}),
                HTuple(two_strings, {"a": "x", "b": "y"}),
            ],
        )
        result = select(r, [StringPredicate("a", "b", is_attribute=True)])
        assert len(result) == 1


class TestValidation:
    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            select(rel(), parse_constraints("zzz <= 1"))

    def test_string_attribute_in_linear_constraint(self):
        from repro.constraints import le, var

        with pytest.raises(SchemaError, match="string"):
            select(rel(), [le(var("name"), 1)])

    def test_string_predicate_on_rational_attribute(self):
        with pytest.raises(SchemaError):
            select(rel(), [StringPredicate("age", "x")])

    def test_conjunction_of_predicates_all_must_hold(self):
        r = rel(tup("a", 30, "0 <= t"), tup("a", 50, "0 <= t"))
        result = select(
            r, [StringPredicate("name", "a")] + parse_constraints("age <= 40, t <= 5")
        )
        assert len(result) == 1
        assert result.tuples[0].value("age") == 30
