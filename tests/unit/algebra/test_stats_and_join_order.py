"""Unit tests for statistics collection and join reordering."""

import pytest

from repro.algebra import EvaluationContext, Join, Project, Scan, Select, evaluate
from repro.algebra.optimizer import Optimizer
from repro.algebra.stats import (
    collect_statistics,
    estimate_join_size,
)
from repro.constraints import parse_constraints
from repro.model import (
    ConstraintRelation,
    Database,
    DataType,
    HTuple,
    Schema,
    constraint,
    relational,
)


def make_relation(name, schema, rows):
    return ConstraintRelation(schema, rows, name)


@pytest.fixture
def db():
    """A three-relation star: Big x Mid share `id`; Mid x Small share `t`."""
    big_schema = Schema([relational("id"), constraint("t")])
    mid_schema = Schema([relational("id"), relational("label")])
    small_schema = Schema([constraint("t"), constraint("v")])
    big = make_relation(
        "Big",
        big_schema,
        [
            HTuple(big_schema, {"id": f"k{i % 10}"}, parse_constraints(f"{i} <= t, t <= {i + 1}"))
            for i in range(60)
        ],
    )
    mid = make_relation(
        "Mid",
        mid_schema,
        [HTuple(mid_schema, {"id": f"k{i}", "label": f"L{i}"}) for i in range(10)],
    )
    small = make_relation(
        "Small",
        small_schema,
        [HTuple(small_schema, {}, parse_constraints("0 <= t, t <= 5, v = t"))],
    )
    return Database({"Big": big, "Mid": mid, "Small": small})


class TestCollectStatistics:
    def test_counts_and_distincts(self, db):
        stats = collect_statistics(db["Big"])
        assert stats.tuple_count == 60
        assert stats.attributes["id"].distinct == 10

    def test_constraint_attribute_interval(self, db):
        stats = collect_statistics(db["Big"])
        t = stats.attributes["t"]
        assert t.low == 0.0 and t.high == 60.0

    def test_nulls_counted(self):
        schema = Schema([relational("a")])
        r = ConstraintRelation(schema, [HTuple(schema, {}), HTuple(schema, {"a": "x"})])
        stats = collect_statistics(r)
        assert stats.attributes["a"].nulls == 1
        assert stats.attributes["a"].distinct == 1

    def test_rational_relational_interval(self):
        schema = Schema([relational("v", DataType.RATIONAL)])
        r = ConstraintRelation(schema, [HTuple(schema, {"v": 2}), HTuple(schema, {"v": 7})])
        stats = collect_statistics(r)
        assert (stats.attributes["v"].low, stats.attributes["v"].high) == (2.0, 7.0)


class TestEstimateJoinSize:
    def test_relational_shared_attribute(self, db):
        big, mid = collect_statistics(db["Big"]), collect_statistics(db["Mid"])
        estimate = estimate_join_size(
            big, mid, ("id",), db["Big"].schema, db["Mid"].schema
        )
        # 60 * 10 / max(10, 10) = 60: each Big row matches one Mid row.
        assert estimate == pytest.approx(60.0)

    def test_disjoint_intervals_shrink_estimate(self, db):
        big, small = collect_statistics(db["Big"]), collect_statistics(db["Small"])
        overlap_est = estimate_join_size(
            big, small, ("t",), db["Big"].schema, db["Small"].schema
        )
        assert overlap_est < big.tuple_count * small.tuple_count

    def test_no_shared_attributes_is_cross_product(self, db):
        mid, small = collect_statistics(db["Mid"]), collect_statistics(db["Small"])
        estimate = estimate_join_size(mid, small, (), db["Mid"].schema, db["Small"].schema)
        assert estimate == mid.tuple_count * small.tuple_count


class TestJoinReordering:
    def test_three_way_join_reordered_and_equivalent(self, db):
        # Written order starts with the most expensive pair (Big x Mid is
        # fine, but Big x Small via t-overlap is smaller); whatever the
        # greedy picks, the result must be identical, column order included.
        plan = Join(Join(Scan("Big"), Scan("Mid")), Scan("Small"))
        optimized = Optimizer(db).optimize(plan)
        base = evaluate(plan, EvaluationContext(db))
        rewritten = evaluate(optimized, EvaluationContext(db))
        assert base.schema == rewritten.schema
        assert set(base.tuples) == set(rewritten.tuples)

    def test_reordering_wraps_in_projection_when_order_changes(self, db):
        # Force a bad written order: cross product first.
        plan = Join(Join(Scan("Mid"), Scan("Small")), Scan("Big"))
        optimized = Optimizer(db).optimize(plan)
        assert isinstance(optimized, Project)  # order changed, schema restored
        base = evaluate(plan, EvaluationContext(db))
        rewritten = evaluate(optimized, EvaluationContext(db))
        assert base.schema == rewritten.schema
        assert set(base.tuples) == set(rewritten.tuples)

    def test_cross_product_deferred(self, db):
        plan = Join(Join(Scan("Mid"), Scan("Small")), Scan("Big"))
        optimized = Optimizer(db).optimize(plan)
        # The first join of the rebuilt chain must share an attribute.
        inner = optimized
        while isinstance(inner, (Project, Join)) and not (
            isinstance(inner, Join) and not isinstance(inner.left, Join)
        ):
            inner = inner.child if isinstance(inner, Project) else inner.left
        assert isinstance(inner, Join)
        left_schema = inner.left.evaluate(EvaluationContext(db)).schema
        right_schema = inner.right.evaluate(EvaluationContext(db)).schema
        assert left_schema.shared_names(right_schema)

    def test_two_way_join_untouched(self, db):
        plan = Join(Scan("Big"), Scan("Mid"))
        assert Optimizer(db).optimize(plan) is plan

    def test_reordering_disabled(self, db):
        plan = Join(Join(Scan("Mid"), Scan("Small")), Scan("Big"))
        assert Optimizer(db, reorder_joins=False).optimize(plan) is plan

    def test_select_scan_leaves_supported(self, db):
        plan = Join(
            Join(Scan("Mid"), Scan("Small")),
            Select(Scan("Big"), parse_constraints("t <= 30")),
        )
        optimized = Optimizer(db).optimize(plan)
        base = evaluate(plan, EvaluationContext(db))
        rewritten = evaluate(optimized, EvaluationContext(db))
        assert set(base.tuples) == set(rewritten.tuples)

    def test_opaque_leaf_bails_out(self, db):
        from repro.algebra import Union

        opaque = Union(Scan("Mid"), Scan("Mid"))
        plan = Join(Join(opaque, Scan("Small")), Scan("Big"))
        optimized = Optimizer(db).optimize(plan)
        base = evaluate(plan, EvaluationContext(db))
        rewritten = evaluate(optimized, EvaluationContext(db))
        assert set(base.tuples) == set(rewritten.tuples)

    def test_idempotent(self, db):
        plan = Join(Join(Scan("Mid"), Scan("Small")), Scan("Big"))
        once = Optimizer(db).optimize(plan)
        twice = Optimizer(db).optimize(once)
        assert twice is once
