"""Unit tests for the rule-based optimizer.

Every rewrite rule is checked both structurally (the expected plan shape)
and semantically (evaluation results unchanged).
"""

import pytest

from repro.algebra import (
    Difference,
    EvaluationContext,
    IndexScan,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    StringPredicate,
    Union,
    evaluate,
    optimize,
)
from repro.algebra.optimizer import predicate_attributes, rename_predicate
from repro.constraints import parse_constraints
from repro.model import ConstraintRelation, Database, HTuple, Schema, constraint, relational


@pytest.fixture
def db():
    left = Schema([relational("id"), constraint("t")])
    right = Schema([relational("id"), constraint("v")])
    r = ConstraintRelation(
        left,
        [
            HTuple(left, {"id": "a"}, parse_constraints("0 <= t, t <= 10")),
            HTuple(left, {"id": "b"}, parse_constraints("5 <= t, t <= 20")),
        ],
    )
    s = ConstraintRelation(
        right,
        [
            HTuple(right, {"id": "a"}, parse_constraints("v = 1")),
            HTuple(right, {"id": "c"}, parse_constraints("v = 2")),
        ],
    )
    return Database({"R": r, "S": s})


def assert_same_result(plan, optimized, db, indexes=None):
    base = evaluate(plan, EvaluationContext(db, indexes))
    rewritten = evaluate(optimized, EvaluationContext(db, indexes))
    assert set(base.tuples) == set(rewritten.tuples)


class TestPredicateHelpers:
    def test_predicate_attributes_linear(self):
        (p,) = parse_constraints("t + v <= 3")
        assert predicate_attributes(p) == {"t", "v"}

    def test_predicate_attributes_string(self):
        assert predicate_attributes(StringPredicate("id", "a")) == {"id"}
        assert predicate_attributes(StringPredicate("id", "other", is_attribute=True)) == {
            "id",
            "other",
        }

    def test_rename_linear_predicate(self):
        (p,) = parse_constraints("t <= 3")
        assert predicate_attributes(rename_predicate(p, "t", "q")) == {"q"}

    def test_rename_string_predicate(self):
        p = rename_predicate(StringPredicate("id", "a"), "id", "key")
        assert p.attribute == "key"


class TestRewrites:
    def test_merge_selects(self, db):
        plan = Select(Select(Scan("R"), parse_constraints("t >= 0")), parse_constraints("t <= 9"))
        optimized = optimize(plan, db)
        assert isinstance(optimized, Select)
        assert isinstance(optimized.child, Scan)
        assert len(optimized.predicates) == 2
        assert_same_result(plan, optimized, db)

    def test_select_through_project(self, db):
        plan = Select(Project(Scan("R"), ["t"]), parse_constraints("t <= 9"))
        optimized = optimize(plan, db)
        assert isinstance(optimized, Project)
        assert isinstance(optimized.child, Select)
        assert_same_result(plan, optimized, db)

    def test_select_through_rename(self, db):
        plan = Select(Rename(Scan("R"), "t", "q"), parse_constraints("q <= 9"))
        optimized = optimize(plan, db)
        assert isinstance(optimized, Rename)
        inner = optimized.child
        assert isinstance(inner, Select)
        assert predicate_attributes(inner.predicates[0]) == {"t"}
        assert_same_result(plan, optimized, db)

    def test_select_through_union(self, db):
        plan = Select(Union(Scan("R"), Scan("R")), parse_constraints("t <= 9"))
        optimized = optimize(plan, db)
        assert isinstance(optimized, Union)
        assert_same_result(plan, optimized, db)

    def test_select_through_difference(self, db):
        plan = Select(Difference(Scan("R"), Scan("R")), parse_constraints("t <= 9"))
        optimized = optimize(plan, db)
        assert isinstance(optimized, Difference)
        assert isinstance(optimized.left, Select)
        assert isinstance(optimized.right, Select)
        assert_same_result(plan, optimized, db)

    def test_select_split_across_join(self, db):
        plan = Select(
            Join(Scan("R"), Scan("S")), parse_constraints("t <= 9, v >= 1")
        )
        optimized = optimize(plan, db)
        assert isinstance(optimized, Join)
        assert isinstance(optimized.left, Select)
        assert isinstance(optimized.right, Select)
        assert_same_result(plan, optimized, db)

    def test_select_on_shared_attribute_pushes_to_both_sides(self, db):
        plan = Select(Join(Scan("R"), Scan("S")), [StringPredicate("id", "a")])
        optimized = optimize(plan, db)
        assert isinstance(optimized, Join)
        assert isinstance(optimized.left, Select)
        assert isinstance(optimized.right, Select)
        assert_same_result(plan, optimized, db)

    def test_cross_attribute_predicate_stays_above_join(self, db):
        plan = Select(Join(Scan("R"), Scan("S")), parse_constraints("t + v <= 3"))
        optimized = optimize(plan, db)
        assert isinstance(optimized, Select)
        assert isinstance(optimized.child, Join)
        assert_same_result(plan, optimized, db)

    def test_merge_projects(self, db):
        plan = Project(Project(Scan("R"), ["id", "t"]), ["id"])
        optimized = optimize(plan, db)
        assert isinstance(optimized, Project)
        assert isinstance(optimized.child, Scan)
        assert_same_result(plan, optimized, db)

    def test_fixpoint_on_deep_stack(self, db):
        plan = Select(
            Select(
                Project(Project(Scan("R"), ["id", "t"]), ["id", "t"]),
                parse_constraints("t >= 0"),
            ),
            parse_constraints("t <= 9"),
        )
        optimized = optimize(plan, db)
        assert_same_result(plan, optimized, db)

    def test_no_rules_applicable_returns_same_plan(self, db):
        plan = Join(Scan("R"), Scan("S"))
        assert optimize(plan, db) is plan


class TestIndexSelection:
    def _indexes(self, db):
        from repro.indexing import JointIndex

        return {"R": {frozenset({"t"}): JointIndex(db["R"], ["t"], max_entries=4)}}

    def test_select_scan_becomes_index_scan(self, db):
        indexes = self._indexes(db)
        plan = Select(Scan("R"), parse_constraints("t >= 15"))
        optimized = optimize(plan, db, indexes)
        assert isinstance(optimized, IndexScan)
        assert optimized.index_attributes == frozenset({"t"})
        assert_same_result(plan, optimized, db, indexes)

    def test_no_index_no_rewrite(self, db):
        plan = Select(Scan("S"), parse_constraints("v >= 1"))
        optimized = optimize(plan, db, self._indexes(db))
        assert isinstance(optimized, Select)

    def test_string_only_predicates_do_not_use_index(self, db):
        plan = Select(Scan("R"), [StringPredicate("id", "a")])
        optimized = optimize(plan, db, self._indexes(db))
        assert isinstance(optimized, Select)

    def test_index_scan_counts_accesses(self, db):
        indexes = self._indexes(db)
        plan = optimize(Select(Scan("R"), parse_constraints("t >= 15")), db, indexes)
        ctx = EvaluationContext(db, indexes)
        result = evaluate(plan, ctx)
        assert [t.value("id") for t in result] == ["b"]
        assert ctx.metrics.index_node_accesses >= 1
