"""Unit tests for snapshot pinning and the swap/drain protocol."""

import threading

import pytest

from repro.model.database import Database
from repro.model.relation import ConstraintRelation
from repro.model.schema import Attribute, Schema
from repro.model.tuples import point_tuple
from repro.model.types import AttributeKind, DataType
from repro.storage.snapshot import DatabaseSnapshot, SnapshotManager


def make_db(marker: str) -> Database:
    schema = Schema(
        [
            Attribute("id", DataType.STRING, AttributeKind.RELATIONAL),
            Attribute("x", DataType.RATIONAL, AttributeKind.CONSTRAINT),
        ]
    )
    relation = ConstraintRelation(schema, [point_tuple(schema, {"id": marker, "x": 1})], "R")
    return Database({"R": relation})


class TestDatabaseSnapshot:
    def test_pin_unpin_counts(self):
        snap = DatabaseSnapshot(make_db("a"), 1)
        assert snap.readers == 0
        snap.pin()
        snap.pin()
        assert snap.readers == 2
        snap.unpin()
        assert snap.readers == 1

    def test_over_unpin_rejected(self):
        snap = DatabaseSnapshot(make_db("a"), 1)
        with pytest.raises(RuntimeError):
            snap.unpin()

    def test_context_manager_pins(self):
        snap = DatabaseSnapshot(make_db("a"), 1)
        with snap:
            assert snap.readers == 1
        assert snap.readers == 0


class TestSnapshotManager:
    def test_swap_bumps_version_and_retires(self):
        manager = SnapshotManager(make_db("v1"))
        old = manager.current()
        assert old.version == 1 and not old.retired
        retired = manager.swap(make_db("v2"))
        assert retired is old
        assert retired.retired
        assert manager.version == 2
        assert not manager.current().retired

    def test_old_readers_keep_old_view(self):
        manager = SnapshotManager(make_db("v1"))
        pinned = manager.current().pin()
        manager.swap(make_db("v2"))
        # The pinned snapshot still serves its original catalog.
        tuples = list(pinned.database["R"])
        assert tuples[0].values["id"] == "v1"
        assert list(manager.current().database["R"])[0].values["id"] == "v2"
        pinned.unpin()

    def test_drain_waits_for_unpin(self):
        manager = SnapshotManager(make_db("v1"))
        pinned = manager.current().pin()
        retired = manager.swap(make_db("v2"))
        assert retired is pinned
        releaser = threading.Timer(0.05, pinned.unpin)
        releaser.start()
        try:
            assert manager.drain(retired, timeout=5.0)
        finally:
            releaser.join()
        assert retired.readers == 0

    def test_drain_times_out_with_stuck_reader(self):
        manager = SnapshotManager(make_db("v1"))
        pinned = manager.current().pin()
        retired = manager.swap(make_db("v2"))
        assert not manager.drain(retired, timeout=0.05)
        pinned.unpin()
