"""Unit tests for the write-ahead log and the durable database."""

import os
import zlib

import pytest

from repro.errors import CorruptPageError, SchemaError, StorageError
from repro.model.relation import ConstraintRelation
from repro.model.schema import Attribute, Schema
from repro.model.tuples import point_tuple
from repro.model.types import AttributeKind, DataType
from repro.obs import (
    WAL_APPENDS,
    WAL_CHECKPOINTS,
    WAL_COMMITS,
    WAL_REPLAYED,
    MetricsRegistry,
)
from repro.storage import dumps, load_database
from repro.storage.wal import (
    MAGIC,
    WalRecord,
    WriteAheadLog,
    atomic_write_text,
    committed_transactions,
    decode_payload,
    encode_record,
    iter_log_records,
    open_durable,
    scan_log_bytes,
    wal_path_for,
)


def make_schema():
    return Schema(
        [
            Attribute("id", DataType.STRING, AttributeKind.RELATIONAL),
            Attribute("x", DataType.RATIONAL, AttributeKind.CONSTRAINT),
        ]
    )


def make_relation(schema, ids):
    return ConstraintRelation(
        schema, [point_tuple(schema, {"id": i, "x": n}) for n, i in enumerate(ids)], "R"
    )


class TestRecordCodec:
    def test_roundtrip(self):
        record = WalRecord("put", 7, relation="R", schema=(("id", "string", "relational"),), rows=('id="a"',))
        framed = encode_record(record)
        recovery = scan_log_bytes(MAGIC + framed)
        assert recovery.records == (record,)
        assert recovery.truncated_bytes == 0

    def test_unknown_op_rejected(self):
        with pytest.raises(StorageError):
            WalRecord("merge", 1)

    def test_op_needs_relation(self):
        with pytest.raises(StorageError):
            WalRecord("put", 1)

    def test_payload_must_be_object(self):
        with pytest.raises(CorruptPageError):
            decode_payload(b"[1, 2]")

    def test_payload_must_be_json(self):
        with pytest.raises(CorruptPageError):
            decode_payload(b"\xff\xfe not json")


class TestStructuralRecovery:
    def test_empty_log(self):
        assert scan_log_bytes(b"") == scan_log_bytes(b"")
        assert scan_log_bytes(b"").records == ()

    def test_torn_magic_is_truncation(self):
        recovery = scan_log_bytes(MAGIC[:3])
        assert recovery.truncated_bytes == 3
        assert recovery.records == ()

    def test_wrong_magic_is_corruption(self):
        with pytest.raises(CorruptPageError, match="header"):
            scan_log_bytes(b"NOTAWAL0" + b"junk")

    def test_torn_record_reported_not_raised(self):
        framed = encode_record(WalRecord("begin", 1))
        data = MAGIC + framed[:-2]
        recovery = scan_log_bytes(data)
        assert recovery.records == ()
        assert recovery.truncated_bytes == len(framed) - 2

    def test_crc_mismatch_is_corruption(self):
        framed = bytearray(encode_record(WalRecord("begin", 1)))
        framed[-1] ^= 0xFF  # flip a payload bit; lengths stay intact
        with pytest.raises(CorruptPageError, match="CRC32"):
            scan_log_bytes(MAGIC + bytes(framed))

    def test_valid_prefix_survives_torn_tail(self):
        good = encode_record(WalRecord("begin", 1))
        torn = encode_record(WalRecord("commit", 1))[:-1]
        recovery = scan_log_bytes(MAGIC + good + torn)
        assert [r.op for r in recovery.records] == ["begin"]
        assert recovery.truncated_bytes == len(torn)


class TestWriteAheadLog:
    def test_open_creates_header(self, tmp_path):
        path = tmp_path / "db.wal"
        with WriteAheadLog(path) as log:
            assert log.position == len(MAGIC)
        assert path.read_bytes() == MAGIC

    def test_append_and_reopen(self, tmp_path):
        path = tmp_path / "db.wal"
        with WriteAheadLog(path) as log:
            log.append(WalRecord("begin", 1))
            log.append(WalRecord("commit", 1))
            log.sync()
        with WriteAheadLog(path) as log:
            assert [r.op for r in log.records] == ["begin", "commit"]

    def test_open_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "db.wal"
        with WriteAheadLog(path) as log:
            log.append(WalRecord("begin", 1))
            log.sync()
        size = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(encode_record(WalRecord("commit", 1))[:-4])
        with WriteAheadLog(path) as log:
            assert [r.op for r in log.records] == ["begin"]
            assert log.truncated_bytes > 0
        assert path.stat().st_size == size  # tail physically gone

    def test_append_after_close_rejected(self, tmp_path):
        log = WriteAheadLog(tmp_path / "db.wal")
        log.close()
        with pytest.raises(StorageError, match="closed"):
            log.append(WalRecord("begin", 1))

    def test_reset_leaves_bare_header(self, tmp_path):
        path = tmp_path / "db.wal"
        with WriteAheadLog(path) as log:
            log.append(WalRecord("begin", 1))
            log.reset()
            assert log.records == ()
            log.append(WalRecord("begin", 2))  # still appendable after reset
            log.sync()
        assert [r.txn for r in iter_log_records(path)] == [2]


class TestCommittedTransactions:
    def test_uncommitted_txn_dropped(self):
        records = [
            WalRecord("begin", 1),
            WalRecord("drop", 1, relation="R"),
            WalRecord("begin", 2),
            WalRecord("drop", 2, relation="S"),
            WalRecord("commit", 2),
        ]
        committed = committed_transactions(records)
        assert len(committed) == 1
        assert committed[0][0].relation == "S"

    def test_commit_order_preserved(self):
        records = [
            WalRecord("begin", 1),
            WalRecord("begin", 2),
            WalRecord("drop", 2, relation="A"),
            WalRecord("commit", 2),
            WalRecord("drop", 1, relation="B"),
            WalRecord("commit", 1),
        ]
        committed = committed_transactions(records)
        assert [t[0].relation for t in committed] == ["A", "B"]


class TestDurableDatabase:
    def test_put_append_drop_roundtrip(self, tmp_path):
        schema = make_schema()
        path = tmp_path / "db.cdb"
        with open_durable(path, fsync=False) as d:
            with d.begin() as txn:
                txn.put_relation("R", make_relation(schema, ["a"]))
            with d.begin() as txn:
                txn.append_tuples("R", [point_tuple(schema, {"id": "b", "x": 9})])
            state = dumps(d.database)
        with open_durable(path, fsync=False) as d:
            assert dumps(d.database) == state
            assert len(d.database["R"]) == 2
            assert d.recovery.committed_transactions == 2

    def test_abort_rolls_back(self, tmp_path):
        schema = make_schema()
        path = tmp_path / "db.cdb"
        with open_durable(path, fsync=False) as d:
            with d.begin() as txn:
                txn.put_relation("R", make_relation(schema, ["a"]))
            with pytest.raises(RuntimeError):
                with d.begin() as txn:
                    txn.put_relation("S", make_relation(schema, ["x"]))
                    raise RuntimeError("client bug mid-transaction")
            assert "S" not in d.database  # never applied in memory either
        with open_durable(path, fsync=False) as d:
            assert d.database.names() == ("R",)
            assert d.recovery.rolled_back_transactions == 1

    def test_commit_publishes_fresh_catalog(self, tmp_path):
        schema = make_schema()
        with open_durable(tmp_path / "db.cdb", fsync=False) as d:
            with d.begin() as txn:
                txn.put_relation("R", make_relation(schema, ["a"]))
            before = d.database
            with d.begin() as txn:
                txn.append_tuples("R", [point_tuple(schema, {"id": "b", "x": 9})])
            # A reader pinned to the old catalog keeps its old view.
            assert len(before["R"]) == 1
            assert len(d.database["R"]) == 2
            assert d.database is not before

    def test_append_validates_schema(self, tmp_path):
        schema = make_schema()
        other = Schema([Attribute("y", DataType.RATIONAL, AttributeKind.CONSTRAINT)])
        with open_durable(tmp_path / "db.cdb", fsync=False) as d:
            with d.begin() as txn:
                txn.put_relation("R", make_relation(schema, ["a"]))
            with pytest.raises((StorageError, RuntimeError)):
                with d.begin() as txn:
                    txn.append_tuples("R", [point_tuple(other, {"y": 1})])

    def test_append_to_missing_relation_fails_before_logging(self, tmp_path):
        schema = make_schema()
        with open_durable(tmp_path / "db.cdb", fsync=False) as d:
            with pytest.raises(SchemaError):
                with d.begin() as txn:
                    txn.append_tuples("Nope", [point_tuple(schema, {"id": "a", "x": 1})])

    def test_checkpoint_folds_and_resets(self, tmp_path):
        schema = make_schema()
        path = tmp_path / "db.cdb"
        with open_durable(path, fsync=False) as d:
            with d.begin() as txn:
                txn.put_relation("R", make_relation(schema, ["a", "b"]))
            d.checkpoint()
        assert wal_path_for(path).read_bytes() == MAGIC
        assert len(load_database(path)["R"]) == 2
        with open_durable(path, fsync=False) as d:
            assert d.recovery.records == 0
            assert len(d.database["R"]) == 2

    def test_txn_ids_resume_past_history(self, tmp_path):
        schema = make_schema()
        path = tmp_path / "db.cdb"
        with open_durable(path, fsync=False) as d:
            with d.begin() as txn:
                txn.put_relation("R", make_relation(schema, ["a"]))
        with open_durable(path, fsync=False) as d:
            txn = d.begin()
            assert txn._txn >= 2
            txn.commit()

    def test_counters_flow_through_registry(self, tmp_path):
        schema = make_schema()
        registry = MetricsRegistry()
        path = tmp_path / "db.cdb"
        with registry.activate():
            with open_durable(path, fsync=False) as d:
                with d.begin() as txn:
                    txn.put_relation("R", make_relation(schema, ["a"]))
                d.checkpoint()
        assert registry.value(WAL_APPENDS) >= 3  # begin, put, commit
        assert registry.value(WAL_COMMITS) == 1
        assert registry.value(WAL_CHECKPOINTS) == 1
        replay_registry = MetricsRegistry()
        with replay_registry.activate():
            with open_durable(path, fsync=False) as d:
                with d.begin() as txn:
                    txn.drop_relation("R")
            with open_durable(path, fsync=False) as d:
                assert d.database.names() == ()
        assert replay_registry.value(WAL_REPLAYED) == 1


class TestAtomicWrite:
    def test_replaces_contents(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"
        assert not (tmp_path / "f.txt.tmp").exists()

    def test_creates_fresh_file(self, tmp_path):
        path = tmp_path / "f.txt"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"
