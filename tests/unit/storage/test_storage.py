"""Unit tests for pages, buffer pool and heap files."""

import pytest

from repro.errors import StorageError
from repro.storage import BufferPool, HeapFile, PageConfig, PageStatistics


class TestPageConfig:
    def test_fanout_by_dimension(self):
        config = PageConfig(page_size=4096)
        assert config.index_fanout(2) == 4096 // 40
        assert config.index_fanout(1) == 4096 // 24
        assert config.index_fanout(1) > config.index_fanout(2)

    def test_small_page_rejected(self):
        with pytest.raises(ValueError):
            PageConfig(page_size=64)

    def test_fanout_too_small_rejected(self):
        with pytest.raises(ValueError):
            PageConfig(page_size=128).index_fanout(10)

    def test_rows_per_page(self):
        config = PageConfig(page_size=4096)
        assert config.rows_per_page(100) == 40
        assert config.rows_per_page(10_000) == 1  # oversized rows spill

    def test_statistics_reset(self):
        stats = PageStatistics(reads=3, writes=2)
        assert stats.total == 5
        stats.reset()
        assert stats.total == 0


class TestBufferPool:
    def test_hit_and_miss(self):
        pool = BufferPool(capacity=2)
        assert not pool.access("a")  # miss
        assert pool.access("a")  # hit
        assert not pool.access("b")
        assert pool.stats.requests == 3
        assert pool.stats.hits == 1
        assert pool.stats.misses == 2

    def test_lru_eviction(self):
        pool = BufferPool(capacity=2)
        pool.access("a")
        pool.access("b")
        pool.access("a")  # a most recent
        pool.access("c")  # evicts b
        assert "b" not in pool
        assert "a" in pool and "c" in pool
        assert pool.stats.evictions == 1

    def test_capacity_validation(self):
        with pytest.raises(StorageError):
            BufferPool(0)

    def test_hit_rate(self):
        pool = BufferPool(4)
        assert pool.stats.hit_rate == 0.0
        pool.access("a")
        pool.access("a")
        assert pool.stats.hit_rate == 0.5

    def test_clear(self):
        pool = BufferPool(4)
        pool.access("a")
        pool.clear()
        assert len(pool) == 0


class TestHeapFile:
    def make_relation(self, rows: int):
        from repro.constraints import parse_constraints
        from repro.model import ConstraintRelation, HTuple, Schema, constraint, relational

        schema = Schema([relational("id"), constraint("t")])
        return ConstraintRelation(
            schema,
            [
                HTuple(schema, {"id": f"row{i}"}, parse_constraints(f"{i} <= t, t <= {i + 1}"))
                for i in range(rows)
            ],
        )

    def test_scan_reads_each_page_once(self):
        relation = self.make_relation(200)
        heap = HeapFile(relation, PageConfig(page_size=512))
        assert heap.page_count > 1
        scanned = list(heap.scan())
        assert len(scanned) == 200
        assert heap.stats.reads == heap.page_count

    def test_bigger_pages_fewer_reads(self):
        relation = self.make_relation(200)
        small = HeapFile(relation, PageConfig(page_size=512))
        large = HeapFile(relation, PageConfig(page_size=8192))
        assert large.page_count < small.page_count

    def test_read_page(self):
        relation = self.make_relation(50)
        heap = HeapFile(relation, PageConfig(page_size=512))
        first = heap.read_page(0)
        assert first and heap.stats.reads == 1

    def test_empty_relation(self):
        heap = HeapFile(self.make_relation(0))
        assert heap.page_count == 0
        assert list(heap.scan()) == []
