"""Unit tests for the .cdb text serialization format."""

import pytest

from repro.constraints import parse_constraints
from repro.errors import StorageError
from repro.model import (
    NULL,
    ConstraintRelation,
    Database,
    DataType,
    HTuple,
    Schema,
    constraint,
    relational,
)
from repro.storage import dumps, load_database, loads, save_database, serialize_tuple


def sample_database() -> Database:
    schema = Schema(
        [relational("name"), relational("age", DataType.RATIONAL), constraint("t")]
    )
    relation = ConstraintRelation(
        schema,
        [
            HTuple(schema, {"name": "ann", "age": "2.5"}, parse_constraints("0 <= t, t <= 10")),
            HTuple(schema, {"name": 'quo"te\\y', "age": NULL}),
            HTuple(schema, {}, parse_constraints("t = 1/3")),
        ],
        "People",
    )
    return Database({"People": relation})


class TestRoundTrip:
    def test_dumps_loads(self):
        db = sample_database()
        restored = loads(dumps(db))
        assert restored.names() == ("People",)
        original = db["People"]
        loaded = restored["People"]
        assert loaded.schema == original.schema
        assert set(loaded.tuples) == set(original.tuples)

    def test_file_roundtrip(self, tmp_path):
        db = sample_database()
        path = tmp_path / "people.cdb"
        save_database(db, path)
        restored = load_database(path)
        assert set(restored["People"].tuples) == set(db["People"].tuples)

    def test_hurricane_roundtrip(self, hurricane_db):
        restored = loads(dumps(hurricane_db))
        assert set(restored.names()) == {"Hurricane", "Land", "Landownership"}
        for name in restored.names():
            assert set(restored[name].tuples) == set(hurricane_db[name].tuples)

    def test_multiple_relations(self):
        schema = Schema([constraint("x")])
        db = Database(
            {
                "A": ConstraintRelation(schema, [HTuple(schema, {}, parse_constraints("x = 1"))]),
                "B": ConstraintRelation(schema, [HTuple(schema, {}, parse_constraints("x = 2"))]),
            }
        )
        restored = loads(dumps(db))
        assert restored.names() == ("A", "B")


class TestSerializeTuple:
    def test_values_and_formula(self):
        schema = Schema([relational("id"), constraint("t")])
        line = serialize_tuple(HTuple(schema, {"id": "a"}, parse_constraints("t <= 1")))
        assert line.startswith("tuple ")
        assert 'id="a"' in line and "|" in line

    def test_null_rendering(self):
        schema = Schema([relational("id")])
        assert "id=NULL" in serialize_tuple(HTuple(schema, {}))

    def test_rational_rendering(self):
        schema = Schema([relational("v", DataType.RATIONAL)])
        assert "v=1/3" in serialize_tuple(HTuple(schema, {"v": "1/3"}))


class TestFormatErrors:
    def test_unknown_directive(self):
        with pytest.raises(StorageError, match="unknown directive"):
            loads("relation R\nbogus line here\nend\n")

    def test_attribute_outside_relation(self):
        with pytest.raises(StorageError):
            loads("attribute x rational constraint\n")

    def test_tuple_outside_relation(self):
        with pytest.raises(StorageError):
            loads("tuple x=1\n")

    def test_unterminated_relation(self):
        # A body that stops mid-relation is the truncated-file signature:
        # typed corruption naming the relation (see test_corrupt_corpus).
        from repro.errors import CorruptPageError

        with pytest.raises(CorruptPageError, match="'R' truncated"):
            loads("relation R\nattribute x rational constraint\n")

    def test_nested_relation(self):
        with pytest.raises(StorageError, match="nested"):
            loads("relation R\nrelation S\nend\n")

    def test_bad_attribute_line(self):
        with pytest.raises(StorageError):
            loads("relation R\nattribute x rational\nend\n")

    def test_bad_kind(self):
        with pytest.raises(StorageError):
            loads("relation R\nattribute x rational wibble\nend\n")

    def test_unterminated_string(self):
        with pytest.raises(StorageError, match="unterminated"):
            loads('relation R\nattribute a string relational\ntuple a="oops\nend\n')

    def test_bad_value(self):
        with pytest.raises(StorageError):
            loads(
                "relation R\nattribute v rational relational\ntuple v=notanumber\nend\n"
            )

    def test_invalid_relation_name(self):
        with pytest.raises(StorageError):
            loads("relation 9bad\nend\n")

    def test_comments_and_blanks_ignored(self):
        db = loads("# header\n\nrelation R\nattribute x rational constraint\n\nend\n")
        assert "R" in db
