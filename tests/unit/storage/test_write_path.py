"""Unit tests for the mutation path: heap-file append and cache
invalidation (the stale-summary-block regression suite)."""

from repro.exec.columnar import block_for
from repro.model.relation import ConstraintRelation
from repro.model.schema import Attribute, Schema
from repro.model.tuples import point_tuple
from repro.model.types import AttributeKind, DataType
from repro.storage import HeapFile, PageConfig


def make_schema():
    return Schema(
        [
            Attribute("id", DataType.STRING, AttributeKind.RELATIONAL),
            Attribute("x", DataType.RATIONAL, AttributeKind.CONSTRAINT),
        ]
    )


def tuples_for(schema, ids):
    return [point_tuple(schema, {"id": i, "x": n}) for n, i in enumerate(ids)]


class TestHeapFileAppend:
    def test_append_extends_relation_and_pages(self):
        schema = make_schema()
        heap = HeapFile(ConstraintRelation(schema, tuples_for(schema, ["a"]), "R"))
        before_pages = heap.page_count
        heap.append(tuples_for(schema, ["b", "c"]))
        assert len(heap) == 3
        assert heap.page_count >= before_pages
        assert sorted(t.values["id"] for t in heap.scan()) == ["a", "b", "c"]

    def test_append_packs_tail_page_first(self):
        schema = make_schema()
        heap = HeapFile(
            ConstraintRelation(schema, tuples_for(schema, ["a"]), "R"),
            PageConfig(page_size=4096),
        )
        assert heap.page_count == 1
        written = heap.append(tuples_for(schema, ["b"]))
        assert written == 1  # reused the tail page
        assert heap.page_count == 1

    def test_append_spills_to_new_pages(self):
        schema = make_schema()
        heap = HeapFile(
            ConstraintRelation(schema, tuples_for(schema, ["a"]), "R"),
            PageConfig(page_size=256),
        )
        heap.append(tuples_for(schema, [f"t{i}" for i in range(40)]))
        assert heap.page_count > 1
        assert len(heap) == 41

    def test_append_counts_writes(self):
        schema = make_schema()
        heap = HeapFile(ConstraintRelation(schema, tuples_for(schema, ["a"]), "R"))
        assert heap.stats.writes == 0
        heap.append(tuples_for(schema, ["b"]))
        assert heap.stats.writes >= 1

    def test_empty_append_is_noop(self):
        schema = make_schema()
        heap = HeapFile(ConstraintRelation(schema, tuples_for(schema, ["a"]), "R"))
        relation = heap.relation
        assert heap.append([]) == 0
        assert heap.relation is relation


class TestStaleCacheRegression:
    """The bug class the invalidation API exists for: a columnar summary
    block built before a write must never describe post-write tuples."""

    def test_page_cache_invalidated_on_append(self):
        schema = make_schema()
        heap = HeapFile(
            ConstraintRelation(schema, tuples_for(schema, ["a"]), "R"),
            PageConfig(page_size=4096),
        )
        page = heap.read_page(0)
        cache = heap.page_cache(0)
        block = block_for(page, ("x",), cache)
        assert ("x",) in cache and len(block) == 1
        heap.append(tuples_for(schema, ["b"]))  # mutates page 0 in place
        fresh_cache = heap.page_cache(0)
        assert ("x",) not in fresh_cache  # stale block dropped
        fresh_page = heap.read_page(0)
        fresh_block = block_for(fresh_page, ("x",), fresh_cache)
        assert len(fresh_block) == len(fresh_page) == 2

    def test_invalidate_all_pages(self):
        schema = make_schema()
        heap = HeapFile(
            ConstraintRelation(schema, tuples_for(schema, [f"t{i}" for i in range(40)]), "R"),
            PageConfig(page_size=256),
        )
        for index in range(heap.page_count):
            block_for(heap.read_page(index), ("x",), heap.page_cache(index))
        heap.invalidate_page_cache()
        assert all(("x",) not in heap.page_cache(i) for i in range(heap.page_count))

    def test_relation_extended_gets_fresh_columnar_cache(self):
        schema = make_schema()
        relation = ConstraintRelation(schema, tuples_for(schema, ["a"]), "R")
        block = block_for(relation.tuples, ("x",), relation.columnar_cache())
        assert len(block) == 1
        grown = relation.extended(tuples_for(schema, ["b"]))
        # The old relation keeps its valid cache; the new one starts empty.
        assert ("x",) in relation.columnar_cache()
        assert ("x",) not in grown.columnar_cache()
        grown_block = block_for(grown.tuples, ("x",), grown.columnar_cache())
        assert len(grown_block) == 2

    def test_invalidate_columnar_clears_in_place(self):
        schema = make_schema()
        relation = ConstraintRelation(schema, tuples_for(schema, ["a"]), "R")
        cache = relation.columnar_cache()
        block_for(relation.tuples, ("x",), cache)
        assert cache
        relation.invalidate_columnar()
        # A consumer holding the dict sees it emptied, not replaced.
        assert cache == {} and relation.columnar_cache() is cache

    def test_extended_applies_set_semantics(self):
        schema = make_schema()
        relation = ConstraintRelation(schema, tuples_for(schema, ["a"]), "R")
        grown = relation.extended(tuples_for(schema, ["a"]))  # duplicate
        assert len(grown) == 1
