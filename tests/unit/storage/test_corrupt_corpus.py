"""A corpus of malformed ``.cdb`` files and heap-file abuse.

Load hardening contract: a file with a valid header but a damaged body
must fail with a *typed* :class:`~repro.errors.CorruptPageError` that
names the damaged relation or page — never an ``IndexError``,
``ValueError``, ``UnicodeDecodeError``, or silently wrong data.
"""

import pytest

from repro.errors import CorruptPageError, StorageError
from repro.model.relation import ConstraintRelation
from repro.model.schema import Attribute, Schema
from repro.model.tuples import point_tuple
from repro.model.types import AttributeKind, DataType
from repro.storage import HeapFile, load_database, loads

VALID = """# CQA/CDB database file
relation Land
attribute landId string relational
attribute x rational constraint
tuple landId="A" | 2 <= x, x <= 6
tuple landId="B" | 1 <= x, x <= 3
checksum 2 {crc}
end
"""


def valid_text() -> str:
    import zlib

    lines = [
        'tuple landId="A" | 2 <= x, x <= 6',
        'tuple landId="B" | 1 <= x, x <= 3',
    ]
    crc = f"{zlib.crc32(chr(10).join(lines).encode()) & 0xFFFFFFFF:08x}"
    return VALID.format(crc=crc)


class TestTruncatedBodies:
    def test_cut_before_end_directive(self):
        text = valid_text()
        torn = text[: text.rindex("end")]
        with pytest.raises(CorruptPageError, match="'Land' truncated"):
            loads(torn)

    def test_cut_mid_schema(self):
        text = valid_text()
        torn = text[: text.index("attribute x")]
        with pytest.raises(CorruptPageError, match="'Land' truncated"):
            loads(torn)

    def test_cut_mid_tuples_fails_checksum_count(self):
        text = valid_text()
        # Drop one tuple line but keep checksum+end: count mismatch.
        torn = text.replace('tuple landId="B" | 1 <= x, x <= 3\n', "")
        with pytest.raises(CorruptPageError, match="records 2 tuples"):
            loads(torn)


class TestBitRot:
    def test_flipped_digit_fails_crc(self):
        text = valid_text().replace("x <= 6", "x <= 7", 1)
        with pytest.raises(CorruptPageError, match="checksum mismatch"):
            loads(text)

    def test_binary_garbage_is_typed(self, tmp_path):
        path = tmp_path / "garbage.cdb"
        path.write_bytes(b"# CQA/CDB database file\nrelation R\n\xff\xfe\x00\x80 binary")
        with pytest.raises(CorruptPageError, match="not valid UTF-8"):
            load_database(path)

    def test_checksummed_roundtrip_still_loads(self):
        database = loads(valid_text())
        assert len(database["Land"]) == 2


class TestHeapFilePages:
    def make_heap(self) -> HeapFile:
        schema = Schema(
            [
                Attribute("id", DataType.STRING, AttributeKind.RELATIONAL),
                Attribute("x", DataType.RATIONAL, AttributeKind.CONSTRAINT),
            ]
        )
        relation = ConstraintRelation(
            schema, [point_tuple(schema, {"id": f"t{i}", "x": i}) for i in range(5)], "R"
        )
        return HeapFile(relation)

    def test_page_past_end_is_typed_and_named(self):
        heap = self.make_heap()
        with pytest.raises(CorruptPageError, match=r"page 99 out of range.*R has \d+ page"):
            heap.read_page(99)

    def test_negative_page_is_typed(self):
        heap = self.make_heap()
        with pytest.raises(CorruptPageError, match="out of range"):
            heap.read_page(-1)

    def test_corruption_is_a_storage_error(self):
        # The taxonomy: callers catching StorageError see corruption too.
        heap = self.make_heap()
        with pytest.raises(StorageError):
            heap.read_page(99)
