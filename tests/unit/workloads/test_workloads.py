"""Unit tests for the workload generators."""

import pytest

from repro.workloads import (
    Rect,
    brute_force_matches,
    build_constraint_relation,
    build_relational_relation,
    generate_data,
    generate_gis_scenario,
    generate_hurricane_database,
    generate_queries,
    halfopen_queries,
    paper_queries,
)


class TestRect:
    def test_intervals(self):
        r = Rect(x=10, y=20, width=5, height=3)
        assert r.x_interval == (10, 15)
        assert r.y_interval == (17, 20)  # extends downward from upper-left
        assert r.area == 15

    def test_intersections(self):
        a = Rect(0, 10, 10, 10)
        b = Rect(5, 10, 10, 10)
        c = Rect(100, 10, 1, 1)
        assert a.intersects(b) and not a.intersects(c)
        assert a.intersects_x(b) and not a.intersects_x(c)

    def test_contains_point(self):
        r = Rect(0, 10, 10, 10)
        assert r.contains_point(5, 5)
        assert not r.contains_point(5, 11)
        assert r.contains_point_x(5) and not r.contains_point_x(11)


class TestGenerators:
    def test_paper_parameters(self):
        data = generate_data(100, seed=1)
        assert len(data) == 100
        for rect in data:
            assert 0 <= rect.x <= 3000 and 0 <= rect.y <= 3000
            assert 1 <= rect.width <= 100 and 1 <= rect.height <= 100

    def test_seeded_reproducibility(self):
        assert generate_data(50, seed=9) == generate_data(50, seed=9)
        assert generate_data(50, seed=9) != generate_data(50, seed=10)

    def test_query_generator(self):
        queries = generate_queries(20, seed=2)
        assert len(queries) == 20

    def test_halfopen_queries_shape(self):
        queries = halfopen_queries(50, seed=3)
        assert len(queries) == 50
        for box in queries:
            assert box["x"][0] < 0  # half-open on the left
            assert box["y"][1] > 3000  # half-open on the right

    def test_halfopen_selectivity_profile_uniform(self):
        """Per-attribute selectivity ~35-55% over uniform data."""
        data = generate_data(2000, seed=4)
        x_rates, y_rates = [], []
        for box in halfopen_queries(30, seed=5):
            x_rates.append(len(brute_force_matches(data, {"x": box["x"]})) / len(data))
            y_rates.append(len(brute_force_matches(data, {"y": box["y"]})) / len(data))
        def avg(xs):
            return sum(xs) / len(xs)
        assert 0.35 <= avg(x_rates) <= 0.6
        assert 0.3 <= avg(y_rates) <= 0.55

    def test_halfopen_over_correlated_data_joint_selectivity_tiny(self):
        """The §5.3 scenario: each conjunct keeps ~half of the diagonal
        data, but 'very few tuples satisfy both'."""
        from repro.workloads import generate_correlated_data

        data = generate_correlated_data(2000, seed=4)
        x_rates, joint_rates = [], []
        for box in halfopen_queries(30, seed=5):
            x_rates.append(len(brute_force_matches(data, {"x": box["x"]})) / len(data))
            joint_rates.append(len(brute_force_matches(data, box)) / len(data))
        def avg(xs):
            return sum(xs) / len(xs)
        assert 0.35 <= avg(x_rates) <= 0.6
        assert avg(joint_rates) < 0.01

    def test_correlated_data_on_diagonal(self):
        from repro.workloads import generate_correlated_data

        for rect in generate_correlated_data(200, seed=6, spread=50.0):
            assert abs(rect.y - rect.x) <= 50.0 or rect.y in (0.0, 3000.0)


class TestRelationBuilders:
    def test_constraint_relation_semantics(self):
        data = [Rect(0, 10, 10, 10)]
        relation = build_constraint_relation(data)
        assert relation.contains_point({"x": 5, "y": 5})
        assert not relation.contains_point({"x": 11, "y": 5})

    def test_relational_relation_is_points(self):
        data = [Rect(0, 10, 10, 10)]
        relation = build_relational_relation(data)
        (t,) = relation.tuples
        assert t.value("x") == 0 and t.value("y") == 10

    def test_brute_force_matches_modes(self):
        data = [Rect(0, 10, 10, 10), Rect(100, 10, 10, 10)]
        box = {"x": (5.0, 20.0)}
        assert brute_force_matches(data, box) == {0}
        assert brute_force_matches(data, {"x": (0.0, 0.0)}, as_points=True) == {0}


class TestHurricaneWorkload:
    def test_figure2_shape(self, hurricane_db):
        assert set(hurricane_db.names()) == {"Hurricane", "Land", "Landownership"}
        assert len(hurricane_db["Land"]) == 4
        assert len(hurricane_db["Hurricane"]) == 3

    def test_hurricane_path_is_functional_in_t(self, hurricane_db):
        # At t=2 the hurricane is midway through segment 1: (1.5, 2.5).
        assert hurricane_db["Hurricane"].contains_point({"t": 2, "x": 1.5, "y": 2.5})
        assert not hurricane_db["Hurricane"].contains_point({"t": 2, "x": 2, "y": 2.5})

    def test_paper_queries_parse(self, hurricane_db):
        from repro.query import parse_script

        for name, script in paper_queries().items():
            assert parse_script(script), name

    def test_generated_database_scales(self):
        db = generate_hurricane_database(parcels_per_side=3, owners_per_parcel=2, path_segments=5)
        assert len(db["Land"]) == 9
        assert len(db["Landownership"]) == 18
        assert len(db["Hurricane"]) == 5

    def test_generated_reproducible(self):
        a = generate_hurricane_database(parcels_per_side=2, seed=5)
        b = generate_hurricane_database(parcels_per_side=2, seed=5)
        assert set(a["Hurricane"].tuples) == set(b["Hurricane"].tuples)

    def test_segment_validation(self):
        from repro.workloads import hurricane_schema, path_segment_tuple

        with pytest.raises(ValueError):
            path_segment_tuple(hurricane_schema(), 5, 5, (0, 0), (1, 1))


class TestGisWorkload:
    def test_layers(self):
        scenario = generate_gis_scenario(parcels_per_side=3, roads=2, shelters=4, seed=1)
        assert len(scenario.parcels) == 9
        assert len(scenario.roads) == 2
        assert len(scenario.shelters) == 4

    def test_to_database_spatial_relations(self):
        scenario = generate_gis_scenario(parcels_per_side=2, roads=1, shelters=2, seed=1)
        db = scenario.to_database()
        assert set(db.names()) == {"Parcels", "Roads", "Shelters"}
        parcels = db["Parcels"]
        assert parcels.schema.names == ("fid", "x", "y")

    def test_roundtrip_through_features(self):
        from repro.spatial import FeatureSet

        scenario = generate_gis_scenario(parcels_per_side=2, roads=1, shelters=1, seed=2)
        relation = scenario.parcels.to_relation()
        back = FeatureSet.from_relation(relation)
        assert set(back.features) == set(scenario.parcels.features)
