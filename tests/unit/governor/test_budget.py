"""Unit tests for the query resource governor (repro.governor.budget)."""

import time

import pytest

from repro.constraints import Conjunction, le
from repro.constraints.terms import var
from repro.errors import (
    DeadlineExceeded,
    IOBudgetExceeded,
    OutputLimitExceeded,
    SolverBudgetExceeded,
)
from repro.governor import (
    Budget,
    BudgetSlice,
    ProducerGuard,
    charge,
    charge_io,
    checkpoint,
    current_budget,
)
from repro.model.database import Database
from repro.model.relation import ConstraintRelation
from repro.model.schema import Schema, constraint
from repro.model.tuples import HTuple
from repro.query import QuerySession


class TestConstruction:
    @pytest.mark.parametrize("knob", ["solver_steps", "dnf_clauses", "output_tuples", "io_accesses"])
    @pytest.mark.parametrize("bad", [0, -1, -100, 2.5, True, "10"])
    def test_rejects_non_positive_and_non_int_limits(self, knob, bad):
        with pytest.raises(ValueError):
            Budget(**{knob: bad})

    @pytest.mark.parametrize("bad", [0, -0.5])
    def test_rejects_non_positive_deadline(self, bad):
        with pytest.raises(ValueError):
            Budget(deadline_seconds=bad)

    def test_rejects_unknown_exhaustion_mode(self):
        with pytest.raises(ValueError):
            Budget(on_exhausted="explode")

    def test_unlimited_by_default(self):
        budget = Budget()
        assert all(limit is None for limit in budget.limits.values())
        assert budget.deadline_seconds is None

    def test_remaining_floors_at_zero(self):
        budget = Budget(solver_steps=10)
        with budget.activate():
            with pytest.raises(SolverBudgetExceeded):
                budget.charge("solver_steps", 25)
            assert budget.remaining("solver_steps") == 0
            assert budget.remaining("dnf_clauses") is None


class TestActivation:
    def test_module_hooks_are_noops_when_ungoverned(self):
        assert current_budget() is None
        checkpoint()
        charge("solver_steps", 10)
        charge_io(10)  # nothing to charge against, nothing raised

    def test_activate_pushes_and_pops(self):
        budget = Budget(solver_steps=5)
        with budget.activate():
            assert current_budget() is budget
            charge("solver_steps", 3)
        assert current_budget() is None
        assert budget.consumed["solver_steps"] == 3

    def test_activation_does_not_nest_onto_itself(self):
        budget = Budget()
        with budget.activate():
            with pytest.raises(ValueError):
                with budget.activate():
                    pass

    def test_each_window_starts_fresh(self):
        budget = Budget(output_tuples=5)
        with budget.activate():
            charge("output_tuples", 4)
        with budget.activate():
            assert budget.consumed["output_tuples"] == 0
            charge("output_tuples", 4)  # would exceed without the reset

    def test_io_budget_raises_with_snapshot(self):
        budget = Budget(io_accesses=2)
        with budget.activate():
            charge_io()
            charge_io()
            with pytest.raises(IOBudgetExceeded) as excinfo:
                charge_io()
        assert excinfo.value.snapshot["consumed.io_accesses"] == 3


class TestExpiredDeadline:
    """Regressions for the lifecycle bugs around an elapsed deadline."""

    @staticmethod
    def _expired_budget(**kwargs):
        budget = Budget(deadline_seconds=0.001, **kwargs)
        stack = budget.activate()
        stack.__enter__()
        time.sleep(0.01)  # run the 1ms deadline out
        return budget, stack

    def test_slice_of_expired_parent_raises_in_raise_mode(self):
        budget, stack = self._expired_budget(solver_steps=100)
        try:
            with pytest.raises(DeadlineExceeded) as excinfo:
                budget.slice()
        finally:
            stack.__exit__(None, None, None)
        assert excinfo.value.resource == "deadline_seconds"
        # The snapshot that travels with the error must not report
        # negative time remaining.
        assert excinfo.value.snapshot["deadline.remaining_seconds"] == 0.0

    def test_slice_of_expired_partial_parent_truncates_and_trips(self):
        budget, stack = self._expired_budget(on_exhausted="partial")
        try:
            piece = budget.slice()
        finally:
            stack.__exit__(None, None, None)
        assert budget.truncated
        assert piece.deadline_remaining is not None
        assert piece.deadline_remaining > 0  # never a non-positive deadline
        worker = piece.build()  # the constructor path must accept it
        with worker.activate():
            time.sleep(0.001)
            worker.checkpoint()  # partial mode: truncates instead of raising
            assert worker.truncated

    def test_slice_keeps_positive_remaining_deadline(self):
        budget = Budget(deadline_seconds=60.0)
        with budget.activate():
            piece = budget.slice()
        assert piece.deadline_remaining is not None
        assert 0 < piece.deadline_remaining <= 60.0

    def test_expired_slice_spec_still_builds(self):
        # Defense in depth: a slice that sat in a queue can arrive expired.
        piece = BudgetSlice(
            limits=(("solver_steps", 5),), deadline_remaining=-0.5, on_exhausted="raise"
        )
        worker = piece.build()
        with worker.activate():
            time.sleep(0.001)
            with pytest.raises(DeadlineExceeded):
                worker.checkpoint()

    def test_snapshot_remaining_seconds_clamped_at_zero(self):
        budget, stack = self._expired_budget()
        try:
            snapshot = budget.snapshot()
        finally:
            stack.__exit__(None, None, None)
        assert snapshot["deadline.remaining_seconds"] == 0.0

    def test_exhaustion_payload_never_negative_remaining(self):
        budget, stack = self._expired_budget()
        try:
            with pytest.raises(DeadlineExceeded) as excinfo:
                budget.checkpoint()
        finally:
            stack.__exit__(None, None, None)
        assert excinfo.value.snapshot["deadline.remaining_seconds"] >= 0.0


class TestProducerGuard:
    def test_unbudgeted_guard_is_transparent(self):
        guard = ProducerGuard()
        assert guard.budget is None
        assert guard.start_row() and guard.produced(10)

    def test_produced_charged_before_append_caps_exactly(self):
        budget = Budget(output_tuples=3)
        with budget.activate():
            guard = ProducerGuard()
            rows = []
            with pytest.raises(OutputLimitExceeded):
                for i in range(10):
                    assert guard.start_row()
                    if not guard.produced():
                        break
                    rows.append(i)
        assert len(rows) == 3  # the cap is exact, not cap+1

    def test_partial_mode_truncates_instead_of_raising(self):
        budget = Budget(output_tuples=3, on_exhausted="partial")
        with budget.activate():
            guard = ProducerGuard()
            rows = [i for i in range(10) if guard.start_row() and guard.produced()]
        assert len(rows) == 3
        assert budget.truncated

    def test_absorb_only_in_partial_mode(self):
        exc = SolverBudgetExceeded("over")
        with Budget(on_exhausted="raise").activate():
            assert not ProducerGuard().absorb(exc)
        budget = Budget(on_exhausted="partial")
        with budget.activate():
            assert ProducerGuard().absorb(exc)
        assert budget.truncated


def _session(budget=None) -> QuerySession:
    x = var("x")
    schema = Schema([constraint("x")])
    tuples = [
        HTuple(schema, {}, Conjunction([le(i, x), le(x, i + 1)])) for i in range(10)
    ]
    db = Database({"R": ConstraintRelation(schema, tuples, "R")})
    return QuerySession(db, budget=budget)


class TestSessionIntegration:
    def test_raise_mode_propagates(self):
        session = _session(Budget(output_tuples=3))
        with pytest.raises(OutputLimitExceeded):
            session.execute("A = select x <= 5 from R")

    def test_partial_mode_binds_truncated_prefix(self):
        session = _session(Budget(output_tuples=3, on_exhausted="partial"))
        result = session.execute("A = select x <= 5 from R")
        assert len(result) == 3
        assert result.truncated
        assert session["A"].truncated  # the binding carries the flag too

    def test_full_results_are_not_marked_truncated(self):
        session = _session(Budget(output_tuples=1000, on_exhausted="partial"))
        result = session.execute("A = select x <= 5 from R")
        assert len(result) == 6
        assert not result.truncated

    def test_session_reusable_after_exhaustion(self):
        session = _session(Budget(output_tuples=3))
        with pytest.raises(OutputLimitExceeded):
            session.execute("A = select x <= 5 from R")
        # The budget window closed cleanly: the next statement gets a
        # fresh allowance and the session's bindings still work.
        result = session.execute("B = select x <= 2 from R")
        assert len(result) == 3 and not result.truncated

    def test_explain_analyze_reports_budget(self):
        session = _session(Budget(output_tuples=100))
        report = session.explain_analyze("A = select x <= 5 from R")
        text = report.format()
        assert "budget_rows=" in text
        assert "budget: output_tuples=" in text

    def test_deadline_mid_buffer_join_leaves_session_reusable(self):
        from repro.errors import ResourceExhausted
        from repro.spatial import ConvexPolygon, Feature, FeatureSet
        from repro.spatial.buffer_join import buffer_join

        features = FeatureSet(
            [
                Feature(f"f{i}", [ConvexPolygon.box(i, 0, i + 2, 2)])
                for i in range(30)
            ]
        )
        budget = Budget(deadline_seconds=1e-9)  # expires before the first row
        with pytest.raises(ResourceExhausted):
            with budget.activate():
                buffer_join(features, features, 1)
        # Same budget, fresh window, normal deadline: the join completes.
        budget2 = Budget(deadline_seconds=30)
        with budget2.activate():
            result = buffer_join(features, features, 1)
        assert len(result) > 0

    def test_partial_deadline_truncates_buffer_join(self):
        from repro.spatial import ConvexPolygon, Feature, FeatureSet
        from repro.spatial.buffer_join import buffer_join

        features = FeatureSet(
            [Feature(f"f{i}", [ConvexPolygon.box(i, 0, i + 2, 2)]) for i in range(30)]
        )
        budget = Budget(deadline_seconds=1e-9, on_exhausted="partial")
        with budget.activate():
            result = buffer_join(features, features, 1)
        assert budget.truncated
        assert len(result) == 0  # expired before any pair was produced
