"""The gate CI enforces: the repro tree itself lints clean with an
empty baseline and every shipped rule enabled."""

from __future__ import annotations

from pathlib import Path

from repro.devtools import lint_paths

SRC_REPRO = Path(__file__).resolve().parents[3] / "src" / "repro"


def test_tree_is_clean():
    assert SRC_REPRO.is_dir()
    report = lint_paths([SRC_REPRO])
    assert report.render() == "ok: no findings", report.render()


def test_annotation_registries_are_present():
    """The RT103/RT201 registries the linter relies on must not be
    silently dropped from the modules they guard — an empty registry
    would make the tree gate vacuous for those rules."""
    import ast

    def module_has(path: Path, name: str) -> bool:
        tree = ast.parse(path.read_text(encoding="utf-8"))
        return any(
            isinstance(stmt, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == name for t in stmt.targets
            )
            for stmt in tree.body
        )

    assert module_has(SRC_REPRO / "storage" / "snapshot.py", "__lock_registry__")
    assert module_has(SRC_REPRO / "constraints" / "cache.py", "__lock_registry__")
    assert module_has(SRC_REPRO / "storage" / "heapfile.py", "__cache_registry__")
    assert module_has(SRC_REPRO / "indexing" / "rstar.py", "__cache_registry__")
