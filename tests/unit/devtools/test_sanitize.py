"""RT5xx runtime sanitizer tests: the seeded lock-order inversion and
snapshot pin leak the acceptance criteria require, plus the tracker
mechanics around them."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.devtools.sanitize import (
    LockOrderError,
    PinLeakError,
    Sanitizer,
    active_sanitizer,
    install,
    uninstall,
)


@pytest.fixture()
def sanitizer():
    """A sanitizer installed for the duration of one test."""
    previous = active_sanitizer()
    uninstall()
    yield install()
    uninstall()
    if previous is not None:
        # Re-install so the suite-wide REPRO_SANITIZE instance (if any)
        # keeps receiving hooks after this test.
        import repro.devtools.sanitize as sanitize_module

        sanitize_module._ACTIVE = previous


# -- RT501: lock ordering ------------------------------------------------------


def test_lock_order_inversion_detected(sanitizer):
    """The seeded inversion: A then B in one context, B then A in
    another, flagged deterministically without any unlucky scheduling."""
    lock_a = sanitizer.tracked_lock("A")
    lock_b = sanitizer.tracked_lock("B")
    with lock_a:
        with lock_b:
            pass
    with pytest.raises(LockOrderError, match="lock-order cycle"):
        with lock_b:
            with lock_a:
                pass
    # The violation is also recorded for end-of-test assert_clean...
    assert sanitizer.locks.violations
    with pytest.raises(LockOrderError):
        sanitizer.assert_clean()
    # ...and consumed by it.
    sanitizer.assert_clean()


def test_lock_order_inversion_across_threads(sanitizer):
    lock_a = sanitizer.tracked_lock("A")
    lock_b = sanitizer.tracked_lock("B")

    def first():
        with lock_a:
            with lock_b:
                pass

    t = threading.Thread(target=first)
    t.start()
    t.join()

    caught: list[BaseException] = []

    def second():
        try:
            with lock_b:
                with lock_a:
                    pass
        except LockOrderError as exc:
            caught.append(exc)

    t = threading.Thread(target=second)
    t.start()
    t.join()
    assert caught, "inversion in a second thread must be flagged"
    sanitizer.locks.violations.clear()


def test_consistent_order_is_clean(sanitizer):
    lock_a = sanitizer.tracked_lock("A")
    lock_b = sanitizer.tracked_lock("B")
    for _ in range(3):
        with lock_a:
            with lock_b:
                pass
    sanitizer.assert_clean()


def test_recursive_acquisition_flagged(sanitizer):
    lock = sanitizer.tracked_lock("A")
    lock.acquire()
    with pytest.raises(LockOrderError, match="recursive"):
        lock.acquire()
    lock.release()
    sanitizer.locks.violations.clear()


def test_same_role_different_instances_allowed(sanitizer):
    """Two snapshots' locks share a role name; nested acquisition of
    *different instances* is ordinary (drain loops do it) — only cycles
    between distinct roles or same-instance re-entry are bugs."""
    first = sanitizer.tracked_lock("storage.snapshot")
    second = sanitizer.tracked_lock("storage.snapshot")
    with first:
        with second:
            pass
    sanitizer.assert_clean()


def test_async_lock_inversion_detected(sanitizer):
    lock_a = sanitizer.tracked_async_lock("A")
    lock_b = sanitizer.tracked_async_lock("B")

    async def scenario():
        async with lock_a:
            async with lock_b:
                pass
        async with lock_b:
            async with lock_a:
                pass

    with pytest.raises(LockOrderError, match="lock-order cycle"):
        asyncio.run(scenario())
    sanitizer.locks.violations.clear()


def test_failed_nonblocking_acquire_leaves_no_phantom_hold(sanitizer):
    lock = sanitizer.tracked_lock("A")
    lock.acquire()
    result: list[bool] = []

    def try_acquire():
        result.append(lock.acquire(blocking=False))
        result.append(sanitizer.locks.held_now() == [])

    t = threading.Thread(target=try_acquire)
    t.start()
    t.join()
    lock.release()
    assert result == [False, True], "failed acquire must roll back its hold record"


# -- RT502: snapshot pins ------------------------------------------------------


def _snapshot_manager():
    from repro.model.database import Database
    from repro.storage.snapshot import SnapshotManager

    return SnapshotManager(Database())


def test_pin_leak_detected(sanitizer):
    manager = _snapshot_manager()
    snapshot = manager.current().pin()
    manager.swap(_snapshot_manager().current().database)  # retires it
    assert snapshot.retired
    with pytest.raises(PinLeakError, match="RT502"):
        sanitizer.assert_clean()
    # Reported state is consumed: the suite is not poisoned afterwards.
    sanitizer.assert_clean()


def test_balanced_pins_are_clean(sanitizer):
    manager = _snapshot_manager()
    snapshot = manager.current().pin()
    snapshot.unpin()
    manager.swap(manager.current().database)
    sanitizer.assert_clean()


def test_live_snapshot_pins_are_not_leaks(sanitizer):
    manager = _snapshot_manager()
    snapshot = manager.current().pin()
    sanitizer.assert_clean()  # pinned but not retired: a normal reader
    snapshot.unpin()


def test_unpin_below_zero_still_raises(sanitizer):
    manager = _snapshot_manager()
    snapshot = manager.current()
    with pytest.raises(RuntimeError, match="unpinned more times"):
        snapshot.unpin()


# -- factories and installation ------------------------------------------------


def test_new_lock_tracked_only_under_sanitizer(sanitizer):
    from repro._concurrency import new_lock
    from repro.devtools.sanitize import TrackedLock

    assert isinstance(new_lock("x"), TrackedLock)
    uninstall()
    assert not isinstance(new_lock("x"), TrackedLock)


def test_new_async_lock_tracked_only_under_sanitizer(sanitizer):
    from repro._concurrency import new_async_lock
    from repro.devtools.sanitize import TrackedAsyncLock

    assert isinstance(new_async_lock("x"), TrackedAsyncLock)
    uninstall()
    lock = new_async_lock("x")
    assert isinstance(lock, asyncio.Lock)
    assert not isinstance(lock, TrackedAsyncLock)


def test_install_from_env(monkeypatch):
    from repro.devtools.sanitize import SANITIZE_ENV_VAR, install_from_env

    previous = active_sanitizer()
    uninstall()
    try:
        monkeypatch.delenv(SANITIZE_ENV_VAR, raising=False)
        assert install_from_env() is None
        monkeypatch.setenv(SANITIZE_ENV_VAR, "1")
        assert install_from_env() is not None
    finally:
        uninstall()
        if previous is not None:
            import repro.devtools.sanitize as sanitize_module

            sanitize_module._ACTIVE = previous


def test_tracked_lock_is_context_manager_and_reports_locked(sanitizer):
    lock = sanitizer.tracked_lock("x")
    assert not lock.locked()
    with lock:
        assert lock.locked()
    assert not lock.locked()
