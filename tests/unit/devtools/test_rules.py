"""Fixture tests for the RT AST rules: each rule has a golden violation
it must fire on and a corrected twin it must stay silent on.

Fixture sources are embedded as strings and written to ``tmp_path``
(never on-disk modules: several deliberately contain the exact patterns
— bare except, ``except BaseException`` without re-raise — that the
repo's own ruff gate rejects).
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.devtools import RT_CODE_CATALOG, Baseline, lint_paths
from repro.devtools.linter import lint_file


def lint_source(tmp_path: Path, source: str, name: str = "fixture.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_file(path)


def codes(diagnostics) -> list[str]:
    return [d.code for d in diagnostics]


# -- RT101: blocking calls in async def --------------------------------------

RT101_FIRES = """
    import time

    async def handler():
        time.sleep(0.1)
"""

RT101_SILENT = """
    import asyncio
    import time

    async def handler():
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, time.sleep, 0.1)

    def sync_helper():
        time.sleep(0.1)  # not on the loop: sync function

    async def nested_scope():
        def inner():
            time.sleep(0.1)  # runs wherever inner is called, not here
        return inner
"""


def test_rt101_fires(tmp_path):
    report = lint_source(tmp_path, RT101_FIRES)
    assert codes(report) == ["RT101"]
    assert report[0].symbol == "handler"


def test_rt101_silent_on_corrected_twin(tmp_path):
    assert codes(lint_source(tmp_path, RT101_SILENT)) == []


def test_rt101_matches_method_tails(tmp_path):
    source = """
        async def drain(tenant):
            tenant.session.close()
    """
    assert codes(lint_source(tmp_path, source)) == ["RT101"]


# -- RT102: stack push without try/finally pop --------------------------------

RT102_FIRES = """
    from repro._concurrency import ThreadLocalStack

    _STACK = ThreadLocalStack()

    def activate(item):
        _STACK.push(item)
        do_work()
        _STACK.pop()
"""

RT102_SILENT = """
    from contextlib import contextmanager

    from repro._concurrency import ThreadLocalStack

    _STACK = ThreadLocalStack()

    @contextmanager
    def activate(item):
        _STACK.push(item)
        try:
            yield item
        finally:
            _STACK.pop()

    def activate_inside_try(item):
        try:
            _STACK.push(item)
            do_work()
        finally:
            _STACK.pop()

    @contextmanager
    def activate_via_cm(item):
        with _STACK.pushed(item):
            yield item
"""


def test_rt102_fires(tmp_path):
    report = lint_source(tmp_path, RT102_FIRES)
    assert codes(report) == ["RT102"]
    assert report[0].symbol == "activate"


def test_rt102_silent_on_corrected_twin(tmp_path):
    assert codes(lint_source(tmp_path, RT102_SILENT)) == []


def test_rt102_detects_threading_local_subclasses(tmp_path):
    source = """
        import threading

        class _ActiveStack(threading.local):
            def __init__(self):
                self.items = []

        _TLS = _ActiveStack()

        def activate(item):
            _TLS.items.append(item)
    """
    assert codes(lint_source(tmp_path, source)) == ["RT102"]


# -- RT103: mutation outside the declared lock --------------------------------

RT103_FIRES = """
    import threading

    __lock_registry__ = {"Counter": {"_count": "_lock"}}

    class Counter:
        def __init__(self):
            self._count = 0  # __init__ is exempt: no concurrent access yet
            self._lock = threading.Lock()

        def bump(self):
            self._count += 1
"""

RT103_SILENT = """
    import threading

    __lock_registry__ = {"Counter": {"_count": "_lock"}}

    class Counter:
        def __init__(self):
            self._count = 0
            self._lock = threading.Lock()

        def bump(self):
            with self._lock:
                self._count += 1

        def read(self):
            return self._count  # reads are not mutations
"""


def test_rt103_fires(tmp_path):
    report = lint_source(tmp_path, RT103_FIRES)
    assert codes(report) == ["RT103"]
    assert report[0].symbol == "Counter.bump"


def test_rt103_silent_on_corrected_twin(tmp_path):
    assert codes(lint_source(tmp_path, RT103_SILENT)) == []


def test_rt103_catches_mutator_methods(tmp_path):
    source = """
        __lock_registry__ = {"Box": {"items": "_lock"}}

        class Box:
            def add(self, x):
                self.items.append(x)
    """
    assert codes(lint_source(tmp_path, source)) == ["RT103"]


# -- RT201: cache-backed mutation without invalidation ------------------------

RT201_FIRES = """
    __cache_registry__ = {"entries": "invalidate"}

    def grow(node, entry):
        node.entries.append(entry)
"""

RT201_SILENT = """
    __cache_registry__ = {"entries": "invalidate"}

    def grow(node, entry):
        node.entries.append(entry)
        node.invalidate()

    def replace(node, items):
        node.entries = items
        node.invalidate()

    def untracked(node, entry):
        node.other.append(entry)  # field not in the registry
"""


def test_rt201_fires(tmp_path):
    report = lint_source(tmp_path, RT201_FIRES)
    assert codes(report) == ["RT201"]


def test_rt201_silent_on_corrected_twin(tmp_path):
    assert codes(lint_source(tmp_path, RT201_SILENT)) == []


def test_rt201_requires_matching_base(tmp_path):
    # Invalidating a *different* object does not satisfy the pairing.
    source = """
        __cache_registry__ = {"entries": "invalidate"}

        def grow(node, other, entry):
            node.entries.append(entry)
            other.invalidate()
    """
    assert codes(lint_source(tmp_path, source)) == ["RT201"]


def test_rt201_inline_waiver(tmp_path):
    source = """
        __cache_registry__ = {"entries": "invalidate"}

        def fresh(klass):
            node = klass()
            node.entries = []  # devtools: allow[RT201]
            return node
    """
    assert codes(lint_source(tmp_path, source)) == []


# -- RT301: governed loop without checkpoint ----------------------------------

RT301_FIRES = """
    def drain(heap, pages):
        rows = []
        for index in pages:
            rows.extend(heap.read_page(index))
        return rows
"""

RT301_SILENT = """
    def drain(heap, pages):
        rows = []
        for index in pages:
            checkpoint()
            rows.extend(heap.read_page(index))
        return rows

    def drain_generator(heap, pages):
        for index in pages:
            yield heap.read_page(index)  # generators hand control back

    def harmless(items):
        for item in items:
            item.accumulate()  # no IO/solver work in the loop
"""


def test_rt301_fires(tmp_path):
    report = lint_source(tmp_path, RT301_FIRES)
    assert codes(report) == ["RT301"]


def test_rt301_silent_on_corrected_twin(tmp_path):
    assert codes(lint_source(tmp_path, RT301_SILENT)) == []


# -- RT401 / RT402: exception hygiene -----------------------------------------

RT401_FIRES = """
    def recover_pages(path):
        try:
            return replay(path)
        except Exception:
            return None
"""

RT401_SILENT = """
    def recover_pages(path):
        try:
            return replay(path)
        except OSError:
            return None

    def recover_logged(path):
        try:
            return replay(path)
        except Exception:
            log()
            raise

    def ordinary_function(path):
        try:
            return parse(path)
        except Exception:
            return None  # not a durability/recovery path
"""


def test_rt401_fires(tmp_path):
    report = lint_source(tmp_path, RT401_FIRES)
    assert codes(report) == ["RT401"]
    assert report[0].symbol == "recover_pages"


def test_rt401_silent_on_corrected_twin(tmp_path):
    assert codes(lint_source(tmp_path, RT401_SILENT)) == []


RT402_FIRES = """
    def run(task):
        try:
            return task()
        except BaseException:
            return None
"""

RT402_SILENT = """
    def run(task):
        try:
            return task()
        except BaseException:
            cleanup()
            raise

    def narrow(task):
        try:
            return task()
        except Exception:
            return None
"""


def test_rt402_fires(tmp_path):
    assert codes(lint_source(tmp_path, RT402_FIRES)) == ["RT402"]


def test_rt402_fires_on_bare_except(tmp_path):
    source = """
        def run(task):
            try:
                return task()
            except:
                return None
    """
    assert codes(lint_source(tmp_path, source)) == ["RT402"]


def test_rt402_silent_on_corrected_twin(tmp_path):
    assert codes(lint_source(tmp_path, RT402_SILENT)) == []


# -- framework: baselines, fingerprints, rendering, catalog -------------------


def test_every_ast_rule_has_catalog_entry():
    from repro.devtools import all_rt_rules

    for rule in all_rt_rules():
        assert rule.code in RT_CODE_CATALOG


def test_fingerprint_is_line_independent(tmp_path):
    first = lint_source(tmp_path, RT101_FIRES, "mod_a.py")
    shifted = lint_source(tmp_path, "\n\n# comment\n" + textwrap.dedent(RT101_FIRES), "mod_a.py")
    assert first[0].fingerprint == shifted[0].fingerprint
    assert first[0].line != shifted[0].line


def test_baseline_filters_accepted_findings(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent(RT101_FIRES), encoding="utf-8")
    report = lint_paths([path])
    assert report.has_errors
    baseline = Baseline.from_report(report)
    assert not lint_paths([path], baseline=baseline)
    # Round-trip through the JSON file the CLI uses.
    baseline_file = tmp_path / "baseline.json"
    baseline.write(baseline_file)
    assert not lint_paths([path], baseline=Baseline.load(baseline_file))


def test_missing_baseline_file_is_empty():
    assert Baseline.load(Path("/nonexistent/baseline.json")).fingerprints == frozenset()


def test_report_renders_summary_and_clean_marker(tmp_path):
    clean = lint_source(tmp_path, "x = 1\n")
    from repro.devtools import RuntimeReport

    assert RuntimeReport(clean).render() == "ok: no findings"
    path = tmp_path / "bad.py"
    path.write_text(textwrap.dedent(RT101_FIRES), encoding="utf-8")
    rendered = lint_paths([path]).render()
    assert rendered.endswith("1 error")
    assert "RT101 error" in rendered


def test_select_limits_rules(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        textwrap.dedent(RT101_FIRES) + textwrap.dedent(RT402_FIRES),
        encoding="utf-8",
    )
    only_401 = lint_paths([path], select=["RT402"])
    assert codes(only_401) == ["RT402"]


# -- CLI ----------------------------------------------------------------------


def test_cli_exit_codes(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.py"
    bad.write_text(textwrap.dedent(RT101_FIRES), encoding="utf-8")
    assert main(["devtools", "lint", str(bad)]) == 2
    assert "RT101" in capsys.readouterr().out

    baseline = tmp_path / "baseline.json"
    assert main(["devtools", "lint", str(bad), "--write-baseline", str(baseline)]) == 0
    assert main(["devtools", "lint", str(bad), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "ok: no findings" in out


def test_cli_warnings_do_not_gate(tmp_path, capsys):
    from repro.cli import main

    warn_only = tmp_path / "warn.py"
    warn_only.write_text(textwrap.dedent(RT301_FIRES), encoding="utf-8")
    assert main(["devtools", "lint", str(warn_only)]) == 0
    assert "RT301 warning" in capsys.readouterr().out
