"""Unit tests for the multi-tenant query server (happy paths, tenancy,
budgets, metrics).  The failure-mode suite — disconnects, shedding,
drain — lives in ``tests/fault/test_server_faults.py``."""

import pytest

from repro.constraints import parse_constraints
from repro.model import ConstraintRelation, Database, HTuple, Schema, constraint, relational
from repro.obs import SERVER_EXHAUSTED, SERVER_REPLIES_OK, SERVER_REQUESTS
from repro.server import ServerConfig, ServerReplyError, ServerThread


@pytest.fixture(scope="module")
def database() -> Database:
    s = Schema([relational("id"), constraint("t")])
    r = ConstraintRelation(
        s,
        [
            HTuple(s, {"id": "a"}, parse_constraints("0 <= t, t <= 10")),
            HTuple(s, {"id": "b"}, parse_constraints("5 <= t, t <= 20")),
            HTuple(s, {"id": "c"}, parse_constraints("15 <= t, t <= 30")),
        ],
        "R",
    )
    return Database({"R": r})


@pytest.fixture(scope="module")
def harness(database):
    with ServerThread(database, ServerConfig(workers=2, max_queue=4)) as h:
        yield h


class TestBasicOps:
    def test_ping(self, harness):
        reply = harness.client().ping()
        assert reply["ok"] and reply["pong"] and not reply["draining"]

    def test_query_returns_result_payload(self, harness):
        with harness.client(tenant="basic") as client:
            result = client.execute("R0 = select t >= 15 from R")
        assert result["target"] == "R0"
        assert result["rows"] == 2
        assert result["truncated"] is False
        assert "R0" in result["text"]

    def test_unknown_op_is_protocol_error(self, harness):
        with harness.client() as client:
            reply = client.request({"op": "frobnicate"})
        assert not reply["ok"]
        assert reply["status"] == 400
        assert reply["error"]["kind"] == "protocol_error"

    def test_missing_statement_is_protocol_error(self, harness):
        with harness.client() as client:
            reply = client.request({"op": "query", "tenant": "basic"})
        assert reply["status"] == 400
        assert reply["error"]["kind"] == "protocol_error"

    def test_parse_error_is_structured_400(self, harness):
        with harness.client(tenant="basic") as client:
            reply = client.query("R0 = selec t >= 15 from R")
        assert reply["status"] == 400
        assert reply["error"]["kind"] == "parse_error"
        assert "Traceback" not in reply["error"]["message"]

    def test_request_id_is_echoed(self, harness):
        with harness.client() as client:
            reply = client.request({"op": "ping", "id": "my-id-42"})
        assert reply["id"] == "my-id-42"


class TestTenancy:
    def test_bindings_persist_per_tenant(self, harness):
        with harness.client(tenant="alice") as client:
            client.execute("R0 = select t >= 15 from R")
            result = client.execute("R1 = project R0 on id")
        assert result["rows"] == 2

    def test_tenants_are_isolated(self, harness):
        with harness.client(tenant="bob") as bob:
            bob.execute("Priv = select t >= 15 from R")
            with harness.client(tenant="carol") as carol:
                reply = carol.query("X = project Priv on id")
        assert not reply["ok"]
        assert reply["error"]["kind"] == "query_error"

    def test_script_spans_requests(self, harness):
        with harness.client(tenant="script") as client:
            result = client.run_script(
                "R0 = select t >= 5 from R\n# comment\nR1 = project R0 on id\n"
            )
        assert result["target"] == "R1"

    def test_stats_reports_tenants(self, harness):
        with harness.client(tenant="statst") as client:
            client.execute("R0 = select t >= 15 from R")
            stats = client.stats()
        assert stats["ok"]
        assert stats["tenants"]["statst"]["queries"] >= 1
        assert stats["counters"][SERVER_REQUESTS] > 0
        assert stats["counters"][SERVER_REPLIES_OK] > 0
        # Engine counters merged through the same pipeline: the solver
        # work done inside tenant sessions shows up server-side.
        assert stats["counters"].get("solver.requests", 0) > 0


class TestBudgets:
    def test_request_budget_exhaustion_is_429(self, harness):
        with harness.client(tenant="tight") as client:
            reply = client.query("J = join R and R", budget={"output_tuples": 1})
        assert reply["status"] == 429
        assert reply["error"]["kind"] == "output_limit_exceeded"
        assert reply["error"]["resource"] == "output_tuples"
        assert reply["error"]["consumed"] > reply["error"]["limit"]
        assert harness.counter(SERVER_EXHAUSTED) >= 1

    def test_partial_mode_returns_truncated_prefix(self, harness):
        with harness.client(tenant="partial") as client:
            result = client.execute(
                "J = join R and R",
                budget={"output_tuples": 1, "on_exhausted": "partial"},
            )
        assert result["truncated"] is True
        assert result["rows"] == 1
        assert result["exhausted"]["limit.output_tuples"] == 1

    def test_session_stays_usable_after_exhaustion(self, harness):
        with harness.client(tenant="resilient") as client:
            with pytest.raises(ServerReplyError) as excinfo:
                client.execute("J = join R and R", budget={"output_tuples": 1})
            assert excinfo.value.kind == "output_limit_exceeded"
            result = client.execute("R0 = select t >= 15 from R")
        assert result["rows"] == 2

    def test_server_cap_cannot_be_loosened(self, database):
        config = ServerConfig(workers=1, output_tuples=2)
        with ServerThread(database, config) as h:
            with h.client(tenant="capped") as client:
                # Asking for a bigger budget than the server allows must
                # still be clamped to the server's cap.
                reply = client.query("J = join R and R", budget={"output_tuples": 1000})
        assert reply["status"] == 429
        assert reply["error"]["limit"] == 2

    def test_bad_budget_knob_is_protocol_error(self, harness):
        with harness.client() as client:
            reply = client.query("R0 = select t >= 0 from R", budget={"nope": 3})
        assert reply["status"] == 400
        assert reply["error"]["kind"] == "protocol_error"

    def test_non_positive_budget_rejected(self, harness):
        with harness.client() as client:
            reply = client.query("R0 = select t >= 0 from R", budget={"output_tuples": 0})
        assert reply["status"] == 400


class TestConfigValidation:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            ServerConfig(workers=0)

    def test_rejects_negative_queue(self):
        with pytest.raises(ValueError):
            ServerConfig(max_queue=-1)

    def test_rejects_bad_exhaustion_mode(self):
        with pytest.raises(ValueError):
            ServerConfig(on_exhausted="explode")
