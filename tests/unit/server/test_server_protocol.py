"""Unit tests for the wire protocol: frame codec and error mapping."""

import struct

import pytest

from repro.errors import (
    CorruptPageError,
    DeadlineExceeded,
    DNFBudgetExceeded,
    IOBudgetExceeded,
    OutputLimitExceeded,
    ParseError,
    ProtocolError,
    QueryError,
    ResourceExhausted,
    SolverBudgetExceeded,
    StaticAnalysisError,
    StorageError,
    TransientStorageError,
)
from repro.server import (
    MAX_FRAME_BYTES,
    STATUS_BAD_REQUEST,
    STATUS_EXHAUSTED,
    STATUS_INTERNAL,
    classify_error,
    decode_payload,
    encode_frame,
    error_reply,
)
from repro.server.protocol import draining_reply, ok_reply, shed_reply


class TestFrameCodec:
    def test_roundtrip(self):
        payload = {"op": "query", "tenant": "t", "statement": "R0 = select t >= 4 from R"}
        frame = encode_frame(payload)
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame) - 4
        assert decode_payload(frame[4:]) == payload

    def test_non_ascii_roundtrip(self):
        payload = {"statement": "sélect ∀x"}
        frame = encode_frame(payload)
        assert decode_payload(frame[4:]) == payload

    def test_fractions_serialized_as_floats(self):
        from fractions import Fraction

        frame = encode_frame({"consumed": Fraction(1, 2)})
        assert decode_payload(frame[4:]) == {"consumed": 0.5}

    def test_invalid_json_rejected(self):
        with pytest.raises(ProtocolError, match="JSON"):
            decode_payload(b"{nope")

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_payload(b"[1, 2]")

    def test_oversized_frame_rejected_on_encode(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})


class TestErrorClassification:
    @pytest.mark.parametrize(
        "exc, kind",
        [
            (DeadlineExceeded("d"), "deadline_exceeded"),
            (SolverBudgetExceeded("s"), "solver_budget_exceeded"),
            (DNFBudgetExceeded("d"), "dnf_budget_exceeded"),
            (OutputLimitExceeded("o"), "output_limit_exceeded"),
            (IOBudgetExceeded("i"), "io_budget_exceeded"),
            (ResourceExhausted("r"), "resource_exhausted"),
        ],
    )
    def test_exhaustion_taxonomy_is_429(self, exc, kind):
        assert classify_error(exc) == (STATUS_EXHAUSTED, kind)

    @pytest.mark.parametrize(
        "exc, kind",
        [
            (ParseError("bad", line=1, column=2), "parse_error"),
            (StaticAnalysisError("rejected"), "static_analysis_error"),
            (ProtocolError("bad frame"), "protocol_error"),
            (QueryError("no such relation"), "query_error"),
        ],
    )
    def test_client_errors_are_400(self, exc, kind):
        assert classify_error(exc) == (STATUS_BAD_REQUEST, kind)

    @pytest.mark.parametrize(
        "exc, kind",
        [
            (CorruptPageError("bad page"), "corrupt_page"),
            (TransientStorageError("flaky"), "transient_storage_error"),
            (StorageError("disk gone"), "storage_error"),
            (OSError("io"), "storage_error"),
            (RuntimeError("bug"), "internal_error"),
        ],
    )
    def test_server_faults_are_500(self, exc, kind):
        assert classify_error(exc) == (STATUS_INTERNAL, kind)


class TestReplyShapes:
    def test_exhaustion_reply_carries_taxonomy_fields(self):
        exc = OutputLimitExceeded(
            "over", resource="output_tuples", consumed=11, limit=10,
            snapshot={"consumed.output_tuples": 11, "deadline.remaining_seconds": 0.0},
        )
        reply = error_reply(exc, request_id=7)
        assert reply == {
            "ok": False,
            "id": 7,
            "status": 429,
            "error": {
                "kind": "output_limit_exceeded",
                "message": "over",
                "resource": "output_tuples",
                "consumed": 11,
                "limit": 10,
                "snapshot": {
                    "consumed.output_tuples": 11,
                    "deadline.remaining_seconds": 0.0,
                },
            },
        }

    def test_error_reply_never_contains_a_traceback(self):
        try:
            raise RuntimeError("inner bug")
        except RuntimeError as exc:
            reply = error_reply(exc, request_id=1)
        text = str(reply)
        assert "Traceback" not in text
        assert "File" not in text

    def test_shed_reply_shape(self):
        reply = shed_reply(3, queued=10, capacity=10)
        assert reply["status"] == 429
        assert reply["error"]["kind"] == "overloaded"
        assert reply["error"]["consumed"] == 10
        assert reply["error"]["limit"] == 10

    def test_draining_reply_shape(self):
        reply = draining_reply(None)
        assert reply["status"] == 503
        assert reply["error"]["kind"] == "shutting_down"

    def test_ok_reply_shape(self):
        reply = ok_reply(9, result={"rows": 1})
        assert reply == {"ok": True, "id": 9, "status": 200, "result": {"rows": 1}}
