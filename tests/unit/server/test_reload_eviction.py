"""Unit tests for hot reload and idle-session eviction."""

import threading
import time

import pytest

from repro.constraints import parse_constraints
from repro.model import ConstraintRelation, Database, HTuple, Schema, constraint, relational
from repro.obs import SERVER_EVICTED, SERVER_RELOAD_ERRORS, SERVER_RELOADS
from repro.server import ServerConfig, ServerThread
from repro.storage.wal import atomic_write_text
from repro.storage.serialization import dumps


def make_database(marker: str) -> Database:
    s = Schema([relational("id"), constraint("t")])
    r = ConstraintRelation(
        s,
        [HTuple(s, {"id": marker}, parse_constraints("0 <= t, t <= 10"))],
        "R",
    )
    return Database({"R": r})


class TestServerConfigKnobs:
    def test_session_ttl_validated(self):
        with pytest.raises(ValueError, match="session_ttl"):
            ServerConfig(session_ttl=0)
        with pytest.raises(ValueError, match="session_ttl"):
            ServerConfig(session_ttl=-1.5)
        assert ServerConfig(session_ttl=2.5).session_ttl == 2.5
        assert ServerConfig().session_ttl is None


class TestIdleEviction:
    def test_idle_session_evicted_and_recreated(self):
        database = make_database("a")
        config = ServerConfig(workers=1, session_ttl=0.15)
        with ServerThread(database, config) as harness:
            with harness.client(tenant="sleepy") as client:
                client.execute("B0 = select t >= 0 from R")
                stats = client.stats()
                assert "sleepy" in stats["tenants"]
                deadline = time.monotonic() + 10.0
                while "sleepy" in client.stats()["tenants"]:
                    assert time.monotonic() < deadline, "eviction never happened"
                    time.sleep(0.05)
                assert harness.counter(SERVER_EVICTED) >= 1
                # The tenant comes back lazily — fresh session, no bindings.
                reply = client.query("B1 = select t >= 1 from B0")
                assert not reply["ok"]  # B0 binding was dropped with the session
                assert client.execute("B1 = select t >= 1 from R")["rows"] == 1
                assert "sleepy" in client.stats()["tenants"]

    def test_busy_session_not_evicted(self):
        database = make_database("a")
        config = ServerConfig(workers=2, max_queue=4, session_ttl=0.1)
        with ServerThread(database, config) as harness:
            with harness.client() as sleeper, harness.client() as watcher:
                done: list[bool] = []

                def hold() -> None:
                    # Holds the tenant lock well past the TTL.
                    sleeper.sleep(0.6, tenant="busy")
                    done.append(True)

                thread = threading.Thread(target=hold)
                thread.start()
                try:
                    # Several sweep intervals into the sleep the tenant is
                    # idle by the clock but busy by the lock — not evicted.
                    time.sleep(0.35)
                    stats = watcher.stats()
                    assert "busy" in stats["tenants"]
                    assert stats["tenants"]["busy"]["busy"] is True
                finally:
                    thread.join(timeout=30)
                assert done

    def test_no_ttl_means_no_sweeper(self):
        database = make_database("a")
        with ServerThread(database, ServerConfig(workers=1)) as harness:
            with harness.client(tenant="t") as client:
                client.execute("B0 = select t >= 0 from R")
                time.sleep(0.3)
                assert "t" in client.stats()["tenants"]
                assert harness.counter(SERVER_EVICTED) == 0


class TestReload:
    def write_image(self, path, marker: str) -> None:
        atomic_write_text(path, dumps(make_database(marker)))

    def test_reload_swaps_snapshot(self, tmp_path):
        path = tmp_path / "db.cdb"
        self.write_image(path, "old")
        database = make_database("old")
        with ServerThread(database, ServerConfig(workers=1), source=path) as harness:
            with harness.client(tenant="t") as client:
                assert "old" in client.execute("X = select t >= 0 from R")["text"]
                self.write_image(path, "new")
                reply = client.reload()
                assert reply["ok"] and reply["version"] == 2
                assert reply["retired_sessions"] == 1
                assert "new" in client.execute("X = select t >= 0 from R")["text"]
                assert harness.counter(SERVER_RELOADS) == 1

    def test_stats_surface_snapshot_and_reload_state(self, tmp_path):
        path = tmp_path / "db.cdb"
        self.write_image(path, "v")
        with ServerThread(make_database("v"), ServerConfig(workers=1), source=path) as harness:
            with harness.client(tenant="t") as client:
                client.execute("X = select t >= 0 from R")
                stats = client.stats()
                assert stats["snapshot"]["version"] == 1
                assert stats["snapshot"]["readers"] == 1
                assert stats["reloading"] is False
                assert stats["tenants"]["t"]["snapshot_version"] == 1
                assert stats["tenants"]["t"]["idle_seconds"] >= 0
                client.reload()
                stats = client.stats()
                assert stats["snapshot"]["version"] == 2

    def test_corrupt_new_image_fails_reload_and_keeps_old_snapshot(self, tmp_path):
        path = tmp_path / "db.cdb"
        self.write_image(path, "good")
        with ServerThread(make_database("good"), ServerConfig(workers=1), source=path) as harness:
            with harness.client(tenant="t") as client:
                # Valid header, truncated body: typed corruption on load.
                text = dumps(make_database("bad"))
                atomic_write_text(path, text[: text.rindex("end")])
                reply = client.reload()
                assert not reply["ok"]
                assert reply["error"]["kind"] == "corrupt_page"
                assert harness.counter(SERVER_RELOAD_ERRORS) == 1
                # The old snapshot still serves.
                assert "good" in client.execute("X = select t >= 0 from R")["text"]
