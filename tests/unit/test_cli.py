"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.storage import load_database, save_database
from repro.workloads import figure2_database


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "hurricane.cdb"
    save_database(figure2_database(), path)
    return path


class TestQueryCommand:
    def test_inline_expression(self, db_file, capsys):
        code = main(
            ["query", str(db_file), "-e", "R0 = select landId=A from Landownership"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Smith" in out and "Jones" in out

    def test_multiple_inline_statements(self, db_file, capsys):
        code = main(
            [
                "query",
                str(db_file),
                "-e",
                "R0 = join Hurricane and Land",
                "-e",
                "R1 = project R0 on landId",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "landId=B" in out and "landId=C" in out

    def test_script_file(self, db_file, tmp_path, capsys):
        script = tmp_path / "query.cqa"
        script.write_text(
            "R0 = join Hurricane and Land\nR1 = project R0 on landId\n",
            encoding="utf-8",
        )
        assert main(["query", str(db_file), str(script)]) == 0
        assert "landId=C" in capsys.readouterr().out

    def test_save_results(self, db_file, tmp_path, capsys):
        out_path = tmp_path / "out.cdb"
        code = main(
            [
                "query",
                str(db_file),
                "-e",
                "R0 = project Land on landId",
                "--save",
                str(out_path),
            ]
        )
        assert code == 0
        saved = load_database(out_path)
        assert "R0" in saved
        assert len(saved["R0"]) == 4

    def test_simplify_and_limit_flags(self, db_file, capsys):
        code = main(
            ["query", str(db_file), "--simplify", "--limit", "2",
             "-e", "R0 = select t >= 0 from Landownership"]
        )
        assert code == 0
        assert "more)" in capsys.readouterr().out  # limit reached

    def test_missing_script_and_expression(self, db_file, capsys):
        assert main(["query", str(db_file)]) == 2
        assert "script" in capsys.readouterr().err

    def test_explain_prints_plans_without_results(self, db_file, capsys):
        code = main(
            [
                "query",
                str(db_file),
                "--explain",
                "-e",
                "R0 = join Hurricane and Land",
                "-e",
                "R1 = project R0 on landId",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Scan(Hurricane)" in out and "Project(landId)" in out
        assert "landId=C" not in out  # plans only, no result tuples

    def test_shipped_sample_database(self, capsys):
        from pathlib import Path

        sample = Path(__file__).resolve().parents[2] / "examples" / "data"
        code = main(
            ["query", str(sample / "hurricane.cdb"), str(sample / "owners_hit.cqa")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Lee" in out and "Garcia" in out

    def test_profile_reports_per_operator_metrics(self, db_file, capsys):
        code = main(
            [
                "query",
                str(db_file),
                "--profile",
                "-e",
                "R0 = join Hurricane and Land",
                "-e",
                "R1 = project R0 on landId",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "landId=B" in captured.out  # final result still printed
        assert "EXPLAIN ANALYZE R0 = join Hurricane and Land" in captured.err
        assert "rows=" in captured.err and "time=" in captured.err
        assert "-- session metrics --" in captured.err

    def test_query_error_reported(self, db_file, capsys):
        code = main(["query", str(db_file), "-e", "R0 = project Nope on x"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_database_file(self, tmp_path, capsys):
        code = main(["query", str(tmp_path / "none.cdb"), "-e", "R0 = project X on y"])
        assert code == 5  # storage-class failure
        assert "error[storage]" in capsys.readouterr().err

    def test_parse_error_exit_code(self, db_file, capsys):
        code = main(["query", str(db_file), "-e", "R0 = = nonsense"])
        assert code == 3
        assert "error[parse]" in capsys.readouterr().err

    def test_budget_exhausted_exit_code(self, db_file, capsys):
        code = main(
            ["query", str(db_file), "--max-output", "1",
             "-e", "R0 = select t >= 0 from Landownership"]
        )
        assert code == 4
        assert "error[budget:output_tuples]" in capsys.readouterr().err

    def test_budget_partial_mode_prints_truncated_result(self, db_file, capsys):
        code = main(
            ["query", str(db_file), "--max-output", "1", "--on-exhausted", "partial",
             "-e", "R0 = select t >= 0 from Landownership"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "R0" in captured.out
        assert "truncated" in captured.err


class TestShowCommand:
    def test_show_all(self, db_file, capsys):
        assert main(["show", str(db_file)]) == 0
        out = capsys.readouterr().out
        for name in ("Hurricane", "Land", "Landownership"):
            assert name in out

    def test_show_one(self, db_file, capsys):
        assert main(["show", str(db_file), "Land"]) == 0
        out = capsys.readouterr().out
        assert "Land" in out and "Hurricane" not in out

    def test_show_unknown_relation(self, db_file, capsys):
        assert main(["show", str(db_file), "Nope"]) == 1


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "q1_owners_of_A" in out
