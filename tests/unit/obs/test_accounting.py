"""Conservation laws tying the index, the buffer pool and the registry.

Every logical node access must appear as exactly one buffer-pool request;
every request is a hit or a miss; physical reads are exactly the misses.
These are the invariants EXPLAIN ANALYZE and the experiment figures rely
on, so they are asserted directly.
"""

import random

from repro.indexing import MBR, RStarTree
from repro.obs import (
    LOGICAL_NODE_ACCESSES,
    PHYSICAL_NODE_ACCESSES,
    POOL_EVICTIONS,
    POOL_HITS,
    POOL_MISSES,
    POOL_REQUESTS,
    MetricsRegistry,
)
from repro.storage import BufferPool


def build_tree(n: int = 300, seed: int = 7) -> RStarTree:
    rng = random.Random(seed)
    tree = RStarTree(dimensions=2, max_entries=8)
    for i in range(n):
        x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
        tree.insert(MBR((x, y), (x + 10, y + 10)), i)
    return tree


def queries(count: int = 15, seed: int = 3) -> list[MBR]:
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        x, y = rng.uniform(0, 800), rng.uniform(0, 800)
        out.append(MBR((x, y), (x + 150, y + 150)))
    return out


class TestConservation:
    def test_logical_accesses_equal_pool_requests(self):
        registry = MetricsRegistry()
        tree = build_tree()
        pool = BufferPool(capacity=64, registry=registry)
        tree.attach_buffer_pool(pool)
        tree.bind_registry(registry)
        for q in queries():
            tree.search(q)
        assert registry.value(LOGICAL_NODE_ACCESSES) > 0
        assert registry.value(LOGICAL_NODE_ACCESSES) == registry.value(POOL_REQUESTS)
        assert registry.value(POOL_REQUESTS) == pool.stats.requests

    def test_hits_plus_misses_equal_requests(self):
        registry = MetricsRegistry()
        tree = build_tree()
        pool = BufferPool(capacity=16, registry=registry)
        tree.attach_buffer_pool(pool)
        tree.bind_registry(registry)
        for q in queries():
            tree.search(q)
        assert (
            registry.value(POOL_HITS) + registry.value(POOL_MISSES)
            == registry.value(POOL_REQUESTS)
        )
        assert pool.stats.hits + pool.stats.misses == pool.stats.requests

    def test_physical_accesses_are_exactly_the_misses(self):
        registry = MetricsRegistry()
        tree = build_tree()
        pool = BufferPool(capacity=16, registry=registry)
        tree.attach_buffer_pool(pool)
        tree.bind_registry(registry)
        for q in queries():
            tree.search(q)
        assert registry.value(PHYSICAL_NODE_ACCESSES) == registry.value(POOL_MISSES)
        assert registry.value(PHYSICAL_NODE_ACCESSES) == pool.stats.misses

    def test_without_a_pool_physical_equals_logical(self):
        registry = MetricsRegistry()
        tree = build_tree()
        tree.bind_registry(registry)
        for q in queries():
            tree.search(q)
        assert registry.value(PHYSICAL_NODE_ACCESSES) == registry.value(
            LOGICAL_NODE_ACCESSES
        )


class TestEvictions:
    def test_evictions_at_the_capacity_boundary(self):
        registry = MetricsRegistry()
        pool = BufferPool(capacity=3, registry=registry)
        for page in range(5):  # 5 distinct pages through a 3-page pool
            assert pool.access(("t", page)) is False
        assert pool.stats.evictions == 2
        assert registry.value(POOL_EVICTIONS) == 2
        assert len(pool) == 3

    def test_exactly_at_capacity_evicts_nothing(self):
        pool = BufferPool(capacity=3)
        for page in range(3):
            pool.access(("t", page))
        assert pool.stats.evictions == 0
        for page in range(3):  # all resident
            assert pool.access(("t", page)) is True
        assert pool.stats.hits == 3

    def test_hit_rate_with_zero_requests(self):
        assert BufferPool(capacity=4).stats.hit_rate == 0.0


class TestStableIdentity:
    def test_discarded_node_ids_are_never_reused(self):
        # Regression: pages were keyed on id(node); CPython recycles a
        # discarded node's address, so a *new* node could inherit a cached
        # page and report a phantom hit.  Stable monotonic ids cannot
        # collide by construction.
        tree = RStarTree(dimensions=2, max_entries=4)
        rng = random.Random(11)
        boxes = []
        for i in range(120):
            x, y = rng.uniform(0, 100), rng.uniform(0, 100)
            boxes.append((MBR((x, y), (x + 1, y + 1)), i))
            tree.insert(*boxes[-1])
        for _ in range(4):  # churn: deletes + inserts discard/create nodes
            before = {node.node_id for node in tree._iter_nodes()}
            for mbr, payload in boxes[:40]:
                tree.delete(mbr, payload)
            for mbr, payload in boxes[:40]:
                tree.insert(mbr, payload)
            after = {node.node_id for node in tree._iter_nodes()}
            # A current id either survived the churn or is brand new —
            # never the id of a node discarded earlier.
            for node_id in after:
                assert node_id in before or node_id > max(before)

    def test_fresh_tree_never_phantom_hits_a_warmed_pool(self):
        # Warm the pool with one tree, discard it, then attach a brand-new
        # tree: its first search must be 100% misses.  Under id() keying
        # the new tree's nodes could inherit the dead tree's recycled
        # addresses and "hit" pages they were never read into.
        pool = BufferPool(capacity=10_000)
        old = build_tree(seed=13)
        old.attach_buffer_pool(pool)
        old.search(MBR((0.0, 0.0), (1000.0, 1000.0)))  # warm every page
        assert pool.stats.misses > 0
        del old
        fresh = build_tree(seed=13)
        fresh.attach_buffer_pool(pool)
        pool.stats.reset()
        fresh.search(MBR((0.0, 0.0), (1000.0, 1000.0)))
        assert pool.stats.requests == fresh.search_accesses > 0
        assert pool.stats.hits == 0

    def test_two_trees_share_a_pool_without_key_collisions(self):
        pool = BufferPool(capacity=10_000)
        a, b = build_tree(seed=1), build_tree(seed=2)
        a.attach_buffer_pool(pool)
        b.attach_buffer_pool(pool)
        a.search(MBR((0.0, 0.0), (1000.0, 1000.0)))
        b.search(MBR((0.0, 0.0), (1000.0, 1000.0)))
        # First full sweep of each tree is all misses: b's pages can never
        # alias a's even though both trees number nodes from the same pool.
        assert pool.stats.hits == 0
        assert pool.stats.requests == a.search_accesses + b.search_accesses

    def test_tree_ids_are_distinct(self):
        assert build_tree(n=5).tree_id != build_tree(n=5).tree_id


class TestResetContract:
    def test_reset_counters_cascades_to_pool_stats(self):
        tree = build_tree()
        pool = BufferPool(capacity=64)
        tree.attach_buffer_pool(pool)
        tree.search(MBR((0.0, 0.0), (500.0, 500.0)))
        assert pool.stats.requests > 0
        tree.reset_counters()
        assert tree.search_accesses == 0
        assert tree.write_accesses == 0
        assert pool.stats.requests == 0
        assert len(pool) > 0  # pages stay resident — only stats reset

    def test_clear_drops_pages_and_stats(self):
        pool = BufferPool(capacity=8)
        for page in range(12):
            pool.access(("t", page))
        pool.clear()
        assert len(pool) == 0
        assert pool.stats.requests == 0
        assert pool.stats.evictions == 0
