"""Unit tests for the metrics registry: counters, timers, scopes, spans."""

from repro.obs import (
    LOGICAL_NODE_ACCESSES,
    POOL_REQUESTS,
    MetricsRegistry,
    current_registry,
    default_registry,
    record,
)


class TestCounters:
    def test_add_and_value(self):
        registry = MetricsRegistry()
        registry.add("x", 3)
        registry.add("x")
        assert registry.value("x") == 4

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().value("nope") == 0

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        registry.add("x", 5)
        with registry.timed("t"):
            pass
        registry.reset()
        assert registry.value("x") == 0
        assert registry.timer("t").calls == 0

    def test_snapshot_includes_timers(self):
        registry = MetricsRegistry()
        registry.add("x", 2)
        with registry.timed("t"):
            pass
        snap = registry.snapshot()
        assert snap["x"] == 2
        assert snap["t.seconds"] >= 0.0

    def test_report_formats_nonzero_metrics(self):
        registry = MetricsRegistry()
        assert registry.report() == "(no metrics recorded)"
        registry.add("x", 7)
        assert "x" in registry.report() and "7" in registry.report()


class TestTimers:
    def test_timed_accumulates(self):
        registry = MetricsRegistry()
        with registry.timed("t"):
            pass
        with registry.timed("t"):
            pass
        timer = registry.timer("t")
        assert timer.calls == 2
        assert timer.total_seconds >= 0.0
        assert timer.mean_seconds == timer.total_seconds / 2

    def test_mean_of_unused_timer(self):
        assert MetricsRegistry().timer("t").mean_seconds == 0.0


class TestScopes:
    def test_scope_captures_only_its_window(self):
        registry = MetricsRegistry()
        registry.add("x")  # before: not captured
        with registry.scope() as scoped:
            registry.add("x", 2)
        registry.add("x")  # after: not captured
        assert scoped == {"x": 2}
        assert registry.value("x") == 4

    def test_nested_scopes_both_capture(self):
        registry = MetricsRegistry()
        with registry.scope() as outer:
            registry.add("x")
            with registry.scope() as inner:
                registry.add("x", 2)
        assert inner == {"x": 2}
        assert outer == {"x": 3}

    def test_equal_content_frames_pop_correctly(self):
        # Regression: frame teardown must remove by identity — removing by
        # equality pops the wrong (equal, e.g. both-empty) dict and the
        # outer scope then loses its increments.
        registry = MetricsRegistry()
        with registry.scope() as outer:
            with registry.scope():
                pass  # inner == outer == {} here
            registry.add("x")
        assert outer == {"x": 1}

    def test_sibling_scopes_do_not_leak(self):
        registry = MetricsRegistry()
        with registry.scope() as first:
            registry.add("x")
        with registry.scope() as second:
            registry.add("x", 5)
        assert first == {"x": 1}
        assert second == {"x": 5}


class TestTraces:
    def test_trace_builds_a_span_tree(self):
        registry = MetricsRegistry()
        with registry.trace("root", kind="Root") as root:
            registry.add(LOGICAL_NODE_ACCESSES)
            with registry.trace("child", kind="Child") as child:
                registry.add(LOGICAL_NODE_ACCESSES, 2)
                child.rows = 7
        assert registry.last_trace is root
        assert root.children == [child]
        assert child.rows == 7
        assert child.get(LOGICAL_NODE_ACCESSES) == 2
        assert root.get(LOGICAL_NODE_ACCESSES) == 3  # inclusive
        assert root.exclusive(LOGICAL_NODE_ACCESSES) == 1
        assert root.elapsed >= child.elapsed >= 0.0

    def test_last_trace_set_only_at_root(self):
        registry = MetricsRegistry()
        with registry.trace("root"):
            with registry.trace("child"):
                pass
            assert registry.last_trace is None  # root still open
        assert registry.last_trace is not None
        assert registry.last_trace.name == "root"

    def test_walk_and_find(self):
        registry = MetricsRegistry()
        with registry.trace("a", kind="Join") as a:
            with registry.trace("b", kind="Scan"):
                pass
            with registry.trace("c", kind="Scan"):
                pass
        assert [s.name for s in a.walk()] == ["a", "b", "c"]
        assert len(a.find("Scan")) == 2

    def test_pretty_renders_rows_counters_time(self):
        registry = MetricsRegistry()
        with registry.trace("op") as span:
            registry.add(POOL_REQUESTS, 4)
            span.rows = 2
        text = span.pretty((("requests", POOL_REQUESTS),))
        assert "op" in text and "rows=2" in text
        assert "requests=4" in text and "time=" in text


class TestActiveRegistryStack:
    def test_record_defaults_to_the_default_registry(self):
        before = default_registry().value("unbound.metric")
        record("unbound.metric")
        assert default_registry().value("unbound.metric") == before + 1

    def test_scope_activates_its_registry(self):
        registry = MetricsRegistry()
        with registry.scope():
            assert current_registry() is registry
            record("x")
        assert registry.value("x") == 1

    def test_activate_restores_previous(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with outer.activate():
            with inner.activate():
                record("x")
            record("x")
        assert inner.value("x") == 1
        assert outer.value("x") == 1
