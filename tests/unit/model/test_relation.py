"""Unit tests for constraint relations."""

import pytest

from repro.constraints import parse_constraints
from repro.errors import SchemaError
from repro.model import (
    ConstraintRelation,
    HTuple,
    Schema,
    constraint,
    relational,
)


def schema() -> Schema:
    return Schema([relational("id"), constraint("t")])


def tup(id_value=None, formula=""):
    values = {"id": id_value} if id_value is not None else {}
    atoms = parse_constraints(formula) if formula else ()
    return HTuple(schema(), values, atoms)


class TestConstruction:
    def test_deduplicates(self):
        r = ConstraintRelation(schema(), [tup("a", "t <= 1"), tup("a", "t <= 1")])
        assert len(r) == 1

    def test_drops_unsatisfiable_tuples(self):
        r = ConstraintRelation(schema(), [tup("a", "t < 0, t > 0"), tup("b")])
        assert len(r) == 1

    def test_schema_mismatch_rejected(self):
        other = Schema([relational("id"), constraint("q")])
        with pytest.raises(SchemaError):
            ConstraintRelation(other, [tup("a")])

    def test_non_tuple_rejected(self):
        with pytest.raises(SchemaError):
            ConstraintRelation(schema(), ["nope"])  # type: ignore[list-item]

    def test_from_points(self):
        r = ConstraintRelation.from_points(
            schema(), [{"id": "a", "t": 1}, {"id": "b", "t": 2}]
        )
        assert len(r) == 2
        assert r.contains_point({"id": "a", "t": 1})
        assert not r.contains_point({"id": "a", "t": 2})

    def test_from_constraints(self):
        r = ConstraintRelation.from_constraints(
            schema(), [({"id": "a"}, parse_constraints("0 <= t, t <= 5"))]
        )
        assert r.contains_point({"id": "a", "t": 3})

    def test_with_name(self):
        r = ConstraintRelation(schema(), [tup("a")], "orig").with_name("renamed")
        assert r.name == "renamed"
        assert len(r) == 1


class TestSemantics:
    def test_contains_point_any_tuple(self):
        r = ConstraintRelation(schema(), [tup("a", "t <= 0"), tup("a", "t >= 5")])
        assert r.contains_point({"id": "a", "t": -1})
        assert r.contains_point({"id": "a", "t": 6})
        assert not r.contains_point({"id": "a", "t": 2})

    def test_groups_by_relational_values(self):
        r = ConstraintRelation(
            schema(), [tup("a", "t <= 0"), tup("a", "t >= 5"), tup("b")]
        )
        groups = r.groups()
        assert len(groups) == 2
        key_a = (("id", "a"),)
        assert len(groups[key_a]) == 2

    def test_equivalent_split_interval(self):
        whole = ConstraintRelation(schema(), [tup("a", "0 <= t, t <= 2")])
        split = ConstraintRelation(
            schema(), [tup("a", "0 <= t, t <= 1"), tup("a", "1 <= t, t <= 2")]
        )
        assert whole.equivalent(split)
        assert split.equivalent(whole)

    def test_not_equivalent_different_groups(self):
        a = ConstraintRelation(schema(), [tup("a")])
        b = ConstraintRelation(schema(), [tup("b")])
        assert not a.equivalent(b)

    def test_equivalent_requires_compatible_schema(self):
        other = Schema([relational("id"), constraint("q")])
        r = ConstraintRelation(schema(), [tup("a")])
        s = ConstraintRelation(other, [HTuple(other, {"id": "a"})])
        with pytest.raises(SchemaError):
            r.equivalent(s)


class TestSimplify:
    def test_absorbs_entailed_tuples_within_group(self):
        r = ConstraintRelation(
            schema(), [tup("a", "0 <= t, t <= 1"), tup("a", "0 <= t, t <= 5")]
        )
        s = r.simplify()
        assert len(s) == 1
        assert s.equivalent(r)

    def test_does_not_absorb_across_groups(self):
        r = ConstraintRelation(
            schema(), [tup("a", "0 <= t, t <= 1"), tup("b", "0 <= t, t <= 5")]
        )
        assert len(r.simplify()) == 2

    def test_simplifies_tuple_formulas(self):
        r = ConstraintRelation(schema(), [tup("a", "t <= 1, t <= 5, t <= 9")])
        (only,) = r.simplify().tuples
        assert len(only.formula) == 1


class TestMisc:
    def test_map_tuples(self):
        r = ConstraintRelation(schema(), [tup("a"), tup("b")])
        mapped = r.map_tuples(lambda t: None if t.value("id") == "a" else t)
        assert len(mapped) == 1

    def test_bool_and_iter(self):
        r = ConstraintRelation(schema(), [tup("a")])
        assert r
        assert not ConstraintRelation(schema(), [])
        assert list(r) == list(r.tuples)

    def test_pretty_includes_tuples(self):
        text = ConstraintRelation(schema(), [tup("a", "t <= 1")], "R").pretty()
        assert "R" in text and "id=a" in text

    def test_pretty_empty(self):
        assert "(empty)" in ConstraintRelation(schema(), []).pretty()

    def test_syntactic_equality_ignores_tuple_order(self):
        r1 = ConstraintRelation(schema(), [tup("a"), tup("b")])
        r2 = ConstraintRelation(schema(), [tup("b"), tup("a")])
        assert r1 == r2


class TestDatabase:
    def test_add_get_drop(self):
        from repro.model import Database

        db = Database()
        r = ConstraintRelation(schema(), [tup("a")])
        db.add("R", r)
        assert db.get("R").name == "R"
        assert "R" in db and len(db) == 1
        db.drop("R")
        assert "R" not in db

    def test_no_silent_overwrite(self):
        from repro.model import Database

        db = Database()
        r = ConstraintRelation(schema(), [])
        db.add("R", r)
        with pytest.raises(SchemaError):
            db.add("R", r)
        db.add("R", r, replace=True)  # explicit replacement allowed

    def test_missing_relation_error_lists_known(self):
        from repro.model import Database

        db = Database()
        db.add("Land", ConstraintRelation(schema(), []))
        with pytest.raises(SchemaError, match="Land"):
            db.get("Sea")
