"""Unit tests for attribute kinds, data types and NULL."""

from fractions import Fraction

import pytest

from repro.errors import SchemaError
from repro.model import NULL, AttributeKind, DataType, Null, coerce_value, format_value


class TestNull:
    def test_singleton(self):
        assert Null() is NULL
        assert Null() is Null()

    def test_falsy(self):
        assert not NULL

    def test_repr(self):
        assert repr(NULL) == "NULL"

    def test_distinct_from_values(self):
        assert NULL != 0
        assert NULL != ""
        assert NULL != Fraction(0)


class TestCoerceValue:
    def test_string(self):
        assert coerce_value("hello", DataType.STRING) == "hello"

    def test_string_rejects_number(self):
        with pytest.raises(SchemaError):
            coerce_value(3, DataType.STRING)

    def test_rational_from_int(self):
        assert coerce_value(3, DataType.RATIONAL) == Fraction(3)

    def test_rational_from_decimal_string(self):
        assert coerce_value("2.5", DataType.RATIONAL) == Fraction(5, 2)

    def test_rational_from_float_uses_decimal_repr(self):
        assert coerce_value(0.1, DataType.RATIONAL) == Fraction(1, 10)

    def test_rational_rejects_bool(self):
        with pytest.raises(SchemaError):
            coerce_value(True, DataType.RATIONAL)

    def test_null_passes_through_either_type(self):
        assert coerce_value(NULL, DataType.STRING) is NULL
        assert coerce_value(NULL, DataType.RATIONAL) is NULL


class TestFormatValue:
    def test_null(self):
        assert format_value(NULL) == "NULL"

    def test_string(self):
        assert format_value("abc") == "abc"

    def test_fraction(self):
        assert format_value(Fraction(5, 2)) == "2.5"
        assert format_value(Fraction(1, 3)) == "1/3"
        assert format_value(Fraction(4)) == "4"


class TestEnums:
    def test_kind_values(self):
        assert AttributeKind("relational") is AttributeKind.RELATIONAL
        assert AttributeKind("constraint") is AttributeKind.CONSTRAINT

    def test_type_values(self):
        assert DataType("string") is DataType.STRING
        assert DataType("rational") is DataType.RATIONAL
