"""Unit tests for heterogeneous tuples."""

from fractions import Fraction

import pytest

from repro.constraints import parse_constraints, parse_expression
from repro.errors import SchemaError
from repro.model import (
    NULL,
    DataType,
    HTuple,
    Schema,
    constraint,
    point_tuple,
    relational,
)


def schema() -> Schema:
    return Schema(
        [
            relational("name"),
            relational("age", DataType.RATIONAL),
            constraint("x"),
            constraint("y"),
        ]
    )


def make(values=None, formula=""):
    atoms = parse_constraints(formula) if formula else ()
    return HTuple(schema(), values or {}, atoms)


class TestConstruction:
    def test_missing_relational_becomes_null(self):
        t = make({"name": "ann"})
        assert t.value("age") is NULL

    def test_values_for_constraint_attribute_rejected(self):
        with pytest.raises(SchemaError, match="constraint attributes"):
            make({"x": 3})

    def test_values_for_unknown_attribute_rejected(self):
        with pytest.raises(SchemaError, match="unknown"):
            make({"zzz": 3})

    def test_formula_over_relational_attribute_rejected(self):
        with pytest.raises(SchemaError, match="non-constraint"):
            make({}, "age <= 30")

    def test_value_of_constraint_attribute_rejected(self):
        t = make({}, "x <= 1")
        with pytest.raises(SchemaError):
            t.value("x")

    def test_rational_coercion(self):
        t = make({"age": "2.5"})
        assert t.value("age") == Fraction(5, 2)


class TestSemantics:
    def test_contains_point(self):
        t = make({"name": "ann", "age": 40}, "0 <= x, x <= 1")
        point = {"name": "ann", "age": 40, "x": "1/2", "y": 99}
        assert t.contains_point(point)

    def test_broad_semantics_for_unconstrained_attribute(self):
        # y is never mentioned: any y belongs (broad interpretation).
        t = make({"name": "ann", "age": 40}, "x = 1")
        assert t.contains_point({"name": "ann", "age": 40, "x": 1, "y": 12345})

    def test_narrow_semantics_for_null(self):
        # age is NULL: the tuple matches no concrete age (narrow).
        t = make({"name": "ann"}, "x = 1")
        assert not t.contains_point({"name": "ann", "age": 40, "x": 1, "y": 0})

    def test_relational_value_mismatch(self):
        t = make({"name": "ann", "age": 40})
        assert not t.contains_point({"name": "bob", "age": 40, "x": 0, "y": 0})

    def test_point_missing_attribute_raises(self):
        t = make({"name": "ann", "age": 1})
        with pytest.raises(SchemaError):
            t.contains_point({"name": "ann", "age": 1, "x": 0})

    def test_is_empty(self):
        assert make({}, "x < 0, x > 0").is_empty()
        assert not make({"name": "ann"}).is_empty()

    def test_null_tuple_not_empty(self):
        # NULL rows are kept (like SQL rows), though they denote no points.
        assert not make({}).is_empty()


class TestSubstituteRelational:
    def test_substitutes_rational_value(self):
        t = make({"age": 40})
        e = t.substitute_relational(parse_expression("age + x"))
        assert e.variables == {"x"}
        assert e.constant == 40

    def test_null_returns_none(self):
        t = make({})
        assert t.substitute_relational(parse_expression("age + x")) is None

    def test_string_attribute_rejected(self):
        t = make({"name": "ann"})
        with pytest.raises(SchemaError):
            t.substitute_relational(parse_expression("name + 1"))

    def test_constraint_attributes_untouched(self):
        t = make({"age": 1})
        e = t.substitute_relational(parse_expression("x + y"))
        assert e.variables == {"x", "y"}


class TestTransformations:
    def test_project_drops_values_and_eliminates(self):
        t = make({"name": "ann", "age": 40}, "x = y, 0 <= y, y <= 2")
        p = t.project(["name", "x"])
        assert p.schema.names == ("name", "x")
        assert p.values == {"name": "ann"}
        assert p.formula.satisfied_by({"x": 2})
        assert not p.formula.satisfied_by({"x": 3})

    def test_rename_relational(self):
        t = make({"name": "ann"}).rename("name", "owner")
        assert t.value("owner") == "ann"

    def test_rename_constraint(self):
        t = make({}, "x <= 1").rename("x", "t")
        assert "t" in t.formula.variables

    def test_conjoin(self):
        t = make({}, "x <= 5").conjoin(parse_constraints("x >= 0"))
        assert len(t.formula) == 2

    def test_cast_to_reordered_schema(self):
        reordered = Schema(
            [
                constraint("y"),
                constraint("x"),
                relational("age", DataType.RATIONAL),
                relational("name"),
            ]
        )
        t = make({"name": "ann"}, "x <= 1").cast(reordered)
        assert t.schema == reordered
        assert t.value("name") == "ann"


class TestValueSemanticsAndDisplay:
    def test_equality(self):
        assert make({"name": "a"}, "x <= 1") == make({"name": "a"}, "x <= 1")
        assert make({"name": "a"}) != make({"name": "b"})

    def test_hashable(self):
        assert len({make({"name": "a"}), make({"name": "a"})}) == 1

    def test_str_shows_values_and_formula(self):
        text = str(make({"name": "ann"}, "x <= 1"))
        assert "name=ann" in text and "x <= 1" in text


class TestPointTuple:
    def test_constraint_attributes_become_equalities(self):
        t = point_tuple(schema(), {"name": "ann", "age": 3, "x": 1, "y": 2})
        assert t.contains_point({"name": "ann", "age": 3, "x": 1, "y": 2})
        assert not t.contains_point({"name": "ann", "age": 3, "x": 1, "y": 3})

    def test_missing_constraint_attribute_is_broad(self):
        t = point_tuple(schema(), {"name": "ann", "age": 3, "x": 1})
        assert t.contains_point({"name": "ann", "age": 3, "x": 1, "y": 77})
