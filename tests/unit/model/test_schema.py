"""Unit tests for heterogeneous schemas (the C/R flag layer)."""

import pytest

from repro.errors import SchemaError
from repro.model import Attribute, AttributeKind, DataType, Schema, constraint, relational


def hurricane_like() -> Schema:
    return Schema([relational("name"), constraint("t"), relational("landId")])


class TestAttribute:
    def test_shorthands(self):
        r = relational("name")
        assert r.is_relational and r.data_type is DataType.STRING
        c = constraint("x")
        assert c.is_constraint and c.data_type is DataType.RATIONAL

    def test_relational_rational(self):
        a = relational("age", DataType.RATIONAL)
        assert a.is_relational and a.data_type is DataType.RATIONAL

    def test_constraint_must_be_rational(self):
        with pytest.raises(SchemaError):
            Attribute("bad", DataType.STRING, AttributeKind.CONSTRAINT)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            relational("")

    def test_str_matches_paper_style(self):
        assert str(constraint("x")) == "x: rational, constraint"


class TestSchemaBasics:
    def test_names_in_order(self):
        assert hurricane_like().names == ("name", "t", "landId")

    def test_partition_by_kind(self):
        s = hurricane_like()
        assert s.relational_names == ("name", "landId")
        assert s.constraint_names == ("t",)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([relational("a"), constraint("a")])

    def test_lookup(self):
        s = hurricane_like()
        assert s["t"].is_constraint
        assert "name" in s and "missing" not in s

    def test_lookup_missing_lists_known(self):
        with pytest.raises(SchemaError, match="name, t, landId"):
            hurricane_like()["missing"]


class TestProject:
    def test_order_follows_argument(self):
        s = hurricane_like().project(["landId", "name"])
        assert s.names == ("landId", "name")

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            hurricane_like().project(["nope"])

    def test_duplicates_rejected(self):
        with pytest.raises(SchemaError):
            hurricane_like().project(["name", "name"])


class TestRename:
    def test_rename(self):
        s = hurricane_like().rename("t", "time")
        assert s.names == ("name", "time", "landId")
        assert s["time"].is_constraint

    def test_rename_to_existing(self):
        with pytest.raises(SchemaError):
            hurricane_like().rename("t", "name")

    def test_rename_missing(self):
        with pytest.raises(SchemaError):
            hurricane_like().rename("zzz", "q")


class TestUnionCompatibility:
    def test_same_attributes_different_order_ok(self):
        a = Schema([relational("a"), constraint("b")])
        b = Schema([constraint("b"), relational("a")])
        a.union_compatible(b)  # no raise

    def test_different_names(self):
        a = Schema([relational("a")])
        b = Schema([relational("b")])
        with pytest.raises(SchemaError):
            a.union_compatible(b)

    def test_kind_mismatch(self):
        a = Schema([Attribute("v", DataType.RATIONAL, AttributeKind.RELATIONAL)])
        b = Schema([constraint("v")])
        with pytest.raises(SchemaError, match="differs"):
            a.union_compatible(b)

    def test_type_mismatch(self):
        a = Schema([relational("v")])
        b = Schema([relational("v", DataType.RATIONAL)])
        with pytest.raises(SchemaError):
            a.union_compatible(b)


class TestJoin:
    def test_disjoint_concatenates(self):
        a = Schema([relational("a")])
        b = Schema([constraint("x")])
        assert a.join(b).names == ("a", "x")

    def test_shared_same_kind(self):
        a = Schema([relational("id"), constraint("t")])
        b = Schema([constraint("t"), constraint("x")])
        joined = a.join(b)
        assert joined.names == ("id", "t", "x")
        assert joined["t"].is_constraint

    def test_shared_mixed_kind_resolves_relational(self):
        a = Schema([Attribute("v", DataType.RATIONAL, AttributeKind.RELATIONAL)])
        b = Schema([constraint("v")])
        assert a.join(b)["v"].is_relational
        assert b.join(a)["v"].is_relational

    def test_shared_type_conflict(self):
        a = Schema([relational("v")])  # string
        b = Schema([constraint("v")])  # rational
        with pytest.raises(SchemaError):
            a.join(b)

    def test_shared_names(self):
        a = Schema([relational("id"), constraint("t")])
        b = Schema([constraint("t"), constraint("x")])
        assert a.shared_names(b) == ("t",)


class TestValueSemantics:
    def test_equality(self):
        assert hurricane_like() == hurricane_like()
        assert hash(hurricane_like()) == hash(hurricane_like())

    def test_order_matters_for_equality(self):
        a = Schema([relational("a"), constraint("b")])
        b = Schema([constraint("b"), relational("a")])
        assert a != b
