"""The missing-attribute inconsistency — the paper's section 3 verbatim.

These tests encode Examples 2 and 3 and Proposition 1 exactly as printed:
the same data under the two C/R interpretations yields different, and in
the heterogeneous model *consistent*, results.
"""

from repro.algebra import natural_join, select
from repro.constraints import parse_constraints
from repro.model import (
    ConstraintRelation,
    DataType,
    HTuple,
    Schema,
    constraint,
    relational,
)


class TestExample2:
    """R over {x, y} with the single tuple (x = 1), queried with y = 17."""

    def test_broad_interpretation_constraint_attribute(self):
        # With y a constraint attribute, R is equivalent to
        # {(x = 1, -inf < y < inf)}; the query returns {(x = 1, y = 17)}.
        schema = Schema([constraint("x"), constraint("y")])
        r = ConstraintRelation(schema, [HTuple(schema, {}, parse_constraints("x = 1"))])
        result = select(r, parse_constraints("y = 17"))
        assert len(result) == 1
        assert result.contains_point({"x": 1, "y": 17})
        assert not result.contains_point({"x": 1, "y": 16})

    def test_narrow_interpretation_relational_attribute(self):
        # With y relational, the missing value is NULL: "if an employee's
        # age is missing and we ask 'whose age is 40?', it would be wrong
        # to return that employee" — the query returns the empty set.
        schema = Schema([constraint("x"), relational("y", DataType.RATIONAL)])
        r = ConstraintRelation(schema, [HTuple(schema, {}, parse_constraints("x = 1"))])
        result = select(r, parse_constraints("y = 17"))
        assert len(result) == 0

    def test_proposition1_the_interpretations_disagree(self):
        """Proposition 1: constraint semantics are inconsistent with
        relational semantics exactly on this query."""
        broad_schema = Schema([constraint("x"), constraint("y")])
        narrow_schema = Schema([constraint("x"), relational("y", DataType.RATIONAL)])
        broad = select(
            ConstraintRelation(
                broad_schema, [HTuple(broad_schema, {}, parse_constraints("x = 1"))]
            ),
            parse_constraints("y = 17"),
        )
        narrow = select(
            ConstraintRelation(
                narrow_schema, [HTuple(narrow_schema, {}, parse_constraints("x = 1"))]
            ),
            parse_constraints("y = 17"),
        )
        assert len(broad) == 1 and len(narrow) == 0


class TestExample3:
    """R = {(x=1), (y=1), (x=17, y=17)} with schema
    [x: relational, y: constraint] — the asymmetric but consistent case."""

    def setup_method(self):
        self.schema = Schema([relational("x", DataType.RATIONAL), constraint("y")])
        self.r = ConstraintRelation(
            self.schema,
            [
                HTuple(self.schema, {"x": 1}, ()),
                HTuple(self.schema, {}, parse_constraints("y = 1")),
                HTuple(self.schema, {"x": 17}, parse_constraints("y = 17")),
            ],
        )

    def test_select_x_17(self):
        # ς_{x=17} R returns {(x = 17, y = 17)} only: the (y=1) tuple has
        # x NULL (narrow) and the (x=1) tuple fails the comparison.
        result = select(self.r, parse_constraints("x = 17"))
        assert len(result) == 1
        (only,) = result.tuples
        assert only.value("x") == 17
        assert only.formula.satisfied_by({"y": 17})

    def test_select_y_17(self):
        # ς_{y=17} R returns {(x = 1, y = 17), (x = 17, y = 17)}: the
        # (x=1) tuple's unconstrained y is broad, so y=17 succeeds.
        result = select(self.r, parse_constraints("y = 17"))
        assert len(result) == 2
        xs = sorted(t.value("x") for t in result)
        assert xs == [1, 17]
        assert all(t.formula.satisfied_by({"y": 17}) for t in result)

    def test_inconsistency_not_restricted_to_select(self):
        """The paper notes joins exhibit the same dual behaviour."""
        other = ConstraintRelation(
            Schema([constraint("y")]),
            [
                HTuple(Schema([constraint("y")]), {}, parse_constraints("y = 17")),
            ],
        )
        joined = natural_join(self.r, other)
        # Same two tuples as test_select_y_17, via join instead of select.
        assert len(joined) == 2
        assert sorted(t.value("x") for t in joined) == [1, 17]


class TestUpwardCompatibility:
    """The §3.2 claim: the heterogeneous data model is completely upwardly
    compatible with the relational data model."""

    def test_relational_flagged_db_behaves_relationally(self):
        schema = Schema(
            [relational("a", DataType.RATIONAL), relational("b", DataType.RATIONAL)]
        )
        r = ConstraintRelation.from_points(
            schema, [{"a": 1, "b": 2}, {"a": 3, "b": 4}, {"a": 3}]
        )
        # Classic relational selection: missing b never matches.
        result = select(r, parse_constraints("b = 4"))
        assert len(result) == 1
        assert result.tuples[0].value("a") == 3

    def test_constraint_flagged_equalities_match_relational_output(self):
        """For complete tuples (no missing attributes), the constraint and
        relational representations answer identically (upward
        compatibility on total data)."""
        c_schema = Schema([constraint("a"), constraint("b")])
        r_schema = Schema(
            [relational("a", DataType.RATIONAL), relational("b", DataType.RATIONAL)]
        )
        points = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        constraint_rel = ConstraintRelation.from_points(c_schema, points)
        relational_rel = ConstraintRelation.from_points(r_schema, points)
        for query in ("a = 1", "b >= 3", "a + b <= 3"):
            c_result = select(constraint_rel, parse_constraints(query))
            r_result = select(relational_rel, parse_constraints(query))
            c_points = {
                point
                for point in [(1, 2), (3, 4)]
                if c_result.contains_point({"a": point[0], "b": point[1]})
            }
            r_points = {
                point
                for point in [(1, 2), (3, 4)]
                if r_result.contains_point({"a": point[0], "b": point[1]})
            }
            assert c_points == r_points, query
