"""Unit tests for the nested (Dedale-style) model and nest/unnest."""

import pytest

from repro.constraints import parse_constraints
from repro.errors import SchemaError
from repro.model import ConstraintRelation, HTuple, Schema, constraint, relational
from repro.model.nested import NestedRelation, nest, unnest


def spatial_relation() -> ConstraintRelation:
    """A feature stored as three convex parts plus a second feature."""
    schema = Schema([relational("fid"), relational("zone"), constraint("x")])
    return ConstraintRelation(
        schema,
        [
            HTuple(schema, {"fid": "lake", "zone": "R1"}, parse_constraints("0 <= x, x <= 1")),
            HTuple(schema, {"fid": "lake", "zone": "R1"}, parse_constraints("1 <= x, x <= 2")),
            HTuple(schema, {"fid": "lake", "zone": "R1"}, parse_constraints("2 <= x, x <= 3")),
            HTuple(schema, {"fid": "park", "zone": "R2"}, parse_constraints("9 <= x, x <= 10")),
        ],
    )


class TestNest:
    def test_one_row_per_feature(self):
        nested = nest(spatial_relation())
        assert len(nested) == 2

    def test_nested_formula_covers_all_parts(self):
        nested = nest(spatial_relation())
        lake = next(row for row in nested if row.value("fid") == "lake")
        assert len(lake.formula) == 3
        assert lake.formula.satisfied_by({"x": "1/2"})
        assert lake.formula.satisfied_by({"x": "5/2"})
        assert not lake.formula.satisfied_by({"x": 5})

    def test_value_lookup(self):
        nested = nest(spatial_relation())
        lake = next(row for row in nested if row.value("fid") == "lake")
        assert lake.value("zone") == "R1"
        with pytest.raises(SchemaError):
            lake.value("nope")


class TestUnnest:
    def test_roundtrip_semantics(self):
        flat = spatial_relation()
        restored = unnest(nest(flat))
        assert restored.equivalent(flat)

    def test_roundtrip_syntactic(self):
        flat = spatial_relation()
        assert set(unnest(nest(flat)).tuples) == set(flat.tuples)

    def test_nest_of_unnest_stable(self):
        nested = nest(spatial_relation())
        again = nest(unnest(nested))
        assert len(again) == len(nested)

    def test_empty(self):
        schema = Schema([relational("fid"), constraint("x")])
        empty = ConstraintRelation(schema, [])
        assert len(unnest(nest(empty))) == 0


class TestStorageCost:
    def test_redundancy1_eliminated(self):
        """The §6.2 claim: the nested model stores each feature's
        non-spatial attributes once, the flat model once per part."""
        nested = nest(spatial_relation())
        cost = nested.storage_cost()
        assert cost["rows"] == 2
        assert cost["flat_tuples"] == 4
        # 2 relational attributes: nested stores 2*2=4 cells, flat 4*2=8.
        assert cost["relational_values"] == 4
        assert cost["flat_relational_values"] == 8
        assert cost["relational_values"] < cost["flat_relational_values"]

    def test_constraint_count_unchanged(self):
        """Nesting fixes redundancy 1 only; the shared-boundary
        constraints (redundancy 2) remain — the paper's point that only a
        non-constraint representation removes them."""
        flat = spatial_relation()
        flat_atoms = sum(len(t.formula) for t in flat)
        assert nest(flat).storage_cost()["constraints"] == flat_atoms

    def test_unsatisfiable_rows_dropped(self):
        from repro.constraints import Conjunction, DNFFormula

        schema = Schema([relational("fid"), constraint("x")])
        nested = NestedRelation(
            schema,
            {(("fid", "ghost"),): DNFFormula([Conjunction(parse_constraints("x < 0, x > 0"))])},
        )
        assert len(nested) == 0
