"""Unit tests for query compilation and session execution."""

import pytest

from repro.algebra import StringPredicate
from repro.constraints import Comparator, LinearConstraint
from repro.errors import QueryError
from repro.model import (
    ConstraintRelation,
    Database,
    DataType,
    HTuple,
    Schema,
    constraint,
    relational,
)
from repro.constraints import parse_constraints
from repro.query import QuerySession, compile_statement, parse_statement
from repro.query.compiler import compile_conditions


def schema() -> Schema:
    return Schema(
        [relational("name"), relational("age", DataType.RATIONAL), constraint("t")]
    )


def conditions(text: str):
    stmt = parse_statement(f"R0 = select {text} from R")
    return compile_conditions(stmt.body.conditions, schema())


class TestConditionCompilation:
    def test_linear_condition(self):
        (p,) = conditions("t >= 4")
        assert isinstance(p, LinearConstraint)
        assert p.comparator is Comparator.LE  # >= normalised

    def test_rational_relational_in_linear(self):
        (p,) = conditions("age + t <= 45")
        assert p.variables == {"age", "t"}

    def test_bare_identifier_string_constant(self):
        (p,) = conditions("name = Ann")
        assert isinstance(p, StringPredicate)
        assert p.attribute == "name" and p.value == "Ann" and not p.is_attribute

    def test_reversed_sides(self):
        (p,) = conditions("Ann = name")
        assert isinstance(p, StringPredicate)
        assert p.attribute == "name"

    def test_quoted_string(self):
        (p,) = conditions('name = "Del Rio"')
        assert p.value == "Del Rio"

    def test_string_inequality(self):
        (p,) = conditions("name != Ann")
        assert p.negated

    def test_attr_to_attr(self):
        two = Schema([relational("a"), relational("b")])
        stmt = parse_statement("R0 = select a = b from R")
        (p,) = compile_conditions(stmt.body.conditions, two)
        assert p.is_attribute

    def test_string_with_ordering_rejected(self):
        with pytest.raises(QueryError):
            conditions("name <= Ann")

    def test_string_vs_rational_rejected(self):
        with pytest.raises(QueryError):
            conditions("name = t")

    def test_numeric_not_equal_rejected_with_hint(self):
        with pytest.raises(QueryError, match="union"):
            conditions("t != 4")

    def test_unknown_attribute(self):
        with pytest.raises(QueryError, match="unknown attribute"):
            conditions("zzz + 1 <= 2")

    def test_two_constants_no_attribute(self):
        with pytest.raises(QueryError):
            conditions("Ann = Bob")

    def test_arithmetic(self):
        (p,) = conditions("2*(t - 1) / 4 <= age")
        assert p.variables == {"t", "age"}


class TestCompileStatement:
    def test_unknown_relation(self):
        stmt = parse_statement("R0 = project Nope on x")
        with pytest.raises(QueryError, match="known relations"):
            compile_statement(stmt.body, {})


@pytest.fixture
def db():
    s = Schema([relational("id"), constraint("t")])
    r = ConstraintRelation(
        s,
        [
            HTuple(s, {"id": "a"}, parse_constraints("0 <= t, t <= 10")),
            HTuple(s, {"id": "b"}, parse_constraints("5 <= t, t <= 20")),
        ],
        "R",
    )
    return Database({"R": r})


class TestSession:
    def test_execute_binds_result(self, db):
        session = QuerySession(db)
        result = session.execute("R0 = select t >= 15 from R")
        assert len(result) == 1
        assert "R0" in session
        assert session["R0"] is session.last

    def test_steps_reference_previous(self, db):
        session = QuerySession(db)
        session.execute("R0 = select t >= 15 from R")
        result = session.execute("R1 = project R0 on id")
        assert [t.value("id") for t in result] == ["b"]

    def test_run_script_returns_last(self, db):
        session = QuerySession(db)
        result = session.run_script(
            "R0 = select t >= 15 from R\nR1 = project R0 on id\n"
        )
        assert result.schema.names == ("id",)
        assert set(session.results) == {"R0", "R1"}

    def test_rebinding_intermediate_names_allowed(self, db):
        session = QuerySession(db)
        session.execute("R0 = select t >= 15 from R")
        session.execute("R0 = select t >= 0 from R")
        assert len(session["R0"]) == 2

    def test_last_before_any_statement(self, db):
        with pytest.raises(QueryError):
            QuerySession(db).last

    def test_unknown_result(self, db):
        with pytest.raises(QueryError):
            QuerySession(db)["nope"]

    def test_explain_shows_plan(self, db):
        session = QuerySession(db)
        text = session.explain("R0 = select t >= 15 from R")
        assert "Scan(R)" in text or "Select" in text

    def test_optimizer_uses_indexes(self, db):
        from repro.indexing import JointIndex

        indexes = {"R": {frozenset({"t"}): JointIndex(db["R"], ["t"], max_entries=4)}}
        session = QuerySession(db, indexes=indexes)
        result = session.execute("R0 = select t >= 15 from R")
        assert [t.value("id") for t in result] == ["b"]
        assert session.metrics.operator_calls.get("index_scan") == 1

    def test_optimizer_disabled(self, db):
        from repro.indexing import JointIndex

        indexes = {"R": {frozenset({"t"}): JointIndex(db["R"], ["t"], max_entries=4)}}
        session = QuerySession(db, indexes=indexes, use_optimizer=False)
        session.execute("R0 = select t >= 15 from R")
        assert "index_scan" not in session.metrics.operator_calls

    def test_base_relations_unchanged(self, db):
        session = QuerySession(db)
        session.execute("R0 = select t >= 15 from R")
        assert len(db["R"]) == 2
        assert len(session["R"]) == 2
