"""EXPLAIN ANALYZE: per-operator rows/accesses/timings, and conservation.

The acceptance invariant: over a hurricane-workload session, the
index-access totals reported by ``explain_analyze`` must *exactly* equal
the underlying R*-trees' ``search_accesses`` deltas — the span tree is an
attribution of the same events, not a second estimate.
"""

import pytest

from repro.indexing import JointIndex
from repro.model import ConstraintRelation, Database, HTuple, Schema, constraint, relational
from repro.constraints import parse_constraints
from repro.obs import LOGICAL_NODE_ACCESSES, PHYSICAL_NODE_ACCESSES
from repro.query import ExplainAnalyzeReport, QuerySession
from repro.storage import BufferPool
from repro.workloads import figure2_database


@pytest.fixture
def db():
    s = Schema([relational("id"), constraint("t")])
    r = ConstraintRelation(
        s,
        [
            HTuple(s, {"id": "a"}, parse_constraints("0 <= t, t <= 10")),
            HTuple(s, {"id": "b"}, parse_constraints("5 <= t, t <= 20")),
        ],
        "R",
    )
    return Database({"R": r})


class TestExplainAnalyze:
    def test_report_carries_result_and_binds_it(self, db):
        session = QuerySession(db)
        report = session.explain_analyze("R0 = select t >= 15 from R")
        assert isinstance(report, ExplainAnalyzeReport)
        assert report.target == "R0"
        assert len(report.result) == 1
        assert "R0" in session  # ran for real, like execute()

    def test_span_tree_mirrors_the_plan(self, db):
        session = QuerySession(db, use_optimizer=False)
        report = session.explain_analyze("R0 = select t >= 15 from R")
        kinds = [span.kind for span in report.root.walk()]
        assert kinds == ["Select", "Scan"]
        for span in report.root.walk():
            assert span.rows is not None
            assert span.elapsed >= 0.0
        assert report.root.rows == 1  # select output
        assert report.root.children[0].rows == 2  # scan output

    def test_per_operator_rows_in_formatted_output(self, db):
        session = QuerySession(db, use_optimizer=False)
        text = session.explain_analyze("R0 = select t >= 15 from R").format()
        assert text.startswith("EXPLAIN ANALYZE R0 = select t >= 15 from R")
        assert "rows=1" in text and "rows=2" in text
        assert "accesses=" in text and "time=" in text
        assert "total:" in text

    def test_elapsed_is_root_inclusive(self, db):
        session = QuerySession(db, use_optimizer=False)
        report = session.explain_analyze("R0 = select t >= 15 from R")
        assert report.elapsed == report.root.elapsed
        assert report.elapsed >= report.root.children[0].elapsed

    def test_later_statements_get_fresh_traces(self, db):
        session = QuerySession(db)
        first = session.explain_analyze("R0 = select t >= 15 from R")
        second = session.explain_analyze("R1 = project R0 on id")
        assert first.root is not second.root
        assert second.root.kind == "Project"


class TestHurricaneConservation:
    """The acceptance-criteria test: hurricane workload, exact accounting."""

    def _session(self):
        database = figure2_database()
        strategy = JointIndex(database["Landownership"], ["t"], max_entries=4)
        indexes = {"Landownership": {frozenset({"t"}): strategy}}
        return QuerySession(database, indexes=indexes), strategy

    def test_join_report_access_totals_equal_tree_deltas(self):
        session, strategy = self._session()
        before = strategy.tree.search_accesses
        reports = [
            session.explain_analyze("R0 = select t >= 4 from Landownership"),
            session.explain_analyze("R1 = join R0 and Land"),
            session.explain_analyze("R2 = join R1 and Hurricane"),
        ]
        delta = strategy.tree.search_accesses - before
        assert delta > 0  # the select really used the index
        reported = sum(r.total(LOGICAL_NODE_ACCESSES) for r in reports)
        assert reported == delta  # exact, not approximate

        # Per-operator attribution: the accesses sit on the IndexScan span.
        index_spans = reports[0].root.find("IndexScan")
        assert len(index_spans) == 1
        assert index_spans[0].exclusive(LOGICAL_NODE_ACCESSES) == delta

        # The join reports row counts per operator and its own result size.
        join_report = reports[2]
        assert join_report.root.kind == "Join"
        assert join_report.root.rows == len(join_report.result)
        assert all(s.rows is not None for s in join_report.root.walk())
        assert join_report.elapsed > 0.0

    def test_session_metrics_agree_with_reports(self):
        session, strategy = self._session()
        before = strategy.tree.search_accesses
        session.explain_analyze("R0 = select t >= 4 from Landownership")
        assert (
            session.metrics.index_node_accesses
            == strategy.tree.search_accesses - before
        )
        assert session.registry.value(LOGICAL_NODE_ACCESSES) == (
            strategy.tree.search_accesses - before
        )

    def test_physical_accesses_with_a_buffer_pool(self):
        session, strategy = self._session()
        pool = BufferPool(capacity=64)
        strategy.attach_buffer_pool(pool)
        report = session.explain_analyze("R0 = select t >= 4 from Landownership")
        assert report.total(PHYSICAL_NODE_ACCESSES) == pool.stats.misses
        assert report.total(LOGICAL_NODE_ACCESSES) == pool.stats.requests
