"""Unit tests for the query-language lexer and parser."""

from fractions import Fraction

import pytest

from repro.errors import ParseError
from repro.query.ast import (
    BufferJoinStmt,
    DiffStmt,
    Identifier,
    JoinStmt,
    KNearestStmt,
    ProjectStmt,
    RenameStmt,
    SelectStmt,
    StringLit,
    UnionStmt,
)
from repro.query.lexer import split_statements, tokenize_line
from repro.query.parser import parse_script, parse_statement


class TestLexer:
    def test_tokens(self):
        tokens = tokenize_line('R0 = select t >= 4, name = "A B" from R')
        kinds = [t.kind for t in tokens]
        assert kinds[-1] == "end"
        assert "string" in kinds and "number" in kinds

    def test_string_unescaping(self):
        (token, _) = tokenize_line(r'"a\"b\\c"')
        assert token.text == 'a"b\\c'

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize_line("R0 = select @ from R")

    def test_split_statements_skips_comments_and_blanks(self):
        script = "\n# comment\n  -- another\nR0 = join A and B\n\nR1 = project R0 on x\n"
        statements = list(split_statements(script))
        assert [line for line, _ in statements] == [4, 6]


class TestStatementParsing:
    def test_select(self):
        stmt = parse_statement("R0 = select t>=4, t<=9 from Hurricane")
        assert stmt.target == "R0"
        body = stmt.body
        assert isinstance(body, SelectStmt)
        assert body.source == "Hurricane"
        assert len(body.conditions) == 2
        assert body.conditions[0].op == ">="

    def test_select_string_condition(self):
        stmt = parse_statement("R0 = select landId=A from Landownership")
        (condition,) = stmt.body.conditions
        assert condition.left == Identifier("landId")
        assert condition.right == Identifier("A")

    def test_select_quoted_string(self):
        stmt = parse_statement('R0 = select name = "Del Rio" from R')
        (condition,) = stmt.body.conditions
        assert condition.right == StringLit("Del Rio")

    def test_chained_comparison(self):
        stmt = parse_statement("R0 = select 4 <= t <= 9 from H")
        assert len(stmt.body.conditions) == 2

    def test_project(self):
        stmt = parse_statement("R1 = project R0 on name, t")
        assert stmt.body == ProjectStmt("R0", ("name", "t"))

    def test_join_union_diff(self):
        assert parse_statement("X = join A and B").body == JoinStmt("A", "B")
        assert parse_statement("X = union A and B").body == UnionStmt("A", "B")
        assert parse_statement("X = diff A and B").body == DiffStmt("A", "B")
        assert parse_statement("X = difference A and B").body == DiffStmt("A", "B")

    def test_rename(self):
        assert parse_statement("X = rename t to time in R").body == RenameStmt(
            "t", "time", "R"
        )

    def test_bufferjoin(self):
        body = parse_statement("X = bufferjoin Land and Roads within 2.5").body
        assert isinstance(body, BufferJoinStmt)
        assert body.distance == Fraction(5, 2)
        assert (body.left_attr, body.right_attr) == ("fid1", "fid2")

    def test_bufferjoin_with_output_names(self):
        body = parse_statement(
            "X = bufferjoin Land and Roads within 5 as parcel, road"
        ).body
        assert (body.left_attr, body.right_attr) == ("parcel", "road")

    def test_knearest(self):
        body = parse_statement("X = knearest 3 near A in Shelters").body
        assert body == KNearestStmt(3, "A", "Shelters")

    def test_knearest_quoted_fid(self):
        body = parse_statement('X = knearest 3 near "shelter 1" in Shelters').body
        assert body.query_fid == "shelter 1"

    def test_knearest_cross_layer(self):
        body = parse_statement("X = knearest 3 near A of Parcels in Shelters").body
        assert body.query_source == "Parcels"
        assert body.source == "Shelters"

    def test_knearest_without_of_defaults_to_source(self):
        body = parse_statement("X = knearest 3 near A in Shelters").body
        assert body.query_source is None

    def test_keywords_case_insensitive(self):
        stmt = parse_statement("R0 = SELECT t >= 1 FROM H")
        assert isinstance(stmt.body, SelectStmt)


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "R0 select x from R",  # missing '='
            "R0 = frobnicate A and B",  # unknown op
            "R0 = select from R",  # empty condition
            "R0 = select x >= 1",  # missing from
            "R0 = project R on",  # missing attrs
            "R0 = join A",  # missing 'and B'
            "R0 = rename t to in R",  # missing new name
            "R0 = knearest 0 near A in S",  # k < 1
            "R0 = knearest 2.5 near A in S",  # non-integer k
            "R0 = select x >= 1 from R trailing",  # trailing tokens
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_statement(bad)

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError, match="line 3"):
            parse_script("R0 = join A and B\n\nR1 = wat A and B")

    def test_empty_script(self):
        with pytest.raises(ParseError):
            parse_script("# nothing but comments\n")


class TestScript:
    def test_multi_step(self):
        script = "R0 = select landId=A from Landownership\nR1 = project R0 on name, t\n"
        statements = parse_script(script)
        assert [s.target for s in statements] == ["R0", "R1"]
        assert statements[1].line == 2
