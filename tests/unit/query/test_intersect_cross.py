"""Unit tests for the intersect/cross query-language operations."""

import pytest

from repro.constraints import parse_constraints
from repro.errors import QueryError, SchemaError
from repro.model import ConstraintRelation, Database, HTuple, Schema, constraint
from repro.query import QuerySession
from repro.query.ast import CrossStmt, IntersectStmt
from repro.query.parser import parse_statement


@pytest.fixture
def db():
    s = Schema([constraint("x")])
    other = Schema([constraint("y")])
    a = ConstraintRelation(s, [HTuple(s, {}, parse_constraints("0 <= x, x <= 5"))])
    b = ConstraintRelation(s, [HTuple(s, {}, parse_constraints("3 <= x, x <= 9"))])
    c = ConstraintRelation(other, [HTuple(other, {}, parse_constraints("y = 1"))])
    return Database({"A": a, "B": b, "C": c})


class TestParsing:
    def test_intersect(self):
        assert parse_statement("X = intersect A and B").body == IntersectStmt("A", "B")

    def test_cross(self):
        assert parse_statement("X = cross A and C").body == CrossStmt("A", "C")


class TestExecution:
    def test_intersect_semantics(self, db):
        result = QuerySession(db).execute("X = intersect A and B")
        assert result.contains_point({"x": 4})
        assert not result.contains_point({"x": 1})
        assert not result.contains_point({"x": 8})

    def test_intersect_requires_compatible_schemas(self, db):
        with pytest.raises(SchemaError) as exc_info:
            QuerySession(db).execute("X = intersect A and C")
        assert "union-compatible" in str(exc_info.value) or "not union" in str(exc_info.value)

    def test_cross_semantics(self, db):
        result = QuerySession(db).execute("X = cross A and C")
        assert result.schema.names == ("x", "y")
        assert result.contains_point({"x": 2, "y": 1})
        assert not result.contains_point({"x": 2, "y": 2})

    def test_cross_requires_disjoint_schemas(self, db):
        with pytest.raises(QueryError, match="disjoint"):
            QuerySession(db).execute("X = cross A and B")

    def test_intersect_equals_operator_function(self, db):
        from repro.algebra import intersection

        via_language = QuerySession(db).execute("X = intersect A and B")
        via_function = intersection(db["A"], db["B"])
        assert via_language.equivalent(via_function)
