"""Unit tests for the morsel-driven execution engine (repro.exec)."""

import pickle

import pytest

from repro.errors import ResourceExhausted, SolverBudgetExceeded
from repro.exec import (
    ExecutionConfig,
    ExecutionEngine,
    WorkerFailure,
    auto_morsel_size,
    current_engine,
    parallel_engine,
    partition,
    rebuild_exhaustion,
    reconcile_consumed,
    run_parallel,
)
from repro.exec.morsel import MAX_MORSEL_SIZE, MIN_MORSEL_SIZE
from repro.governor import Budget, BudgetSlice
from repro.obs import EXEC_THREAD_FALLBACKS, MetricsRegistry


def _double_task(payload, morsel):
    return [item * payload for item in morsel]


def _raise_task(payload, morsel):
    raise ValueError("worker boom")


class TestMorselPartition:
    def test_partition_is_positional_and_ordered(self):
        items = list(range(10))
        morsels = partition(items, 3)
        assert morsels == [(0, 1, 2), (3, 4, 5), (6, 7, 8), (9,)]
        assert [x for morsel in morsels for x in morsel] == items

    def test_partition_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            partition([1, 2], 0)

    def test_auto_morsel_size_clamps(self):
        assert auto_morsel_size(4, workers=2) == MIN_MORSEL_SIZE
        assert auto_morsel_size(10_000_000, workers=2) == MAX_MORSEL_SIZE
        # 1000 items over 2 workers * 4 morsels each -> 125 per morsel.
        assert auto_morsel_size(1000, workers=2) == 125


class TestExecutionConfig:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            ExecutionConfig(workers=0)
        with pytest.raises(ValueError):
            ExecutionConfig(workers=True)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            ExecutionConfig(workers=2, mode="greenlets")

    def test_engine_requires_two_workers(self):
        with pytest.raises(ValueError):
            ExecutionEngine(ExecutionConfig(workers=1))


class TestDispatch:
    def test_outcomes_return_in_morsel_order(self):
        with ExecutionEngine(ExecutionConfig(workers=2, mode="thread")) as engine:
            merged = run_parallel(engine, _double_task, 10, list(range(50)))
        assert merged == [i * 10 for i in range(50)]

    def test_process_mode_round_trips(self):
        with ExecutionEngine(ExecutionConfig(workers=2, mode="process")) as engine:
            merged = run_parallel(engine, _double_task, 3, list(range(40)))
        assert merged == [i * 3 for i in range(40)]

    def test_auto_mode_falls_back_to_threads_on_unpicklable_payload(self):
        registry = MetricsRegistry()
        unpicklable = lambda x: x + 1  # noqa: E731 - deliberately unpicklable
        with pytest.raises(Exception):
            pickle.dumps(unpicklable)
        with ExecutionEngine(ExecutionConfig(workers=2, mode="auto")) as engine:
            with registry.activate():
                morsels = partition(list(range(20)), 10)
                outcomes = engine.map_morsels(
                    lambda payload, morsel: [payload(i) for i in morsel],
                    unpicklable,
                    morsels,
                )
        assert [x for o in outcomes for x in o.output] == [i + 1 for i in range(20)]
        assert registry.value(EXEC_THREAD_FALLBACKS) >= 1
        assert engine.statement_summary().startswith("parallelism: workers=2 mode=thread")

    def test_worker_errors_propagate(self):
        with ExecutionEngine(ExecutionConfig(workers=2, mode="thread")) as engine:
            with pytest.raises(ValueError, match="worker boom"):
                run_parallel(engine, _raise_task, None, list(range(20)))

    def test_closed_engine_rejects_dispatch(self):
        engine = ExecutionEngine(ExecutionConfig(workers=2, mode="thread"))
        engine.close()
        with pytest.raises(RuntimeError):
            engine.map_morsels(_double_task, 1, [(1, 2)])


class TestEngineStack:
    def test_no_engine_by_default(self):
        assert current_engine() is None
        assert parallel_engine(1000) is None

    def test_activation_and_small_input_gate(self):
        with ExecutionEngine(ExecutionConfig(workers=2, mode="thread")) as engine:
            with engine.activate():
                assert current_engine() is engine
                assert parallel_engine(100) is engine
                # Below min_parallel_items the operator stays serial.
                assert parallel_engine(5) is None
            assert current_engine() is None

    def test_truncated_budget_gates_dispatch(self):
        budget = Budget(output_tuples=10, on_exhausted="partial")
        with ExecutionEngine(ExecutionConfig(workers=2, mode="thread")) as engine:
            with engine.activate(), budget.activate():
                budget.mark_truncated()
                assert parallel_engine(100) is None


class TestBudgetSlice:
    def test_slice_carries_full_remaining_limits(self):
        budget = Budget(solver_steps=100, output_tuples=7)
        budget.charge("solver_steps", 30)
        piece = budget.slice()
        limits = dict(piece.limits)
        assert limits["solver_steps"] == 70
        assert limits["output_tuples"] == 7
        assert piece.on_exhausted == "raise"

    def test_slice_floor_is_one(self):
        budget = Budget(solver_steps=10, on_exhausted="partial")
        budget.charge("solver_steps", 10)
        assert dict(budget.slice().limits)["solver_steps"] == 1

    def test_slice_builds_a_governing_budget(self):
        piece = BudgetSlice(limits=(("solver_steps", 5),), deadline_remaining=None,
                            on_exhausted="raise")
        sub = piece.build()
        with pytest.raises(SolverBudgetExceeded):
            sub.charge("solver_steps", 6)

    def test_reconcile_charges_parent(self):
        budget = Budget(solver_steps=100)
        assert reconcile_consumed(budget, {"solver_steps": 40})
        assert budget.consumed["solver_steps"] == 40

    def test_reconcile_partial_truncates_instead_of_raising(self):
        budget = Budget(solver_steps=10, on_exhausted="partial")
        assert not reconcile_consumed(budget, {"solver_steps": 50})
        assert budget.truncated

    def test_reconcile_raise_mode_propagates(self):
        budget = Budget(solver_steps=10)
        with pytest.raises(SolverBudgetExceeded):
            reconcile_consumed(budget, {"solver_steps": 50})


class TestFailureTransfer:
    def test_rebuild_restores_the_subclass(self):
        failure = WorkerFailure(
            kind="SolverBudgetExceeded",
            message="solver budget exhausted",
            resource="solver_steps",
            consumed=11,
            limit=10,
            snapshot={"solver_steps": 11},
        )
        exc = rebuild_exhaustion(failure)
        assert isinstance(exc, SolverBudgetExceeded)
        assert exc.resource == "solver_steps"
        assert exc.limit == 10

    def test_unknown_kind_degrades_to_base_class(self):
        failure = WorkerFailure(
            kind="NoSuchError", message="m", resource=None, consumed=None,
            limit=None, snapshot={},
        )
        assert type(rebuild_exhaustion(failure)) is ResourceExhausted
