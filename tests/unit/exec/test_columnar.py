"""Unit tests for the columnar fast path's plumbing.

The bit-identity and soundness *contracts* live in
``tests/property/test_columnar_{identical,soundness}.py``; this file
covers the machinery around them — mode parsing and the env-var default,
the thread-local activation stack, block construction and caching,
selection-plan compilation and its bypass rules, counter recording, and
the end-to-end ``exec_mode`` knob on sessions, the CLI, and the server
config.
"""

import threading

import pytest

from repro.algebra.operators import filter_tuples
from repro.constraints import parse_constraints
from repro.exec import (
    EXEC_MODE_ENV_VAR,
    EXEC_MODES,
    columnar,
    columnar_active,
    columnar_mode,
    default_exec_mode,
    split_exec_mode,
)
from repro.model.database import Database
from repro.obs import (
    COLUMNAR_BATCHES,
    COLUMNAR_BYPASSED,
    COLUMNAR_FALLBACK,
    COLUMNAR_FILTERED,
    MetricsRegistry,
)
from repro.query import QuerySession
from repro.server import ServerConfig
from repro.workloads import build_constraint_relation, generate_data


def _relation(size=40, seed=7):
    return build_constraint_relation(generate_data(size, seed))


class TestModeParsing:
    def test_split_pool_modes_keep_columnar_off(self):
        assert split_exec_mode("process") == ("process", False)
        assert split_exec_mode("thread") == ("thread", False)

    def test_split_row_and_auto(self):
        assert split_exec_mode("auto") == ("auto", False)
        assert split_exec_mode("row") == ("auto", False)

    def test_split_columnar(self):
        assert split_exec_mode("columnar") == ("auto", True)

    def test_split_rejects_unknown(self):
        with pytest.raises(ValueError, match="exec_mode"):
            split_exec_mode("simd")

    def test_default_is_auto_without_env(self, monkeypatch):
        monkeypatch.delenv(EXEC_MODE_ENV_VAR, raising=False)
        assert default_exec_mode() == "auto"

    def test_default_reads_env(self, monkeypatch):
        monkeypatch.setenv(EXEC_MODE_ENV_VAR, "columnar")
        assert default_exec_mode() == "columnar"
        monkeypatch.setenv(EXEC_MODE_ENV_VAR, "  THREAD ")
        assert default_exec_mode() == "thread"

    def test_default_rejects_invalid_env(self, monkeypatch):
        monkeypatch.setenv(EXEC_MODE_ENV_VAR, "simd")
        with pytest.raises(ValueError, match=EXEC_MODE_ENV_VAR):
            default_exec_mode()


class TestActivationStack:
    def test_off_by_default(self):
        assert not columnar_active()

    def test_nesting_and_explicit_deactivation(self):
        with columnar_mode():
            assert columnar_active()
            with columnar_mode():
                assert columnar_active()
            assert columnar_active()
            with columnar_mode(False):
                assert not columnar_active()
            assert columnar_active()
        assert not columnar_active()

    def test_thread_locality(self):
        seen = {}

        def probe():
            seen["active"] = columnar_active()

        with columnar_mode():
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen["active"] is False


class TestBlocksAndPlans:
    def test_block_shape_and_bounds(self):
        relation = _relation()
        tuples = list(relation.tuples)
        block = columnar.block_for(tuples, ("x", "y"))
        assert len(block) == len(tuples)
        assert block.lower.shape == (len(tuples), 2)
        assert (block.lower <= block.upper)[~block.inconsistent].all()

    def test_block_cache_hit_and_staleness(self):
        relation = _relation()
        tuples = list(relation.tuples)
        cache = {}
        block = columnar.block_for(tuples, ("x",), cache=cache)
        assert columnar.block_for(tuples, ("x",), cache=cache) is block
        # A different variable tuple is a different cache entry.
        other = columnar.block_for(tuples, ("x", "y"), cache=cache)
        assert other is not block
        # A stale entry (row count changed) is rebuilt, not served.
        rebuilt = columnar.block_for(tuples[:10], ("x",), cache=cache)
        assert rebuilt is not block and len(rebuilt) == 10

    def test_relation_owns_a_columnar_cache(self):
        relation = _relation()
        cache = relation.columnar_cache()
        assert cache == {} and relation.columnar_cache() is cache

    def test_plan_compiles_box_predicates(self):
        relation = _relation()
        plan = columnar.selection_plan(
            parse_constraints("x >= 10, x <= 600, y >= 10"), relation.schema
        )
        assert plan is not None and not plan.empty
        assert plan.variables == ("x", "y")

    def test_plan_bypasses_without_static_atoms(self):
        relation = _relation()
        assert columnar.selection_plan((), relation.schema) is None

    def test_plan_bypasses_relational_atoms(self):
        # Atoms over relational attributes are substituted per tuple, so
        # they carry no static bounds for the filter to broadcast.
        from repro.model.schema import Attribute, AttributeKind, DataType, Schema

        schema = Schema(
            [
                Attribute("v", DataType.RATIONAL, AttributeKind.RELATIONAL),
                Attribute("x", DataType.RATIONAL, AttributeKind.CONSTRAINT),
            ]
        )
        plan = columnar.selection_plan(parse_constraints("v >= 0"), schema)
        assert plan is None

    def test_plan_bypasses_multivariable_only_atoms(self):
        relation = _relation()
        plan = columnar.selection_plan(
            parse_constraints("x + y >= 100"), relation.schema
        )
        assert plan is None

    def test_inconsistent_statics_compile_to_empty_plan(self):
        relation = _relation()
        plan = columnar.selection_plan(
            parse_constraints("x >= 10, x <= 5"), relation.schema
        )
        assert plan is not None and plan.empty


class TestCounters:
    def test_filter_records_batches_filtered_fallback(self):
        relation = _relation(size=60, seed=3)
        predicates = parse_constraints("x >= 200, x <= 400")
        registry = MetricsRegistry()
        with registry.activate(), columnar_mode():
            result = filter_tuples(list(relation.tuples), predicates)
        assert registry.value(COLUMNAR_BATCHES) >= 1
        filtered = registry.value(COLUMNAR_FILTERED)
        fallback = registry.value(COLUMNAR_FALLBACK)
        assert filtered + fallback == len(relation.tuples)
        assert len(result) <= fallback

    def test_unplannable_predicates_record_bypass(self):
        relation = _relation(size=60, seed=3)
        predicates = parse_constraints("x + y >= 100")
        registry = MetricsRegistry()
        with registry.activate(), columnar_mode():
            filter_tuples(list(relation.tuples), predicates)
        assert registry.value(COLUMNAR_BYPASSED) >= 1
        assert registry.value(COLUMNAR_BATCHES) == 0

    def test_small_batches_do_not_engage(self):
        relation = _relation(size=columnar.MIN_BATCH - 1, seed=3)
        predicates = parse_constraints("x >= 200")
        registry = MetricsRegistry()
        with registry.activate(), columnar_mode():
            filter_tuples(list(relation.tuples), predicates)
        assert registry.value(COLUMNAR_BATCHES) == 0


class TestSessionKnob:
    def _database(self):
        return Database({"boxes": _relation(size=50, seed=11).with_name("boxes")})

    def test_exec_mode_property_and_validation(self):
        with QuerySession(self._database(), exec_mode="columnar") as session:
            assert session.exec_mode == "columnar"
        with pytest.raises(ValueError, match="exec_mode"):
            QuerySession(self._database(), exec_mode="simd")

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv(EXEC_MODE_ENV_VAR, "columnar")
        with QuerySession(self._database()) as session:
            assert session.exec_mode == "columnar"

    def test_columnar_session_runs_queries(self):
        with QuerySession(self._database(), exec_mode="columnar") as session:
            result = session.run_script("hits = select x >= 100, x <= 700 from boxes")
        assert result.name == "hits"


class TestServerKnob:
    def test_config_accepts_every_mode(self):
        for mode in EXEC_MODES:
            assert ServerConfig(exec_mode=mode).exec_mode == mode
        assert ServerConfig().exec_mode is None

    def test_config_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="exec_mode"):
            ServerConfig(exec_mode="simd")


class TestCliKnob:
    def test_query_and_serve_expose_exec_mode(self):
        from repro.cli import build_parser

        parser = build_parser()
        for argv in (
            ["query", "--exec-mode", "columnar", "db.json", "script.cq"],
            ["serve", "--exec-mode", "row", "db.json"],
        ):
            try:
                args = parser.parse_args(argv)
            except SystemExit as exc:  # argparse rejected the flag/layout
                pytest.fail(f"CLI rejected {argv}: {exc}")
            assert args.exec_mode in EXEC_MODES
