"""Engine/session teardown regressions: close() must be idempotent and
never silently swallow a pool-shutdown failure (the server closes tenant
sessions on drain, so double-close and close-after-__del__ are normal
paths, not corner cases)."""

import logging

import pytest

from repro.errors import QueryError
from repro.exec import ExecutionConfig, ExecutionEngine
from repro.model.database import Database
from repro.query import QuerySession


def _engine_with_live_pool() -> ExecutionEngine:
    engine = ExecutionEngine(ExecutionConfig(workers=2, mode="thread"))
    engine._executor_for("thread")  # force-create the pool
    return engine


class TestEngineClose:
    def test_close_is_idempotent(self):
        engine = _engine_with_live_pool()
        engine.close()
        assert engine.closed
        engine.close()  # second call must be a clean no-op
        assert engine.closed

    def test_close_after_del_is_safe(self):
        engine = _engine_with_live_pool()
        engine.__del__()
        assert engine.closed
        engine.close()  # explicit close after __del__ already ran
        engine.__del__()  # and __del__ again after that

    def test_del_on_half_constructed_engine(self):
        # __init__ raises before pools exist; __del__ must not blow up on
        # missing attributes during garbage collection.
        with pytest.raises(ValueError):
            ExecutionEngine(ExecutionConfig(workers=1))

    def test_close_logs_pool_shutdown_failure(self, caplog):
        engine = _engine_with_live_pool()

        class ExplodingPool:
            def shutdown(self, wait=True):
                raise RuntimeError("pool exploded")

        engine._thread_pool.shutdown(wait=True)
        engine._thread_pool = ExplodingPool()
        with caplog.at_level(logging.ERROR, logger="repro.exec.engine"):
            engine.close()  # must not raise...
        assert engine.closed
        assert any("shutdown failed" in rec.message for rec in caplog.records)

    def test_closed_engine_rejects_dispatch(self):
        engine = _engine_with_live_pool()
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.map_morsels(lambda payload, morsel: [], None, [(1,)])


class TestSessionClose:
    def test_close_is_idempotent_serial(self):
        session = QuerySession(Database())
        assert not session.closed
        session.close()
        session.close()
        assert session.closed

    def test_close_is_idempotent_parallel(self):
        session = QuerySession(Database(), workers=2, exec_mode="thread")
        engine = session._active_engine()
        assert engine is not None
        session.close()
        assert engine.closed
        session.close()  # engine already detached; still a no-op
        assert session.closed

    def test_context_manager_after_explicit_close(self):
        with QuerySession(Database(), workers=2, exec_mode="thread") as session:
            session.close()
        assert session.closed  # __exit__ re-closing was a no-op

    def test_closed_session_rejects_statements(self):
        session = QuerySession(Database())
        session.close()
        with pytest.raises(QueryError, match="closed"):
            session.execute("R0 = select t >= 0 from R")

    def test_closed_parallel_session_does_not_leak_a_new_pool(self):
        session = QuerySession(Database(), workers=2, exec_mode="thread")
        session.close()
        with pytest.raises(QueryError, match="closed"):
            session._active_engine()
