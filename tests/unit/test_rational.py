"""Unit tests for exact rational conversion and formatting."""

from fractions import Fraction

import pytest

from repro.errors import ConstraintError
from repro.rational import format_rational, to_rational


class TestToRational:
    def test_int(self):
        assert to_rational(3) == Fraction(3)

    def test_fraction_passthrough(self):
        f = Fraction(5, 7)
        assert to_rational(f) is f

    def test_decimal_string(self):
        assert to_rational("2.5") == Fraction(5, 2)
        assert to_rational(" -0.125 ") == Fraction(-1, 8)

    def test_ratio_string(self):
        assert to_rational("22/7") == Fraction(22, 7)

    def test_float_uses_decimal_repr(self):
        # 0.1 is not exactly representable in binary; users mean 1/10.
        assert to_rational(0.1) == Fraction(1, 10)
        assert to_rational(2.5) == Fraction(5, 2)

    def test_bool_rejected(self):
        with pytest.raises(ConstraintError):
            to_rational(True)

    def test_non_finite_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConstraintError):
                to_rational(bad)

    def test_garbage_string(self):
        with pytest.raises(ConstraintError):
            to_rational("not-a-number")

    def test_zero_denominator_string(self):
        with pytest.raises(ConstraintError):
            to_rational("1/0")

    def test_unsupported_type(self):
        with pytest.raises(ConstraintError):
            to_rational([1])  # type: ignore[arg-type]


class TestFormatRational:
    def test_integers_bare(self):
        assert format_rational(Fraction(42)) == "42"
        assert format_rational(Fraction(-3)) == "-3"

    def test_decimal_denominators(self):
        assert format_rational(Fraction(5, 2)) == "2.5"
        assert format_rational(Fraction(1, 8)) == "0.125"
        assert format_rational(Fraction(-1, 10)) == "-0.1"
        assert format_rational(Fraction(3, 20)) == "0.15"

    def test_non_decimal_denominators_as_ratio(self):
        assert format_rational(Fraction(1, 3)) == "1/3"
        assert format_rational(Fraction(-22, 7)) == "-22/7"

    def test_roundtrip(self):
        for f in (Fraction(5, 2), Fraction(1, 3), Fraction(-7, 40), Fraction(0), Fraction(123, 1)):
            assert to_rational(format_rational(f)) == f
