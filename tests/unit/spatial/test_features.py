"""Unit tests for features, feature sets and spatial relations (§4.2)."""

import pytest

from repro.constraints import parse_constraints
from repro.errors import GeometryError, SchemaError
from repro.model import ConstraintRelation, HTuple, Schema, constraint, relational
from repro.spatial import ConvexPolygon, Feature, FeatureSet, Point, default_spatial_schema


def box(x0, y0, x1, y1) -> ConvexPolygon:
    return ConvexPolygon.box(x0, y0, x1, y1)


class TestFeature:
    def test_requires_parts(self):
        with pytest.raises(GeometryError):
            Feature("f", [])

    def test_requires_fid(self):
        with pytest.raises(GeometryError):
            Feature("", [box(0, 0, 1, 1)])

    def test_bounding_box_spans_parts(self):
        f = Feature("f", [box(0, 0, 1, 1), box(5, 5, 6, 6)])
        bb = f.bounding_box()
        assert (bb.min_x, bb.max_x) == (0, 6)

    def test_contains_point_any_part(self):
        f = Feature("f", [box(0, 0, 1, 1), box(5, 5, 6, 6)])
        assert f.contains_point(Point(5.5, 5.5))
        assert not f.contains_point(Point(3, 3))

    def test_distance_between_multipart_features(self):
        f = Feature("f", [box(0, 0, 1, 1), box(10, 0, 11, 1)])
        g = Feature("g", [box(12, 0, 13, 1)])
        assert f.distance(g) == 1.0  # nearest part pair

    def test_intersects(self):
        f = Feature("f", [box(0, 0, 2, 2)])
        g = Feature("g", [box(1, 1, 3, 3)])
        assert f.intersects(g)
        assert f.distance(g) == 0.0


class TestFeatureSet:
    def make_set(self):
        return FeatureSet(
            [
                Feature("a", [box(0, 0, 1, 1)]),
                Feature("b", [box(5, 0, 6, 1), box(6, 0, 7, 1)]),
            ]
        )

    def test_lookup(self):
        fs = self.make_set()
        assert "a" in fs and "zzz" not in fs
        assert fs["b"].fid == "b"
        assert len(fs) == 2

    def test_missing_feature(self):
        with pytest.raises(GeometryError):
            self.make_set()["zzz"]

    def test_duplicate_fid_rejected(self):
        with pytest.raises(GeometryError):
            FeatureSet([Feature("a", [box(0, 0, 1, 1)]), Feature("a", [box(2, 2, 3, 3)])])

    def test_index_over_feature_mbrs(self):
        fs = self.make_set()
        tree = fs.index()
        assert len(tree) == 2
        assert fs.index() is tree  # cached


class TestRelationConversion:
    def test_to_relation_one_tuple_per_part(self):
        fs = FeatureSet(
            [Feature("a", [box(0, 0, 1, 1)]), Feature("b", [box(5, 0, 6, 1), box(6, 0, 7, 1)])]
        )
        relation = fs.to_relation("R")
        assert relation.schema == default_spatial_schema()
        assert len(relation) == 3
        assert relation.contains_point({"fid": "b", "x": 6.5, "y": 0.5})
        assert not relation.contains_point({"fid": "a", "x": 6.5, "y": 0.5})

    def test_from_relation_groups_by_fid(self):
        schema = default_spatial_schema()
        relation = ConstraintRelation(
            schema,
            [
                HTuple(schema, {"fid": "a"}, parse_constraints("0 <= x, x <= 1, 0 <= y, y <= 1")),
                HTuple(schema, {"fid": "b"}, parse_constraints("5 <= x, x <= 6, 0 <= y, y <= 1")),
                HTuple(schema, {"fid": "b"}, parse_constraints("6 <= x, x <= 7, 0 <= y, y <= 1")),
            ],
        )
        fs = FeatureSet.from_relation(relation)
        assert len(fs) == 2
        assert len(fs["b"].parts) == 2

    def test_roundtrip_preserves_geometry(self):
        original = FeatureSet(
            [Feature("a", [box(0, 0, 1, 1)]), Feature("b", [box(5, 5, 6, 6)])]
        )
        back = FeatureSet.from_relation(original.to_relation())
        assert set(back.features) == {"a", "b"}
        for fid in ("a", "b"):
            assert back[fid].parts[0].area() == original[fid].parts[0].area()

    def test_from_relation_validates_schema(self):
        bad = Schema([relational("fid"), constraint("x")])  # missing y
        with pytest.raises(SchemaError):
            FeatureSet.from_relation(ConstraintRelation(bad, []))

    def test_from_relation_requires_constraint_spatial_attrs(self):
        from repro.model import DataType

        bad = Schema(
            [relational("fid"), relational("x", DataType.RATIONAL), constraint("y")]
        )
        with pytest.raises(SchemaError):
            FeatureSet.from_relation(ConstraintRelation(bad, []))

    def test_from_relation_rejects_null_fid(self):
        schema = default_spatial_schema()
        relation = ConstraintRelation(
            schema,
            [HTuple(schema, {}, parse_constraints("0 <= x, x <= 1, 0 <= y, y <= 1"))],
        )
        with pytest.raises(SchemaError, match="NULL"):
            FeatureSet.from_relation(relation)

    def test_custom_attribute_names(self):
        schema = Schema([relational("road"), constraint("lon"), constraint("lat")])
        relation = ConstraintRelation(
            schema,
            [
                HTuple(
                    schema,
                    {"road": "r1"},
                    parse_constraints("0 <= lon, lon <= 1, 0 <= lat, lat <= 1"),
                )
            ],
        )
        fs = FeatureSet.from_relation(relation, fid_attr="road", x="lon", y="lat")
        assert "r1" in fs
        back = fs.to_relation()
        assert back.schema.names == ("road", "lon", "lat")
