"""Unit tests for the vector model (section 6)."""

from fractions import Fraction

import pytest

from repro.errors import GeometryError
from repro.spatial import Point, PolylineFeature, RegionFeature, digitize


def pts(*pairs):
    return [Point(x, y) for x, y in pairs]


class TestPolyline:
    def test_requires_two_points(self):
        with pytest.raises(GeometryError):
            PolylineFeature("p", pts((0, 0)))

    def test_zero_length_segment_rejected(self):
        with pytest.raises(GeometryError):
            PolylineFeature("p", pts((0, 0), (0, 0), (1, 1)))

    def test_segment_count(self):
        p = PolylineFeature("p", pts((0, 0), (1, 1), (2, 0)))
        assert p.segment_count == 2

    def test_to_feature_one_part_per_segment(self):
        p = PolylineFeature("p", pts((0, 0), (1, 1), (2, 0)))
        feature = p.to_feature()
        assert len(feature.parts) == 2
        assert feature.contains_point(Point("0.5", "0.5"))
        assert not feature.contains_point(Point("0.5", "0.6"))

    def test_project_extrema(self):
        p = PolylineFeature("p", pts((0, 3), (5, 1), (2, 7)))
        assert p.project("x") == (0, 5)
        assert p.project("y") == (1, 7)

    def test_constraint_cost_three_per_segment(self):
        p = PolylineFeature("p", pts((0, 0), (1, 1), (2, 0), (3, 2)))
        cost = p.constraint_cost(extra_attributes=2)
        assert cost.tuples == 3
        assert cost.constraints == 9  # "three constraints" per segment
        assert cost.duplicated_attributes == 2 * (3 - 1)
        assert cost.shared_boundary_constraints == 2 * (3 - 1)

    def test_vector_cost(self):
        p = PolylineFeature("p", pts((0, 0), (1, 1), (2, 0), (3, 2)))
        cost = p.vector_cost()
        assert cost.tuples == 1
        assert cost.coordinates == 8
        assert cost.duplicated_attributes == 0

    def test_cost_addition(self):
        p = PolylineFeature("p", pts((0, 0), (1, 1)))
        total = p.vector_cost() + p.vector_cost()
        assert total.coordinates == 8


class TestRegion:
    def test_requires_three_points(self):
        with pytest.raises(GeometryError):
            RegionFeature("r", pts((0, 0), (1, 0)))

    def test_closed_ring_accepted(self):
        r = RegionFeature("r", pts((0, 0), (4, 0), (4, 4), (0, 0)))
        assert len(r.outline) == 3

    def test_repeated_point_rejected(self):
        with pytest.raises(GeometryError):
            RegionFeature("r", pts((0, 0), (4, 0), (0, 0), (4, 4)))

    def test_degenerate_outline_rejected(self):
        with pytest.raises(GeometryError):
            RegionFeature("r", pts((0, 0), (1, 1), (2, 2)))

    def test_orientation_normalised_to_ccw(self):
        cw = RegionFeature("r", pts((0, 0), (0, 4), (4, 4), (4, 0)))
        assert cw.area() > 0

    def test_convex_region_single_part(self):
        r = RegionFeature("r", pts((0, 0), (4, 0), (4, 4), (0, 4)))
        assert r.is_convex
        assert len(r.triangulate()) == 1

    def test_concave_region_triangulated(self):
        r = RegionFeature("r", pts((0, 0), (4, 0), (4, 4), (2, 1), (0, 4)))
        assert not r.is_convex
        parts = r.triangulate()
        assert len(parts) >= 2
        assert sum((p.area() for p in parts), Fraction(0)) == r.area()

    def test_collinear_outline_vertex_handled(self):
        r = RegionFeature("r", pts((0, 0), (2, 0), (4, 0), (4, 4), (2, 1), (0, 4)))
        parts = r.triangulate()
        assert sum((p.area() for p in parts), Fraction(0)) == r.area()

    def test_spiky_star_triangulates(self):
        # An 8-vertex star with four reflex vertices.
        outline = pts((0, 3), (1, 1), (3, 0), (1, -1), (0, -3), (-1, -1), (-3, 0), (-1, 1))
        r = RegionFeature("star", outline)
        parts = r.triangulate()
        assert sum((p.area() for p in parts), Fraction(0)) == r.area()

    def test_to_feature_covers_region(self):
        r = RegionFeature("r", pts((0, 0), (4, 0), (4, 4), (2, 1), (0, 4)))
        feature = r.to_feature()
        assert feature.contains_point(Point(1, "0.5"))
        assert feature.contains_point(Point("3.5", 3))
        assert not feature.contains_point(Point(2, 3))  # inside the notch

    def test_project(self):
        r = RegionFeature("r", pts((0, 0), (4, 0), (4, 4), (2, 1), (0, 4)))
        assert r.project("x") == (0, 4)
        assert r.project("y") == (0, 4)

    def test_constraint_cost_counts_shared_edges(self):
        r = RegionFeature("r", pts((0, 0), (4, 0), (4, 4), (2, 1), (0, 4)))
        cost = r.constraint_cost(extra_attributes=1)
        assert cost.tuples == len(r.triangulate())
        assert cost.shared_boundary_constraints > 0
        assert cost.duplicated_attributes == cost.tuples - 1

    def test_vector_vs_constraint_cost_gap_grows(self):
        small = RegionFeature("s", pts((0, 0), (4, 0), (4, 4), (2, 1), (0, 4)))
        assert small.constraint_cost().coordinates > small.vector_cost().coordinates


class TestDigitize:
    def test_polyline(self):
        f = digitize([(0, 0), (1, 1)], "road", "polyline")
        assert isinstance(f, PolylineFeature)

    def test_region(self):
        f = digitize([(0, 0), (4, 0), (2, 3)], "lake", "region")
        assert isinstance(f, RegionFeature)

    def test_unknown_kind(self):
        with pytest.raises(GeometryError):
            digitize([(0, 0), (1, 1)], "x", "raster")
