"""Unit tests for GeoJSON export and Douglas–Peucker simplification."""

import json

import pytest

from repro.errors import GeometryError
from repro.spatial import (
    ConvexPolygon,
    Feature,
    FeatureSet,
    Point,
    PolylineFeature,
    RegionFeature,
    feature_set_to_geojson,
    feature_to_geojson,
    polygon_to_geometry,
    relation_to_geojson,
    save_geojson,
    simplify_points,
    simplify_polyline,
    simplify_region,
)


def pts(*pairs):
    return [Point(x, y) for x, y in pairs]


class TestGeometryConversion:
    def test_polygon(self):
        g = polygon_to_geometry(ConvexPolygon.box(0, 0, 2, 1))
        assert g["type"] == "Polygon"
        ring = g["coordinates"][0]
        assert ring[0] == ring[-1]  # closed
        assert len(ring) == 5

    def test_segment_is_linestring(self):
        g = polygon_to_geometry(ConvexPolygon(pts((0, 0), (3, 4))))
        assert g["type"] == "LineString"
        assert len(g["coordinates"]) == 2

    def test_point(self):
        g = polygon_to_geometry(ConvexPolygon(pts((1, 2))))
        assert g == {"type": "Point", "coordinates": [1.0, 2.0]}


class TestFeatureExport:
    def test_single_part(self):
        f = feature_to_geojson(Feature("a", [ConvexPolygon.box(0, 0, 1, 1)]))
        assert f["type"] == "Feature" and f["id"] == "a"
        assert f["geometry"]["type"] == "Polygon"
        assert f["properties"]["fid"] == "a"

    def test_homogeneous_multipolygon(self):
        f = feature_to_geojson(
            Feature("a", [ConvexPolygon.box(0, 0, 1, 1), ConvexPolygon.box(2, 0, 3, 1)])
        )
        assert f["geometry"]["type"] == "MultiPolygon"
        assert len(f["geometry"]["coordinates"]) == 2

    def test_polyline_multilinestring(self):
        road = PolylineFeature("r", pts((0, 0), (1, 1), (2, 0))).to_feature()
        f = feature_to_geojson(road)
        assert f["geometry"]["type"] == "MultiLineString"

    def test_mixed_geometry_collection(self):
        f = feature_to_geojson(
            Feature("m", [ConvexPolygon.box(0, 0, 1, 1), ConvexPolygon(pts((5, 5)))])
        )
        assert f["geometry"]["type"] == "GeometryCollection"

    def test_extra_properties(self):
        f = feature_to_geojson(Feature("a", [ConvexPolygon.box(0, 0, 1, 1)]), {"zone": "R1"})
        assert f["properties"]["zone"] == "R1"

    def test_collection_and_relation_paths_agree(self):
        fs = FeatureSet(
            [Feature("a", [ConvexPolygon.box(0, 0, 1, 1)]),
             Feature("b", [ConvexPolygon.box(5, 5, 6, 6)])]
        )
        direct = feature_set_to_geojson(fs)
        via_relation = relation_to_geojson(fs.to_relation())
        assert direct == via_relation
        assert direct["type"] == "FeatureCollection"
        assert {f["id"] for f in direct["features"]} == {"a", "b"}

    def test_save_and_valid_json(self, tmp_path):
        fs = FeatureSet([Feature("a", [ConvexPolygon.box(0, 0, 1, 1)])])
        path = tmp_path / "out.geojson"
        save_geojson(feature_set_to_geojson(fs), path)
        parsed = json.loads(path.read_text())
        assert parsed["type"] == "FeatureCollection"

    def test_save_rejects_non_geojson(self, tmp_path):
        with pytest.raises(GeometryError):
            save_geojson({"type": "Nope"}, tmp_path / "x.json")


class TestSimplification:
    def test_collinear_chain_collapses(self):
        chain = pts((0, 0), (1, 0), (2, 0), (3, 0))
        assert simplify_points(chain, 0.0) == pts((0, 0), (3, 0))

    def test_significant_vertex_kept(self):
        chain = pts((0, 0), (5, 3), (10, 0))
        assert simplify_points(chain, 1.0) == chain
        assert simplify_points(chain, 5.0) == pts((0, 0), (10, 0))

    def test_deviation_bounded(self):
        from repro.spatial import Segment

        chain = pts((0, 0), (1, "0.4"), (2, "-0.3"), (3, "0.2"), (4, 0), (5, 1), (6, 0))
        tolerance = 0.5
        kept = simplify_points(chain, tolerance)
        # Every dropped point is within tolerance of the kept chain.
        for p in chain:
            d = min(
                Segment(a, b).distance_to_point(p)
                for a, b in zip(kept, kept[1:])
            )
            assert d <= tolerance + 1e-9

    def test_endpoints_always_kept(self):
        chain = pts((0, 0), (1, 100), (2, 0))
        kept = simplify_points(chain, 1e9)
        assert kept[0] == chain[0] and kept[-1] == chain[-1]

    def test_negative_tolerance_rejected(self):
        with pytest.raises(GeometryError):
            simplify_points(pts((0, 0), (1, 1), (2, 2)), -1)

    def test_simplify_polyline_reduces_constraint_cost(self):
        wiggly = PolylineFeature(
            "road",
            pts(*[(i, (i % 2) * 0.05) for i in range(20)]),
        )
        simplified = simplify_polyline(wiggly, 0.1)
        assert simplified.segment_count < wiggly.segment_count
        assert simplified.constraint_cost().constraints < wiggly.constraint_cost().constraints

    def test_simplify_region_keeps_shape(self):
        # A square with a tiny nick on one edge.
        outline = pts((0, 0), (5, 0), (10, 0), (10, 10), (5, "10.05"), (0, 10))
        region = RegionFeature("r", outline)
        simplified = simplify_region(region, 0.2)
        assert len(simplified.outline) == 4
        assert abs(float(simplified.area() - region.area())) < 1.0

    def test_simplify_region_refuses_collapse(self):
        region = RegionFeature("r", pts((0, 0), (10, "0.01"), (20, 0), (10, "0.02")))
        with pytest.raises(GeometryError, match="collapses"):
            simplify_region(region, 10.0)
