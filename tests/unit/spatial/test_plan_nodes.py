"""Unit tests for the spatial plan nodes (Buffer-Join / k-Nearest in CQA)."""

import pytest

from repro.algebra import EvaluationContext, Scan, evaluate
from repro.errors import AlgebraError
from repro.model import Database, Schema, constraint, relational
from repro.spatial import BufferJoinNode, ConvexPolygon, Feature, FeatureSet, KNearestNode


@pytest.fixture
def db():
    parcels = FeatureSet(
        [
            Feature("a", [ConvexPolygon.box(0, 0, 1, 1)]),
            Feature("b", [ConvexPolygon.box(3, 0, 4, 1)]),
            Feature("c", [ConvexPolygon.box(10, 0, 11, 1)]),
        ]
    )
    return Database({"Parcels": parcels.to_relation("Parcels")})


class TestBufferJoinNode:
    def test_evaluates(self, db):
        plan = BufferJoinNode(Scan("Parcels"), Scan("Parcels"), 2)
        result = evaluate(plan, EvaluationContext(db))
        pairs = {(t.value("fid1"), t.value("fid2")) for t in result}
        assert pairs == {("a", "b"), ("b", "a")}

    def test_infer_schema(self, db):
        plan = BufferJoinNode(Scan("Parcels"), Scan("Parcels"), 2, "p", "q")
        schema = plan.infer_schema(db)
        assert schema.names == ("p", "q")

    def test_metrics(self, db):
        ctx = EvaluationContext(db)
        evaluate(BufferJoinNode(Scan("Parcels"), Scan("Parcels"), 2), ctx)
        assert ctx.metrics.operator_calls["buffer_join"] == 1

    def test_with_children(self, db):
        plan = BufferJoinNode(Scan("Parcels"), Scan("Parcels"), 2)
        rebuilt = plan.with_children([Scan("Parcels"), Scan("Parcels")])
        assert isinstance(rebuilt, BufferJoinNode)
        assert rebuilt.distance == plan.distance

    def test_non_spatial_input_rejected(self, db):
        other = Schema([relational("id"), relational("name")])
        from repro.model import ConstraintRelation

        db.add("Flat", ConstraintRelation(other, []))
        plan = BufferJoinNode(Scan("Flat"), Scan("Parcels"), 2)
        with pytest.raises(AlgebraError, match="spatial constraint relation"):
            evaluate(plan, EvaluationContext(db))


class TestKNearestNode:
    def test_evaluates(self, db):
        plan = KNearestNode(Scan("Parcels"), "a", 2)
        result = evaluate(plan, EvaluationContext(db))
        ranked = sorted((t.value("rank"), t.value("fid")) for t in result)
        assert ranked == [(1, "b"), (2, "c")]

    def test_missing_query_feature(self, db):
        plan = KNearestNode(Scan("Parcels"), "zzz", 1)
        with pytest.raises(AlgebraError, match="zzz"):
            evaluate(plan, EvaluationContext(db))

    def test_invalid_k_at_construction(self):
        with pytest.raises(AlgebraError):
            KNearestNode(Scan("Parcels"), "a", 0)

    def test_cross_layer_query_child(self, db):
        from repro.spatial import ConvexPolygon, Feature, FeatureSet

        probes = FeatureSet([Feature("p", [ConvexPolygon.box(9, 0, 9.5, 1)])])
        db.add("Probes", probes.to_relation("Probes"))
        plan = KNearestNode(Scan("Parcels"), "p", 1, query_child=Scan("Probes"))
        result = evaluate(plan, EvaluationContext(db))
        assert [t.value("fid") for t in result] == ["c"]

    def test_cross_layer_missing_feature(self, db):
        from repro.spatial import ConvexPolygon, Feature, FeatureSet

        probes = FeatureSet([Feature("p", [ConvexPolygon.box(9, 0, 9.5, 1)])])
        db.add("Probes2", probes.to_relation("Probes2"))
        plan = KNearestNode(Scan("Parcels"), "zzz", 1, query_child=Scan("Probes2"))
        with pytest.raises(AlgebraError, match="query relation"):
            evaluate(plan, EvaluationContext(db))

    def test_with_children_preserves_query_child(self, db):
        plan = KNearestNode(Scan("Parcels"), "p", 1, query_child=Scan("Parcels"))
        rebuilt = plan.with_children([Scan("Parcels"), Scan("Parcels")])
        assert rebuilt.query_child is not None
        assert len(plan.children) == 2

    def test_via_query_language(self, db):
        from repro.query import QuerySession

        session = QuerySession(db)
        result = session.run_script(
            "R0 = knearest 1 near a in Parcels\nR1 = project R0 on fid\n"
        )
        assert [t.value("fid") for t in result] == ["b"]

    def test_bufferjoin_via_query_language(self, db):
        from repro.query import QuerySession

        session = QuerySession(db)
        result = session.execute("R0 = bufferjoin Parcels and Parcels within 2 as p, q")
        assert {(t.value("p"), t.value("q")) for t in result} == {("a", "b"), ("b", "a")}
