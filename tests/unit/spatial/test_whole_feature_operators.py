"""Unit tests for Buffer-Join and k-Nearest (section 4)."""

import random

import pytest

from repro.errors import GeometryError
from repro.model import DataType
from repro.spatial import (
    BufferJoinStatistics,
    ConvexPolygon,
    Feature,
    FeatureSet,
    KNearestStatistics,
    Point,
    buffer_join,
    buffer_join_bruteforce,
    k_nearest,
    k_nearest_bruteforce,
    k_nearest_features,
)


def box(x0, y0, x1, y1):
    return ConvexPolygon.box(x0, y0, x1, y1)


def row_of_features(count: int, gap: float = 3.0) -> FeatureSet:
    """Unit squares spaced ``gap`` apart along the x axis."""
    return FeatureSet(
        [Feature(f"f{i}", [box(i * (1 + gap), 0, i * (1 + gap) + 1, 1)]) for i in range(count)]
    )


@pytest.fixture(scope="module")
def random_features():
    rng = random.Random(31)
    features = []
    for i in range(50):
        x0, y0 = rng.uniform(0, 80), rng.uniform(0, 80)
        features.append(Feature(f"f{i}", [box(x0, y0, x0 + rng.uniform(1, 6), y0 + rng.uniform(1, 6))]))
    return FeatureSet(features)


class TestBufferJoin:
    def test_adjacent_within_distance(self):
        fs = row_of_features(4, gap=3.0)
        result = buffer_join(fs, fs, 3)
        pairs = {(t.value("fid1"), t.value("fid2")) for t in result}
        assert ("f0", "f1") in pairs and ("f1", "f0") in pairs
        assert ("f0", "f2") not in pairs

    def test_distance_zero_pairs_only_touching(self):
        fs = FeatureSet([Feature("a", [box(0, 0, 1, 1)]), Feature("b", [box(1, 0, 2, 1)]),
                         Feature("c", [box(5, 5, 6, 6)])])
        result = buffer_join(fs, fs, 0)
        pairs = {(t.value("fid1"), t.value("fid2")) for t in result}
        assert pairs == {("a", "b"), ("b", "a")}

    def test_self_pairs_excluded_on_self_join(self):
        fs = row_of_features(3)
        result = buffer_join(fs, fs, 100)
        assert all(t.value("fid1") != t.value("fid2") for t in result)

    def test_two_distinct_sets_keep_self_named_pairs(self):
        a = FeatureSet([Feature("same", [box(0, 0, 1, 1)])])
        b = FeatureSet([Feature("same", [box(0, 0, 1, 1)])])
        result = buffer_join(a, b, 1)
        assert len(result) == 1  # not a self-join: identity is by set, not fid

    def test_output_schema_is_relational(self):
        fs = row_of_features(2)
        result = buffer_join(fs, fs, 100, left_attr="a", right_attr="b")
        assert result.schema.names == ("a", "b")
        assert all(attr.is_relational for attr in result.schema)

    def test_negative_distance_rejected(self):
        fs = row_of_features(2)
        with pytest.raises(GeometryError):
            buffer_join(fs, fs, -1)

    def test_same_output_names_rejected(self):
        fs = row_of_features(2)
        with pytest.raises(GeometryError):
            buffer_join(fs, fs, 1, left_attr="f", right_attr="f")

    def test_matches_bruteforce(self, random_features):
        for d in (0, 2, 5, 20):
            indexed = buffer_join(random_features, random_features, d)
            brute = buffer_join_bruteforce(random_features, random_features, d)
            assert set(indexed.tuples) == set(brute.tuples), d

    def test_statistics_filter_refine(self, random_features):
        stats = BufferJoinStatistics()
        buffer_join(random_features, random_features, 2, statistics=stats)
        assert stats.candidate_pairs >= stats.result_pairs
        assert stats.index_accesses > 0
        assert 0 <= stats.refinement_rate <= 1


class TestKNearest:
    def test_nearest_ordering(self):
        fs = row_of_features(5, gap=3.0)
        results = k_nearest_features(fs, fs["f0"], 3)
        assert [f.fid for f, _ in results] == ["f1", "f2", "f3"]
        distances = [d for _, d in results]
        assert distances == sorted(distances)

    def test_query_feature_excluded(self):
        fs = row_of_features(3)
        results = k_nearest_features(fs, fs["f1"], 3)
        assert all(f.fid != "f1" for f, _ in results)
        assert len(results) == 2  # only two others exist

    def test_k_larger_than_set(self):
        fs = row_of_features(3)
        assert len(k_nearest_features(fs, fs["f0"], 99)) == 2

    def test_external_query_feature(self):
        fs = row_of_features(3)
        probe = Feature("probe", [box(100, 0, 101, 1)])
        results = k_nearest_features(fs, probe, 1)
        assert results[0][0].fid == "f2"

    def test_matches_bruteforce(self, random_features):
        for fid in ("f0", "f7", "f23"):
            query = random_features[fid]
            fast = k_nearest_features(random_features, query, 5)
            brute = k_nearest_bruteforce(random_features, query, 5)
            assert [round(d, 9) for _, d in fast] == [round(d, 9) for _, d in brute]

    def test_relation_output_safe_schema(self):
        fs = row_of_features(4)
        result = k_nearest(fs, fs["f0"], 2)
        assert result.schema.names == ("fid", "rank")
        assert result.schema["rank"].data_type is DataType.RATIONAL
        ranked = sorted((t.value("rank"), t.value("fid")) for t in result)
        assert ranked == [(1, "f1"), (2, "f2")]

    def test_invalid_k(self):
        fs = row_of_features(2)
        with pytest.raises(GeometryError):
            k_nearest_features(fs, fs["f0"], 0)

    def test_statistics(self, random_features):
        stats = KNearestStatistics()
        k_nearest_features(random_features, random_features["f0"], 3, statistics=stats)
        assert stats.candidates_refined >= 3
        assert stats.index_accesses > 0

    def test_refinement_does_not_stop_early_on_mbr_order(self):
        # A feature whose MBR is close but whose exact shape is far: a thin
        # diagonal sliver vs a small box.  MBR mindist says the sliver is
        # nearer; exact distance says otherwise.
        # Diagonal segment from (2,2) to (10,10): its MBR covers [2,10]^2
        # but the geometry stays on the diagonal.
        sliver = Feature("sliver", [ConvexPolygon([Point(2, 2), Point(10, 10)])])
        corner_box = Feature("corner", [box(9, 0, 10, 1)])
        probe = Feature("probe", [box(9.4, 0.2, 9.6, 0.4)])
        fs = FeatureSet([sliver, corner_box])
        results = k_nearest_features(fs, probe, 1)
        assert results[0][0].fid == "corner"
