"""Unit tests for exact 2-D geometric primitives."""

import math
from fractions import Fraction

import pytest

from repro.errors import GeometryError
from repro.spatial import BoundingBox, Point, Segment, cross


class TestPoint:
    def test_exact_coordinates(self):
        p = Point("0.1", "1/3")
        assert p.x == Fraction(1, 10) and p.y == Fraction(1, 3)

    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_equality(self):
        assert Point(1, 2) == Point("1", "2.0")


class TestCross:
    def test_left_turn_positive(self):
        assert cross(Point(0, 0), Point(1, 0), Point(1, 1)) > 0

    def test_right_turn_negative(self):
        assert cross(Point(0, 0), Point(1, 0), Point(1, -1)) < 0

    def test_collinear_zero(self):
        assert cross(Point(0, 0), Point(1, 1), Point(2, 2)) == 0

    def test_exactness_with_tiny_fractions(self):
        # A float implementation would round this to zero.
        tiny = Fraction(1, 10**30)
        assert cross(Point(0, 0), Point(1, 0), Point(1, tiny)) > 0


class TestSegment:
    def test_length(self):
        assert Segment(Point(0, 0), Point(3, 4)).length() == 5.0

    def test_distance_to_point_interior(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.distance_to_point(Point(5, 3)) == 3.0

    def test_distance_to_point_clamped_to_endpoint(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.distance_to_point(Point(13, 4)) == 5.0

    def test_degenerate_segment_distance(self):
        s = Segment(Point(1, 1), Point(1, 1))
        assert s.is_degenerate
        assert s.distance_to_point(Point(4, 5)) == 5.0

    def test_crossing_segments_intersect(self):
        a = Segment(Point(0, 0), Point(2, 2))
        b = Segment(Point(0, 2), Point(2, 0))
        assert a.intersects(b)

    def test_touching_at_endpoint(self):
        a = Segment(Point(0, 0), Point(1, 1))
        b = Segment(Point(1, 1), Point(2, 0))
        assert a.intersects(b)

    def test_collinear_overlapping(self):
        a = Segment(Point(0, 0), Point(2, 0))
        b = Segment(Point(1, 0), Point(3, 0))
        assert a.intersects(b)

    def test_collinear_disjoint(self):
        a = Segment(Point(0, 0), Point(1, 0))
        b = Segment(Point(2, 0), Point(3, 0))
        assert not a.intersects(b)

    def test_parallel_non_intersecting(self):
        a = Segment(Point(0, 0), Point(2, 0))
        b = Segment(Point(0, 1), Point(2, 1))
        assert not a.intersects(b)

    def test_distance_between_segments(self):
        a = Segment(Point(0, 0), Point(2, 0))
        b = Segment(Point(0, 1), Point(2, 1))
        assert a.distance_to_segment(b) == 1.0

    def test_distance_zero_when_crossing(self):
        a = Segment(Point(0, 0), Point(2, 2))
        b = Segment(Point(0, 2), Point(2, 0))
        assert a.distance_to_segment(b) == 0.0

    def test_skew_distance(self):
        a = Segment(Point(0, 0), Point(1, 0))
        b = Segment(Point(2, 1), Point(3, 2))
        assert a.distance_to_segment(b) == pytest.approx(math.hypot(1, 1))


class TestBoundingBox:
    def test_of_points(self):
        box = BoundingBox.of_points([Point(1, 5), Point(3, 2)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (1, 2, 3, 5)

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            BoundingBox.of_points([])
        with pytest.raises(GeometryError):
            BoundingBox(2, 0, 1, 0)

    def test_expand(self):
        box = BoundingBox(0, 0, 1, 1).expand("0.5")
        assert box.min_x == Fraction(-1, 2) and box.max_y == Fraction(3, 2)

    def test_expand_negative_rejected(self):
        with pytest.raises(GeometryError):
            BoundingBox(0, 0, 1, 1).expand(-1)

    def test_union_and_intersects(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(2, 2, 3, 3)
        assert not a.intersects(b)
        u = a.union(b)
        assert u.intersects(a) and u.intersects(b)

    def test_touching_boxes_intersect(self):
        assert BoundingBox(0, 0, 1, 1).intersects(BoundingBox(1, 1, 2, 2))
