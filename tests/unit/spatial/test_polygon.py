"""Unit tests for convex polygons and constraint ⇄ vertex conversion."""

from fractions import Fraction

import pytest

from repro.constraints import Conjunction, DNFFormula, parse_constraints
from repro.errors import GeometryError
from repro.spatial import ConvexPolygon, Point


def conj(text: str) -> Conjunction:
    return Conjunction(parse_constraints(text))


def equivalent(a: Conjunction, b: Conjunction) -> bool:
    return DNFFormula([a]).equivalent(DNFFormula([b]))


class TestFromConjunction:
    def test_box(self):
        poly = ConvexPolygon.from_conjunction(conj("0 <= x, x <= 4, 0 <= y, y <= 3"))
        assert len(poly.vertices) == 4
        assert poly.area() == 12

    def test_clipped_box(self):
        poly = ConvexPolygon.from_conjunction(
            conj("0 <= x, x <= 4, 0 <= y, y <= 3, x + y <= 6")
        )
        assert len(poly.vertices) == 5
        assert poly.area() == Fraction(23, 2)

    def test_triangle(self):
        poly = ConvexPolygon.from_conjunction(conj("x >= 0, y >= 0, x + y <= 1"))
        assert set(poly.vertices) == {Point(0, 0), Point(1, 0), Point(0, 1)}

    def test_point_region(self):
        poly = ConvexPolygon.from_conjunction(conj("x = 1, y = 2"))
        assert poly.vertices == (Point(1, 2),)

    def test_segment_region(self):
        poly = ConvexPolygon.from_conjunction(conj("x = 1, 0 <= y, y <= 5"))
        assert set(poly.vertices) == {Point(1, 0), Point(1, 5)}

    def test_redundant_constraints_ignored(self):
        poly = ConvexPolygon.from_conjunction(
            conj("0 <= x, x <= 1, 0 <= y, y <= 1, x + y <= 10")
        )
        assert poly.area() == 1

    def test_strict_atoms_closed(self):
        poly = ConvexPolygon.from_conjunction(conj("0 < x, x < 1, 0 < y, y < 1"))
        assert poly.area() == 1

    def test_unbounded_rejected(self):
        with pytest.raises(GeometryError, match="unbounded"):
            ConvexPolygon.from_conjunction(conj("x >= 0, y >= 0"))

    def test_unsatisfiable_rejected(self):
        with pytest.raises(GeometryError):
            ConvexPolygon.from_conjunction(conj("x < 0, x > 0, y = 0"))

    def test_extra_variables_rejected(self):
        with pytest.raises(GeometryError):
            ConvexPolygon.from_conjunction(conj("x + y + z <= 1, x >= 0, y >= 0, z >= 0"))

    def test_custom_variable_names(self):
        poly = ConvexPolygon.from_conjunction(
            Conjunction(parse_constraints("0 <= lon, lon <= 1, 0 <= lat, lat <= 1")),
            x="lon",
            y="lat",
        )
        assert poly.area() == 1


class TestToConjunction:
    @pytest.mark.parametrize(
        "text",
        [
            "0 <= x, x <= 4, 0 <= y, y <= 3",
            "x >= 0, y >= 0, x + y <= 1",
            "0 <= x, x <= 4, 0 <= y, y <= 3, x + y <= 6",
            "x = 1, y = 2",
            "x = 1, 0 <= y, y <= 5",
            "y = x, 0 <= x, x <= 3",  # diagonal segment
        ],
    )
    def test_roundtrip_equivalence(self, text):
        original = conj(text)
        poly = ConvexPolygon.from_conjunction(original)
        back = poly.to_conjunction()
        assert equivalent(original, back), text

    def test_roundtrip_with_renamed_attributes(self):
        original = conj("0 <= x, x <= 1, 0 <= y, y <= 1")
        poly = ConvexPolygon.from_conjunction(original)
        renamed = poly.to_conjunction("a", "b")
        assert renamed.variables == {"a", "b"}


class TestGeometry:
    def test_contains_point(self):
        poly = ConvexPolygon.box(0, 0, 2, 2)
        assert poly.contains_point(Point(1, 1))
        assert poly.contains_point(Point(0, 0))  # boundary closed
        assert not poly.contains_point(Point(3, 1))

    def test_segment_contains_point(self):
        seg = ConvexPolygon([Point(0, 0), Point(2, 2)])
        assert seg.contains_point(Point(1, 1))
        assert not seg.contains_point(Point(1, 0))
        assert not seg.contains_point(Point(3, 3))

    def test_point_polygon_contains(self):
        pt = ConvexPolygon([Point(1, 1)])
        assert pt.contains_point(Point(1, 1))
        assert not pt.contains_point(Point(1, 2))

    def test_intersects_overlap(self):
        assert ConvexPolygon.box(0, 0, 2, 2).intersects(ConvexPolygon.box(1, 1, 3, 3))

    def test_intersects_containment(self):
        outer = ConvexPolygon.box(0, 0, 10, 10)
        inner = ConvexPolygon.box(4, 4, 5, 5)
        assert outer.intersects(inner)
        assert inner.intersects(outer)

    def test_intersects_touching_edge(self):
        assert ConvexPolygon.box(0, 0, 1, 1).intersects(ConvexPolygon.box(1, 0, 2, 1))

    def test_disjoint(self):
        assert not ConvexPolygon.box(0, 0, 1, 1).intersects(ConvexPolygon.box(5, 5, 6, 6))

    def test_cross_shape_no_vertex_containment(self):
        # A horizontal and a vertical bar crossing: neither contains a
        # vertex of the other, only edges cross.
        horizontal = ConvexPolygon.box(-3, -1, 3, 1)
        vertical = ConvexPolygon.box(-1, -3, 1, 3)
        assert horizontal.intersects(vertical)

    def test_distance_axis(self):
        assert ConvexPolygon.box(0, 0, 1, 1).distance(ConvexPolygon.box(3, 0, 4, 1)) == 2.0

    def test_distance_diagonal(self):
        d = ConvexPolygon.box(0, 0, 1, 1).distance(ConvexPolygon.box(2, 2, 3, 3))
        assert d == pytest.approx(2**0.5)

    def test_distance_zero_on_touch(self):
        assert ConvexPolygon.box(0, 0, 1, 1).distance(ConvexPolygon.box(1, 1, 2, 2)) == 0.0

    def test_distance_point_to_polygon(self):
        pt = ConvexPolygon([Point(5, 0)])
        box = ConvexPolygon.box(0, 0, 1, 1)
        assert pt.distance(box) == 4.0

    def test_bounding_box(self):
        box = ConvexPolygon.from_conjunction(conj("x >= 0, y >= 0, x + y <= 1")).bounding_box()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 0, 1, 1)

    def test_centroid_inside(self):
        poly = ConvexPolygon.box(0, 0, 2, 2)
        assert poly.contains_point(poly.centroid())


class TestHullCanonicalisation:
    def test_collinear_input_vertices_dropped(self):
        poly = ConvexPolygon(
            [Point(0, 0), Point(1, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        )
        assert len(poly.vertices) == 4

    def test_duplicate_vertices_dropped(self):
        poly = ConvexPolygon([Point(0, 0), Point(0, 0), Point(1, 0), Point(0, 1)])
        assert len(poly.vertices) == 3

    def test_equality_ignores_rotation(self):
        a = ConvexPolygon([Point(0, 0), Point(1, 0), Point(1, 1)])
        b = ConvexPolygon([Point(1, 1), Point(0, 0), Point(1, 0)])
        assert a == b
        assert hash(a) == hash(b)

    def test_ccw_orientation(self):
        from repro.spatial import cross

        poly = ConvexPolygon([Point(0, 0), Point(0, 2), Point(2, 2), Point(2, 0)])
        v = poly.vertices
        n = len(v)
        assert all(cross(v[i], v[(i + 1) % n], v[(i + 2) % n]) > 0 for i in range(n))
