"""Unit tests for the experiment plumbing (series, binning, tables)."""

import pytest

from repro.experiments import (
    ExperimentResult,
    ExperimentSeries,
    QueryMeasurement,
    check_consistency,
)


def series_with(xs_and_accesses):
    s = ExperimentSeries("test", x_label="x")
    for x, joint, separate in xs_and_accesses:
        s.measurements.append(QueryMeasurement(x, joint, separate, result_count=0))
    return s


class TestSeries:
    def test_means(self):
        s = series_with([(1, 2, 4), (2, 4, 8)])
        assert s.mean_joint == 3
        assert s.mean_separate == 6
        assert s.joint_advantage == 2.0

    def test_advantage_with_zero_joint(self):
        s = series_with([(1, 0, 4)])
        assert s.joint_advantage == float("inf")

    def test_binned_groups_by_x(self):
        s = series_with([(0, 1, 1), (1, 3, 3), (10, 5, 5)])
        rows = s.binned(bins=2)
        assert len(rows) == 2
        # first bin holds x=0 and x=1, second holds x=10
        assert rows[0][3] == 2 and rows[1][3] == 1

    def test_binned_single_x(self):
        s = series_with([(5, 1, 2), (5, 3, 4)])
        rows = s.binned()
        assert rows == [(5, 2.0, 3.0, 2)]

    def test_binned_empty(self):
        assert ExperimentSeries("e", "x").binned() == []

    def test_singleton_bin_reports_exact_x(self):
        s = series_with([(500, 1, 10), (4000, 1, 51)])
        rows = s.binned(bins=2)
        assert rows[0][0] == 500
        assert rows[1][0] == 4000

    def test_every_measurement_lands_in_exactly_one_bin(self):
        s = series_with([(float(i), i, i) for i in range(17)])
        rows = s.binned(bins=5)
        assert sum(r[3] for r in rows) == 17


class TestResultTable:
    def test_format_contains_all_sections(self):
        result = ExperimentResult(
            "fig-x",
            "a title",
            [series_with([(1, 2, 3), (2, 2, 3)])],
            notes="some notes",
        )
        text = result.format_table()
        assert "fig-x" in text and "a title" in text and "some notes" in text
        assert "joint" in text and "separate" in text
        assert "advantage" in text


class TestConsistency:
    def test_matching_sets_pass(self):
        check_consistency({1, 2}, [2, 1])

    def test_mismatch_raises(self):
        with pytest.raises(AssertionError, match="disagreement"):
            check_consistency({1}, {1, 2})
