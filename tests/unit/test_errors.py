"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AlgebraError,
    ConstraintError,
    GeometryError,
    IndexError_,
    NonLinearError,
    ParseError,
    QueryError,
    ReproError,
    SafetyError,
    SchemaError,
    StorageError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            AlgebraError,
            ConstraintError,
            GeometryError,
            IndexError_,
            NonLinearError,
            ParseError,
            QueryError,
            SafetyError,
            SchemaError,
            StorageError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_safety_is_algebra_error(self):
        assert issubclass(SafetyError, AlgebraError)

    def test_parse_is_query_error(self):
        assert issubclass(ParseError, QueryError)

    def test_nonlinear_is_constraint_error(self):
        assert issubclass(NonLinearError, ConstraintError)

    def test_index_error_does_not_shadow_builtin(self):
        assert not issubclass(IndexError_, IndexError)


class TestParseErrorLocation:
    def test_message_only(self):
        assert str(ParseError("bad token")) == "bad token"

    def test_line(self):
        err = ParseError("bad token", line=3)
        assert "line 3" in str(err)
        assert err.line == 3 and err.column is None

    def test_line_and_column(self):
        err = ParseError("bad token", line=3, column=7)
        assert "line 3, column 7" in str(err)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise ParseError("x", 1, 2)
