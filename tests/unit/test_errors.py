"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AlgebraError,
    ConstraintError,
    CorruptPageError,
    DeadlineExceeded,
    DNFBudgetExceeded,
    GeometryError,
    IndexError_,
    IndexStructureError,
    IOBudgetExceeded,
    NonLinearError,
    OutputLimitExceeded,
    ParseError,
    QueryError,
    ReproError,
    ResourceExhausted,
    SafetyError,
    SchemaError,
    SolverBudgetExceeded,
    StorageError,
    TransientStorageError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            AlgebraError,
            ConstraintError,
            GeometryError,
            IndexStructureError,
            NonLinearError,
            ParseError,
            QueryError,
            ResourceExhausted,
            SafetyError,
            SchemaError,
            StorageError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_safety_is_algebra_error(self):
        assert issubclass(SafetyError, AlgebraError)

    def test_parse_is_query_error(self):
        assert issubclass(ParseError, QueryError)

    def test_nonlinear_is_constraint_error(self):
        assert issubclass(NonLinearError, ConstraintError)

    def test_index_error_does_not_shadow_builtin(self):
        assert not issubclass(IndexStructureError, IndexError)

    def test_deprecated_alias_still_works(self):
        # IndexError_ predates IndexStructureError; existing except clauses
        # must keep catching the same class.
        assert IndexError_ is IndexStructureError

    @pytest.mark.parametrize(
        "exc_type",
        [
            DeadlineExceeded,
            SolverBudgetExceeded,
            DNFBudgetExceeded,
            OutputLimitExceeded,
            IOBudgetExceeded,
        ],
    )
    def test_exhaustion_taxonomy(self, exc_type):
        assert issubclass(exc_type, ResourceExhausted)

    @pytest.mark.parametrize("exc_type", [TransientStorageError, CorruptPageError])
    def test_storage_fault_taxonomy(self, exc_type):
        assert issubclass(exc_type, StorageError)


class TestResourceExhausted:
    def test_carries_accounting(self):
        err = SolverBudgetExceeded(
            "over budget",
            resource="solver_steps",
            consumed=12,
            limit=10,
            snapshot={"consumed.solver_steps": 12},
        )
        assert err.resource == "solver_steps"
        assert err.consumed == 12 and err.limit == 10
        assert err.snapshot["consumed.solver_steps"] == 12

    def test_defaults_are_empty(self):
        err = ResourceExhausted("plain")
        assert err.resource == "" and err.consumed is None
        assert err.limit is None and err.snapshot == {}


class TestParseErrorLocation:
    def test_message_only(self):
        assert str(ParseError("bad token")) == "bad token"

    def test_line(self):
        err = ParseError("bad token", line=3)
        assert "line 3" in str(err)
        assert err.line == 3 and err.column is None

    def test_line_and_column(self):
        err = ParseError("bad token", line=3, column=7)
        assert "line 3, column 7" in str(err)

    def test_column_only(self):
        # Single-statement parsers often know the offset but not a line.
        err = ParseError("bad token", column=7)
        assert "column 7" in str(err)
        assert err.line is None and err.column == 7

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise ParseError("x", 1, 2)
