"""Unit tests for the exact rational simplex feasibility solver."""

from fractions import Fraction

from repro.constraints import Conjunction, parse_constraints
from repro.constraints.simplex import find_rational_solution, is_satisfiable


def atoms(text: str):
    return parse_constraints(text)


def check_witness(text: str) -> None:
    result = find_rational_solution(atoms(text))
    assert result.feasible
    assert result.witness is not None
    assert Conjunction(atoms(text)).satisfied_by(result.witness)


class TestFeasible:
    def test_empty_system(self):
        result = find_rational_solution([])
        assert result.feasible and result.witness == {}

    def test_box(self):
        check_witness("0 <= x, x <= 1, 0 <= y, y <= 1")

    def test_negative_region(self):
        # Free variables must support negative values via the +/- split.
        check_witness("x <= -5, x >= -10")

    def test_equalities(self):
        check_witness("x + y = 10, x - y = 4")
        result = find_rational_solution(atoms("x + y = 10, x - y = 4"))
        assert result.witness == {"x": 7, "y": 3}

    def test_strict_inequalities(self):
        check_witness("x > 0, x < 1")

    def test_thin_strict_region(self):
        check_witness("x < y, y < x + 1/1000")

    def test_rational_coefficients(self):
        check_witness("2/3*x + 1/5*y <= 7/2, x >= 1/7, y >= 1/9")

    def test_mixed_strict_and_equality(self):
        check_witness("x + y = 1, x > 0, y > 0")

    def test_unbounded_feasible(self):
        check_witness("x >= 1000000")


class TestInfeasible:
    def test_ground_false(self):
        assert not is_satisfiable(atoms("1 <= 0"))

    def test_contradictory_bounds(self):
        assert not is_satisfiable(atoms("x <= 0, x >= 1"))

    def test_strict_point(self):
        assert not is_satisfiable(atoms("x < 1, x > 1"))
        assert not is_satisfiable(atoms("x < 1, x >= 1"))

    def test_strict_against_equality(self):
        assert not is_satisfiable(atoms("x = 1, x < 1"))

    def test_triangle_gap(self):
        assert not is_satisfiable(atoms("x + y >= 10, x <= 4, y <= 4"))

    def test_equality_system_inconsistent(self):
        assert not is_satisfiable(atoms("x + y = 1, x + y = 2"))

    def test_strict_face_of_equality(self):
        assert not is_satisfiable(atoms("x + y = 10, x < 5, y <= 5"))


class TestAgainstElimination:
    """The simplex and Fourier-Motzkin must agree (fixed cases here; random
    cross-checks live in the property suite)."""

    CASES = [
        "0 <= x, x <= 1",
        "x < 0, x > 0",
        "x = y, y = z, x = 3, z = 3",
        "x = y, y = z, x = 3, z = 4",
        "x + y <= 1, x >= 1, y >= 1",
        "x + 2*y - z <= 4, z >= 0, x > 1, y > 1",
        "x/2 >= 3, x <= 6",
        "x/2 >= 3, x < 6",
    ]

    def test_agreement(self):
        from repro.constraints.elimination import is_satisfiable as fm_sat

        for case in self.CASES:
            assert is_satisfiable(atoms(case)) == fm_sat(atoms(case)), case

    def test_witness_values_are_fractions(self):
        result = find_rational_solution(atoms("x > 1/3, x < 2/3"))
        assert isinstance(result.witness["x"], Fraction)
