"""Unit tests for Fourier–Motzkin elimination and Gaussian substitution."""

from fractions import Fraction

import pytest

from repro.constraints import Comparator, Conjunction, parse_constraints, var
from repro.constraints.elimination import (
    eliminate,
    fourier_motzkin_step,
    is_satisfiable,
    solve_equality_for,
    variable_bounds,
)


def atoms(text: str):
    return parse_constraints(text)


class TestSolveEquality:
    def test_simple(self):
        (atom,) = atoms("x = 2*y + 1")
        solved = solve_equality_for(atom, "x")
        assert solved.coefficient("y") == 2
        assert solved.constant == 1

    def test_solve_for_scaled_variable(self):
        (atom,) = atoms("3*x + y = 6")
        solved = solve_equality_for(atom, "x")
        assert solved.coefficient("y") == Fraction(-1, 3)
        assert solved.constant == 2

    def test_requires_equality(self):
        (atom,) = atoms("x <= 1")
        with pytest.raises(ValueError):
            solve_equality_for(atom, "x")

    def test_requires_variable_presence(self):
        (atom,) = atoms("x = 1")
        with pytest.raises(ValueError):
            solve_equality_for(atom, "y")


class TestFourierMotzkinStep:
    def test_lower_and_upper_combine(self):
        result = fourier_motzkin_step(atoms("x >= 1, x <= y"), "x")
        (combined,) = [a for a in result if not a.is_trivial]
        assert combined.satisfied_by({"y": 1})
        assert not combined.satisfied_by({"y": 0})

    def test_strictness_propagates(self):
        result = fourier_motzkin_step(atoms("x > 1, x <= y"), "x")
        (combined,) = result
        assert combined.comparator is Comparator.LT or not combined.satisfied_by({"y": 1})

    def test_unbounded_side_vanishes(self):
        assert fourier_motzkin_step(atoms("x >= 1"), "x") == []

    def test_atoms_without_variable_pass_through(self):
        result = fourier_motzkin_step(atoms("x >= 1, y <= 2"), "x")
        assert len(result) == 1
        assert result[0].variables == {"y"}

    def test_equality_must_be_substituted_first(self):
        with pytest.raises(ValueError):
            fourier_motzkin_step(atoms("x = 1"), "x")


class TestEliminate:
    def test_unsat_detected(self):
        result = eliminate(atoms("x <= 0, x >= 1"), ["x"])
        assert len(result) == 1 and not result[0].truth_value()

    def test_equality_substitution_path(self):
        result = eliminate(atoms("x = y + 1, x <= 5"), ["x"])
        (atom,) = result
        assert atom.satisfied_by({"y": 4})
        assert not atom.satisfied_by({"y": 5})

    def test_multiple_variables(self):
        # Project a 3-d simplex onto x.
        result = eliminate(atoms("x + y + z <= 6, x >= 0, y >= 0, z >= 0"), ["y", "z"])
        c = Conjunction(result)
        assert c.satisfied_by({"x": 6})
        assert not c.satisfied_by({"x": 7})

    def test_variable_not_present_is_noop(self):
        original = atoms("x <= 1")
        assert eliminate(original, ["q"]) == original

    def test_chained_equalities(self):
        result = eliminate(atoms("x = y, y = z, 0 <= z, z <= 1"), ["x", "y"])
        c = Conjunction(result)
        assert c.satisfied_by({"z": 1})
        assert not c.satisfied_by({"z": 2})


class TestIsSatisfiable:
    def test_empty(self):
        assert is_satisfiable([])

    def test_box(self):
        assert is_satisfiable(atoms("0 <= x, x <= 1, 0 <= y, y <= 1"))

    def test_thin_strict_region(self):
        assert is_satisfiable(atoms("x < y, y < x + 1/100"))

    def test_infeasible_triangle(self):
        assert not is_satisfiable(atoms("x + y >= 10, x <= 4, y <= 4"))

    def test_equality_boundary(self):
        assert is_satisfiable(atoms("x + y = 10, x <= 5, y <= 5"))
        assert not is_satisfiable(atoms("x + y = 10, x < 5, y <= 5"))


class TestVariableBounds:
    def test_triangle(self):
        lower, ls, upper, us = variable_bounds(
            atoms("x >= 0, y >= 0, x + y <= 4"), "x"
        )
        assert (lower, upper) == (0, 4)
        assert not ls and not us

    def test_strict_flag(self):
        _, _, upper, strict = variable_bounds(atoms("x < 3"), "x")
        assert upper == 3 and strict

    def test_unsat_raises(self):
        with pytest.raises(ValueError):
            variable_bounds(atoms("x < 0, x > 0"), "x")
