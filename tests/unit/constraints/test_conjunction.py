"""Unit tests for conjunctions (constraint-tuple formulas)."""

from fractions import Fraction

import pytest

from repro.constraints import Conjunction, eq, ge, le, lt, parse_constraints, var
from repro.errors import ConstraintError

x, y, z = var("x"), var("y"), var("z")


def conj(text: str) -> Conjunction:
    return Conjunction(parse_constraints(text))


class TestConstruction:
    def test_empty_is_true(self):
        assert Conjunction.true().is_true
        assert Conjunction.true().is_satisfiable()

    def test_ground_false_collapses(self):
        c = Conjunction([lt(1, 1)])
        assert not c.is_satisfiable()
        assert c == Conjunction.false()

    def test_ground_true_dropped(self):
        c = Conjunction([le(0, 1), x <= 5])
        assert len(c) == 1

    def test_duplicates_removed(self):
        c = Conjunction([x <= 5, le(var("x"), 5), le(2 * var("x"), 10)])
        assert len(c) == 1

    def test_point(self):
        c = Conjunction.point({"x": 1, "y": "2.5"})
        assert c.satisfied_by({"x": 1, "y": Fraction(5, 2)})
        assert not c.satisfied_by({"x": 1, "y": 2})

    def test_box(self):
        c = Conjunction.box({"x": (0, 4), "y": (1, 2)})
        assert c.satisfied_by({"x": 0, "y": 2})
        assert not c.satisfied_by({"x": 5, "y": 1})

    def test_rejects_non_atoms(self):
        with pytest.raises(ConstraintError):
            Conjunction(["x <= 5"])  # type: ignore[list-item]


class TestSatisfiability:
    def test_box_is_satisfiable(self):
        assert conj("0 <= x, x <= 1").is_satisfiable()

    def test_contradiction(self):
        assert not conj("x <= 1, x >= 2").is_satisfiable()

    def test_strict_boundary_unsat(self):
        assert not conj("x < 1, x > 1").is_satisfiable()
        assert not conj("x < 1, x >= 1").is_satisfiable()

    def test_equality_chain(self):
        assert conj("x = y, y = z, x = 3, z = 3").is_satisfiable()
        assert not conj("x = y, y = z, x = 3, z = 4").is_satisfiable()

    def test_multivariable(self):
        assert conj("x + y <= 1, x >= 0, y >= 0").is_satisfiable()
        assert not conj("x + y <= 1, x >= 1, y >= 1").is_satisfiable()

    def test_result_cached(self):
        c = conj("0 <= x, x <= 1")
        assert c.is_satisfiable() and c.is_satisfiable()


class TestEntailmentAndEquivalence:
    def test_entails_weaker_bound(self):
        assert conj("x <= 1").entails(le(var("x"), 2))
        assert not conj("x <= 2").entails(le(var("x"), 1))

    def test_entails_conjunction(self):
        assert conj("x = 2, y = 3").entails(conj("x + y = 5"))

    def test_unsat_entails_everything(self):
        assert Conjunction.false().entails(le(var("x"), -100))

    def test_everything_entails_true(self):
        assert conj("x <= 1").entails(Conjunction.true())

    def test_equivalent_syntactically_different(self):
        assert conj("x <= 2, x <= 5").equivalent(conj("x <= 2"))

    def test_equality_entails_both_inequalities(self):
        assert conj("x = 5").entails(conj("x <= 5, x >= 5"))
        assert conj("x <= 5, x >= 5").entails(conj("x = 5"))


class TestProjection:
    def test_project_box(self):
        projected = conj("0 <= x, x <= 1, 2 <= y, y <= 3").project(["x"])
        assert projected.variables == {"x"}
        assert projected.satisfied_by({"x": Fraction(1, 2)})
        assert not projected.satisfied_by({"x": 2})

    def test_project_diagonal(self):
        # x = y with 0 <= y <= 1 projects to 0 <= x <= 1.
        projected = conj("x = y, 0 <= y, y <= 1").project(["x"])
        assert projected.satisfied_by({"x": 1})
        assert not projected.satisfied_by({"x": 2})

    def test_project_keeps_all_is_identity(self):
        c = conj("x + y <= 1")
        assert c.project(["x", "y"]) is c

    def test_project_to_nothing(self):
        assert conj("0 <= x").project([]).is_true
        assert not conj("x < 0, x > 0").project([]).is_satisfiable()

    def test_eliminate(self):
        c = conj("x + y <= 4, y >= 1").eliminate(["y"])
        assert c.variables == {"x"}
        assert c.satisfied_by({"x": 3})
        assert not c.satisfied_by({"x": 4})

    def test_projection_preserves_strictness(self):
        projected = conj("x < y, y < 1").project(["x"])
        assert not projected.satisfied_by({"x": 1})


class TestBounds:
    def test_box_bounds(self):
        lower, ls, upper, us = conj("0 <= x, x <= 1").bounds("x")
        assert (lower, ls, upper, us) == (0, False, 1, False)

    def test_strict_bounds(self):
        lower, ls, upper, us = conj("0 < x, x < 1").bounds("x")
        assert (lower, ls, upper, us) == (0, True, 1, True)

    def test_unbounded_side(self):
        lower, _, upper, _ = conj("x >= 3").bounds("x")
        assert lower == 3 and upper is None

    def test_implied_bounds_through_other_variables(self):
        lower, _, upper, _ = conj("x = y + 1, 0 <= y, y <= 2").bounds("x")
        assert (lower, upper) == (1, 3)

    def test_equality_bounds(self):
        lower, _, upper, _ = conj("x = 5").bounds("x")
        assert lower == upper == 5

    def test_unsat_bounds_raise(self):
        with pytest.raises(ConstraintError):
            Conjunction.false().bounds("x")


class TestTransformations:
    def test_conjoin_atom(self):
        c = conj("x <= 5").conjoin(ge(var("x"), 1))
        assert len(c) == 2

    def test_conjoin_conjunction(self):
        c = conj("x <= 5").conjoin(conj("y <= 2"))
        assert c.variables == {"x", "y"}

    def test_substitute(self):
        c = conj("x + y <= 4").substitute("y", var("z") * 2)
        assert c.variables == {"x", "z"}
        assert c.satisfied_by({"x": 0, "z": 2})
        assert not c.satisfied_by({"x": 1, "z": 2})

    def test_rename(self):
        c = conj("x <= 5").rename("x", "t")
        assert c.variables == {"t"}

    def test_rename_collision(self):
        with pytest.raises(ConstraintError):
            conj("x + y <= 5").rename("x", "y")


class TestSimplify:
    def test_removes_redundant_atom(self):
        simplified = conj("x <= 2, x <= 5").simplify()
        assert simplified.equivalent(conj("x <= 2"))
        assert len(simplified) == 1

    def test_redundant_multivariable(self):
        simplified = conj("x <= 1, y <= 1, x + y <= 5").simplify()
        assert len(simplified) == 2

    def test_unsat_simplifies_to_false(self):
        assert conj("x < 0, x > 1").simplify() == Conjunction.false()

    def test_irredundant_untouched(self):
        c = conj("x >= 0, x <= 1")
        assert len(c.simplify()) == 2

    def test_simplify_preserves_semantics(self):
        c = conj("x >= 0, x <= 3, x + y <= 4, y >= 0, y <= 10, x + y <= 12")
        s = c.simplify()
        assert s.equivalent(c)
