"""The layered satisfiability front-end: caches, intervals, dispatch.

Every fast-path answer must agree with a fresh Fourier–Motzkin run — the
layers are accelerators, never a second semantics.
"""

from fractions import Fraction

import pytest

from repro.constraints import Conjunction, parse_constraints, solver, var
from repro.constraints import elimination
from repro.constraints.atoms import eq, ge, gt, le, lt
from repro.constraints.cache import InternTable, LRUCache
from repro.obs import (
    MetricsRegistry,
    SATISFIABILITY_CHECKS,
    SOLVER_BOX_DECIDED,
    SOLVER_CACHE_HITS,
    SOLVER_CACHE_MISSES,
    SOLVER_FM_ROUTED,
    SOLVER_INTERVAL_PRUNES,
    SOLVER_JOIN_PRUNES,
    SOLVER_REQUESTS,
    SOLVER_SIMPLEX_ROUTED,
)


def conj(text: str) -> Conjunction:
    return Conjunction(parse_constraints(text))


@pytest.fixture(autouse=True)
def fresh_solver_state():
    solver.clear_caches()
    yield
    solver.clear_caches()


class TestLRUCache:
    def test_get_put_and_counters(self):
        cache: LRUCache[str, int] = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_is_least_recently_used(self):
        cache: LRUCache[str, int] = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" becomes the LRU entry
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_capacity_is_respected(self):
        cache: LRUCache[int, int] = LRUCache(8)
        for i in range(50):
            cache.put(i, i)
        assert len(cache) == 8
        assert cache.evictions == 42

    def test_put_updates_value_and_recency(self):
        cache: LRUCache[str, int] = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refreshes "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_caches_false_values(self):
        cache: LRUCache[str, bool] = LRUCache(2)
        cache.put("k", False)
        assert cache.get("k") is False  # False is a hit, not a miss


class TestInterning:
    def test_equal_atoms_intern_to_one_object(self):
        a = le(var("x") + var("y"), 3)
        b = le(var("x") + var("y"), 3)
        assert a is not b
        assert solver.intern_atom(a) is solver.intern_atom(b)

    def test_conjunction_atoms_are_interned(self):
        c1 = conj("x + y <= 3, x >= 1")
        c2 = conj("x >= 1, x + y <= 3")
        assert all(x is y for x, y in zip(c1.atoms, c2.atoms))

    def test_intern_table_epoch_clear(self):
        table: InternTable[str] = InternTable(capacity=2)
        first = table.intern("aa")
        table.intern("bb")
        table.intern("cc")  # exceeds capacity: table restarts
        assert len(table) <= 2
        assert table.intern("aa") == first  # equality survives, identity may not

    def test_cache_key_is_order_insensitive_and_deduplicated(self):
        atoms1 = (le(var("x"), 1), ge(var("y"), 0), le(var("x"), 1))
        atoms2 = (ge(var("y"), 0), le(var("x"), 1))
        assert solver.cache_key(atoms1) == solver.cache_key(atoms2)


class TestIntervalSummary:
    def test_bounds_harvested_from_single_variable_atoms(self):
        summary = solver.summarise(conj("x >= 1, x < 5, y <= 2").atoms)
        assert summary.bounds["x"] == (Fraction(1), False, Fraction(5), True)
        assert summary.bounds["y"] == (None, False, Fraction(2), False)
        assert summary.pure_box and not summary.inconsistent

    def test_equality_pins_both_sides(self):
        summary = solver.summarise((eq(var("x"), 3),))
        assert summary.bounds["x"] == (Fraction(3), False, Fraction(3), False)

    def test_empty_interval_is_inconsistent(self):
        summary = solver.summarise(conj("x >= 2, x < 2").atoms)
        assert summary.inconsistent

    def test_multi_variable_atom_clears_pure_box(self):
        summary = solver.summarise(conj("x + y <= 1, x >= 0").atoms)
        assert not summary.pure_box
        assert list(summary.bounds) == ["x"]  # only single-variable atoms contribute

    def test_disjoint_summaries_are_fm_unsatisfiable(self):
        # Soundness: whenever the interval layer prunes a join pair, the
        # combined system must really be unsatisfiable.
        left = conj("x >= 0, x <= 1, y >= 0, y <= 1")
        right = conj("y >= 3, y <= 4, z <= 0")
        assert solver.summaries_disjoint(left.interval_summary(), right.interval_summary())
        assert not elimination.is_satisfiable(left.atoms + right.atoms)

    def test_overlapping_summaries_not_disjoint(self):
        left = conj("x >= 0, x <= 2")
        right = conj("x >= 1, x <= 3")
        assert not solver.summaries_disjoint(
            left.interval_summary(), right.interval_summary()
        )


class TestLayeredIsSatisfiable:
    def test_interval_prune_answers_without_full_solve(self):
        registry = MetricsRegistry()
        with registry.activate():
            verdict = solver.is_satisfiable(conj("x > 1, x < 1").atoms)
        assert verdict is False
        assert registry.value(SOLVER_INTERVAL_PRUNES) == 1
        assert registry.value(SATISFIABILITY_CHECKS) == 0

    def test_pure_box_answers_without_full_solve(self):
        registry = MetricsRegistry()
        with registry.activate():
            verdict = solver.is_satisfiable(conj("x >= 0, y <= 5").atoms)
        assert verdict is True
        assert registry.value(SOLVER_BOX_DECIDED) == 1
        assert registry.value(SATISFIABILITY_CHECKS) == 0

    def test_repeat_requests_hit_the_cache(self):
        atoms = conj("x + y <= 3, x - y >= 1").atoms
        registry = MetricsRegistry()
        with registry.activate():
            first = solver.is_satisfiable(atoms)
            second = solver.is_satisfiable(tuple(reversed(atoms)))
        assert first is second is True
        assert registry.value(SOLVER_CACHE_MISSES) == 1
        assert registry.value(SOLVER_CACHE_HITS) == 1
        assert registry.value(SATISFIABILITY_CHECKS) == 1  # solved once

    def test_small_systems_route_to_fourier_motzkin(self):
        registry = MetricsRegistry()
        with registry.activate():
            solver.is_satisfiable(conj("x + y <= 3").atoms)
        assert registry.value(SOLVER_FM_ROUTED) == 1
        assert registry.value(SOLVER_SIMPLEX_ROUTED) == 0

    def test_many_variable_systems_route_to_simplex(self):
        atoms = tuple(
            le(var("x") + var(f"v{i}"), i) for i in range(6)
        )  # 7 variables >= threshold
        registry = MetricsRegistry()
        with registry.activate():
            verdict = solver.is_satisfiable(atoms)
        assert verdict is True
        assert registry.value(SOLVER_SIMPLEX_ROUTED) == 1
        assert registry.value(SATISFIABILITY_CHECKS) == 1

    def test_fast_path_off_is_plain_fourier_motzkin(self):
        atoms = conj("x >= 0, x <= 1").atoms
        registry = MetricsRegistry()
        with solver.fast_path(False), registry.activate():
            solver.is_satisfiable(atoms)
            solver.is_satisfiable(atoms)
        assert registry.value(SOLVER_REQUESTS) == 2
        assert registry.value(SATISFIABILITY_CHECKS) == 2  # no layer engaged
        assert registry.value(SOLVER_CACHE_HITS) == 0
        assert registry.value(SOLVER_BOX_DECIDED) == 0

    def test_join_prunable_records_and_is_gated(self):
        left = conj("x <= 0").interval_summary()
        right = conj("x >= 1").interval_summary()
        registry = MetricsRegistry()
        with registry.activate():
            assert solver.join_prunable(left, right)
            with solver.fast_path(False):
                assert not solver.join_prunable(left, right)
        assert registry.value(SOLVER_JOIN_PRUNES) == 1

    def test_configure_cache_size_clears_and_bounds(self):
        original = solver.get_config()
        try:
            solver.configure(cache_size=4)
            for i in range(10):
                solver.is_satisfiable((le(var("x") + var("y"), i), ge(var("x"), i)))
            assert solver.cache_info()["size"] <= 4
        finally:
            solver.configure(cache_size=original.cache_size)

    def test_fast_path_answers_agree_with_fresh_fm(self):
        systems = [
            "x > 1, x < 1",
            "x >= 1, x <= 1",
            "x >= 0, y <= 5",
            "x + y <= 3, x - y >= 1",
            "x + y <= 0, x >= 1, y >= 1",
            "x = 2, x < 2",
        ]
        for text in systems:
            atoms = conj(text).atoms
            assert solver.is_satisfiable(atoms) == elimination.is_satisfiable(atoms), text


class TestRegressions:
    def test_variable_bounds_strict_vs_equality_corner(self):
        # x < 1 ∧ x = 1 is empty; the bound sweep must not let the
        # equality's non-strict bound loosen the strict one.
        with pytest.raises(ValueError):
            elimination.variable_bounds((lt(var("x"), 1), eq(var("x"), 1)), "x")

    def test_variable_bounds_still_tightest(self):
        lower, ls, upper, us = elimination.variable_bounds(
            conj("x >= 1, x > 0, x <= 5, x < 7").atoms, "x"
        )
        assert (lower, ls, upper, us) == (Fraction(1), False, Fraction(5), False)

    def test_conjunction_simplify_single_sweep_equivalent(self):
        original = conj("x >= 0, x >= 1, x <= 5, x <= 5, x + y <= 10")
        simplified = original.simplify()
        assert simplified.equivalent(original)
        assert len(simplified) < len(original)

    def test_unsatisfiable_conjunction_simplifies_to_false(self):
        assert conj("x > 1, x < 0").simplify() == Conjunction.false()

    def test_entailment_through_solver(self):
        band = conj("x >= 1, x <= 2")
        assert band.entails(gt(var("x"), 0))
        assert not band.entails(gt(var("x"), 1))
