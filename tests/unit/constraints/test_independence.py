"""Unit tests for variable independence (the §3.2 observation)."""

import pytest

from repro.constraints import Conjunction, DNFFormula, parse_constraints
from repro.constraints.independence import (
    decompose,
    has_variable_independence,
    independent_attributes,
    is_product,
)
from repro.errors import ConstraintError


def conj(text: str) -> Conjunction:
    return Conjunction(parse_constraints(text))


class TestIsProduct:
    def test_box_is_product(self):
        assert is_product(conj("0 <= x, x <= 1, 0 <= y, y <= 2"), {"x"}, {"y"})

    def test_diagonal_is_not(self):
        assert not is_product(conj("x = y, 0 <= x, x <= 1"), {"x"}, {"y"})

    def test_halfplane_sum_is_not(self):
        assert not is_product(conj("x + y <= 1, x >= 0, y >= 0"), {"x"}, {"y"})

    def test_redundant_cross_atom_still_product(self):
        # x + y <= 10 is implied by the box: the *point set* is a product
        # even though an atom mentions both variables.
        assert is_product(
            conj("0 <= x, x <= 1, 0 <= y, y <= 2, x + y <= 10"), {"x"}, {"y"}
        )

    def test_unsatisfiable_is_product(self):
        assert is_product(conj("x < 0, x > 0, y = 1"), {"x"}, {"y"})

    def test_empty_conjunction(self):
        assert is_product(Conjunction.true(), {"x"}, {"y"})

    def test_block_validation(self):
        with pytest.raises(ConstraintError, match="overlap"):
            is_product(conj("x <= 1"), {"x"}, {"x"})
        with pytest.raises(ConstraintError, match="neither"):
            is_product(conj("x + y + z <= 1"), {"x"}, {"y"})

    def test_multi_variable_blocks(self):
        c = conj("x + y <= 1, 0 <= z, z <= 5")
        assert is_product(c, {"x", "y"}, {"z"})
        assert not is_product(conj("x + z <= 1, y = 0"), {"x", "y"}, {"z"})


class TestDecompose:
    def test_decomposition_recombines(self):
        c = conj("0 <= x, x <= 1, 2 <= y, y <= 3")
        left, right = decompose(c, {"x"}, {"y"})
        assert left.variables <= {"x"} and right.variables <= {"y"}
        assert left.conjoin(right).equivalent(c)

    def test_entangled_returns_none(self):
        assert decompose(conj("x = y"), {"x"}, {"y"}) is None


class TestFormulaIndependence:
    def test_union_of_products(self):
        formula = DNFFormula(
            [conj("0 <= x, x <= 1, 0 <= y, y <= 1"), conj("x >= 5, y >= 5, y <= 9")]
        )
        assert has_variable_independence(formula, {"x"}, {"y"})

    def test_diagonal_disjunct_dependent(self):
        formula = DNFFormula([conj("0 <= x, x <= 1, 0 <= y, y <= 1"), conj("x = y")])
        assert not has_variable_independence(formula, {"x"}, {"y"})

    def test_false_formula_independent(self):
        assert has_variable_independence(DNFFormula.false(), {"x"}, {"y"})


class TestRelationLevel:
    def test_relational_attribute_automatically_independent(self):
        """The paper's observation, verbatim: a relational attribute is
        independent of all other attributes."""
        from repro.model import ConstraintRelation, DataType, HTuple, Schema, constraint, relational

        schema = Schema([relational("v", DataType.RATIONAL), constraint("x")])
        relation = ConstraintRelation(
            schema, [HTuple(schema, {"v": 3}, parse_constraints("0 <= x, x <= 1"))]
        )
        assert independent_attributes(relation, "v", "x")
        assert independent_attributes(relation, "x", "v")

    def test_constraint_attributes_checked_per_tuple(self):
        from repro.model import ConstraintRelation, HTuple, Schema, constraint

        schema = Schema([constraint("x"), constraint("y")])
        box = ConstraintRelation(
            schema, [HTuple(schema, {}, parse_constraints("0 <= x, x <= 1, 0 <= y, y <= 1"))]
        )
        diag = ConstraintRelation(
            schema, [HTuple(schema, {}, parse_constraints("x = y, 0 <= x, x <= 1"))]
        )
        assert independent_attributes(box, "x", "y")
        assert not independent_attributes(diag, "x", "y")

    def test_other_constraint_attributes_projected_away(self):
        from repro.model import ConstraintRelation, HTuple, Schema, constraint

        schema = Schema([constraint("x"), constraint("y"), constraint("t")])
        # x and y are tied only through t; after eliminating t they are
        # genuinely entangled (x = y on [0, 1]).
        relation = ConstraintRelation(
            schema, [HTuple(schema, {}, parse_constraints("x = t, y = t, 0 <= t, t <= 1"))]
        )
        assert not independent_attributes(relation, "x", "y")
