"""Unit tests for constraint atoms: canonicalisation, negation, semantics."""

from fractions import Fraction

import pytest

from repro.constraints import (
    FALSE,
    TRUE,
    Comparator,
    eq,
    ge,
    gt,
    le,
    lt,
    var,
)
from repro.errors import ConstraintError


class TestFactories:
    def test_le(self):
        atom = le(var("x"), 5)
        assert atom.comparator is Comparator.LE
        assert atom.satisfied_by({"x": 5})
        assert not atom.satisfied_by({"x": 6})

    def test_lt_strict(self):
        atom = lt(var("x"), 5)
        assert not atom.satisfied_by({"x": 5})
        assert atom.satisfied_by({"x": Fraction(49, 10)})

    def test_ge_normalises_to_le(self):
        atom = ge(var("x"), 5)
        assert atom.comparator is Comparator.LE
        assert atom.satisfied_by({"x": 5})
        assert not atom.satisfied_by({"x": 4})

    def test_gt_normalises_to_lt(self):
        atom = gt(var("x"), 5)
        assert atom.comparator is Comparator.LT
        assert atom.satisfied_by({"x": 6})
        assert not atom.satisfied_by({"x": 5})

    def test_eq(self):
        atom = eq(var("x") + var("y"), Fraction(5, 2))
        assert atom.satisfied_by({"x": 1, "y": Fraction(3, 2)})
        assert not atom.satisfied_by({"x": 1, "y": 1})

    def test_constants_on_either_side(self):
        assert le(3, var("x")).satisfied_by({"x": 3})
        assert not le(3, var("x")).satisfied_by({"x": 2})


class TestCanonicalisation:
    def test_scaling_is_normalised(self):
        assert le(2 * var("x"), 4) == le(var("x"), 2)

    def test_fractional_coefficients_scaled_to_integers(self):
        atom = le(var("x") * Fraction(1, 2) + var("y") * Fraction(1, 3), 1)
        coeffs = atom.expression.coefficients
        assert all(c.denominator == 1 for c in coeffs.values())

    def test_equality_sign_canonical(self):
        assert eq(var("x") - var("y"), 0) == eq(var("y") - var("x"), 0)

    def test_inequality_sides_not_confused(self):
        assert le(var("x"), 2) != le(2, var("x"))

    def test_hash_consistent(self):
        assert hash(le(2 * var("x"), 4)) == hash(le(var("x"), 2))


class TestTrivialAtoms:
    def test_true_and_false_constants(self):
        assert TRUE.is_trivial and TRUE.truth_value()
        assert FALSE.is_trivial and not FALSE.truth_value()

    def test_ground_comparisons(self):
        assert le(1, 2).truth_value()
        assert not lt(2, 2).truth_value()
        assert eq(2, 2).truth_value()

    def test_truth_value_requires_trivial(self):
        with pytest.raises(ConstraintError):
            le(var("x"), 1).truth_value()


class TestNegation:
    def test_negate_le(self):
        (negated,) = le(var("x"), 5).negate()
        assert negated.comparator is Comparator.LT
        assert negated.satisfied_by({"x": 6})
        assert not negated.satisfied_by({"x": 5})

    def test_negate_lt(self):
        (negated,) = lt(var("x"), 5).negate()
        assert negated.satisfied_by({"x": 5})
        assert not negated.satisfied_by({"x": 4})

    def test_negate_eq_gives_two_disjuncts(self):
        disjuncts = eq(var("x"), 5).negate()
        assert len(disjuncts) == 2
        assert any(d.satisfied_by({"x": 4}) for d in disjuncts)
        assert any(d.satisfied_by({"x": 6}) for d in disjuncts)
        assert not any(d.satisfied_by({"x": 5}) for d in disjuncts)

    def test_negation_is_involutive_semantically(self):
        atom = le(var("x") - var("y"), 3)
        (negated,) = atom.negate()
        (back,) = negated.negate()
        assert back == atom


class TestSplitEquality:
    def test_equality_splits_into_two_le(self):
        parts = eq(var("x"), 5).split_equality()
        assert len(parts) == 2
        assert all(p.comparator is Comparator.LE for p in parts)
        assert all(p.satisfied_by({"x": 5}) for p in parts)
        assert not all(p.satisfied_by({"x": 4}) for p in parts)

    def test_inequality_unchanged(self):
        atom = le(var("x"), 5)
        assert atom.split_equality() == (atom,)


class TestTransformations:
    def test_substitute(self):
        atom = le(var("x") + var("y"), 5).substitute("x", 2 * var("z"))
        assert atom.variables == {"y", "z"}
        assert atom.satisfied_by({"z": 1, "y": 3})
        assert not atom.satisfied_by({"z": 2, "y": 2})

    def test_rename(self):
        atom = le(var("x"), 5).rename("x", "t")
        assert atom.variables == {"t"}

    def test_str_parseable(self):
        from repro.constraints import parse_constraints

        atom = le(var("x") * 2 + var("y") * -3, Fraction(7, 2))
        (parsed,) = parse_constraints(str(atom))
        assert parsed == atom
