"""Regression tests: the solver cache structures are thread-safe.

The thread-pool fallback of the execution engine (repro.exec) runs worker
tasks in the same interpreter, so the process-global intern table and
solver memo caches see concurrent access.  Before the locks were added,
concurrent ``get``/``put`` could corrupt the LRU ordering (RuntimeError
from OrderedDict mutation during move_to_end) and drop or double-count
hit/miss statistics.
"""

import threading

from repro.constraints.cache import InternTable, LRUCache

THREADS = 8
OPS_PER_THREAD = 2000


def _hammer(barrier, fn):
    barrier.wait()
    fn()


def _run_threads(fn) -> None:
    barrier = threading.Barrier(THREADS)
    threads = [
        threading.Thread(target=_hammer, args=(barrier, fn)) for _ in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestLRUCacheThreadSafety:
    def test_concurrent_get_put_keeps_stats_consistent(self):
        cache: LRUCache[int, int] = LRUCache(capacity=64)
        gets_per_thread = OPS_PER_THREAD

        def work():
            for i in range(gets_per_thread):
                key = i % 200  # more keys than capacity: forces evictions
                if cache.get(key) is None:
                    cache.put(key, key * 2)

        _run_threads(work)
        info = cache.info()
        # Every get is either a hit or a miss — none lost to a race.
        assert info["hits"] + info["misses"] == THREADS * gets_per_thread
        assert len(cache) <= 64
        # Whatever survived still maps correctly.
        for key in range(200):
            value = cache.get(key)
            assert value is None or value == key * 2

    def test_concurrent_eviction_never_corrupts(self):
        cache: LRUCache[int, int] = LRUCache(capacity=4)

        def work():
            for i in range(OPS_PER_THREAD):
                cache.put(i % 16, i)
                cache.get((i + 1) % 16)

        _run_threads(work)
        assert len(cache) <= 4


class TestInternTableThreadSafety:
    def test_concurrent_intern_returns_one_canonical_object(self):
        table: InternTable[tuple] = InternTable(capacity=1024)
        seen: list[dict[int, object]] = [dict() for _ in range(THREADS)]

        def make_work(slot):
            def work():
                for i in range(OPS_PER_THREAD):
                    value = ("k", i % 50)
                    seen[slot][i % 50] = table.intern(value)

            return work

        barrier = threading.Barrier(THREADS)
        threads = [
            threading.Thread(target=_hammer, args=(barrier, make_work(slot)))
            for slot in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # All threads must have converged on identical canonical objects by
        # the end (the table never hands out two objects for one value
        # after both are interned).
        for key in range(50):
            canonical = table.intern(("k", key))
            for slot in range(THREADS):
                assert seen[slot][key] == canonical
        assert len(table) >= 50
