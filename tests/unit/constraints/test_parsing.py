"""Unit tests for the constraint text parser."""

from fractions import Fraction

import pytest

from repro.constraints import Comparator, parse_constraints, parse_expression
from repro.errors import ParseError


class TestExpressions:
    def test_simple(self):
        e = parse_expression("x + 2*y - 1")
        assert e.coefficient("x") == 1
        assert e.coefficient("y") == 2
        assert e.constant == -1

    def test_decimal_and_ratio_literals(self):
        assert parse_expression("2.5").constant == Fraction(5, 2)
        assert parse_expression("1/3").constant == Fraction(1, 3)

    def test_parentheses(self):
        e = parse_expression("2*(x + 3)")
        assert e.coefficient("x") == 2
        assert e.constant == 6

    def test_unary_minus(self):
        e = parse_expression("-x + -2")
        assert e.coefficient("x") == -1
        assert e.constant == -2

    def test_division_by_constant(self):
        assert parse_expression("x/4").coefficient("x") == Fraction(1, 4)

    def test_division_by_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1/x")

    def test_nonlinear_rejected(self):
        from repro.errors import ConstraintError

        with pytest.raises((ParseError, ConstraintError)):
            parse_expression("x*y")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_expression("x + 1 )")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_expression("x @ 1")


class TestConstraints:
    def test_single(self):
        (atom,) = parse_constraints("x <= 5")
        assert atom.comparator is Comparator.LE

    def test_all_comparators(self):
        for text, comparator in [
            ("x <= 1", Comparator.LE),
            ("x < 1", Comparator.LT),
            ("x >= 1", Comparator.LE),
            ("x > 1", Comparator.LT),
            ("x = 1", Comparator.EQ),
            ("x == 1", Comparator.EQ),
        ]:
            (atom,) = parse_constraints(text)
            assert atom.comparator is comparator, text

    def test_comma_separated(self):
        atoms = parse_constraints("x <= 5, y >= 2, x + y = 6")
        assert len(atoms) == 3

    def test_chained_comparison_expands(self):
        atoms = parse_constraints("0 <= x < 10")
        assert len(atoms) == 2
        assert atoms[0].satisfied_by({"x": 0})
        assert not atoms[1].satisfied_by({"x": 10})

    def test_long_chain(self):
        atoms = parse_constraints("0 <= x <= y <= 10")
        assert len(atoms) == 3

    def test_not_equal_rejected_with_hint(self):
        with pytest.raises(ParseError, match="union"):
            parse_constraints("x != 1")

    def test_missing_comparator(self):
        with pytest.raises(ParseError):
            parse_constraints("x + 1")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_constraints("")

    def test_whitespace_insensitive(self):
        assert parse_constraints("x<=5") == parse_constraints(" x  <=  5 ")
