"""Unit tests for rational linear expressions."""

from fractions import Fraction

import pytest

from repro.constraints import LinearExpression, var
from repro.errors import ConstraintError


class TestConstruction:
    def test_variable(self):
        x = LinearExpression.variable("x")
        assert x.coefficient("x") == 1
        assert x.constant == 0
        assert x.variables == {"x"}

    def test_constant(self):
        c = LinearExpression.constant_expr("2.5")
        assert c.is_constant
        assert c.constant == Fraction(5, 2)

    def test_zero_coefficients_dropped(self):
        e = LinearExpression({"x": 0, "y": 2})
        assert e.variables == {"y"}
        assert e.coefficient("x") == 0

    def test_invalid_variable_name(self):
        with pytest.raises(ConstraintError):
            LinearExpression({"": 1})
        with pytest.raises(ConstraintError):
            LinearExpression({3: 1})  # type: ignore[dict-item]

    def test_coerce(self):
        e = LinearExpression.coerce(7)
        assert e.is_constant and e.constant == 7
        x = var("x")
        assert LinearExpression.coerce(x) is x

    def test_fraction_string_coefficients(self):
        e = LinearExpression({"x": "1/3"})
        assert e.coefficient("x") == Fraction(1, 3)


class TestArithmetic:
    def test_addition_merges_terms(self):
        e = var("x") + var("x") + 1
        assert e.coefficient("x") == 2
        assert e.constant == 1

    def test_addition_cancels_to_constant(self):
        e = var("x") - var("x")
        assert e.is_constant and e.constant == 0

    def test_subtraction(self):
        e = var("x") - 2 * var("y") - 3
        assert e.coefficient("x") == 1
        assert e.coefficient("y") == -2
        assert e.constant == -3

    def test_scalar_multiplication(self):
        e = (var("x") + 1) * Fraction(3, 2)
        assert e.coefficient("x") == Fraction(3, 2)
        assert e.constant == Fraction(3, 2)

    def test_rmul(self):
        assert (2 * var("x")).coefficient("x") == 2

    def test_division(self):
        e = (2 * var("x")) / 4
        assert e.coefficient("x") == Fraction(1, 2)

    def test_division_by_zero(self):
        with pytest.raises(ConstraintError):
            var("x") / 0

    def test_nonlinear_product_rejected(self):
        with pytest.raises(ConstraintError):
            var("x") * var("y")

    def test_product_with_constant_expression(self):
        e = var("x") * LinearExpression.constant_expr(3)
        assert e.coefficient("x") == 3

    def test_negation(self):
        e = -(var("x") - 1)
        assert e.coefficient("x") == -1
        assert e.constant == 1

    def test_rsub(self):
        e = 5 - var("x")
        assert e.coefficient("x") == -1
        assert e.constant == 5


class TestEvaluation:
    def test_evaluate(self):
        e = var("x") + 2 * var("y") - 1
        assert e.evaluate({"x": 1, "y": "1/2"}) == 1

    def test_evaluate_missing_variable(self):
        with pytest.raises(ConstraintError):
            var("x").evaluate({"y": 0})

    def test_evaluate_ignores_extra_bindings(self):
        assert var("x").evaluate({"x": 2, "z": 9}) == 2


class TestSubstitutionAndRename:
    def test_substitute(self):
        e = var("x") + var("y")
        sub = e.substitute("x", 2 * var("z") + 1)
        assert sub.coefficient("z") == 2
        assert sub.coefficient("y") == 1
        assert sub.constant == 1
        assert "x" not in sub.variables

    def test_substitute_scales_by_coefficient(self):
        e = 3 * var("x")
        sub = e.substitute("x", var("y") + 1)
        assert sub.coefficient("y") == 3
        assert sub.constant == 3

    def test_substitute_absent_variable_is_identity(self):
        e = var("x")
        assert e.substitute("q", var("y")) is e

    def test_rename(self):
        e = var("x") + var("y")
        renamed = e.rename("x", "t")
        assert renamed.variables == {"t", "y"}

    def test_rename_collision(self):
        with pytest.raises(ConstraintError):
            (var("x") + var("y")).rename("x", "y")


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = var("x") + 1
        b = LinearExpression({"x": 1}, 1)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert var("x") != var("y")
        assert (var("x") == 3) is False or True  # __eq__ vs atoms: see below

    def test_eq_keeps_value_semantics_not_atom(self):
        # == compares expressions; it does NOT build a constraint atom.
        assert (var("x") == var("x")) is True

    def test_str_round_trips_through_parser(self):
        from repro.constraints import parse_expression

        e = var("x") * Fraction(5, 2) - var("y") + Fraction(1, 3)
        assert parse_expression(str(e)) == e

    def test_str_of_zero(self):
        assert str(LinearExpression({})) == "0"


class TestComparisonOperatorsBuildAtoms:
    def test_le_builds_atom(self):
        from repro.constraints import Comparator, LinearConstraint

        atom = var("x") + var("y") <= 5
        assert isinstance(atom, LinearConstraint)
        assert atom.comparator is Comparator.LE

    def test_chain_of_operators(self):
        from repro.constraints import Comparator

        assert (var("x") < 5).comparator is Comparator.LT
        assert (var("x") >= 5).satisfied_by({"x": 5})
        assert (var("x") > 5).satisfied_by({"x": 6})
