"""Unit tests for DNF formulas (φ(R)-level operations)."""

from repro.constraints import Conjunction, DNFFormula, parse_constraints


def conj(text: str) -> Conjunction:
    return Conjunction(parse_constraints(text))


def formula(*texts: str) -> DNFFormula:
    return DNFFormula([conj(t) for t in texts])


class TestConstruction:
    def test_empty_is_false(self):
        assert not DNFFormula.false().is_satisfiable()

    def test_true(self):
        f = DNFFormula.true()
        assert f.is_satisfiable()
        assert f.satisfied_by({})

    def test_unsat_disjuncts_dropped(self):
        f = DNFFormula([conj("x < 0, x > 0"), conj("x <= 1")])
        assert len(f) == 1

    def test_duplicate_disjuncts_removed(self):
        f = formula("x <= 1", "x <= 1")
        assert len(f) == 1


class TestConnectives:
    def test_union(self):
        f = formula("x <= 0").union(formula("x >= 1"))
        assert f.satisfied_by({"x": 0})
        assert f.satisfied_by({"x": 1})
        assert not f.satisfied_by({"x": "1/2"})

    def test_conjoin_formula_distributes(self):
        left = formula("x <= 0", "x >= 1")
        right = formula("x >= 0", "x <= 1")
        combined = left.conjoin(right)
        # satisfiable intersections: x=0 and x=1 regions
        assert combined.satisfied_by({"x": 0})
        assert combined.satisfied_by({"x": 1})
        assert not combined.satisfied_by({"x": "1/2"})

    def test_conjoin_conjunction(self):
        f = formula("x <= 5").conjoin(conj("x >= 5"))
        assert f.satisfied_by({"x": 5})
        assert not f.satisfied_by({"x": 4})

    def test_project(self):
        f = formula("x = y, 0 <= y, y <= 1", "x >= 5").project(["x"])
        assert f.satisfied_by({"x": 1})
        assert f.satisfied_by({"x": 6})
        assert not f.satisfied_by({"x": 2})


class TestComplement:
    def test_complement_of_false_is_true(self):
        assert DNFFormula.false().complement().satisfied_by({"x": 0})

    def test_complement_of_true_is_false(self):
        assert not DNFFormula.true().complement().is_satisfiable()

    def test_interval_complement(self):
        f = formula("0 <= x, x <= 1").complement()
        assert f.satisfied_by({"x": -1})
        assert f.satisfied_by({"x": 2})
        assert not f.satisfied_by({"x": 0})
        assert not f.satisfied_by({"x": "1/2"})

    def test_union_complement(self):
        f = formula("x <= 0", "x >= 1").complement()
        assert f.satisfied_by({"x": "1/2"})
        assert not f.satisfied_by({"x": 0})
        assert not f.satisfied_by({"x": 2})

    def test_double_complement_equivalent(self):
        f = formula("0 <= x, x <= 1, x + y <= 3", "y >= 4")
        assert f.complement().complement().equivalent(f)

    def test_equality_complement(self):
        f = formula("x = 1").complement()
        assert f.satisfied_by({"x": 0})
        assert f.satisfied_by({"x": 2})
        assert not f.satisfied_by({"x": 1})


class TestDifferenceEntailmentEquivalence:
    def test_difference(self):
        f = formula("0 <= x, x <= 10").difference(formula("3 <= x, x <= 5"))
        assert f.satisfied_by({"x": 2})
        assert f.satisfied_by({"x": 6})
        assert not f.satisfied_by({"x": 4})
        assert not f.satisfied_by({"x": 3})

    def test_difference_everything(self):
        f = formula("0 <= x, x <= 1").difference(DNFFormula.true())
        assert not f.is_satisfiable()

    def test_entails(self):
        assert formula("x = 1").entails(formula("0 <= x, x <= 2"))
        assert not formula("0 <= x, x <= 2").entails(formula("x = 1"))

    def test_equivalent_split_interval(self):
        whole = formula("0 <= x, x <= 2")
        split = formula("0 <= x, x <= 1", "1 <= x, x <= 2")
        assert whole.equivalent(split)

    def test_not_equivalent_with_gap(self):
        whole = formula("0 <= x, x <= 2")
        gappy = formula("0 <= x, x < 1", "1 < x, x <= 2")  # misses x = 1
        assert not whole.equivalent(gappy)
        assert gappy.entails(whole)


class TestSimplify:
    def test_absorbed_disjunct_dropped(self):
        f = formula("0 <= x, x <= 1", "0 <= x, x <= 5").simplify()
        assert len(f) == 1
        assert f.equivalent(formula("0 <= x, x <= 5"))

    def test_equivalent_duplicates_keep_one(self):
        f = DNFFormula([conj("x <= 1"), conj("x <= 1, x <= 7")]).simplify()
        assert len(f) == 1

    def test_simplify_preserves_semantics(self):
        f = formula("0 <= x, x <= 2, x <= 10", "x >= 5")
        assert f.simplify().equivalent(f)
