"""Unit tests for k-dimensional MBRs."""

import pytest

from repro.errors import IndexError_
from repro.indexing import MBR


class TestConstruction:
    def test_point(self):
        p = MBR.point((1.0, 2.0))
        assert p.mins == p.maxs == (1.0, 2.0)

    def test_empty_rejected(self):
        with pytest.raises(IndexError_):
            MBR((2.0,), (1.0,))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(IndexError_):
            MBR((0.0,), (1.0, 2.0))

    def test_zero_dims_rejected(self):
        with pytest.raises(IndexError_):
            MBR((), ())

    def test_union_all(self):
        u = MBR.union_all([MBR((0.0, 0.0), (1.0, 1.0)), MBR((2.0, -1.0), (3.0, 0.5))])
        assert u.mins == (0.0, -1.0)
        assert u.maxs == (3.0, 1.0)

    def test_union_all_empty_rejected(self):
        with pytest.raises(IndexError_):
            MBR.union_all([])


class TestGeometry:
    def test_area_and_margin(self):
        box = MBR((0.0, 0.0), (2.0, 3.0))
        assert box.area() == 6.0
        assert box.margin() == 5.0

    def test_center(self):
        assert MBR((0.0, 0.0), (2.0, 4.0)).center() == (1.0, 2.0)

    def test_intersects_and_contains(self):
        a = MBR((0.0, 0.0), (2.0, 2.0))
        b = MBR((1.0, 1.0), (3.0, 3.0))
        c = MBR((0.5, 0.5), (1.0, 1.0))
        assert a.intersects(b) and b.intersects(a)
        assert a.contains(c) and not c.contains(a)
        assert not a.intersects(MBR((5.0, 5.0), (6.0, 6.0)))

    def test_touching_intersects(self):
        assert MBR((0.0,), (1.0,)).intersects(MBR((1.0,), (2.0,)))

    def test_overlap_area(self):
        a = MBR((0.0, 0.0), (2.0, 2.0))
        b = MBR((1.0, 1.0), (3.0, 3.0))
        assert a.overlap_area(b) == 1.0
        assert a.overlap_area(MBR((5.0, 5.0), (6.0, 6.0))) == 0.0

    def test_enlargement(self):
        a = MBR((0.0, 0.0), (1.0, 1.0))
        assert a.enlargement(MBR((1.0, 0.0), (2.0, 1.0))) == 1.0
        assert a.enlargement(MBR((0.2, 0.2), (0.8, 0.8))) == 0.0

    def test_min_distance_sq(self):
        a = MBR((0.0, 0.0), (1.0, 1.0))
        assert a.min_distance_sq(MBR((2.0, 0.0), (3.0, 1.0))) == 1.0
        assert a.min_distance_sq(MBR((2.0, 2.0), (3.0, 3.0))) == 2.0
        assert a.min_distance_sq(MBR((0.5, 0.5), (0.6, 0.6))) == 0.0

    def test_value_semantics(self):
        assert MBR((0,), (1,)) == MBR((0.0,), (1.0,))  # ints coerced to floats
        assert hash(MBR((0.0,), (1.0,))) == hash(MBR((0.0,), (1.0,)))
        assert MBR((0.0,), (1.0,)) != MBR((0.0,), (2.0,))
