"""Vectorized R*-tree node visits must be indistinguishable from scalar.

The tree batches per-node box tests (intersection masks for ``search``,
MINDIST rows for ``nearest``) through numpy when a node holds at least
``_VECTOR_MIN`` entries.  The kernels use the same IEEE operations in
the same order as the scalar ``MBR`` methods, so results, result
*order*, and the access counters (the unit of the paper's §5 I/O
experiments) must match a scalar-only tree exactly — including after
deletes, reinserts, and condensation reshuffle the nodes.
"""

import random

from repro.indexing import MBR, RStarTree


def random_boxes(count: int, seed: int = 7) -> list[tuple[MBR, int]]:
    rng = random.Random(seed)
    boxes = []
    for i in range(count):
        x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
        w, h = rng.uniform(1, 50), rng.uniform(1, 50)
        boxes.append((MBR((x, y), (x + w, y + h)), i))
    return boxes


def build_pair(count=400, seed=7, max_entries=8):
    """The same boxes inserted into a vectorized and a scalar tree."""
    vec = RStarTree(dimensions=2, max_entries=max_entries, vectorized=True)
    ref = RStarTree(dimensions=2, max_entries=max_entries, vectorized=False)
    boxes = random_boxes(count, seed)
    for mbr, payload in boxes:
        vec.insert(mbr, payload)
        ref.insert(mbr, payload)
    return vec, ref, boxes


QUERIES = [
    MBR((100, 100), (300, 300)),
    MBR((0, 0), (1000, 1000)),
    MBR((950, 950), (999, 999)),
    MBR((-50, -50), (-1, -1)),
    MBR((500, 0), (510, 1000)),
]


class TestSearchIdentity:
    def test_results_and_accesses_match_scalar(self):
        vec, ref, _ = build_pair()
        for query in QUERIES:
            assert vec.search(query) == ref.search(query)
        assert vec.search_accesses == ref.search_accesses

    def test_small_nodes_skip_vectorization(self):
        # Below _VECTOR_MIN entries per node the generator path runs; the
        # results contract is the same either way.
        vec, ref, _ = build_pair(count=5)
        for query in QUERIES:
            assert vec.search(query) == ref.search(query)

    def test_vector_min_zero_forces_kernel(self, monkeypatch):
        vec, ref, _ = build_pair(count=60)
        monkeypatch.setattr(RStarTree, "_VECTOR_MIN", 0)
        for query in QUERIES:
            assert vec.search(query) == ref.search(query)
        assert vec.search_accesses == ref.search_accesses


class TestNearestIdentity:
    def test_nearest_matches_scalar(self):
        vec, ref, _ = build_pair()
        for target in QUERIES:
            for k in (1, 3, 10):
                assert vec.nearest(target, k) == ref.nearest(target, k)
        assert vec.search_accesses == ref.search_accesses

    def test_nearest_iter_matches_scalar(self):
        vec, ref, _ = build_pair(count=120)
        target = MBR((400, 400), (410, 410))
        assert list(vec.nearest_iter(target)) == list(ref.nearest_iter(target))
        assert vec.search_accesses == ref.search_accesses

    def test_partial_iteration_access_parity(self):
        vec, ref, _ = build_pair(count=200)
        target = MBR((10, 990), (20, 999))
        for tree in (vec, ref):
            it = tree.nearest_iter(target)
            for _ in range(7):
                next(it)
        assert vec.search_accesses == ref.search_accesses


class TestMutationInvalidation:
    """The per-node box cache must be invalidated by every mutation path:
    plain inserts, overflow splits, forced reinserts, deletes, and
    condensation."""

    def test_interleaved_insert_delete_identity(self):
        vec = RStarTree(dimensions=2, max_entries=8, vectorized=True)
        ref = RStarTree(dimensions=2, max_entries=8, vectorized=False)
        boxes = random_boxes(300, seed=23)
        rng = random.Random(99)
        live = []
        probe = MBR((200, 200), (700, 700))
        for i, (mbr, payload) in enumerate(boxes):
            vec.insert(mbr, payload)
            ref.insert(mbr, payload)
            live.append((mbr, payload))
            if i % 3 == 2:
                victim = live.pop(rng.randrange(len(live)))
                assert vec.delete(*victim) and ref.delete(*victim)
            if i % 25 == 24:  # probe mid-stream: caches must be fresh
                assert vec.search(probe) == ref.search(probe)
                assert vec.nearest(probe, 5) == ref.nearest(probe, 5)
        assert sorted(map(repr, vec.items())) == sorted(map(repr, ref.items()))
        assert vec.search(MBR((0, 0), (1000, 1000))) == ref.search(
            MBR((0, 0), (1000, 1000))
        )
        assert vec.search_accesses == ref.search_accesses

    def test_delete_everything_then_reuse(self):
        vec, ref, boxes = build_pair(count=80, seed=5)
        for mbr, payload in boxes:
            assert vec.delete(mbr, payload) and ref.delete(mbr, payload)
        assert vec.search(MBR((0, 0), (1000, 1000))) == []
        for mbr, payload in boxes[:20]:
            vec.insert(mbr, payload)
            ref.insert(mbr, payload)
        for query in QUERIES:
            assert vec.search(query) == ref.search(query)


class TestFlag:
    def test_vectorized_default_on(self):
        assert RStarTree(dimensions=2).vectorized is True

    def test_flag_can_be_disabled(self):
        tree = RStarTree(dimensions=2, vectorized=False)
        assert tree.vectorized is False
        boxes = random_boxes(50, seed=1)
        for mbr, payload in boxes:
            tree.insert(mbr, payload)
        expected = sorted(p for mbr, p in boxes if mbr.intersects(QUERIES[0]))
        assert sorted(tree.search(QUERIES[0])) == expected
