"""Unit tests for STR bulk loading."""

import random

import pytest

from repro.errors import IndexError_
from repro.indexing import MBR, RStarTree
from repro.indexing.bulk import str_bulk_load, str_bulk_load_relation
from repro.workloads import rectangles


def random_items(n: int, seed: int = 3):
    rng = random.Random(seed)
    items = []
    for i in range(n):
        x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
        items.append((MBR((x, y), (x + rng.uniform(1, 20), y + rng.uniform(1, 20))), i))
    return items


class TestStrBulkLoad:
    @pytest.mark.parametrize("n", [0, 1, 7, 8, 9, 63, 64, 65, 500])
    def test_invariants_at_boundary_sizes(self, n):
        tree = str_bulk_load(random_items(n), dimensions=2, max_entries=8)
        tree.check_invariants()
        assert len(tree) == n

    def test_search_equals_linear_scan(self):
        items = random_items(600)
        tree = str_bulk_load(items, dimensions=2, max_entries=10)
        rng = random.Random(8)
        for _ in range(30):
            x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
            q = MBR((x, y), (x + 150, y + 150))
            expected = sorted(p for mbr, p in items if mbr.intersects(q))
            assert sorted(tree.search(q)) == expected

    def test_packs_tighter_than_insertion(self):
        items = random_items(800)
        packed = str_bulk_load(items, dimensions=2, max_entries=10)
        grown = RStarTree(dimensions=2, max_entries=10)
        for mbr, p in items:
            grown.insert(mbr, p)
        assert packed.node_count < grown.node_count

    def test_inserts_and_deletes_after_packing(self):
        items = random_items(100)
        tree = str_bulk_load(items, dimensions=2, max_entries=8, fill_factor=0.8)
        tree.insert(MBR((5.0, 5.0), (6.0, 6.0)), 999)
        tree.check_invariants()
        assert tree.delete(items[0][0], items[0][1])
        tree.check_invariants()
        assert len(tree) == 100

    def test_one_dimensional(self):
        items = [(MBR((float(i),), (float(i) + 1.0,)), i) for i in range(100)]
        tree = str_bulk_load(items, dimensions=1, max_entries=6)
        tree.check_invariants()
        assert sorted(tree.search(MBR((10.0,), (12.0,)))) == [9, 10, 11, 12]

    def test_dimension_mismatch(self):
        with pytest.raises(IndexError_):
            str_bulk_load([(MBR((0.0,), (1.0,)), 0)], dimensions=2)

    def test_fill_factor_validation(self):
        with pytest.raises(IndexError_):
            str_bulk_load([], dimensions=2, fill_factor=0.1)

    def test_nearest_works_on_packed_tree(self):
        items = random_items(200)
        tree = str_bulk_load(items, dimensions=2, max_entries=8)
        target = MBR.point((500.0, 500.0))
        got = [round(d, 9) for d, _ in tree.nearest(target, k=3)]
        expected = sorted(round(target.min_distance_sq(m) ** 0.5, 9) for m, _ in items)[:3]
        assert got == expected


class TestRelationBulkLoad:
    def test_matches_strategy_candidates(self):
        data = rectangles.generate_data(300, seed=40)
        relation = rectangles.build_constraint_relation(data)
        tree = str_bulk_load_relation(relation, ["x", "y"], max_entries=10)
        for query in rectangles.generate_queries(10, seed=41):
            box = rectangles.query_box_two_attributes(query)
            q = MBR(
                (box["x"][0], box["y"][0]),
                (box["x"][1], box["y"][1]),
            )
            assert set(tree.search(q)) == rectangles.brute_force_matches(data, box)
