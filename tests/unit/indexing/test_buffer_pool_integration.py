"""Buffer pool attached to the R*-tree: logical vs physical accesses."""

import random

from repro.indexing import MBR, RStarTree
from repro.storage import BufferPool


def build_tree(n: int = 400, seed: int = 5) -> RStarTree:
    rng = random.Random(seed)
    tree = RStarTree(dimensions=2, max_entries=8)
    for i in range(n):
        x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
        tree.insert(MBR((x, y), (x + 10, y + 10)), i)
    return tree


class TestBufferPoolIntegration:
    def test_pool_sees_every_logical_access(self):
        tree = build_tree()
        pool = BufferPool(capacity=10_000)
        tree.attach_buffer_pool(pool)
        tree.reset_counters()
        tree.search(MBR((0.0, 0.0), (500.0, 500.0)))
        assert pool.stats.requests == tree.search_accesses

    def test_repeated_queries_hit_the_pool(self):
        tree = build_tree()
        pool = BufferPool(capacity=10_000)
        tree.attach_buffer_pool(pool)
        query = MBR((100.0, 100.0), (300.0, 300.0))
        tree.search(query)
        cold_misses = pool.stats.misses
        tree.search(query)
        assert pool.stats.misses == cold_misses  # second pass fully cached
        assert pool.stats.hits >= cold_misses

    def test_small_pool_thrashes(self):
        tree = build_tree()
        large = BufferPool(capacity=10_000)
        small = BufferPool(capacity=2)
        queries = []
        rng = random.Random(9)
        for _ in range(20):
            x, y = rng.uniform(0, 900), rng.uniform(0, 900)
            queries.append(MBR((x, y), (x + 100, y + 100)))
        tree.attach_buffer_pool(large)
        for q in queries:
            tree.search(q)
        tree.attach_buffer_pool(small)
        for q in queries:
            tree.search(q)
        assert small.stats.hit_rate < large.stats.hit_rate

    def test_nearest_also_routed(self):
        tree = build_tree()
        pool = BufferPool(capacity=100)
        tree.attach_buffer_pool(pool)
        tree.reset_counters()
        tree.nearest(MBR.point((500.0, 500.0)), k=3)
        assert pool.stats.requests == tree.search_accesses > 0
