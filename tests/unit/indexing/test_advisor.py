"""Unit tests for the attribute-grouping advisor (the §5.4 open problem)."""

import pytest

from repro.errors import IndexError_
from repro.indexing import WorkloadQuery, estimate_query_cost, recommend_grouping


def q(attrs, frequency=1.0, selectivity=0.1):
    return WorkloadQuery(frozenset(attrs), frequency, selectivity)


class TestWorkloadQuery:
    def test_validation(self):
        with pytest.raises(IndexError_):
            WorkloadQuery(frozenset())
        with pytest.raises(IndexError_):
            q(["x"], selectivity=0)
        with pytest.raises(IndexError_):
            q(["x"], frequency=0)


class TestCostModel:
    def test_joint_cheaper_for_two_attribute_queries(self):
        query = q(["x", "y"])
        joint = estimate_query_cost(query, [frozenset({"x", "y"})], 10_000)
        separate = estimate_query_cost(query, [frozenset({"x"}), frozenset({"y"})], 10_000)
        assert joint < separate

    def test_separate_cheaper_for_single_attribute_queries(self):
        query = q(["x"])
        joint = estimate_query_cost(query, [frozenset({"x", "y"})], 10_000)
        separate = estimate_query_cost(query, [frozenset({"x"}), frozenset({"y"})], 10_000)
        assert separate < joint

    def test_uncovered_query_costs_full_scan(self):
        query = q(["z"])
        cost = estimate_query_cost(query, [frozenset({"x"})], 10_000, fanout=100)
        assert cost == 100.0  # 10_000 / 100

    def test_empty_relation(self):
        assert estimate_query_cost(q(["x"]), [frozenset({"x"})], 0) == 0.0


class TestRecommendation:
    def test_co_queried_attributes_grouped(self):
        rec = recommend_grouping(
            ["x", "y"], [q(["x", "y"])] * 5, relation_size=10_000
        )
        assert rec.groups == (frozenset({"x", "y"}),)

    def test_independent_attributes_separate(self):
        rec = recommend_grouping(
            ["x", "y"], [q(["x"]), q(["y"])], relation_size=10_000
        )
        assert set(rec.groups) == {frozenset({"x"}), frozenset({"y"})}

    def test_mixed_workload_dominant_pattern_wins(self):
        mostly_joint = [q(["x", "y"], frequency=9.0), q(["x"], frequency=1.0)]
        rec = recommend_grouping(["x", "y"], mostly_joint, relation_size=10_000)
        assert frozenset({"x", "y"}) in rec.groups

    def test_three_attributes_partition(self):
        # x,y always queried together; z always alone.
        workload = [q(["x", "y"], frequency=5.0), q(["z"], frequency=5.0)]
        rec = recommend_grouping(["x", "y", "z"], workload, relation_size=10_000)
        assert frozenset({"x", "y"}) in rec.groups
        assert frozenset({"z"}) in rec.groups

    def test_alternatives_reported_sorted(self):
        rec = recommend_grouping(["x", "y"], [q(["x", "y"])], relation_size=10_000)
        costs = [cost for _, cost in rec.alternatives]
        assert costs == sorted(costs)
        assert all(rec.estimated_cost <= cost for cost in costs)

    def test_validation(self):
        with pytest.raises(IndexError_):
            recommend_grouping([], [q(["x"])], 100)
        with pytest.raises(IndexError_):
            recommend_grouping(["x"], [], 100)
        with pytest.raises(IndexError_):
            recommend_grouping(["x"], [q(["zzz"])], 100)

    def test_str(self):
        rec = recommend_grouping(["x", "y"], [q(["x", "y"])], relation_size=1000)
        assert "index groups" in str(rec)
