"""Unit tests for joint/separate indexing strategies (§5)."""

import pytest

from repro.constraints import parse_constraints
from repro.errors import IndexError_, SchemaError
from repro.indexing import (
    JointIndex,
    NULL_SENTINEL,
    SeparateIndexes,
    query_box_for_predicates,
    tuple_interval,
)
from repro.model import (
    ConstraintRelation,
    DataType,
    HTuple,
    Schema,
    constraint,
    relational,
)
from repro.workloads import rectangles


@pytest.fixture(scope="module")
def workload():
    data = rectangles.generate_data(300, seed=11)
    relation = rectangles.build_constraint_relation(data)
    return data, relation


class TestTupleInterval:
    def test_constraint_box(self):
        schema = Schema([constraint("x"), constraint("y")])
        t = HTuple(schema, {}, parse_constraints("2 <= x, x <= 5, y = 3"))
        assert tuple_interval(t, "x") == (2.0, 5.0)
        assert tuple_interval(t, "y") == (3.0, 3.0)

    def test_multivariable_formula_uses_elimination(self):
        schema = Schema([constraint("x"), constraint("y")])
        t = HTuple(schema, {}, parse_constraints("x = y, 0 <= y, y <= 2"))
        assert tuple_interval(t, "x") == (0.0, 2.0)

    def test_unbounded_clamped(self):
        schema = Schema([constraint("x")])
        t = HTuple(schema, {}, parse_constraints("x >= 5"))
        low, high = tuple_interval(t, "x")
        assert low == 5.0 and high > 1e17

    def test_relational_point(self):
        schema = Schema([relational("v", DataType.RATIONAL)])
        t = HTuple(schema, {"v": "2.5"})
        assert tuple_interval(t, "v") == (2.5, 2.5)

    def test_null_maps_to_sentinel(self):
        schema = Schema([relational("v", DataType.RATIONAL)])
        t = HTuple(schema, {})
        assert tuple_interval(t, "v") == (NULL_SENTINEL, NULL_SENTINEL)

    def test_string_attribute_rejected(self):
        schema = Schema([relational("name")])
        t = HTuple(schema, {"name": "x"})
        with pytest.raises(SchemaError):
            tuple_interval(t, "name")


class TestStrategyCorrectness:
    def test_both_strategies_match_bruteforce_two_attrs(self, workload):
        data, relation = workload
        joint = JointIndex(relation, ["x", "y"], max_entries=8)
        separate = SeparateIndexes(relation, ["x", "y"], max_entries=8)
        for query in rectangles.generate_queries(25, seed=3):
            box = rectangles.query_box_two_attributes(query)
            expected = rectangles.brute_force_matches(data, box)
            assert joint.query(box) == expected
            assert separate.query(box) == expected

    def test_both_strategies_match_bruteforce_one_attr(self, workload):
        data, relation = workload
        joint = JointIndex(relation, ["x", "y"], max_entries=8)
        separate = SeparateIndexes(relation, ["x", "y"], max_entries=8)
        for query in rectangles.generate_queries(25, seed=4):
            box = rectangles.query_box_one_attribute(query, "x")
            expected = rectangles.brute_force_matches(data, box)
            assert joint.query(box) == expected
            assert separate.query(box) == expected

    def test_relational_points_variant(self, workload):
        data, _ = workload
        relation = rectangles.build_relational_relation(data)
        joint = JointIndex(relation, ["x", "y"], max_entries=8)
        separate = SeparateIndexes(relation, ["x", "y"], max_entries=8)
        for query in rectangles.generate_queries(10, seed=5):
            box = rectangles.query_box_two_attributes(query)
            expected = rectangles.brute_force_matches(data, box, as_points=True)
            assert joint.query(box) == expected
            assert separate.query(box) == expected

    def test_null_excluded_by_constrained_query_included_when_unqueried(self):
        schema = Schema(
            [relational("x", DataType.RATIONAL), relational("y", DataType.RATIONAL)]
        )
        relation = ConstraintRelation(
            schema,
            [
                HTuple(schema, {"x": 1, "y": 1}),
                HTuple(schema, {"x": 2}),  # y is NULL
            ],
        )
        joint = JointIndex(relation, ["x", "y"], max_entries=4)
        # y constrained: the NULL-y tuple must not match.
        assert joint.query({"x": (0.0, 5.0), "y": (0.0, 5.0)}) == {0}
        # y unqueried: the NULL-y tuple matches on x alone.
        assert joint.query({"x": (0.0, 5.0)}) == {0, 1}

    def test_empty_and_none_boxes(self, workload):
        _, relation = workload
        joint = JointIndex(relation, ["x", "y"], max_entries=8)
        separate = SeparateIndexes(relation, ["x", "y"], max_entries=8)
        assert joint.query(None) == set()
        assert separate.query(None) == set()
        assert joint.query({"x": (5.0, 1.0)}) == set()  # inverted interval
        assert separate.query({"x": (5.0, 1.0)}) == set()
        # no constrained attribute: all tuples are candidates
        assert len(separate.query({})) == len(relation)

    def test_access_accounting_sums_subqueries(self, workload):
        _, relation = workload
        separate = SeparateIndexes(relation, ["x", "y"], max_entries=8)
        separate.reset_counters()
        separate.query({"x": (0.0, 100.0)})
        x_only = separate.accesses
        separate.query({"x": (0.0, 100.0), "y": (0.0, 100.0)})
        assert separate.accesses > 2 * x_only * 0  # grows
        assert separate.accesses > x_only

    def test_duplicate_attributes_rejected(self, workload):
        _, relation = workload
        with pytest.raises(IndexError_):
            JointIndex(relation, ["x", "x"])
        with pytest.raises(IndexError_):
            SeparateIndexes(relation, [])


class TestQueryBoxForPredicates:
    def test_simple_bounds(self):
        box = query_box_for_predicates(
            parse_constraints("2 <= x, x <= 5, y >= 1"), ["x", "y"]
        )
        assert box["x"] == (2.0, 5.0)
        assert box["y"][0] == 1.0

    def test_implied_bounds_from_multivariable(self):
        box = query_box_for_predicates(
            parse_constraints("x + y <= 10, x >= 2, y >= 3"), ["x", "y"]
        )
        assert box["x"] == (2.0, 7.0)
        assert box["y"] == (3.0, 8.0)

    def test_unsatisfiable_returns_none(self):
        assert query_box_for_predicates(parse_constraints("x < 0, x > 0"), ["x"]) is None

    def test_no_linear_predicates(self):
        from repro.algebra import StringPredicate

        assert query_box_for_predicates([StringPredicate("id", "a")], ["x"]) == {}

    def test_unmentioned_attribute_omitted(self):
        box = query_box_for_predicates(parse_constraints("x <= 5"), ["x", "y"])
        assert "y" not in box
