"""Unit tests for the R*-tree."""

import random

import pytest

from repro.errors import IndexError_
from repro.indexing import MBR, RStarTree


def random_boxes(count: int, seed: int = 7) -> list[tuple[MBR, int]]:
    rng = random.Random(seed)
    boxes = []
    for i in range(count):
        x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
        w, h = rng.uniform(1, 50), rng.uniform(1, 50)
        boxes.append((MBR((x, y), (x + w, y + h)), i))
    return boxes


def build(count: int = 400, **kwargs) -> tuple[RStarTree, list[tuple[MBR, int]]]:
    tree = RStarTree(dimensions=2, max_entries=kwargs.pop("max_entries", 8), **kwargs)
    boxes = random_boxes(count)
    for mbr, payload in boxes:
        tree.insert(mbr, payload)
    return tree, boxes


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(IndexError_):
            RStarTree(dimensions=0)
        with pytest.raises(IndexError_):
            RStarTree(dimensions=2, max_entries=3)
        with pytest.raises(IndexError_):
            RStarTree(dimensions=2, max_entries=8, min_entries=1)
        with pytest.raises(IndexError_):
            RStarTree(dimensions=2, max_entries=8, min_entries=5)

    def test_default_min_entries_is_forty_percent(self):
        assert RStarTree(dimensions=2, max_entries=50).min_entries == 20

    def test_dimension_check_on_insert(self):
        tree = RStarTree(dimensions=2)
        with pytest.raises(IndexError_):
            tree.insert(MBR((0.0,), (1.0,)), 1)


class TestInsertAndSearch:
    def test_search_equals_linear_scan(self):
        tree, boxes = build(500)
        tree.check_invariants()
        rng = random.Random(1)
        for _ in range(40):
            x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
            q = MBR((x, y), (x + rng.uniform(10, 300), y + rng.uniform(10, 300)))
            assert sorted(tree.search(q)) == sorted(
                p for mbr, p in boxes if mbr.intersects(q)
            )

    def test_duplicate_mbrs_supported(self):
        tree = RStarTree(dimensions=1, max_entries=4)
        box = MBR((0.0,), (1.0,))
        for i in range(20):
            tree.insert(box, i)
        assert sorted(tree.search(box)) == list(range(20))
        tree.check_invariants()

    def test_items_enumerates_everything(self):
        tree, boxes = build(100)
        assert sorted(p for _, p in tree.items()) == sorted(p for _, p in boxes)

    def test_height_grows_logarithmically(self):
        tree, _ = build(400, max_entries=8)
        assert 2 <= tree.height <= 6

    def test_forced_reinsert_improves_packing(self):
        boxes = random_boxes(800)
        with_fr = RStarTree(dimensions=2, max_entries=8)
        without_fr = RStarTree(dimensions=2, max_entries=8, forced_reinsert=False)
        for mbr, p in boxes:
            with_fr.insert(mbr, p)
            without_fr.insert(mbr, p)
        assert with_fr.node_count <= without_fr.node_count

    def test_access_counting(self):
        tree, _ = build(400)
        tree.reset_counters()
        tree.search(MBR((0.0, 0.0), (1000.0, 1000.0)))
        full_scan = tree.search_accesses
        assert full_scan == tree.node_count  # full-space query touches all
        tree.reset_counters()
        tree.search(MBR((0.0, 0.0), (1.0, 1.0)))
        assert tree.search_accesses < full_scan

    def test_write_accesses_counted(self):
        tree, _ = build(50)
        assert tree.write_accesses > 0


class TestNearest:
    def test_nearest_matches_bruteforce(self):
        tree, boxes = build(300)
        target = MBR.point((500.0, 500.0))
        got = tree.nearest(target, k=7)
        expected = sorted((target.min_distance_sq(m) ** 0.5, p) for m, p in boxes)[:7]
        assert [round(d, 9) for d, _ in got] == [round(d, 9) for d, _ in expected]

    def test_nearest_k_exceeds_size(self):
        tree, boxes = build(10)
        assert len(tree.nearest(MBR.point((0.0, 0.0)), k=50)) == 10

    def test_nearest_invalid_k(self):
        tree, _ = build(10)
        with pytest.raises(IndexError_):
            tree.nearest(MBR.point((0.0, 0.0)), k=0)

    def test_nearest_iter_is_sorted_and_complete(self):
        tree, boxes = build(120)
        target = MBR.point((123.0, 456.0))
        stream = list(tree.nearest_iter(target))
        assert len(stream) == len(boxes)
        distances = [d for d, _ in stream]
        assert distances == sorted(distances)

    def test_nearest_iter_lazy_access_counting(self):
        tree, _ = build(400)
        tree.reset_counters()
        iterator = tree.nearest_iter(MBR.point((500.0, 500.0)))
        next(iterator)
        partial = tree.search_accesses
        assert 0 < partial < tree.node_count


class TestDelete:
    def test_delete_and_search(self):
        tree, boxes = build(300)
        for mbr, p in boxes[:150]:
            assert tree.delete(mbr, p)
        tree.check_invariants()
        assert len(tree) == 150
        q = MBR((0.0, 0.0), (1000.0, 1000.0))
        assert sorted(tree.search(q)) == sorted(p for _, p in boxes[150:])

    def test_delete_missing_returns_false(self):
        tree, boxes = build(50)
        assert not tree.delete(MBR((0.0, 0.0), (1.0, 1.0)), 999999)
        assert len(tree) == 50

    def test_delete_everything(self):
        tree, boxes = build(100)
        for mbr, p in boxes:
            assert tree.delete(mbr, p)
        assert len(tree) == 0
        assert tree.search(MBR((0.0, 0.0), (1000.0, 1000.0))) == []
        tree.check_invariants()

    def test_reinsert_after_delete(self):
        tree, boxes = build(100)
        for mbr, p in boxes:
            tree.delete(mbr, p)
        for mbr, p in boxes:
            tree.insert(mbr, p)
        tree.check_invariants()
        assert len(tree) == 100


class TestOneDimensional:
    def test_interval_search(self):
        tree = RStarTree(dimensions=1, max_entries=6)
        intervals = [(i * 10.0, i * 10.0 + 5.0) for i in range(100)]
        for i, (lo, hi) in enumerate(intervals):
            tree.insert(MBR((lo,), (hi,)), i)
        tree.check_invariants()
        hits = tree.search(MBR((12.0,), (33.0,)))
        assert sorted(hits) == [1, 2, 3]
