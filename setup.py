"""Setup shim for environments without the ``wheel`` package.

The canonical metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517 --no-build-isolation`` on offline hosts
where PEP 660 editable builds (which require ``wheel``) are unavailable.
"""

from setuptools import setup

setup()
