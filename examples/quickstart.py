"""Quickstart: a heterogeneous constraint database in five minutes.

Builds a small database mixing traditional and constraint data, shows the
C/R flag semantics (the paper's section 3), runs the six CQA operators
directly, and then the same queries through the ASCII query language.

Run:  python examples/quickstart.py
"""

from repro.algebra import StringPredicate, difference, natural_join, project, select, union
from repro.constraints import Conjunction, parse_constraints, var
from repro.model import (
    ConstraintRelation,
    Database,
    DataType,
    HTuple,
    Schema,
    constraint,
    relational,
)
from repro.query import QuerySession


def main() -> None:
    # -- 1. A heterogeneous schema: the C/R flag per attribute ------------
    # Sensors have a traditional id, a traditional (rational) accuracy,
    # and a *constraint* time attribute: each tuple describes the whole
    # interval during which the sensor was active — infinitely many time
    # points, finitely represented.
    sensors = Schema(
        [
            relational("sensor"),  # string, relational
            relational("accuracy", DataType.RATIONAL),
            constraint("t"),  # rational, constraint
        ]
    )
    relation = ConstraintRelation(
        sensors,
        [
            HTuple(sensors, {"sensor": "s1", "accuracy": "0.5"}, parse_constraints("0 <= t, t <= 10")),
            HTuple(sensors, {"sensor": "s2", "accuracy": "0.1"}, parse_constraints("5 <= t, t <= 20")),
            HTuple(sensors, {"sensor": "s3"}, parse_constraints("t >= 15")),  # accuracy unknown (NULL)
        ],
        "Sensors",
    )
    print(relation.pretty(), "\n")

    # -- 2. Selection: constraint vs relational semantics ------------------
    # Constraint attribute: conjoin the condition onto each tuple formula.
    active_at_7 = select(relation, parse_constraints("t = 7"))
    print("active at t=7:")
    print(active_at_7.pretty(), "\n")

    # Relational attribute: narrow semantics — s3's NULL accuracy never
    # matches, even though 'accuracy <= 1' is true of every number.
    accurate = select(relation, parse_constraints("accuracy <= 1"))
    print("with known accuracy <= 1 (note: s3 is excluded, NULL matches nothing):")
    print(accurate.pretty(), "\n")

    # String predicates select on relational string attributes.
    s1_only = select(relation, [StringPredicate("sensor", "s1")])
    print("sensor = s1:", [str(t) for t in s1_only], "\n")

    # -- 3. The other CQA primitives ---------------------------------------
    readings = Schema([relational("sensor"), constraint("t"), constraint("value")])
    measured = ConstraintRelation(
        readings,
        [
            # Sensor s1's reading ramps linearly from 0 to 10 over t in [0, 10]:
            # infinitely many (t, value) points captured by one equality.
            HTuple(readings, {"sensor": "s1"}, parse_constraints("value = t, 0 <= t, t <= 10")),
            HTuple(readings, {"sensor": "s2"}, parse_constraints("value = 3, 5 <= t, t <= 20")),
        ],
        "Readings",
    )
    joined = natural_join(relation, measured)
    print("join Sensors with Readings (shared sensor and t):")
    print(joined.simplify().pretty(), "\n")

    print("project onto (sensor, value): where did each sensor's value range?")
    print(project(joined, ["sensor", "value"]).simplify().pretty(), "\n")

    early = select(relation, parse_constraints("t <= 10"))
    late = select(relation, parse_constraints("t >= 10"))
    print("union of early and late coverage has", len(union(early, late)), "tuples")
    print("difference (early - late):")
    print(difference(early, late).simplify().pretty(), "\n")

    # -- 4. Or do it all in the ASCII query language -----------------------
    database = Database({"Sensors": relation, "Readings": measured})
    session = QuerySession(database)
    result = session.run_script(
        """
        # which sensors saw value >= 5 while active?
        R0 = join Sensors and Readings
        R1 = select value >= 5 from R0
        R2 = project R1 on sensor, t
        """
    )
    print("query language result (sensor, t) where value >= 5:")
    print(result.simplify().pretty())


if __name__ == "__main__":
    main()
