"""The section 5.4 indexing experiments, at a configurable scale.

Regenerates the paper's Figure 4 (two-attribute queries), Figure 5
(one-attribute queries) and the reconstructed experiment 3 (low joint
selectivity), printing the same series the figures plot; then runs the
attribute-grouping advisor on the measured workload — the paper's open
problem (section 5.4).

Run:  python examples/indexing_experiment.py [--paper-scale]

Default is a fast scale (2,000 boxes); --paper-scale uses the paper's
10,000 boxes / 100 queries / 500 queries (a few minutes).
"""

import sys

from repro.experiments import expt3, fig4, fig5, print_result
from repro.indexing import WorkloadQuery, recommend_grouping


def main() -> None:
    paper_scale = "--paper-scale" in sys.argv
    data_size = 10_000 if paper_scale else 2_000
    queries = 100 if paper_scale else 50
    expt3_queries = 500 if paper_scale else 100
    expt3_sizes = (1_000, 2_000, 4_000, 8_000, 16_000) if paper_scale else (500, 1_000, 2_000, 4_000)

    print_result(fig4.run(data_size=data_size, query_count=queries))
    print()
    print_result(fig5.run(data_size=data_size, query_count=queries))
    print()
    print_result(expt3.run(data_sizes=expt3_sizes, query_count=expt3_queries))
    print()

    # -- the open problem: which attribute subsets should share an index? --
    print("attribute-grouping advisor (the paper's open problem, section 5.4):")
    both_attr_workload = [
        WorkloadQuery(frozenset({"x", "y"}), frequency=8.0, selectivity=0.05),
        WorkloadQuery(frozenset({"x"}), frequency=2.0, selectivity=0.05),
    ]
    print(f"  workload dominated by two-attribute queries -> "
          f"{recommend_grouping(['x', 'y'], both_attr_workload, data_size)}")
    single_attr_workload = [
        WorkloadQuery(frozenset({"x"}), frequency=5.0, selectivity=0.05),
        WorkloadQuery(frozenset({"y"}), frequency=5.0, selectivity=0.05),
    ]
    print(f"  workload of single-attribute queries         -> "
          f"{recommend_grouping(['x', 'y'], single_attr_workload, data_size)}")
    mixed = [
        WorkloadQuery(frozenset({"x", "y"}), frequency=6.0, selectivity=0.05),
        WorkloadQuery(frozenset({"t"}), frequency=4.0, selectivity=0.02),
    ]
    print(f"  spatiotemporal mix (x,y together; t alone)   -> "
          f"{recommend_grouping(['x', 'y', 't'], mixed, data_size)}")


if __name__ == "__main__":
    main()
