"""Visual output from constraint data (section 6.2's display conversion).

Renders the Hurricane database as an SVG map — land parcels, the hurricane
track, and the parcels a query marks as hit — and exports a GIS town map
to GeoJSON.  Both paths run the constraint→geometry conversion the paper
describes: "in order to display a feature, its boundary points have to be
computed from the constraints."

Run:  python examples/visualize_map.py [output-directory]
Writes hurricane_map.svg and town_map.geojson.
"""

import sys
from pathlib import Path

from repro.query import QuerySession
from repro.spatial import ConvexPolygon, FeatureSet, feature_set_to_geojson, save_geojson
from repro.workloads import figure2_database, generate_gis_scenario


MAP_HEIGHT = 10.0  # SVG's y axis grows downward; flip around the map height


def _flip(y: float) -> float:
    return MAP_HEIGHT - y


def _svg_polygon(polygon: ConvexPolygon, fill: str, opacity: str = "0.6") -> str:
    points = " ".join(f"{float(v.x)},{_flip(float(v.y))}" for v in polygon.vertices)
    return (
        f'<polygon points="{points}" fill="{fill}" fill-opacity="{opacity}" '
        'stroke="#333" stroke-width="0.05"/>'
    )


def render_hurricane_svg(path: Path) -> None:
    database = figure2_database()

    # Which parcels were hit?  Ask the database, not the drawing.
    session = QuerySession(database)
    hit = session.run_script(
        "R0 = join Hurricane and Land\nR1 = project R0 on landId\n"
    )
    hit_ids = {t.value("landId") for t in hit}

    parts: list[str] = []
    # Land parcels: vertex-enumerate each constraint tuple.
    for t in database["Land"]:
        polygon = ConvexPolygon.from_conjunction(t.formula)
        land_id = t.value("landId")
        color = "#d95f5f" if land_id in hit_ids else "#7fbf7f"
        parts.append(_svg_polygon(polygon, color))
        center = polygon.centroid()
        parts.append(
            f'<text x="{float(center.x)}" y="{_flip(float(center.y))}" font-size="0.8" '
            f'text-anchor="middle">{land_id}</text>'
        )
    # The hurricane path: project each (t, x, y) segment onto space.
    track = []
    for t in database["Hurricane"]:
        spatial = t.formula.project(("x", "y"))
        segment = ConvexPolygon.from_conjunction(spatial)
        track.extend(segment.vertices)
    seen = []
    for v in track:
        if v not in seen:
            seen.append(v)
    polyline = " ".join(f"{float(v.x)},{_flip(float(v.y))}" for v in seen)
    parts.append(
        f'<polyline points="{polyline}" fill="none" stroke="#3355cc" '
        'stroke-width="0.3" stroke-dasharray="0.5,0.3"/>'
    )
    svg = (
        '<svg xmlns="http://www.w3.org/2000/svg" viewBox="-1 -1 12 12" '
        'width="480" height="480">\n'
        + "\n".join(parts)
        + "\n</svg>\n"
    )
    path.write_text(svg, encoding="utf-8")
    print(f"wrote {path} — hit parcels {sorted(hit_ids)} drawn in red")


def export_town_geojson(path: Path) -> None:
    scenario = generate_gis_scenario(parcels_per_side=5, roads=3, shelters=6, seed=7)
    merged = FeatureSet(
        list(scenario.parcels) + list(scenario.roads) + list(scenario.shelters)
    )
    save_geojson(feature_set_to_geojson(merged), path)
    print(f"wrote {path} — {len(merged)} features (open in any GeoJSON viewer)")


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    render_hurricane_svg(out_dir / "hurricane_map.svg")
    export_town_geojson(out_dir / "town_map.geojson")


if __name__ == "__main__":
    main()
