"""The Hurricane database — the paper's section 3.3 case study, end to end.

Three heterogeneous relations:

    Land          [landId: string, relational; x, y: rational, constraint]
    Landownership [name: string, relational; t: rational, constraint;
                   landId: string, relational]
    Hurricane     [t, x, y: rational, constraint]

Land parcels are rectangles; the hurricane path is piecewise linear in
time, so each path segment is one constraint tuple tying t, x and y with
rational linear equalities — infinitely many spatiotemporal points,
finitely represented and *exactly* queryable.

Run:  python examples/hurricane.py
"""

from repro.experiments.hurricane_queries import run as run_case_study
from repro.query import QuerySession
from repro.storage import dumps
from repro.workloads.hurricane import figure2_database, paper_queries


def main() -> None:
    database = figure2_database()

    print("=" * 72)
    print("The Figure 2 instance")
    print("=" * 72)
    for name in database:
        print(database[name].pretty())
        print()

    print("=" * 72)
    print("The five queries of section 3.3")
    print("=" * 72)
    for result in run_case_study(database):
        print(result.format())
        print()

    # A couple of ad-hoc follow-ups showing exact spatiotemporal answers.
    print("=" * 72)
    print("Ad-hoc: where exactly was the hurricane while inside parcel B?")
    print("=" * 72)
    session = QuerySession(database)
    inside_b = session.run_script(
        """
        R0 = select landId=B from Land
        R1 = join Hurricane and R0
        R2 = project R1 on t, x, y
        """
    )
    print(inside_b.simplify().pretty())
    print()
    print("...and the relation is exact: membership of any rational point is decidable:")
    for probe in ({"t": 7, "x": "21/4", "y": 7}, {"t": 7, "x": 5, "y": 7}):
        print(f"  point {probe}: {inside_b.contains_point(probe)}")
    print()

    print("=" * 72)
    print("The whole database serializes to a diffable text format (.cdb):")
    print("=" * 72)
    text = dumps(database)
    print("\n".join(text.splitlines()[:12]))
    print(f"... ({len(text.splitlines())} lines total)")


if __name__ == "__main__":
    main()
