"""GIS analysis with whole-feature operators (paper section 4 and 6).

A synthetic town map — parcels, roads, shelters — is analysed with the
safe whole-feature operators:

* Buffer-Join finds every parcel within a buffer distance of a road;
* k-Nearest ranks the shelters closest to a given parcel;
* the vector model (section 6) digitises a concave lake outline, convex-
  decomposes it for the constraint store, and compares representation
  costs;
* finally the *unsafe* raw-distance operator demonstrates the safety check.

Run:  python examples/spatial_analysis.py
"""

from repro.algebra import EvaluationContext, Scan, UnsafeDistance, evaluate
from repro.errors import SafetyError
from repro.query import QuerySession
from repro.spatial import FeatureSet, buffer_join, digitize, k_nearest_features
from repro.workloads import generate_gis_scenario


def main() -> None:
    scenario = generate_gis_scenario(parcels_per_side=6, roads=3, shelters=8, seed=2026)
    database = scenario.to_database()
    print(
        f"town map: {len(scenario.parcels)} parcels, {len(scenario.roads)} roads, "
        f"{len(scenario.shelters)} shelters on a {scenario.map_size}x{scenario.map_size} grid\n"
    )

    # -- Buffer-Join: parcels within distance 2 of any road ----------------
    near_roads = buffer_join(scenario.parcels, scenario.roads, 2, "parcel", "road")
    by_road: dict[str, list[str]] = {}
    for t in near_roads:
        by_road.setdefault(t.value("road"), []).append(t.value("parcel"))
    print("Buffer-Join(Parcels, Roads, 2) — parcels within 2 units of each road:")
    for road in sorted(by_road):
        print(f"  {road}: {len(by_road[road])} parcels")
    print()

    # The same through the query language, composed with ordinary algebra:
    session = QuerySession(database)
    result = session.run_script(
        """
        R0 = bufferjoin Parcels and Roads within 2 as parcel, road
        R1 = select road = road_0 from R0
        R2 = project R1 on parcel
        """
    )
    print(f"query language: {len(result)} parcels within 2 of road_0\n")

    # -- k-Nearest: the three shelters closest to a parcel -----------------
    query_parcel = scenario.parcels["parcel_2_3"]
    ranked = k_nearest_features(scenario.shelters, query_parcel, 3)
    print(f"3 shelters nearest to {query_parcel.fid}:")
    for rank, (shelter, distance) in enumerate(ranked, start=1):
        print(f"  #{rank}: {shelter.fid} at distance {distance:.2f}")
    print()

    # Cross-layer k-nearest in the query language ('of' names the layer
    # holding the query feature):
    ranked_rel = session.run_script(
        "R0 = knearest 3 near parcel_2_3 of Parcels in Shelters"
    )
    print("as a relation (safe output — feature IDs and ranks, no distances):")
    print(ranked_rel.pretty())
    print()

    # -- The vector model (section 6) ---------------------------------------
    lake = digitize(
        [(10, 10), (30, 8), (35, 20), (22, 15), (14, 24)], "lake", kind="region"
    )
    feature = lake.to_feature()
    print(f"digitised concave lake: {len(lake.outline)} outline points -> "
          f"{len(feature.parts)} convex parts for the constraint store")
    constraint_cost = lake.constraint_cost(extra_attributes=3)
    vector_cost = lake.vector_cost(extra_attributes=3)
    print(f"  constraint representation: {constraint_cost.tuples} tuples, "
          f"{constraint_cost.constraints} atoms, {constraint_cost.coordinates} coordinates,")
    print(f"    {constraint_cost.duplicated_attributes} duplicated attribute copies, "
          f"{constraint_cost.shared_boundary_constraints} shared boundary constraints")
    print(f"  vector representation: 1 tuple, {vector_cost.coordinates} coordinates "
          "(section 6.2's two redundancies avoided)")
    print(f"  Example 8 projection onto x: {lake.project('x')}\n")

    # The lake joins the constraint database like any other layer:
    lake_relation = FeatureSet([feature]).to_relation("Lake")
    database.add("Lake", lake_relation)
    lakeside = buffer_join(
        FeatureSet.from_relation(lake_relation),
        scenario.parcels,
        1,
        "lake",
        "parcel",
    )
    print(f"parcels within 1 unit of the lake: {len(lakeside)}\n")

    # -- Safety (section 2.4 / 4) -------------------------------------------
    print("raw distance is unsafe — the system refuses the plan:")
    try:
        evaluate(UnsafeDistance(Scan("Parcels"), Scan("Shelters")), EvaluationContext(database))
    except SafetyError as exc:
        print(f"  SafetyError: {exc}")


if __name__ == "__main__":
    main()
