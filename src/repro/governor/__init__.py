"""The query resource governor: budgets, cancellation, fault injection.

CQA/CDB's lesson (§4–5 of the paper) is that evaluation must stay *safe
and bounded*: unsafe operators are rejected because their output leaves
the linear class, but a safe query can still be explosive —
Fourier–Motzkin elimination and DNF complement are worst-case
exponential.  This package makes such queries fail *predictably*:

* :class:`Budget` — per-query limits (wall-clock deadline, solver steps,
  DNF clauses, output tuples, IO accesses) enforced cooperatively at
  engine loop boundaries; exhaustion raises the structured
  :class:`~repro.errors.ResourceExhausted` taxonomy with a resource
  snapshot, or degrades gracefully to partial results in
  ``on_exhausted="partial"`` mode.
* :mod:`~repro.governor.faultinject` — a seeded, deterministic
  :class:`FaultPlan` for the storage layer plus bounded
  retry-with-backoff, proving queries succeed, retry through transients,
  or fail structurally — never hang and never return silently-wrong
  results.

See "Resource limits & failure model" in docs/QUERY_LANGUAGE.md.
"""

from .budget import (
    Budget,
    BudgetSlice,
    ProducerGuard,
    charge,
    charge_io,
    checkpoint,
    current_budget,
)
from .faultinject import (
    CrashingFile,
    FaultPlan,
    FaultyBufferPool,
    FaultyHeapFile,
    FaultyWAL,
    RetryPolicy,
    SimulatedCrash,
    call_with_retries,
    corrupt_database_text,
    scan_with_retries,
)

__all__ = [
    "Budget",
    "BudgetSlice",
    "CrashingFile",
    "FaultPlan",
    "FaultyBufferPool",
    "FaultyHeapFile",
    "FaultyWAL",
    "ProducerGuard",
    "RetryPolicy",
    "SimulatedCrash",
    "call_with_retries",
    "charge",
    "charge_io",
    "checkpoint",
    "corrupt_database_text",
    "current_budget",
    "scan_with_retries",
]
