"""Per-query resource budgets with cooperative cancellation.

A :class:`Budget` bounds one statement's consumption of five resources:

* ``deadline_seconds`` — wall-clock time from activation;
* ``solver_steps`` — Fourier–Motzkin steps weighted by the atoms each
  step produces, plus simplex pivots (the elimination-atom budget that
  catches FM's worst-case exponential blow-up);
* ``dnf_clauses`` — conjunctions built while distributing or
  complementing DNF formulas (the difference-operator blow-up);
* ``output_tuples`` — tuples materialized by plan operators
  (intermediate results included: the cap bounds work, not just the
  final answer);
* ``io_accesses`` — simulated IO: R*-tree node visits and heap page
  reads.

Cancellation is *cooperative*: the engine's loops call the module-level
:func:`checkpoint` / :func:`charge` helpers at their boundaries.  When no
budget is active both are a single truthiness test on an empty list, so
ungoverned evaluation pays near-zero overhead (the <3% target of
``benchmarks/bench_governor.py``).

Budgets activate like the obs registry does — a thread-local stack —
so plain functions deep in the constraint layer need no threading of an
explicit token (thread-local rather than process-wide so the parallel
execution engine's thread-pool fallback can give each worker task its
own sub-budget without cross-talk)::

    budget = Budget(deadline_seconds=0.5, solver_steps=10_000)
    with budget.activate():
        session.execute("R0 = join A and B")

Exhaustion raises the structured :class:`~repro.errors.ResourceExhausted`
taxonomy, each instance carrying a consumed-resources snapshot.  In
``on_exhausted="partial"`` mode, *producer* loops (select, join,
difference, buffer-join…) degrade gracefully instead: they stop,
mark the budget :attr:`~Budget.truncated`, and return the tuples
materialized so far.  Exhaustion that fires deep inside a single tuple's
solve is absorbed at the enclosing producer boundary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

from contextlib import contextmanager

from .._concurrency import ThreadLocalStack
from ..errors import (
    DeadlineExceeded,
    DNFBudgetExceeded,
    IOBudgetExceeded,
    OutputLimitExceeded,
    ResourceExhausted,
    SolverBudgetExceeded,
)
from ..obs import (
    GOVERNOR_DNF_CLAUSES,
    GOVERNOR_OUTPUT_TUPLES,
    GOVERNOR_SOLVER_STEPS,
    GOVERNOR_TRUNCATIONS,
    current_registry,
    record,
)

#: Resource name → (exception class, obs counter mirrored at charge time;
#: ``None`` keeps the hot IO path free of per-charge recording).
_RESOURCES: dict[str, tuple[type[ResourceExhausted], str | None]] = {
    "solver_steps": (SolverBudgetExceeded, GOVERNOR_SOLVER_STEPS),
    "dnf_clauses": (DNFBudgetExceeded, GOVERNOR_DNF_CLAUSES),
    "output_tuples": (OutputLimitExceeded, GOVERNOR_OUTPUT_TUPLES),
    "io_accesses": (IOBudgetExceeded, None),
}

#: Deadline handed to a worker slice whose parent budget already expired
#: (partial mode only): positive so the ``Budget`` constructor accepts
#: it, small enough that the first worker checkpoint trips immediately.
_EXPIRED_SLICE_SECONDS = 1e-6

#: Obs counters copied into exhaustion snapshots (budget-relevant subset
#: of the registry; the full snapshot can be huge).
_SNAPSHOT_COUNTERS = (
    "solver.requests",
    "solver.satisfiability_checks",
    "solver.fourier_motzkin_steps",
    "solver.eliminate_calls",
    "index.node_accesses.logical",
    "index.node_accesses.physical",
    "buffer_pool.requests",
    "plan.tuples_produced",
)


class Budget:
    """A per-query resource budget (``None`` = that resource unlimited).

    Instances are reusable: :meth:`activate` opens a fresh accounting
    window (consumption zeroed, deadline re-armed, ``truncated`` cleared),
    so one budget attached to a :class:`~repro.query.QuerySession`
    governs each statement independently and the session stays usable
    after a statement is cancelled.
    """

    __slots__ = (
        "deadline_seconds",
        "on_exhausted",
        "truncated",
        "_limits",
        "_consumed",
        "_deadline_at",
        "_active",
    )

    def __init__(
        self,
        *,
        deadline_seconds: float | None = None,
        solver_steps: int | None = None,
        dnf_clauses: int | None = None,
        output_tuples: int | None = None,
        io_accesses: int | None = None,
        on_exhausted: str = "raise",
    ):
        if deadline_seconds is not None and not deadline_seconds > 0:
            raise ValueError(f"deadline_seconds must be positive, got {deadline_seconds!r}")
        limits = {
            "solver_steps": solver_steps,
            "dnf_clauses": dnf_clauses,
            "output_tuples": output_tuples,
            "io_accesses": io_accesses,
        }
        for name, limit in limits.items():
            if limit is None:
                continue
            if not isinstance(limit, int) or isinstance(limit, bool) or limit <= 0:
                raise ValueError(f"{name} must be a positive integer or None, got {limit!r}")
        if on_exhausted not in ("raise", "partial"):
            raise ValueError(f"on_exhausted must be 'raise' or 'partial', got {on_exhausted!r}")
        self.deadline_seconds = deadline_seconds
        self.on_exhausted = on_exhausted
        self.truncated = False
        self._limits = limits
        self._consumed = dict.fromkeys(limits, 0)
        self._deadline_at: float | None = None
        self._active = False

    # -- lifecycle -----------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["Budget"]:
        """Open a fresh accounting window and make this the budget the
        engine's checkpoints charge.  Windows do not nest onto themselves
        (a budget governs one statement at a time)."""
        if self._active:
            raise ValueError("budget is already active (a Budget governs one query at a time)")
        self.reset()
        if self.deadline_seconds is not None:
            self._deadline_at = time.monotonic() + self.deadline_seconds
        self._active = True
        _STACK.push(self)
        try:
            yield self
        finally:
            _STACK.pop()
            self._active = False

    def reset(self) -> None:
        """Zero consumption, clear ``truncated``, disarm the deadline."""
        for name in self._consumed:
            self._consumed[name] = 0
        self.truncated = False
        self._deadline_at = None

    # -- accounting ----------------------------------------------------------

    @property
    def limits(self) -> dict[str, int | None]:
        return dict(self._limits)

    @property
    def consumed(self) -> dict[str, int]:
        return dict(self._consumed)

    def remaining(self, resource: str) -> int | None:
        """Remaining allowance (``None`` = unlimited, floor 0)."""
        limit = self._limits[resource]
        if limit is None:
            return None
        return max(0, limit - self._consumed[resource])

    def checkpoint(self) -> None:
        """Cooperative cancellation point.

        Once the deadline has passed this raises
        :class:`~repro.errors.DeadlineExceeded` — except in partial mode,
        where it marks the budget :attr:`truncated` and returns, so that
        checkpoints *not* wrapped by a :class:`ProducerGuard` (plan-node
        boundaries, solver internals, relation construction) wind the
        query down gracefully instead of erroring past the guards."""
        deadline = self._deadline_at
        if deadline is not None and time.monotonic() > deadline:
            if self.on_exhausted == "partial":
                self.mark_truncated()
                return
            raise DeadlineExceeded(
                f"query deadline of {self.deadline_seconds}s exceeded",
                resource="deadline_seconds",
                consumed=self.deadline_seconds,
                limit=self.deadline_seconds,
                snapshot=self.snapshot(),
            )

    def charge(self, resource: str, n: int = 1) -> None:
        """Consume ``n`` units of ``resource``; raise the resource's
        :class:`~repro.errors.ResourceExhausted` subclass once over the
        limit.  Mirrors the charge into the active obs registry (so
        ``EXPLAIN ANALYZE`` labels per-node consumption), except for the
        hot IO resource."""
        consumed = self._consumed[resource] + n
        self._consumed[resource] = consumed
        exc_type, obs_counter = _RESOURCES[resource]
        if obs_counter is not None:
            record(obs_counter, n)
        limit = self._limits[resource]
        if limit is not None and consumed > limit:
            raise exc_type(
                f"{resource} budget of {limit} exceeded (consumed {consumed})",
                resource=resource,
                consumed=consumed,
                limit=limit,
                snapshot=self.snapshot(),
            )

    def charge_io(self, n: int = 1) -> None:
        """The IO charge, kept minimal: one add and one compare per
        simulated disk access (R*-tree node visit / heap page read)."""
        consumed = self._consumed["io_accesses"] + n
        self._consumed["io_accesses"] = consumed
        limit = self._limits["io_accesses"]
        if limit is not None and consumed > limit:
            raise IOBudgetExceeded(
                f"io_accesses budget of {limit} exceeded (consumed {consumed})",
                resource="io_accesses",
                consumed=consumed,
                limit=limit,
                snapshot=self.snapshot(),
            )

    def mark_truncated(self) -> None:
        if not self.truncated:
            self.truncated = True
            record(GOVERNOR_TRUNCATIONS)

    def slice(self) -> "BudgetSlice":
        """A picklable spec for a worker sub-budget.

        Each worker gets the parent's *full remaining* allowance for every
        armed resource (not an even division: a workload that fits the
        budget serially must never spuriously exhaust in a worker that
        happens to process most of the expensive morsels) and the
        remaining share of the shared wall-clock deadline.  The parent
        re-charges actual worker consumption during the post-merge
        reconciliation, so the global limit still binds.

        A parent whose deadline has (nearly) elapsed must not hand workers
        an underflowed remaining time: in raise mode slicing raises
        :class:`~repro.errors.DeadlineExceeded` immediately (dispatching a
        doomed batch would only delay the error), and in partial mode the
        parent is marked truncated and the slice carries an
        already-expired allowance that trips on the worker's first
        checkpoint.
        """
        limits = tuple(
            (name, max(1, limit - self._consumed[name]))
            for name, limit in self._limits.items()
            if limit is not None
        )
        if self._deadline_at is not None:
            deadline: float | None = self._deadline_at - time.monotonic()
            if deadline is not None and deadline <= 0:
                if self.on_exhausted != "partial":
                    raise DeadlineExceeded(
                        f"query deadline of {self.deadline_seconds}s exceeded "
                        "(expired before worker dispatch)",
                        resource="deadline_seconds",
                        consumed=self.deadline_seconds,
                        limit=self.deadline_seconds,
                        snapshot=self.snapshot(),
                    )
                self.mark_truncated()
                deadline = _EXPIRED_SLICE_SECONDS
        else:
            deadline = self.deadline_seconds
        return BudgetSlice(
            limits=limits,
            deadline_remaining=deadline,
            on_exhausted=self.on_exhausted,
        )

    def snapshot(self) -> dict[str, float]:
        """Consumed resources plus the budget-relevant obs counters — the
        diagnostics a :class:`~repro.errors.ResourceExhausted` carries."""
        out: dict[str, float] = {
            f"consumed.{name}": value for name, value in self._consumed.items()
        }
        for name, limit in self._limits.items():
            if limit is not None:
                out[f"limit.{name}"] = limit
        if self._deadline_at is not None:
            # Clamped at 0: after expiry the raw difference goes negative,
            # and snapshots travel (ResourceExhausted payloads, server wire
            # replies) where "-0.03 seconds remaining" reads as nonsense.
            out["deadline.remaining_seconds"] = max(
                0.0, self._deadline_at - time.monotonic()
            )
        registry = current_registry()
        for counter in _SNAPSHOT_COUNTERS:
            value = registry.value(counter)
            if value:
                out[counter] = value
        return out

    def summary(self) -> str:
        """One-line consumed/limit rendering for reports."""
        parts = []
        for name, value in self._consumed.items():
            limit = self._limits[name]
            if limit is not None:
                parts.append(f"{name}={value}/{limit}")
            elif value:
                parts.append(f"{name}={value}")
        if self.deadline_seconds is not None:
            parts.append(f"deadline={self.deadline_seconds}s")
        if self.truncated:
            parts.append("truncated")
        return "budget: " + (" ".join(parts) if parts else "(nothing consumed)")

    def __repr__(self) -> str:
        knobs = ", ".join(
            f"{name}={limit}" for name, limit in self._limits.items() if limit is not None
        )
        if self.deadline_seconds is not None:
            knobs = f"deadline_seconds={self.deadline_seconds}" + (f", {knobs}" if knobs else "")
        return f"<Budget {knobs or 'unlimited'} on_exhausted={self.on_exhausted}>"


@dataclass(frozen=True)
class BudgetSlice:
    """A picklable worker sub-budget spec (see :meth:`Budget.slice`).

    Crossing the process boundary as plain data rather than as a
    :class:`Budget` keeps the envelope small and sidesteps pickling the
    parent's live accounting state.
    """

    limits: tuple[tuple[str, int], ...]
    deadline_remaining: float | None
    on_exhausted: str

    def build(self) -> Budget:
        """Materialize the worker-side :class:`Budget`."""
        kwargs: dict[str, int] = dict(self.limits)
        deadline = self.deadline_remaining
        if deadline is not None:
            # Defense in depth: Budget.slice() already refuses to hand out
            # a non-positive remaining deadline, but a slice that sat in a
            # dispatch queue may arrive expired; it must still build a
            # valid budget whose first checkpoint fires immediately.
            deadline = max(deadline, _EXPIRED_SLICE_SECONDS)
        return Budget(
            deadline_seconds=deadline,
            on_exhausted=self.on_exhausted,
            **kwargs,
        )


# -- active-budget stack and cheap module-level hooks --------------------------


#: Per-thread active-budget stack (see the module docstring).  One of
#: four activation stacks sharing the :class:`ThreadLocalStack`
#: implementation — engines, registries, and columnar mode are the
#: others.
_STACK = ThreadLocalStack()


def current_budget() -> Budget | None:
    """The budget governing the current evaluation, if any."""
    stack = _STACK.items
    return stack[-1] if stack else None


def reset_active_budgets() -> None:
    """Clear this thread's active-budget stack.

    Worker-pool plumbing: a forked worker inherits the submitting
    thread's stack, and an inherited *parent* budget would silently
    absorb worker charges (or spuriously exhaust an ungoverned task).
    Task envelopes call this before activating their own sub-budget.
    """
    _STACK.clear()


def checkpoint() -> None:
    """Deadline check at a loop boundary; no-op when ungoverned."""
    stack = _STACK.items
    if stack:
        stack[-1].checkpoint()


def charge(resource: str, n: int = 1) -> None:
    """Charge the active budget, if any."""
    stack = _STACK.items
    if stack:
        stack[-1].charge(resource, n)


def charge_io(n: int = 1) -> None:
    """IO charge for the active budget, if any (hot path: one list test
    when ungoverned)."""
    stack = _STACK.items
    if stack:
        stack[-1].charge_io(n)


class ProducerGuard:
    """Loop-boundary hook for tuple-producing operators.

    Binds the active budget once per operator call; each row boundary is
    then one attribute test when ungoverned.  In partial mode the guard
    converts exhaustion into a clean stop (``False``), which the operator
    answers by returning the tuples materialized so far.
    """

    __slots__ = ("budget",)

    def __init__(self) -> None:
        self.budget = current_budget()

    def start_row(self) -> bool:
        """Call before producing the next row: True = proceed, False =
        stop and return partial results.  Raises when ``on_exhausted``
        is ``"raise"`` and the deadline has passed."""
        budget = self.budget
        if budget is None:
            return True
        budget.checkpoint()  # raises in raise-mode, marks truncated in partial
        return not budget.truncated

    def produced(self, n: int = 1) -> bool:
        """Charge ``n`` output tuples; same contract as :meth:`start_row`."""
        budget = self.budget
        if budget is None:
            return True
        try:
            budget.charge("output_tuples", n)
        except ResourceExhausted:
            if budget.on_exhausted == "partial":
                budget.mark_truncated()
                return False
            raise
        return True

    def absorb(self, exc: ResourceExhausted) -> bool:
        """Whether an exhaustion raised *inside* one row's work (deep in
        the solver, say) should truncate the loop instead of propagating."""
        del exc
        budget = self.budget
        if budget is not None and budget.on_exhausted == "partial":
            budget.mark_truncated()
            return True
        return False
