"""Deterministic fault injection for the simulated storage layer.

A :class:`FaultPlan` is a *seeded, reproducible* schedule of storage
faults.  Wrappers apply it to each layer:

* :class:`FaultyHeapFile` — heap page reads fail transiently
  (:class:`~repro.errors.TransientStorageError`) or permanently as
  corruption (:class:`~repro.errors.CorruptPageError`);
* :class:`FaultyBufferPool` — page misses (simulated disk reads) fail
  transiently; hits never fail (the page is already resident);
* :func:`corrupt_database_text` — flips bytes inside ``tuple`` lines of
  a serialized ``.cdb`` text, which the checksum layer of
  :mod:`repro.storage.serialization` must surface as a structured
  :class:`~repro.errors.CorruptPageError` rather than garbage tuples.

Two scheduling modes compose:

* an explicit schedule — ``fail_ops={0: "transient", 3: "corrupt"}``
  keyed by the plan's global operation counter, for tests that need
  exact failure positions;
* seeded rates — ``transient_rate=0.2`` draws per operation from a
  private :class:`random.Random(seed)`, so the same seed over the same
  operation sequence always injects the same faults.

:func:`call_with_retries` is the matching recovery policy: bounded
attempts with exponential backoff, retrying *only*
:class:`~repro.errors.TransientStorageError` — corruption and other
permanent errors propagate immediately.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, TypeVar

from ..errors import CorruptPageError, StorageError, TransientStorageError
from ..obs import STORAGE_FAULTS_INJECTED, STORAGE_RETRIES, record

if TYPE_CHECKING:  # storage imports stay type-only: the storage layer
    # itself imports the governor for IO charging, and a runtime import
    # here would close that loop into a cycle.
    from ..storage.buffer_pool import BufferPool
    from ..storage.heapfile import HeapFile

T = TypeVar("T")

#: Fault kinds a plan can schedule.
TRANSIENT = "transient"
CORRUPT = "corrupt"
CRASH = "crash"
_KINDS = (TRANSIENT, CORRUPT, CRASH)


class SimulatedCrash(BaseException):
    """A simulated process kill at an exact write boundary.

    Deliberately a :class:`BaseException` (like ``KeyboardInterrupt``):
    a real ``kill -9`` cannot be caught by ``except Exception`` handlers
    in the write path, so neither can its simulation — no retry policy,
    taxonomy handler, or cleanup block may swallow it and keep writing.
    The crash-matrix harness catches it explicitly at the top of each
    scenario.
    """


class FaultPlan:
    """A deterministic schedule of injected storage faults.

    Every intercepted operation advances :attr:`operations`; the fault
    decision for operation *i* depends only on the seed, the explicit
    ``fail_ops`` schedule, and *i* — never on wall-clock or object
    identity — so a test that replays the same operations sees the same
    faults.

    ``max_transients`` bounds rate-driven transient faults so a retry
    loop is guaranteed to eventually see a success (explicitly scheduled
    faults are exempt: tests own those).
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        transient_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        fail_ops: dict[int, str] | None = None,
        max_transients: int | None = None,
    ):
        for name, rate in (("transient_rate", transient_rate), ("corrupt_rate", corrupt_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        self._schedule = dict(fail_ops or {})
        for op, kind in self._schedule.items():
            if kind not in _KINDS:
                raise ValueError(f"unknown fault kind {kind!r} for op {op}")
        self._rng = random.Random(seed)
        self.transient_rate = transient_rate
        self.corrupt_rate = corrupt_rate
        self.max_transients = max_transients
        self.operations = 0
        self.injected_transients = 0
        self.injected_corruptions = 0

    def next_fault(self, layer: str = "storage") -> str | None:
        """The fault for the next operation: ``"transient"``,
        ``"corrupt"``, or ``None``.  Advances the operation counter."""
        op = self.operations
        self.operations += 1
        kind = self._schedule.get(op)
        if kind is None:
            # Always draw both so the stream position — hence determinism —
            # does not depend on which rates are enabled.
            transient_draw = self._rng.random()
            corrupt_draw = self._rng.random()
            if corrupt_draw < self.corrupt_rate:
                kind = CORRUPT
            elif transient_draw < self.transient_rate and (
                self.max_transients is None or self.injected_transients < self.max_transients
            ):
                kind = TRANSIENT
        if kind == TRANSIENT:
            self.injected_transients += 1
        elif kind == CORRUPT:
            self.injected_corruptions += 1
        if kind is not None:
            record(STORAGE_FAULTS_INJECTED)
        del layer  # reserved for layer-scoped schedules
        return kind

    def raise_for_next(self, layer: str, what: str) -> None:
        """Consult the schedule and raise the scheduled fault, if any."""
        kind = self.next_fault(layer)
        if kind == TRANSIENT:
            raise TransientStorageError(f"injected transient failure reading {what} ({layer})")
        if kind == CORRUPT:
            raise CorruptPageError(f"injected corruption reading {what} ({layer})")
        if kind == CRASH:
            raise SimulatedCrash(f"injected crash at {what} ({layer})")


# -- layer wrappers ------------------------------------------------------------


class FaultyHeapFile:
    """A :class:`~repro.storage.HeapFile` whose page reads consult a
    :class:`FaultPlan`.  Mirrors the heap file's read API; a faulted scan
    raises mid-iteration, exactly like a real partial read."""

    def __init__(self, heapfile: "HeapFile", plan: FaultPlan):
        self._file = heapfile
        self.plan = plan

    @property
    def page_count(self) -> int:
        return self._file.page_count

    @property
    def stats(self):
        return self._file.stats

    def __len__(self) -> int:
        return len(self._file)

    def read_page(self, index: int) -> list:
        self.plan.raise_for_next("heapfile", f"page {index}")
        return self._file.read_page(index)

    def scan(self) -> Iterator:
        for index in range(self._file.page_count):
            yield from self.read_page(index)


class FaultyBufferPool:
    """A :class:`~repro.storage.BufferPool` facade injecting faults on
    *misses* only: a hit serves the resident page and cannot fail."""

    def __init__(self, pool: "BufferPool", plan: FaultPlan):
        self._pool = pool
        self.plan = plan

    @property
    def stats(self):
        return self._pool.stats

    def bind_registry(self, registry) -> None:
        self._pool.bind_registry(registry)

    def access(self, page_id: object) -> bool:
        if page_id in self._pool:
            return self._pool.access(page_id)
        self.plan.raise_for_next("buffer_pool", f"page {page_id!r}")
        return self._pool.access(page_id)

    def __contains__(self, page_id: object) -> bool:
        return page_id in self._pool

    def __len__(self) -> int:
        return len(self._pool)

    def clear(self) -> None:
        self._pool.clear()


class CrashingFile:
    """A binary append handle that dies at an exact absolute byte offset.

    Writes pass through untouched until one would carry the file past
    ``crash_at_byte``; that write persists only the prefix up to the
    boundary (flushed, so it is really on disk — exactly what a torn
    write leaves behind) and raises :class:`SimulatedCrash`.  After the
    crash every further operation raises again: the process is dead.
    """

    def __init__(self, raw, crash_at_byte: int, *, plan: FaultPlan | None = None):
        if crash_at_byte < 0:
            raise ValueError(f"crash_at_byte must be >= 0, got {crash_at_byte}")
        self._raw = raw
        self._offset = raw.tell()  # append mode: current end of file
        self.crash_at_byte = crash_at_byte
        self.plan = plan
        self.crashed = False

    def _check_alive(self) -> None:
        if self.crashed:
            raise SimulatedCrash(
                f"write after crash at byte {self.crash_at_byte} (process is dead)"
            )

    def write(self, data: bytes) -> int:
        self._check_alive()
        if self.plan is not None:
            # Plan-driven crashes fire *before* the bytes land, modelling
            # a kill between the syscall being issued and serviced.
            kind = self.plan.next_fault("wal")
            if kind == CRASH:
                self.crashed = True
                self._raw.flush()
                raise SimulatedCrash(f"scheduled crash before write at byte {self._offset}")
        allowed = self.crash_at_byte - self._offset
        if len(data) <= allowed:
            self._raw.write(data)
            self._offset += len(data)
            return len(data)
        prefix = data[: max(0, allowed)]
        if prefix:
            self._raw.write(prefix)
            self._offset += len(prefix)
        self.crashed = True
        self._raw.flush()  # the torn prefix is on disk, like a real partial write
        raise SimulatedCrash(
            f"crash at byte {self.crash_at_byte}: write of {len(data)} bytes torn "
            f"after {len(prefix)}"
        )

    def flush(self) -> None:
        self._check_alive()
        self._raw.flush()

    def fileno(self) -> int:
        self._check_alive()
        return self._raw.fileno()

    def close(self) -> None:
        # Closing the dead handle is allowed: the harness cleans up.
        self._raw.close()


def FaultyWAL(
    path,
    *,
    crash_at_byte: int | None = None,
    plan: FaultPlan | None = None,
    fsync: bool = True,
):
    """A :class:`~repro.storage.wal.WriteAheadLog` whose append handle
    crashes at ``crash_at_byte`` (an absolute file offset) and/or on a
    plan-scheduled ``"crash"`` fault.  The crash-matrix tests sweep
    ``crash_at_byte`` over every offset of a reference run and assert
    recovery lands on the last committed state.

    Recovery-on-open runs *before* the faulty handle is installed (you
    crash while writing, not while recovering), so a ``FaultyWAL`` over a
    previously torn log first truncates the tail like any other open.
    """
    from ..storage.wal import WriteAheadLog  # runtime import: see module note

    def wrapper(raw):
        return CrashingFile(
            raw,
            crash_at_byte if crash_at_byte is not None else (1 << 62),
            plan=plan,
        )

    return WriteAheadLog(path, fsync=fsync, file_wrapper=wrapper)


def corrupt_database_text(text: str, plan: FaultPlan) -> str:
    """Deterministically corrupt one serialized ``tuple`` line per
    corruption the plan schedules (one ``next_fault`` draw per tuple
    line).  The mutation swaps a digit inside the constraint part, the
    kind of bit-rot only a checksum catches: the line still parses, but
    into a different formula."""
    lines = text.split("\n")
    for i, line in enumerate(lines):
        if not line.startswith("tuple"):
            continue
        if plan.next_fault("serialization") != CORRUPT:
            continue
        digits = [j for j, ch in enumerate(line) if ch.isdigit()]
        if not digits:
            continue
        j = digits[len(digits) // 2]
        flipped = "3" if line[j] != "3" else "7"
        lines[i] = line[:j] + flipped + line[j + 1 :]
    return "\n".join(lines)


# -- bounded retry -------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for transient storage errors.

    ``attempts`` counts total tries (so ``attempts=3`` retries twice);
    delays grow ``base_delay * multiplier**retry`` capped at
    ``max_delay``.  ``sleep`` is injectable so tests run instantly and
    can assert the exact backoff sequence.
    """

    attempts: int = 3
    base_delay: float = 0.001
    multiplier: float = 2.0
    max_delay: float = 0.1
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0 or self.multiplier < 1:
            raise ValueError("delays must be non-negative and multiplier >= 1")

    def delay_for(self, retry: int) -> float:
        return min(self.base_delay * self.multiplier**retry, self.max_delay)


def call_with_retries(operation: Callable[[], T], policy: RetryPolicy | None = None) -> T:
    """Run ``operation``, retrying :class:`TransientStorageError` up to
    the policy's attempt bound with exponential backoff.  Permanent
    :class:`StorageError`\\ s (corruption included) propagate immediately;
    after the final attempt the last transient error propagates, so a
    persistent "transient" fault still fails loudly rather than looping."""
    policy = policy or RetryPolicy()
    last: TransientStorageError | None = None
    for retry in range(policy.attempts):
        try:
            return operation()
        except TransientStorageError as exc:
            last = exc
            if retry + 1 < policy.attempts:
                record(STORAGE_RETRIES)
                policy.sleep(policy.delay_for(retry))
    assert last is not None
    raise last


def scan_with_retries(
    heapfile: "FaultyHeapFile | HeapFile", policy: RetryPolicy | None = None
) -> list:
    """A full heap-file scan that retries each page read independently.

    The unit of retry is the page: a transient fault on page *k* re-reads
    page *k* only, never the pages already delivered, so the result is
    exactly one copy of every tuple (or a structured :class:`StorageError`
    once a page fails permanently)."""
    read_page = getattr(heapfile, "read_page")
    out: list = []
    for index in range(heapfile.page_count):
        out.extend(call_with_retries(lambda: read_page(index), policy))
    return out


__all__ = [
    "CORRUPT",
    "CRASH",
    "TRANSIENT",
    "CorruptPageError",
    "CrashingFile",
    "FaultPlan",
    "FaultyBufferPool",
    "FaultyHeapFile",
    "FaultyWAL",
    "RetryPolicy",
    "SimulatedCrash",
    "StorageError",
    "TransientStorageError",
    "call_with_retries",
    "corrupt_database_text",
    "scan_with_retries",
]
