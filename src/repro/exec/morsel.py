"""Morsel partitioning: fixed-size batches of work items.

A *morsel* is the unit of parallel dispatch (Leis et al.'s term for the
small fixed-size input fragments a morsel-driven scheduler hands to
workers).  Partitioning is purely positional — morsel ``i`` holds items
``[i*size, (i+1)*size)`` of the input sequence — so concatenating the
per-morsel outputs in morsel order reproduces the serial iteration order
exactly.  That positional invariant is what the engine's deterministic
ordered merge relies on.
"""

from __future__ import annotations

import math
from typing import Sequence, TypeVar

T = TypeVar("T")

#: Bounds for the automatic morsel size: small enough to balance load
#: across workers, large enough that the per-task envelope overhead
#: (pickling, pool queueing) stays amortized.
MIN_MORSEL_SIZE = 8
MAX_MORSEL_SIZE = 256
#: Target number of morsels per worker — over-decomposition smooths out
#: skew (some morsels solve much faster than others).
MORSELS_PER_WORKER = 4


def auto_morsel_size(n_items: int, workers: int) -> int:
    """A morsel size aiming for :data:`MORSELS_PER_WORKER` morsels per
    worker, clamped to ``[MIN_MORSEL_SIZE, MAX_MORSEL_SIZE]``."""
    if n_items <= 0:
        return MIN_MORSEL_SIZE
    target = math.ceil(n_items / max(1, workers * MORSELS_PER_WORKER))
    return max(MIN_MORSEL_SIZE, min(MAX_MORSEL_SIZE, target))


def partition(items: Sequence[T], size: int) -> list[tuple[T, ...]]:
    """Split ``items`` into consecutive morsels of ``size`` (the last may
    be short).  Order-preserving: ``concat(partition(xs, k)) == xs``."""
    if size < 1:
        raise ValueError(f"morsel size must be positive, got {size}")
    return [tuple(items[i : i + size]) for i in range(0, len(items), size)]
