"""The picklable task envelope executed by pool workers.

A :class:`TaskEnvelope` carries everything one worker task needs across
the process boundary: the task function (a module-level callable, pickled
by reference), a shared payload, the morsel of work items, and an
optional :class:`~repro.governor.BudgetSlice`.  The worker-side entry
point :func:`execute_envelope` wraps the task in the shared-nothing
harness the engine's contract requires:

* the worker thread's active registry/budget/engine stacks are cleared
  first — a forked worker inherits the submitting thread's stacks, and a
  pooled thread may hold leftovers from a previous task; either would
  misattribute metrics, double-charge the parent budget, or recursively
  re-enter the (parent's) engine;
* a fresh :class:`~repro.obs.MetricsRegistry` is activated so every
  counter the task touches is captured and shipped back as a snapshot;
* the budget slice (if any) is materialized into a worker-local
  :class:`~repro.governor.Budget` and activated, so the task's producer
  guards and solver checkpoints behave exactly as they do serially.

Exhaustion raised by the task is returned as a structured
:class:`WorkerFailure` record rather than a pickled exception: the
:class:`~repro.errors.ResourceExhausted` constructors take keyword-only
diagnostic arguments, which default exception pickling silently drops.
:func:`rebuild_exhaustion` reconstructs the same subclass in the parent.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from .. import errors
from ..errors import ResourceExhausted
from ..governor.budget import BudgetSlice, reset_active_budgets
from ..obs import MetricsRegistry
from ..obs.registry import reset_active_registries

#: A task function: ``fn(payload, morsel) -> output``.  Must be a
#: module-level callable so it pickles by reference.
TaskFn = Callable[[Any, tuple], Any]


@dataclass(frozen=True)
class TaskEnvelope:
    """One worker task: function, shared payload, morsel, sub-budget."""

    fn: TaskFn
    payload: Any
    morsel: tuple
    budget_slice: BudgetSlice | None
    index: int


@dataclass(frozen=True)
class WorkerFailure:
    """A :class:`~repro.errors.ResourceExhausted` flattened to plain data."""

    kind: str
    message: str
    resource: str
    consumed: float | int | None
    limit: float | int | None
    snapshot: Mapping[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class TaskOutcome:
    """What one task sends back to the merge step.

    ``counters`` is the task registry's snapshot (non-zero entries);
    ``consumed`` the sub-budget's per-resource consumption, which the
    post-merge reconciliation re-charges against the parent budget.
    """

    index: int
    worker: str
    output: Any
    counters: Mapping[str, float]
    consumed: Mapping[str, int]
    truncated: bool
    failure: WorkerFailure | None


def worker_label() -> str:
    """A stable-ish identity for the executing worker (``p<pid>`` for a
    pool process, ``t<ident>`` for a fallback pool thread)."""
    if multiprocessing.parent_process() is not None:
        return f"p{os.getpid()}"
    return f"t{threading.get_ident()}"


def execute_envelope(envelope: TaskEnvelope) -> TaskOutcome:
    """Worker-side entry point (see the module docstring)."""
    # Import here, not at module top, to avoid a static cycle
    # (engine -> envelope -> engine); at call time both are loaded.
    from .engine import reset_active_engines

    reset_active_registries()
    reset_active_budgets()
    reset_active_engines()
    registry = MetricsRegistry()
    output: Any = None
    consumed: dict[str, int] = {}
    truncated = False
    failure: WorkerFailure | None = None
    with registry.activate():
        if envelope.budget_slice is None:
            output = envelope.fn(envelope.payload, envelope.morsel)
        else:
            sub = envelope.budget_slice.build()
            try:
                with sub.activate():
                    output = envelope.fn(envelope.payload, envelope.morsel)
            except ResourceExhausted as exc:
                failure = WorkerFailure(
                    kind=type(exc).__name__,
                    message=str(exc),
                    resource=exc.resource,
                    consumed=exc.consumed,
                    limit=exc.limit,
                    snapshot=dict(exc.snapshot),
                )
            consumed = {name: n for name, n in sub.consumed.items() if n}
            truncated = sub.truncated
    return TaskOutcome(
        index=envelope.index,
        worker=worker_label(),
        output=output,
        counters={name: v for name, v in registry.snapshot().items() if v},
        consumed=consumed,
        truncated=truncated,
        failure=failure,
    )


def rebuild_exhaustion(failure: WorkerFailure) -> ResourceExhausted:
    """Reconstruct the worker's exhaustion as the same taxonomy subclass."""
    cls = getattr(errors, failure.kind, None)
    if not (isinstance(cls, type) and issubclass(cls, ResourceExhausted)):
        cls = ResourceExhausted
    return cls(
        failure.message,
        resource=failure.resource,
        consumed=failure.consumed,
        limit=failure.limit,
        snapshot=dict(failure.snapshot),
    )
