"""The morsel-driven parallel execution engine.

Partitions operator input into fixed-size morsels, dispatches the
CPU-bound filter+solve work to a worker pool (processes by default,
threads as a fallback for unpicklable contexts), and merges results in
morsel order so parallel evaluation is bit-identical to serial.  See
:mod:`repro.exec.engine` for the design contract (determinism, budget
reconciliation, metrics merge) and ``docs/PARALLELISM.md`` for the
operator-facing guide.
"""

from .columnar import (
    EXEC_MODE_ENV_VAR,
    EXEC_MODES,
    columnar_active,
    columnar_mode,
    default_exec_mode,
    split_exec_mode,
)
from .engine import (
    ExecutionConfig,
    ExecutionEngine,
    current_engine,
    merge_producing_outcomes,
    parallel_engine,
    reconcile_consumed,
    reset_active_engines,
    run_parallel,
)
from .envelope import (
    TaskEnvelope,
    TaskOutcome,
    WorkerFailure,
    execute_envelope,
    rebuild_exhaustion,
)
from .morsel import auto_morsel_size, partition

__all__ = [
    "EXEC_MODES",
    "EXEC_MODE_ENV_VAR",
    "ExecutionConfig",
    "ExecutionEngine",
    "TaskEnvelope",
    "TaskOutcome",
    "WorkerFailure",
    "auto_morsel_size",
    "columnar_active",
    "columnar_mode",
    "current_engine",
    "default_exec_mode",
    "execute_envelope",
    "merge_producing_outcomes",
    "parallel_engine",
    "partition",
    "rebuild_exhaustion",
    "reconcile_consumed",
    "reset_active_engines",
    "run_parallel",
    "split_exec_mode",
]
