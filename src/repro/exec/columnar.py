"""The columnar/vectorized execution fast path.

Paper §6 argues the finite representation underlying the framework need
not be constraints — only the *interface* must be constraint-neutral.
This module pushes that observation into the executor: instead of
deciding satisfiability tuple-at-a-time with exact rationals, a morsel of
tuples is exported once into contiguous float64 arrays (the per-variable
interval summaries every :class:`~repro.constraints.Conjunction` already
caches) and a whole batch of selection pre-checks runs as a handful of
numpy comparisons.  The float filter produces a *candidate mask*; only
the survivors are re-verified tuple-at-a-time through the exact rational
solver, so results are bit-identical to row mode.

Soundness.  Every float bound is **widened**: lower bounds round toward
−∞ and upper bounds toward +∞ (:func:`repro.rational.float_down` /
:func:`float_up`), and strict bounds are treated as closed.  Each float
interval therefore *contains* its exact rational interval.  The mask
kernel then only uses ``max``/``min``/comparison — operations that are
exact on floats — so ``max(lows) > min(highs)`` on the widened intervals
proves the exact intersection empty.  The filter can only
over-approximate (keep a doomed tuple for the exact fallback to kill),
never under-approximate (drop a survivor).  See ``docs/COLUMNAR.md``.

Activation is a thread-local stack (mirroring the engine/budget/registry
stacks) so the mode nests and composes with ``workers=N``: the flag is
carried to pool workers inside the task payload, and each worker morsel
becomes one columnar batch.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Sequence

from .._concurrency import ThreadLocalStack

try:  # numpy is an optional accelerator: without it the probe bypasses.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None  # type: ignore[assignment]

if TYPE_CHECKING:
    from ..model.schema import Schema
    from ..model.tuples import HTuple

#: Below this many tuples the per-batch numpy overhead (array allocation,
#: kernel launch) is not worth saving a few Python-level interval checks;
#: the probe bypasses to the row loop.
MIN_BATCH = 16

#: Execution modes a session accepts.  ``auto``/``process``/``thread``
#: pick the worker-pool flavour (columnar off); ``columnar`` turns this
#: fast path on (pool flavour stays auto); ``row`` forces it off
#: explicitly (the A/B baseline arm).
EXEC_MODES = ("auto", "process", "thread", "row", "columnar")

#: Environment variable consulted by ``QuerySession(exec_mode=None)`` —
#: lets CI flip a whole test run to columnar without touching call sites.
EXEC_MODE_ENV_VAR = "REPRO_EXEC_MODE"


def available() -> bool:
    """Whether the vectorized kernels can run at all (numpy importable)."""
    return _np is not None


def default_exec_mode() -> str:
    """The session default execution mode: ``$REPRO_EXEC_MODE`` or
    ``"auto"``."""
    raw = os.environ.get(EXEC_MODE_ENV_VAR, "").strip().lower()
    if not raw:
        return "auto"
    if raw not in EXEC_MODES:
        raise ValueError(
            f"{EXEC_MODE_ENV_VAR} must be one of {EXEC_MODES}, got {raw!r}"
        )
    return raw


def split_exec_mode(mode: str) -> tuple[str, bool]:
    """``(pool mode, columnar on?)`` for a session-level ``exec_mode``."""
    if mode not in EXEC_MODES:
        raise ValueError(f"exec_mode must be one of {EXEC_MODES}, got {mode!r}")
    if mode in ("process", "thread"):
        return mode, False
    return "auto", mode == "columnar"


# -- activation (a thread-local stack, like engines and budgets) -------------


#: Per-thread activation stack of booleans; the *top* entry decides, so
#: ``columnar_mode(False)`` masks an enclosing activation exactly like
#: the old depth-reset did.  Shares :class:`ThreadLocalStack` with the
#: engine/budget/registry stacks.
_STACK = ThreadLocalStack()


@contextmanager
def columnar_mode(enabled: bool = True) -> Iterator[None]:
    """Activate (or explicitly deactivate) the columnar fast path for the
    dynamic extent of the block, on this thread."""
    with _STACK.pushed(enabled):
        yield


def columnar_active() -> bool:
    """Whether the columnar fast path is on for the current thread."""
    return bool(_STACK.top())


# -- the columnar morsel format ----------------------------------------------


class SummaryBlock:
    """One morsel's interval summaries as contiguous float64 columns.

    ``lower``/``upper`` are ``(n, d)`` arrays over ``variables`` (±∞ for
    unbounded sides, widened rounding — see the module docstring);
    ``inconsistent`` marks tuples whose own summary already proves them
    empty.  Blocks are immutable once built and cached on their owner
    (relation, heapfile page) keyed by the variable tuple.
    """

    __slots__ = ("variables", "lower", "upper", "inconsistent")

    def __init__(self, variables, lower, upper, inconsistent) -> None:
        self.variables = variables
        self.lower = lower
        self.upper = upper
        self.inconsistent = inconsistent

    def __len__(self) -> int:
        return self.lower.shape[0]

    @classmethod
    def from_tuples(
        cls, tuples: Sequence["HTuple"], variables: tuple[str, ...]
    ) -> "SummaryBlock":
        n, d = len(tuples), len(variables)
        lower = _np.full((n, d), -_np.inf)
        upper = _np.full((n, d), _np.inf)
        inconsistent = _np.zeros(n, dtype=bool)
        for i, t in enumerate(tuples):
            bounds, bad = t.formula.float_bounds()
            if bad:
                inconsistent[i] = True
                continue
            for j, variable in enumerate(variables):
                pair = bounds.get(variable)
                if pair is not None:
                    lower[i, j] = pair[0]
                    upper[i, j] = pair[1]
        return cls(variables, lower, upper, inconsistent)


def block_for(
    tuples: Sequence["HTuple"],
    variables: tuple[str, ...],
    cache: dict | None = None,
) -> SummaryBlock:
    """The :class:`SummaryBlock` for ``tuples`` over ``variables``,
    memoised in ``cache`` (an owner-provided dict keyed by the variable
    tuple) so repeated scans of an immutable relation or heapfile page
    pay the export once."""
    if cache is None:
        return SummaryBlock.from_tuples(tuples, variables)
    block = cache.get(variables)
    if block is None or len(block) != len(tuples):
        block = SummaryBlock.from_tuples(tuples, variables)
        cache[variables] = block
    return block


# -- the selection filter kernel ---------------------------------------------


class SelectionPlan:
    """The static (tuple-independent) side of a predicate list, exported
    to widened float bound rows ready to broadcast against a block.

    ``empty`` means the static atoms are inconsistent on their own: every
    tuple's augmented formula is unsatisfiable and the mask is all-False.
    """

    __slots__ = ("variables", "lower", "upper", "empty")

    def __init__(self, variables, lower, upper, empty: bool) -> None:
        self.variables = variables
        self.lower = lower
        self.upper = upper
        self.empty = empty


def selection_plan(predicates: Sequence[object], schema: "Schema") -> SelectionPlan | None:
    """Compile a predicate list into a :class:`SelectionPlan`, or ``None``
    when the vectorized filter cannot reject anything (bypass).

    Only linear atoms that mention no relational attribute are harvested:
    those are conjoined verbatim onto every tuple, so bounds implied by
    them alone are sound grounds for rejection.  Atoms over relational
    attributes (values substituted per tuple) and string predicates are
    left entirely to the exact fallback — ignoring them only makes the
    filter keep more candidates, never drop a survivor.
    """
    if _np is None:
        return None
    from ..constraints import LinearConstraint, solver

    relational = set(schema.relational_names)
    static_atoms = [
        p
        for p in predicates
        if isinstance(p, LinearConstraint) and not (p.expression.variables & relational)
    ]
    if not static_atoms:
        return None
    summary = solver.summarise(static_atoms)
    if summary.inconsistent:
        return SelectionPlan((), None, None, empty=True)
    if not summary.bounds:
        return None  # only multi-variable atoms: no per-variable bounds
    variables = tuple(sorted(summary.bounds))
    pairs = [solver.float_interval(summary.bounds[v]) for v in variables]
    lower = _np.array([p[0] for p in pairs])
    upper = _np.array([p[1] for p in pairs])
    return SelectionPlan(variables, lower, upper, empty=False)


def candidate_mask(block: SummaryBlock, plan: SelectionPlan):
    """The boolean candidate mask: ``True`` rows *may* survive selection
    and go to the exact fallback; ``False`` rows are provably
    unsatisfiable once the static atoms are conjoined.  Pure
    ``max``/``min``/compare — exact float operations over widened bounds,
    hence sound (see the module docstring)."""
    mask = ~block.inconsistent
    if plan.empty:
        return _np.zeros(len(block), dtype=bool)
    lower = _np.maximum(block.lower, plan.lower)
    upper = _np.minimum(block.upper, plan.upper)
    mask &= (lower <= upper).all(axis=1)
    return mask


# -- the spatial bbox kernel -------------------------------------------------


def box_mindist_sq_batch(box, lowers, uppers):
    """Squared Euclidean box min-distances from one float box
    ``(min_x, min_y, max_x, max_y)`` to ``n`` boxes given as ``(n, 2)``
    lower/upper corner arrays.  Elementwise-identical to
    :func:`repro.spatial.features.box_mindist_sq` (same IEEE operations in
    the same order), which is what makes the vectorized prune decisions
    bit-identical to the scalar loop's."""
    dx = _np.maximum(_np.maximum(lowers[:, 0] - box[2], box[0] - uppers[:, 0]), 0.0)
    dy = _np.maximum(_np.maximum(lowers[:, 1] - box[3], box[1] - uppers[:, 1]), 0.0)
    return dx * dx + dy * dy
