"""The morsel-driven parallel execution engine.

An :class:`ExecutionEngine` owns a worker pool and dispatches
:class:`~repro.exec.envelope.TaskEnvelope` batches built from morsels
(:mod:`repro.exec.morsel`).  Design contract:

* **Determinism** — outcomes are merged strictly in morsel order, and
  morsels are positional slices of the serial iteration order, so the
  merged output is bit-identical to the serial loop's.  Workers never
  share mutable state (each gets a fresh registry and sub-budget; the
  process pool additionally gets copy-on-write solver caches).
* **Governance** — the parent budget is sliced
  (:meth:`~repro.governor.Budget.slice`: full remaining limits, shared
  deadline) into per-worker sub-budgets, and worker consumption is
  re-charged against the parent during the ordered merge
  (:func:`merge_producing_outcomes`).  Exhaustion inside a worker
  surfaces as the same :class:`~repro.errors.ResourceExhausted` subclass
  the serial path raises; in ``on_exhausted="partial"`` mode the merge
  truncates at the same output-tuple boundary serial evaluation would.
* **Observability** — each outcome's registry snapshot is folded into
  the session registry *inside the calling operator's open span*, so
  ``EXPLAIN ANALYZE`` attributes worker solver/IO work to the right plan
  node; the engine additionally aggregates per-worker totals for the
  ``parallelism=`` summary line.

Mode selection (``auto``) prefers ``ProcessPoolExecutor`` (true
parallelism; fork start method when available so workers inherit warm
solver caches) and falls back to a thread pool when the envelope fails
to pickle or the process pool breaks.  ``workers=1`` never constructs an
engine at all — callers gate on :func:`parallel_engine`, keeping the
serial path byte-for-byte identical to the pre-engine code.
"""

from __future__ import annotations

import concurrent.futures
import logging
import multiprocessing
import pickle
import sys
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from .._concurrency import ThreadLocalStack
from ..errors import ResourceExhausted
from ..governor.budget import Budget, ProducerGuard, current_budget
from ..obs import (
    EXEC_DISPATCHES,
    EXEC_MORSELS,
    EXEC_THREAD_FALLBACKS,
    SATISFIABILITY_CHECKS,
    SOLVER_CACHE_HITS,
    SOLVER_CACHE_MISSES,
    SOLVER_REQUESTS,
    MetricsRegistry,
    current_registry,
)
from .envelope import TaskEnvelope, TaskFn, TaskOutcome, execute_envelope, rebuild_exhaustion
from .morsel import auto_morsel_size

_LOG = logging.getLogger(__name__)


def _interpreter_alive() -> bool:
    """False once the interpreter is finalizing (``__del__`` during
    teardown must not raise into a half-dismantled runtime)."""
    return not sys.is_finalizing()


#: Counter prefixes not folded into the session registry at merge time:
#: the governor mirrors (``governor.charged.*``, ``governor.truncations``)
#: are re-created by the parent-side budget reconciliation, and merging
#: the workers' copies as well would double-count them.
_MERGE_SKIP_PREFIXES = ("governor.",)

#: Per-worker counters aggregated for the ``parallelism=`` summary and
#: recorded as ``exec.worker<k>.<name>`` session counters.
_WORKER_SUMMARY_COUNTERS = (
    ("solver_requests", SOLVER_REQUESTS),
    ("sat_checks", SATISFIABILITY_CHECKS),
    ("cache_hits", SOLVER_CACHE_HITS),
    ("cache_misses", SOLVER_CACHE_MISSES),
)


@dataclass(frozen=True)
class ExecutionConfig:
    """Engine knobs.

    ``workers`` is the pool size; ``mode`` one of ``auto`` / ``process``
    / ``thread``; ``morsel_size=0`` picks a size automatically
    (:func:`~repro.exec.morsel.auto_morsel_size`); operators with fewer
    than ``min_parallel_items`` input items stay serial (the dispatch
    overhead would dominate).
    """

    workers: int = 1
    mode: str = "auto"
    morsel_size: int = 0
    min_parallel_items: int = 16

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or isinstance(self.workers, bool) or self.workers < 1:
            raise ValueError(f"workers must be a positive integer, got {self.workers!r}")
        if self.mode not in ("auto", "process", "thread"):
            raise ValueError(f"mode must be 'auto', 'process', or 'thread', got {self.mode!r}")
        if self.morsel_size < 0:
            raise ValueError(f"morsel_size must be >= 0, got {self.morsel_size!r}")
        if self.min_parallel_items < 1:
            raise ValueError(
                f"min_parallel_items must be positive, got {self.min_parallel_items!r}"
            )


class _StatementStats:
    """Per-statement dispatch accounting for the ``parallelism=`` line."""

    def __init__(self) -> None:
        self.dispatches = 0
        self.morsels = 0
        self.modes: list[str] = []
        self.per_worker: dict[str, dict[str, int]] = {}

    def note_dispatch(self, mode: str, n_morsels: int) -> None:
        self.dispatches += 1
        self.morsels += n_morsels
        if mode not in self.modes:
            self.modes.append(mode)

    def note_outcome(self, outcome: TaskOutcome) -> None:
        totals = self.per_worker.setdefault(
            outcome.worker,
            dict.fromkeys((label for label, _ in _WORKER_SUMMARY_COUNTERS), 0),
        )
        for label, counter in _WORKER_SUMMARY_COUNTERS:
            value = int(outcome.counters.get(counter, 0))
            if value:
                totals[label] += value


class ExecutionEngine:
    """A reusable worker pool plus the dispatch/merge machinery.

    Engines activate like budgets and registries — a thread-local stack
    consulted via :func:`current_engine` — so operators deep in the
    algebra/spatial layers need no explicit plumbing.  Pools are created
    lazily on first parallel dispatch and reused across statements;
    :meth:`close` (or use as a context manager) shuts them down.
    """

    def __init__(self, config: ExecutionConfig):
        # First, so __del__ on a half-constructed engine (validation
        # raised below) still finds a coherent, already-closed state.
        self._closed = False
        self._process_pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._thread_pool: concurrent.futures.ThreadPoolExecutor | None = None
        if config.workers < 2:
            self._closed = True
            raise ValueError(
                "an ExecutionEngine needs workers >= 2; workers=1 is the serial "
                "path and must not construct an engine"
            )
        self.config = config
        self._process_pool_broken = False
        self._stats = _StatementStats()
        self._worker_index: dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["ExecutionEngine"]:
        """Make this the engine :func:`current_engine` returns."""
        _STACK.push(self)
        try:
            yield self
        finally:
            _STACK.pop()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut down both pools.

        Idempotent: the first call does the work and later calls —
        including ``__del__`` after an explicit ``close()`` — are no-ops,
        so double-shutdown during interpreter teardown cannot re-enter a
        half-torn-down executor.  A pool whose shutdown fails is logged
        (never silently swallowed) and the other pool is still shut down.
        """
        if self._closed:
            return
        self._closed = True
        process_pool, self._process_pool = self._process_pool, None
        thread_pool, self._thread_pool = self._thread_pool, None
        for pool in (process_pool, thread_pool):
            if pool is None:
                continue
            try:
                pool.shutdown(wait=True)
            except Exception:
                _LOG.exception("worker pool shutdown failed: %r", pool)

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        # close() is idempotent, so an engine the owner already closed is
        # a no-op here; only errors raised *during interpreter teardown*
        # (modules half-gone, logging unavailable) are suppressed.
        try:
            self.close()
        except Exception:  # pragma: no cover - teardown only
            if not _interpreter_alive():
                return
            raise

    # -- statement accounting ------------------------------------------------

    def begin_statement(self) -> None:
        """Reset the per-statement stats behind ``parallelism=``."""
        self._stats = _StatementStats()

    def statement_summary(self) -> str | None:
        """The ``parallelism=`` line for the last statement, or ``None``
        if nothing was dispatched in parallel."""
        stats = self._stats
        if not stats.dispatches:
            return None
        parts = [
            f"workers={self.config.workers}",
            f"mode={'+'.join(stats.modes)}",
            f"dispatches={stats.dispatches}",
            f"morsels={stats.morsels}",
        ]
        hits = sum(w["cache_hits"] for w in stats.per_worker.values())
        misses = sum(w["cache_misses"] for w in stats.per_worker.values())
        if hits or misses:
            rate = hits / (hits + misses)
            parts.append(f"worker_cache_hits={hits}/{hits + misses} ({rate:.0%})")
        solves = [
            f"{self._worker_index.get(worker, 0)}:{totals['solver_requests']}"
            for worker, totals in sorted(
                stats.per_worker.items(),
                key=lambda item: self._worker_index.get(item[0], 0),
            )
        ]
        if solves:
            parts.append(f"worker_solves=[{' '.join(solves)}]")
        return "parallelism: " + " ".join(parts)

    # -- dispatch ------------------------------------------------------------

    def morsel_size(self, n_items: int) -> int:
        if self.config.morsel_size > 0:
            return self.config.morsel_size
        return auto_morsel_size(n_items, self.config.workers)

    def map_morsels(
        self,
        fn: TaskFn,
        payload: Any,
        morsels: Sequence[Sequence[Any]],
        label: str = "",
    ) -> list[TaskOutcome]:
        """Dispatch one task per morsel and return outcomes in morsel order.

        Slices the current budget (if any) into the envelopes, so worker
        tasks run governed; non-:class:`ResourceExhausted` worker errors
        propagate unchanged.
        """
        del label  # labels aid call sites; dispatches are anonymous
        if self._closed:
            raise RuntimeError("ExecutionEngine is closed")
        budget = current_budget()
        budget_slice = budget.slice() if budget is not None else None
        envelopes = [
            TaskEnvelope(
                fn=fn,
                payload=payload,
                morsel=tuple(morsel),
                budget_slice=budget_slice,
                index=i,
            )
            for i, morsel in enumerate(morsels)
        ]
        mode = self._resolve_mode(envelopes)
        registry = current_registry()
        registry.add(EXEC_DISPATCHES)
        registry.add(EXEC_MORSELS, len(envelopes))
        try:
            outcomes = self._run(mode, envelopes)
        except concurrent.futures.process.BrokenProcessPool:
            # The process pool died (e.g. a worker was OOM-killed).  The
            # tasks are pure — nothing parent-side was mutated — so
            # re-dispatching the whole batch on threads is safe.
            self._process_pool_broken = True
            self._process_pool = None
            if self.config.mode == "process":
                raise
            registry.add(EXEC_THREAD_FALLBACKS)
            mode = "thread"
            outcomes = self._run(mode, envelopes)
        self._stats.note_dispatch(mode, len(envelopes))
        for outcome in outcomes:
            self._stats.note_outcome(outcome)
            if outcome.worker not in self._worker_index:
                self._worker_index[outcome.worker] = len(self._worker_index)
        return outcomes

    def _run(self, mode: str, envelopes: list[TaskEnvelope]) -> list[TaskOutcome]:
        executor = self._executor_for(mode)
        futures = [executor.submit(execute_envelope, envelope) for envelope in envelopes]
        try:
            outcomes = [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        outcomes.sort(key=lambda outcome: outcome.index)
        return outcomes

    def _resolve_mode(self, envelopes: list[TaskEnvelope]) -> str:
        if self.config.mode == "thread":
            return "thread"
        if self.config.mode == "process":
            return "process"
        if self._process_pool_broken:
            return "thread"
        # Auto: probe the first envelope's picklability — all envelopes of
        # one dispatch share the same payload/function shape.
        try:
            pickle.dumps(envelopes[0] if envelopes else None)
        except Exception:
            current_registry().add(EXEC_THREAD_FALLBACKS)
            return "thread"
        return "process"

    def _executor_for(self, mode: str) -> concurrent.futures.Executor:
        if mode == "process":
            if self._process_pool is None:
                context = None
                if "fork" in multiprocessing.get_all_start_methods():
                    context = multiprocessing.get_context("fork")
                self._process_pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.config.workers, mp_context=context
                )
            return self._process_pool
        if self._thread_pool is None:
            self._thread_pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="repro-exec",
            )
        return self._thread_pool

    # -- merge helpers -------------------------------------------------------

    def merge_counters(self, registry: MetricsRegistry, outcome: TaskOutcome) -> None:
        """Fold one outcome's registry snapshot into ``registry`` (inside
        the calling operator's open span, so the work is attributed to
        the right plan node), plus per-worker session counters."""
        registry.merge_snapshot(outcome.counters, skip_prefixes=_MERGE_SKIP_PREFIXES)
        worker_k = self._worker_index.get(outcome.worker, 0)
        for _, counter in _WORKER_SUMMARY_COUNTERS:
            value = int(outcome.counters.get(counter, 0))
            if value:
                registry.add(f"exec.worker{worker_k}.{counter}", value)


# -- ordered merge of producing tasks ------------------------------------------

#: Resources reconciled from worker sub-budgets onto the parent budget.
#: ``output_tuples`` is deliberately absent: the merge loop re-charges it
#: per merged tuple through a ProducerGuard, reproducing the serial
#: truncation point exactly.
_RECONCILED_RESOURCES = ("solver_steps", "dnf_clauses", "io_accesses")


def reconcile_consumed(budget: Budget | None, consumed: Any) -> bool:
    """Charge a worker's non-output consumption against the parent.

    Returns ``False`` when the charge exhausted a partial-mode budget
    (callers stop merging further morsels); raise-mode exhaustion
    propagates as the usual taxonomy.
    """
    if budget is None:
        return True
    for resource in _RECONCILED_RESOURCES:
        n = consumed.get(resource, 0)
        if not n:
            continue
        try:
            budget.charge(resource, n)
        except ResourceExhausted:
            if budget.on_exhausted == "partial":
                budget.mark_truncated()
                return False
            raise
    return True


def merge_producing_outcomes(
    engine: ExecutionEngine,
    outcomes: Sequence[TaskOutcome],
    registry: MetricsRegistry | None = None,
) -> list[Any]:
    """Deterministic ordered merge for tasks whose output is a list of
    produced items (tuples, accepted pairs…).

    Per morsel, in order: fold the worker's metrics into the session
    registry, reconcile its budget consumption, then re-produce its items
    through a parent-side :class:`~repro.governor.ProducerGuard` — so the
    ``output_tuples`` cap and the deadline cut the merged stream at
    exactly the point they would cut the serial loop.  Worker exhaustion
    under ``on_exhausted="raise"`` is re-raised as the same subclass
    after earlier morsels have been merged and charged.
    """
    if registry is None:
        registry = current_registry()
    budget = current_budget()
    guard = ProducerGuard()
    merged: list[Any] = []
    stopped = False
    pending_failure = None
    for outcome in outcomes:
        # Always fold metrics — the work happened even past a truncation
        # point, and EXPLAIN ANALYZE should account for it.
        engine.merge_counters(registry, outcome)
        if stopped or pending_failure is not None:
            continue
        if outcome.failure is not None:
            if budget is not None and budget.on_exhausted == "partial":
                # Defensive: partial-mode workers absorb exhaustion at
                # their producer guards, but an unguarded raise still
                # degrades to truncation rather than erroring.
                budget.mark_truncated()
                stopped = True
            else:
                pending_failure = outcome.failure
            continue
        if not reconcile_consumed(budget, outcome.consumed):
            stopped = True
            # The worker's own results still merge below in serial-order
            # fidelity?  No: exhaustion during this morsel's work means
            # serial evaluation never produced its rows.  Stop here.
            continue
        for item in outcome.output:
            if not guard.start_row() or not guard.produced():
                stopped = True
                break
            merged.append(item)
        if outcome.truncated:
            # The worker's sub-budget truncated (partial mode): its output
            # is a sound prefix; nothing after it may be produced.
            if budget is not None:
                budget.mark_truncated()
            stopped = True
    if pending_failure is not None:
        raise rebuild_exhaustion(pending_failure)
    return merged


# -- active-engine stack -------------------------------------------------------


#: Per-thread active-engine stack (mirrors the budget/registry/columnar
#: stacks; one shared implementation in :mod:`repro._concurrency`).
_STACK = ThreadLocalStack()


def current_engine() -> ExecutionEngine | None:
    """The engine governing the current evaluation, if any."""
    stack = _STACK.items
    return stack[-1] if stack else None


def reset_active_engines() -> None:
    """Clear this thread's engine stack (worker-pool plumbing: a forked
    worker inherits the parent's stack and must never re-enter it)."""
    _STACK.clear()


def parallel_engine(n_items: int) -> ExecutionEngine | None:
    """The gate every parallelizable operator calls: the active engine,
    or ``None`` when the operator should run its serial loop.

    Serial is chosen when no engine is active (``workers=1`` sessions
    never activate one — zero overhead beyond this stack peek), when the
    input is too small to amortize dispatch, or when a partial-mode
    budget has already truncated (serial loops stop at their first guard
    check; dispatching would waste work and merge to nothing anyway).
    """
    stack = _STACK.items
    if not stack:
        return None
    engine = stack[-1]
    if n_items < engine.config.min_parallel_items:
        return None
    budget = current_budget()
    if budget is not None and budget.truncated:
        return None
    return engine


def run_parallel(
    engine: ExecutionEngine,
    fn: TaskFn,
    payload: Any,
    items: Sequence[Any],
    label: str = "",
) -> list[Any]:
    """Partition ``items`` into morsels, dispatch ``fn`` over them, and
    deterministically merge the produced outputs (see
    :func:`merge_producing_outcomes`)."""
    from .morsel import partition

    morsels = partition(items, engine.morsel_size(len(items)))
    outcomes = engine.map_morsels(fn, payload, morsels, label=label)
    return merge_producing_outcomes(engine, outcomes)
