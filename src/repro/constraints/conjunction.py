"""Conjunctions of linear constraint atoms: the "constraint tuple" core.

A :class:`Conjunction` is the formula φ(t) of a constraint tuple
(Definition 1 of the paper): a finite set of atoms whose conjunction
describes a (possibly unbounded) convex polyhedron over the mentioned
variables.  All the operations CQA needs live here: satisfiability,
entailment, projection (variable elimination), substitution, renaming,
redundancy-free simplification, and per-variable bounds.
"""

from __future__ import annotations

from fractions import Fraction
from operator import attrgetter
from typing import Iterable, Iterator, Mapping

from ..errors import ConstraintError
from ..rational import RationalLike
from . import elimination, solver
from .atoms import LinearConstraint
from .terms import LinearExpression

_SORT_KEY = attrgetter("sort_key")


class Conjunction:
    """An immutable conjunction of :class:`LinearConstraint` atoms.

    The empty conjunction is *true* (the whole space).  Ground-true atoms
    are dropped at construction; a ground-false atom collapses the
    conjunction to the canonical unsatisfiable one.  Atoms are interned
    (structurally equal conjunctions hold pointer-equal atom tuples) and
    canonically ordered by :attr:`LinearConstraint.sort_key`.
    Satisfiability routes through the layered solver front-end
    (:mod:`repro.constraints.solver`) and is cached per instance.
    """

    __slots__ = ("_atoms", "_satisfiable", "_hash", "_variables", "_summary", "_float_bounds")

    def __init__(self, atoms: Iterable[LinearConstraint] = ()):
        cleaned: list[LinearConstraint] = []
        seen: set[LinearConstraint] = set()
        unsat = False
        for atom in atoms:
            if not isinstance(atom, LinearConstraint):
                raise ConstraintError(f"expected a LinearConstraint, got {atom!r}")
            if atom.is_trivial:
                if not atom.truth_value():
                    unsat = True
                    break
                continue
            atom = solver.intern_atom(atom)
            if atom not in seen:
                seen.add(atom)
                cleaned.append(atom)
        if unsat:
            from .atoms import FALSE

            self._atoms: tuple[LinearConstraint, ...] = (FALSE,)
            self._satisfiable: bool | None = False
        else:
            cleaned.sort(key=_SORT_KEY)
            self._atoms = tuple(cleaned)
            self._satisfiable = True if not self._atoms else None
        self._hash: int | None = None
        self._variables: frozenset[str] | None = None
        self._summary: solver.IntervalSummary | None = None
        self._float_bounds: tuple[dict[str, tuple[float, float]], bool] | None = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def true(cls) -> "Conjunction":
        """The empty (always-true) conjunction."""
        return cls(())

    @classmethod
    def false(cls) -> "Conjunction":
        """The canonical unsatisfiable conjunction."""
        from .atoms import FALSE

        return cls((FALSE,))

    @classmethod
    def point(cls, assignment: Mapping[str, RationalLike]) -> "Conjunction":
        """The conjunction of equalities pinning each variable to a value —
        the constraint view of a traditional relational tuple (Example 1)."""
        from .atoms import eq

        return cls(eq(LinearExpression.variable(var), value) for var, value in assignment.items())

    @classmethod
    def box(
        cls,
        bounds: Mapping[str, tuple[RationalLike, RationalLike]],
    ) -> "Conjunction":
        """An axis-aligned closed box: ``{var: (low, high)}``."""
        from .atoms import ge, le

        atoms: list[LinearConstraint] = []
        for variable, (low, high) in bounds.items():
            v = LinearExpression.variable(variable)
            atoms.append(ge(v, low))
            atoms.append(le(v, high))
        return cls(atoms)

    # -- inspection --------------------------------------------------------

    @property
    def atoms(self) -> tuple[LinearConstraint, ...]:
        return self._atoms

    @property
    def variables(self) -> frozenset[str]:
        if self._variables is None:
            result: set[str] = set()
            for atom in self._atoms:
                result |= atom.variables
            self._variables = frozenset(result)
        return self._variables

    @property
    def is_true(self) -> bool:
        """Whether this is the empty (trivially true) conjunction."""
        return not self._atoms

    def interval_summary(self) -> solver.IntervalSummary:
        """The cached per-variable interval summary (one linear pass on
        first use).  Joins compare summaries to reject non-overlapping
        tuple pairs in O(d) without a satisfiability solve."""
        if self._summary is None:
            self._summary = solver.summarise(self._atoms)
        return self._summary

    def float_bounds(self) -> tuple[dict[str, tuple[float, float]], bool]:
        """``(per-variable widened float bounds, inconsistent)`` — the
        columnar export of :meth:`interval_summary` (cached; see
        :func:`repro.constraints.solver.float_bounds`).  Lower bounds are
        rounded down and upper bounds up, so each float interval contains
        the exact rational one."""
        cached = self._float_bounds
        if cached is None:
            summary = self.interval_summary()
            cached = (solver.float_bounds(summary), summary.inconsistent)
            self._float_bounds = cached
        return cached

    def is_satisfiable(self) -> bool:
        if self._satisfiable is None:
            self._satisfiable = solver.is_satisfiable(
                self._atoms, summary=self.interval_summary
            )
        return self._satisfiable

    def satisfied_by(self, assignment: Mapping[str, RationalLike]) -> bool:
        """Whether the point satisfies every atom (point membership)."""
        return all(atom.satisfied_by(assignment) for atom in self._atoms)

    def entails(self, other: "Conjunction | LinearConstraint") -> bool:
        """Whether every point of this conjunction satisfies ``other``.

        ``self ⊨ other`` iff ``self ∧ ¬a`` is unsatisfiable for every atom
        ``a`` of ``other`` (negation of an atom is a disjunction of at most
        two atoms, each checked separately).
        """
        if not self.is_satisfiable():
            return True
        other_atoms = (other,) if isinstance(other, LinearConstraint) else other.atoms
        for atom in other_atoms:
            for negated in atom.negate():
                if solver.is_satisfiable(self._atoms + (negated,)):
                    return False
        return True

    def equivalent(self, other: "Conjunction") -> bool:
        """Mutual entailment."""
        return self.entails(other) and other.entails(self)

    # -- combination and transformation -------------------------------------

    def conjoin(self, other: "Conjunction | LinearConstraint | Iterable[LinearConstraint]") -> "Conjunction":
        """The conjunction of this formula with more atoms."""
        if isinstance(other, LinearConstraint):
            extra: Iterable[LinearConstraint] = (other,)
        elif isinstance(other, Conjunction):
            extra = other.atoms
        else:
            extra = tuple(other)
        return Conjunction(self._atoms + tuple(extra))

    def project(self, keep: Iterable[str]) -> "Conjunction":
        """Project onto ``keep``: eliminate every other variable.

        This is the constraint-level core of CQA's π operator; the result
        describes exactly the geometric projection of the polyhedron.
        """
        keep_set = set(keep)
        to_remove = sorted(self.variables - keep_set)
        if not to_remove:
            return self
        return Conjunction(elimination.eliminate(self._atoms, to_remove))

    def eliminate(self, variables: Iterable[str]) -> "Conjunction":
        """Eliminate the given variables (dual of :meth:`project`)."""
        doomed = set(variables) & self.variables
        if not doomed:
            return self
        return Conjunction(elimination.eliminate(self._atoms, sorted(doomed)))

    def substitute(self, variable: str, replacement: LinearExpression) -> "Conjunction":
        return Conjunction(atom.substitute(variable, replacement) for atom in self._atoms)

    def rename(self, old: str, new: str) -> "Conjunction":
        if new in self.variables and old in self.variables:
            raise ConstraintError(f"cannot rename {old!r} to {new!r}: {new!r} already used")
        return Conjunction(atom.rename(old, new) for atom in self._atoms)

    def simplify(self) -> "Conjunction":
        """An equivalent conjunction without redundant atoms.

        An atom is redundant when the remaining atoms entail it.  One
        restart-free sweep suffices: removing a redundant atom preserves
        equivalence, and an atom found irredundant stays irredundant as
        later atoms are removed (a smaller conjunction entails less), so
        this is O(n) entailment checks instead of the quadratic
        restart-on-every-removal loop.
        """
        if not self.is_satisfiable():
            return Conjunction.false()
        kept = list(self._atoms)
        for atom in self._atoms:
            rest = [a for a in kept if a is not atom]
            if Conjunction(rest).entails(atom):
                kept = rest
        return Conjunction(kept)

    def bounds(self, variable: str) -> tuple[Fraction | None, bool, Fraction | None, bool]:
        """Tightest implied ``(lower, lower_strict, upper, upper_strict)``
        bounds on ``variable`` (``None`` = unbounded side)."""
        if not self.is_satisfiable():
            raise ConstraintError("an unsatisfiable conjunction bounds nothing")
        return elimination.variable_bounds(self._atoms, variable)

    # -- value semantics ---------------------------------------------------

    def __iter__(self) -> Iterator[LinearConstraint]:
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Conjunction):
            return NotImplemented
        return self._atoms == other._atoms

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._atoms)
        return self._hash

    def __repr__(self) -> str:
        return f"Conjunction({self})"

    def __str__(self) -> str:
        if not self._atoms:
            return "true"
        return " and ".join(str(atom) for atom in self._atoms)
