"""Rational linear constraint algebra: the substrate of CQA/CDB.

Public surface:

* :class:`LinearExpression` / :func:`var` — rational linear expressions.
* :class:`LinearConstraint`, :class:`Comparator` and the factories
  :func:`le`, :func:`lt`, :func:`ge`, :func:`gt`, :func:`eq` — atoms.
* :class:`Conjunction` — constraint-tuple formulas (convex polyhedra).
* :class:`DNFFormula` — relation formulas φ(R) in disjunctive normal form.
* :func:`parse_expression`, :func:`parse_constraints` — text input.
* :mod:`~repro.constraints.elimination` — Fourier–Motzkin projection.
* :mod:`~repro.constraints.simplex` — independent simplex feasibility.
* :mod:`~repro.constraints.solver` — the layered satisfiability front-end
  (interval pruning, atom interning, memo cache, adaptive dispatch).
"""

from . import solver
from .atoms import FALSE, TRUE, Comparator, LinearConstraint, eq, ge, gt, le, lt
from .conjunction import Conjunction
from .dnf import DNFFormula
from .independence import (
    decompose,
    has_variable_independence,
    independent_attributes,
    is_product,
)
from .parsing import parse_constraints, parse_expression
from .terms import LinearExpression, var

__all__ = [
    "Comparator",
    "Conjunction",
    "DNFFormula",
    "FALSE",
    "LinearConstraint",
    "LinearExpression",
    "TRUE",
    "decompose",
    "eq",
    "ge",
    "gt",
    "has_variable_independence",
    "independent_attributes",
    "is_product",
    "le",
    "lt",
    "parse_constraints",
    "parse_expression",
    "solver",
    "var",
]
