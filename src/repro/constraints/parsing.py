"""A small text parser for linear expressions and constraint conjunctions.

This gives tests, examples and the interactive user a compact way to write
constraints::

    parse_constraints("x + 2*y <= 5, 0 <= t < 10")

Chained comparisons expand into one atom per adjacent pair.  The syntax is
deliberately the numeric subset of the query language's condition syntax
(:mod:`repro.query`); string comparisons on relational attributes are a
query-level concern and are rejected here.
"""

from __future__ import annotations

import re
from typing import Iterator

from ..errors import ParseError
from .atoms import LinearConstraint, eq, ge, gt, le, lt
from .terms import LinearExpression

_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+(?:\.\d+)?(?:/\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|==|!=|[-+*/()<>=,])
  | (?P<ws>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)

_COMPARATORS = {"<=", "<", ">=", ">", "=", "=="}


def _tokenize(text: str) -> Iterator[tuple[str, str]]:
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        if kind == "ws":
            continue
        if kind == "bad":
            raise ParseError(f"unexpected character {match.group()!r} in {text!r}")
        yield kind, match.group()
    yield "end", ""


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self._text = text
        self._tokens = list(_tokenize(text))
        self._pos = 0

    def _peek(self) -> tuple[str, str]:
        return self._tokens[self._pos]

    def _advance(self) -> tuple[str, str]:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, value: str) -> None:
        kind, text = self._advance()
        if text != value:
            raise ParseError(f"expected {value!r} but found {text or 'end of input'!r} in {self._text!r}")

    # expr := term (('+'|'-') term)*
    def expression(self) -> LinearExpression:
        result = self.term()
        while self._peek()[1] in {"+", "-"}:
            op = self._advance()[1]
            rhs = self.term()
            result = result + rhs if op == "+" else result - rhs
        return result

    # term := factor (('*'|'/') factor)*
    def term(self) -> LinearExpression:
        result = self.factor()
        while self._peek()[1] in {"*", "/"}:
            op = self._advance()[1]
            rhs = self.factor()
            if op == "*":
                result = result * rhs  # raises ConstraintError if non-linear
            else:
                if not rhs.is_constant:
                    raise ParseError(f"division by a variable expression in {self._text!r}")
                result = result / rhs.constant
        return result

    # factor := NUMBER | NAME | '-' factor | '(' expr ')'
    def factor(self) -> LinearExpression:
        kind, text = self._advance()
        if kind == "number":
            return LinearExpression.constant_expr(text)
        if kind == "name":
            return LinearExpression.variable(text)
        if text == "-":
            return -self.factor()
        if text == "+":
            return self.factor()
        if text == "(":
            inner = self.expression()
            self._expect(")")
            return inner
        raise ParseError(f"expected a number, variable or '(' but found {text or 'end of input'!r} in {self._text!r}")

    # comparison := expr (CMP expr)+   (chained)
    def comparison(self) -> list[LinearConstraint]:
        left = self.expression()
        atoms: list[LinearConstraint] = []
        kind, text = self._peek()
        if text == "!=":
            raise ParseError(
                "'!=' is not a conjunctive linear constraint; express it as a "
                "union of two relations (see section 2.4 of the paper)"
            )
        if text not in _COMPARATORS:
            raise ParseError(f"expected a comparison operator after {left} in {self._text!r}")
        while self._peek()[1] in _COMPARATORS:
            op = self._advance()[1]
            right = self.expression()
            atoms.append(_make_atom(left, op, right))
            left = right
        return atoms

    def parse_expression(self) -> LinearExpression:
        result = self.expression()
        if self._peek()[0] != "end":
            raise ParseError(f"trailing input {self._peek()[1]!r} in {self._text!r}")
        return result

    def parse_constraints(self) -> list[LinearConstraint]:
        atoms = self.comparison()
        while self._peek()[1] == ",":
            self._advance()
            atoms.extend(self.comparison())
        if self._peek()[0] != "end":
            raise ParseError(f"trailing input {self._peek()[1]!r} in {self._text!r}")
        return atoms


def _make_atom(left: LinearExpression, op: str, right: LinearExpression) -> LinearConstraint:
    if op == "<=":
        return le(left, right)
    if op == "<":
        return lt(left, right)
    if op == ">=":
        return ge(left, right)
    if op == ">":
        return gt(left, right)
    return eq(left, right)


def parse_expression(text: str) -> LinearExpression:
    """Parse a rational linear expression such as ``"x + 2*y - 1/3"``."""
    return _Parser(text).parse_expression()


def parse_constraints(text: str) -> list[LinearConstraint]:
    """Parse a comma-separated conjunction of (possibly chained)
    comparisons, e.g. ``"0 <= x < 10, x + y = 2.5"``."""
    return _Parser(text).parse_constraints()
