"""An exact rational simplex solver for linear constraint feasibility.

Fourier–Motzkin elimination (:mod:`repro.constraints.elimination`) is the
paper-faithful projection engine, but as a pure *satisfiability* oracle it
can blow up.  This module provides an independent decision procedure —
two-phase primal simplex over :class:`~fractions.Fraction` with Bland's rule
(so it terminates without any numerical tolerance) — used to cross-check
elimination in the property-test suite and compared against it in
``benchmarks/bench_constraint_solvers.py``.

Strict inequalities use the standard ε-trick: every ``e < 0`` atom becomes
``e + ε ≤ 0`` and we maximise ε (capped at 1).  The system is satisfiable
over the rationals iff the optimum is positive.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from ..governor.budget import charge as budget_charge
from ..governor.budget import checkpoint as budget_checkpoint
from ..obs import SIMPLEX_CALLS, record
from .atoms import Comparator, LinearConstraint

_ZERO = Fraction(0)
_ONE = Fraction(1)


@dataclass(frozen=True)
class FeasibilityResult:
    """Outcome of a feasibility check.

    ``witness`` maps every variable of the input system to a rational value
    satisfying all atoms whenever ``feasible`` is true.
    """

    feasible: bool
    witness: Mapping[str, Fraction] | None = None


class _Tableau:
    """A dense simplex tableau with exact rational entries.

    Rows are stored as coefficient lists over the column space; the basis
    maps each row to its basic column.  Bland's rule is used for both the
    entering and the leaving choice, guaranteeing termination.
    """

    def __init__(self, num_cols: int):
        self.num_cols = num_cols
        self.rows: list[list[Fraction]] = []
        self.rhs: list[Fraction] = []
        self.basis: list[int] = []

    def add_row(self, coeffs: Sequence[Fraction], rhs: Fraction, basic: int) -> None:
        row = list(coeffs) + [_ZERO] * (self.num_cols - len(coeffs))
        self.rows.append(row)
        self.rhs.append(rhs)
        self.basis.append(basic)

    def add_columns(self, count: int) -> int:
        """Append ``count`` zero columns; return the index of the first."""
        first = self.num_cols
        self.num_cols += count
        for row in self.rows:
            row.extend([_ZERO] * count)
        return first

    def pivot(self, row_idx: int, col: int) -> None:
        pivot_row = self.rows[row_idx]
        factor = pivot_row[col]
        inv = _ONE / factor
        self.rows[row_idx] = [value * inv for value in pivot_row]
        self.rhs[row_idx] *= inv
        pivot_row = self.rows[row_idx]
        for i, row in enumerate(self.rows):
            if i == row_idx:
                continue
            coeff = row[col]
            if coeff == 0:
                continue
            self.rows[i] = [value - coeff * pivot_row[j] for j, value in enumerate(row)]
            self.rhs[i] -= coeff * self.rhs[row_idx]
        self.basis[row_idx] = col

    def minimise(
        self, objective: Sequence[Fraction], forbidden: frozenset[int] | None = None
    ) -> Fraction:
        """Minimise ``objective · x`` from the current basic feasible point.

        Columns in ``forbidden`` never enter the basis (used to keep retired
        artificial variables out).  Returns the optimal objective value; the
        objective here is always bounded below (phase-1 cost ≥ 0, phase-2
        maximises a variable explicitly capped by a row).
        """
        if forbidden is None:
            forbidden = frozenset()
        obj = list(objective) + [_ZERO] * (self.num_cols - len(objective))
        # Reduced costs: subtract basic rows from the objective row.
        value = _ZERO
        for i, basic in enumerate(self.basis):
            coeff = obj[basic]
            if coeff == 0:
                continue
            row = self.rows[i]
            obj = [o - coeff * row[j] for j, o in enumerate(obj)]
            value -= coeff * self.rhs[i]
        while True:
            # One simplex pivot ≈ one Fourier–Motzkin step of work: charge
            # the same solver budget so governed queries are bounded
            # whichever backend the adaptive dispatcher picked.
            budget_checkpoint()
            budget_charge("solver_steps", 1)
            entering = -1
            for col in range(self.num_cols):
                if col in forbidden:
                    continue
                if obj[col] < 0:
                    entering = col
                    break
            if entering < 0:
                return -value
            leaving = -1
            best_ratio: Fraction | None = None
            for i, row in enumerate(self.rows):
                coeff = row[entering]
                if coeff > 0:
                    ratio = self.rhs[i] / coeff
                    if (
                        best_ratio is None
                        or ratio < best_ratio
                        or (ratio == best_ratio and self.basis[i] < self.basis[leaving])
                    ):
                        best_ratio = ratio
                        leaving = i
            if leaving < 0:
                raise ArithmeticError("objective unbounded; feasibility objectives never are")
            coeff = obj[entering]
            self.pivot(leaving, entering)
            row = self.rows[leaving]
            obj = [o - coeff * row[j] for j, o in enumerate(obj)]
            value -= coeff * self.rhs[leaving]

    def column_value(self, col: int) -> Fraction:
        for i, basic in enumerate(self.basis):
            if basic == col:
                return self.rhs[i]
        return _ZERO


def find_rational_solution(atoms: Iterable[LinearConstraint]) -> FeasibilityResult:
    """Decide satisfiability of a conjunction of atoms; produce a witness.

    Ground atoms are decided directly; an unsatisfiable ground atom makes
    the whole system infeasible regardless of the rest.
    """
    record(SIMPLEX_CALLS)
    materialised: list[LinearConstraint] = []
    for atom in atoms:
        if atom.is_trivial:
            if not atom.truth_value():
                return FeasibilityResult(False)
            continue
        materialised.append(atom)
    variables = sorted({v for atom in materialised for v in atom.variables})
    if not materialised:
        return FeasibilityResult(True, {v: _ZERO for v in variables})

    has_strict = any(a.comparator is Comparator.LT for a in materialised)
    # Column layout: for each free variable v, a nonnegative pair (v+, v-);
    # then ε (if needed); slack and artificial columns are appended per row.
    var_cols = {v: 2 * i for i, v in enumerate(variables)}
    eps_col = 2 * len(variables) if has_strict else -1
    first_slack = 2 * len(variables) + (1 if has_strict else 0)

    # Build raw rows (standard-form equalities with nonnegative rhs).
    raw_rows: list[tuple[list[Fraction], Fraction, bool]] = []  # (coeffs, rhs, needs_slack)
    for atom in materialised:
        coeffs = [_ZERO] * first_slack
        for v, c in atom.expression.coefficients.items():
            coeffs[var_cols[v]] += c
            coeffs[var_cols[v] + 1] -= c
        rhs = -atom.expression.constant
        if atom.comparator is Comparator.LT and eps_col >= 0:
            coeffs[eps_col] += _ONE
        needs_slack = atom.comparator is not Comparator.EQ
        raw_rows.append((coeffs, rhs, needs_slack))
    if has_strict:
        cap = [_ZERO] * first_slack
        cap[eps_col] = _ONE
        raw_rows.append((cap, _ONE, True))  # ε ≤ 1 keeps phase 2 bounded

    num_slacks = sum(1 for _, _, s in raw_rows if s)
    tableau = _Tableau(first_slack + num_slacks)
    slack_idx = first_slack
    pending: list[tuple[list[Fraction], Fraction, int]] = []  # rows needing artificials
    for coeffs, rhs, needs_slack in raw_rows:
        coeffs = coeffs + [_ZERO] * num_slacks
        slack_col = -1
        if needs_slack:
            coeffs[slack_idx] = _ONE
            slack_col = slack_idx
            slack_idx += 1
        if rhs < 0:
            coeffs = [-c for c in coeffs]
            rhs = -rhs
            slack_col = -1  # slack coefficient is now -1: not a valid basis
        if slack_col >= 0:
            tableau.add_row(coeffs, rhs, slack_col)
        else:
            pending.append((coeffs, rhs, -1))

    forbidden: frozenset[int] = frozenset()
    if pending:
        first_artificial = tableau.num_cols + 0
        artificial_cols = []
        # Temporarily extend existing rows, then add pending rows with their
        # artificial basic columns.
        base = tableau.add_columns(len(pending))
        for offset, (coeffs, rhs, _) in enumerate(pending):
            col = base + offset
            coeffs = coeffs + [_ZERO] * len(pending)
            coeffs[col] = _ONE
            tableau.add_row(coeffs, rhs, col)
            artificial_cols.append(col)
        phase1 = [_ZERO] * tableau.num_cols
        for col in artificial_cols:
            phase1[col] = _ONE
        if tableau.minimise(phase1) != 0:
            return FeasibilityResult(False)
        # Pivot any artificial still (degenerately) basic out of the basis.
        for i, basic in enumerate(tableau.basis):
            if basic >= first_artificial:
                pivot_col = next(
                    (
                        c
                        for c in range(first_artificial)
                        if tableau.rows[i][c] != 0
                    ),
                    -1,
                )
                if pivot_col >= 0:
                    tableau.pivot(i, pivot_col)
        forbidden = frozenset(artificial_cols)

    if has_strict:
        objective = [_ZERO] * tableau.num_cols
        objective[eps_col] = -_ONE  # maximise ε == minimise -ε
        best = tableau.minimise(objective, forbidden)
        if -best <= 0:
            return FeasibilityResult(False)

    witness = {
        v: tableau.column_value(col) - tableau.column_value(col + 1)
        for v, col in var_cols.items()
    }
    return FeasibilityResult(True, witness)


def is_satisfiable(atoms: Iterable[LinearConstraint]) -> bool:
    """Simplex-backed satisfiability (same contract as
    :func:`repro.constraints.elimination.is_satisfiable`)."""
    return find_rational_solution(atoms).feasible
