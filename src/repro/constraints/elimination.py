"""Variable elimination for conjunctions of rational linear constraints.

This is the engine behind CQA's *project* operator and all satisfiability
and entailment checks.  Equalities are eliminated by Gaussian substitution;
inequalities by Fourier–Motzkin combination of lower and upper bounds, with
the standard strictness rule (a combination is strict iff either side is).

Fourier–Motzkin is worst-case exponential in the number of eliminated
variables, which is acceptable here: constraint tuples in CQA/CDB have small
arity (spatiotemporal data is 2–4 dimensional), exactly the regime the paper
targets.  Redundancy elimination between steps keeps intermediate systems
small in practice.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from ..governor.budget import charge as budget_charge
from ..governor.budget import checkpoint as budget_checkpoint
from ..obs import ELIMINATE_CALLS, FOURIER_MOTZKIN_STEPS, SATISFIABILITY_CHECKS, record
from .atoms import Comparator, LinearConstraint, le, lt
from .terms import LinearExpression

#: Sentinel result for an unsatisfiable system: a single ground-false atom.
_FALSE = lt(0, 0)


def solve_equality_for(atom: LinearConstraint, variable: str) -> LinearExpression:
    """Solve the equality ``atom`` for ``variable``, returning the
    expression it equals.  ``atom`` must be an equality mentioning it."""
    if atom.comparator is not Comparator.EQ or variable not in atom.variables:
        raise ValueError(f"{atom} is not an equality over {variable!r}")
    coeff = atom.expression.coefficient(variable)
    rest = atom.expression - LinearExpression({variable: coeff})
    return rest * (Fraction(-1) / coeff)


def _clean(atoms: Iterable[LinearConstraint]) -> list[LinearConstraint] | None:
    """Dedupe and drop ground-true atoms; return ``None`` when any atom is
    ground false (unsatisfiable system)."""
    seen: set[LinearConstraint] = set()
    result: list[LinearConstraint] = []
    for atom in atoms:
        if atom.is_trivial:
            if not atom.truth_value():
                return None
            continue
        if atom not in seen:
            seen.add(atom)
            result.append(atom)
    return result


def fourier_motzkin_step(atoms: Sequence[LinearConstraint], variable: str) -> list[LinearConstraint]:
    """Eliminate ``variable`` from a system of *inequality* atoms.

    Any equality mentioning the variable must have been substituted away
    first (see :func:`eliminate`); equalities not mentioning it pass through.
    The returned system may contain ground atoms — callers should
    :func:`_clean` it.
    """
    record(FOURIER_MOTZKIN_STEPS)
    budget_checkpoint()
    lowers: list[tuple[LinearExpression, bool]] = []  # (bound, strict): variable >(=) bound
    uppers: list[tuple[LinearExpression, bool]] = []  # (bound, strict): variable <(=) bound
    others: list[LinearConstraint] = []
    for atom in atoms:
        coeff = atom.expression.coefficient(variable)
        if coeff == 0:
            others.append(atom)
            continue
        if atom.comparator is Comparator.EQ:
            raise ValueError(
                f"equality {atom} still mentions {variable!r}; substitute equalities first"
            )
        rest = atom.expression - LinearExpression({variable: coeff})
        bound = rest * (Fraction(-1) / coeff)
        if coeff > 0:  # coeff*v + rest <= 0  =>  v <= bound
            uppers.append((bound, atom.comparator.is_strict))
        else:  # v >= bound
            lowers.append((bound, atom.comparator.is_strict))
    # The step's cost — and the source of FM's exponential worst case — is
    # the lower×upper cross product; charge it against the solver budget
    # *before* building it so an explosive step is cancelled up front.
    budget_charge("solver_steps", 1 + len(lowers) * len(uppers))
    for low, low_strict in lowers:
        for up, up_strict in uppers:
            if low_strict or up_strict:
                others.append(lt(low, up))
            else:
                others.append(le(low, up))
    return others


def eliminate(
    atoms: Iterable[LinearConstraint],
    variables: Iterable[str],
) -> list[LinearConstraint]:
    """Eliminate ``variables`` from the conjunction ``atoms``.

    Returns an equivalent system (w.r.t. the remaining variables) that does
    not mention any eliminated variable.  An unsatisfiable input yields the
    single ground-false atom ``[0 < 0]``.
    """
    record(ELIMINATE_CALLS)
    current = _clean(atoms)
    if current is None:
        return [_FALSE]
    remaining = [v for v in dict.fromkeys(variables)]
    while remaining:
        # Eliminate the variable occurring in the fewest atoms first: this
        # is the classic min-degree heuristic and substantially curbs the
        # quadratic growth of each Fourier-Motzkin step.
        counts = {
            v: sum(1 for a in current if v in a.variables) for v in remaining
        }
        variable = min(remaining, key=lambda v: (counts[v], v))
        remaining.remove(variable)
        if counts[variable] == 0:
            continue
        equality = next(
            (
                a
                for a in current
                if a.comparator is Comparator.EQ and variable in a.variables
            ),
            None,
        )
        if equality is not None:
            replacement = solve_equality_for(equality, variable)
            budget_charge("solver_steps", 1 + len(current))
            substituted = [
                a.substitute(variable, replacement) for a in current if a is not equality
            ]
            current = _clean(substituted)
        else:
            current = _clean(fourier_motzkin_step(current, variable))
        if current is None:
            return [_FALSE]
    return current


def is_satisfiable(atoms: Iterable[LinearConstraint]) -> bool:
    """Whether the conjunction of ``atoms`` has a rational solution."""
    record(SATISFIABILITY_CHECKS)
    atoms = list(atoms)
    variables: set[str] = set()
    for atom in atoms:
        variables |= atom.variables
    result = eliminate(atoms, sorted(variables))
    return all(a.truth_value() for a in result if a.is_trivial) and _FALSE not in result


def variable_bounds(
    atoms: Iterable[LinearConstraint], variable: str
) -> tuple[Fraction | None, bool, Fraction | None, bool]:
    """The tightest bounds implied on ``variable``.

    Returns ``(lower, lower_strict, upper, upper_strict)`` with ``None`` for
    an unbounded side.  Raises :class:`ValueError` when the system is
    unsatisfiable (no bounds exist).
    """
    atoms = list(atoms)
    other_vars = set()
    for atom in atoms:
        other_vars |= atom.variables
    other_vars.discard(variable)
    reduced = eliminate(atoms, sorted(other_vars))
    # ``eliminate`` already cleans the system: the only possible trivial
    # atom is the ground-false sentinel, and every other atom mentions
    # exactly ``variable``.  Satisfiability of the reduced 1-D system is
    # therefore decided right here by the bound sweep (the interval is
    # empty iff the system is unsatisfiable) — re-running elimination on
    # the already-reduced system would be pure redundant work.
    lower: Fraction | None = None
    lower_strict = False
    upper: Fraction | None = None
    upper_strict = False
    for atom in reduced:
        if atom.is_trivial:
            if not atom.truth_value():
                raise ValueError("cannot bound a variable of an unsatisfiable system")
            continue
        coeff = atom.expression.coefficient(variable)
        bound = -atom.expression.constant / coeff
        if atom.comparator is Comparator.EQ:
            # An equality contributes a non-strict bound on both sides; an
            # existing *strict* bound at the same value is tighter and must
            # be kept (replacing it would hide the emptiness of e.g.
            # ``x < 1 ∧ x = 1``).
            if lower is None or bound > lower:
                lower, lower_strict = bound, False
            if upper is None or bound < upper:
                upper, upper_strict = bound, False
            continue
        strict = atom.comparator.is_strict
        if coeff > 0:  # upper bound
            if upper is None or bound < upper or (bound == upper and strict):
                upper, upper_strict = bound, strict
        else:  # lower bound
            if lower is None or bound > lower or (bound == lower and strict):
                lower, lower_strict = bound, strict
    if (
        lower is not None
        and upper is not None
        and (lower > upper or (lower == upper and (lower_strict or upper_strict)))
    ):
        raise ValueError("cannot bound a variable of an unsatisfiable system")
    return lower, lower_strict, upper, upper_strict
