"""Disjunctive-normal-form formulas over linear constraint atoms.

φ(R), the formula of a constraint relation (Definition 2), is a DNF of
constraints: a disjunction of conjunctions.  This module provides the
formula-level operations CQA's set operators reduce to — union, conjunction
(distribution), complement, satisfiability, entailment and equivalence —
independent of any schema or tuple bookkeeping.

Complementation is the expensive one: ¬(C₁ ∨ … ∨ Cₙ) = ¬C₁ ∧ … ∧ ¬Cₙ where
each ¬Cᵢ is a disjunction of negated atoms; distributing the product back
into DNF is exponential in n.  Unsatisfiable branches are pruned as they are
built, which keeps the practical blow-up modest for the small per-relation
formulas CQA difference works on.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..governor.budget import charge as budget_charge
from ..governor.budget import checkpoint as budget_checkpoint
from ..rational import RationalLike
from .atoms import LinearConstraint
from .conjunction import Conjunction


class DNFFormula:
    """An immutable disjunction of :class:`Conjunction` disjuncts.

    The empty disjunction is *false*.  Unsatisfiable disjuncts are dropped
    at construction, so ``bool(formula)`` doubles as a satisfiability test.
    """

    __slots__ = ("_disjuncts",)

    def __init__(self, disjuncts: Iterable[Conjunction] = ()):
        kept: list[Conjunction] = []
        seen: set[Conjunction] = set()
        for disjunct in disjuncts:
            if not disjunct.is_satisfiable():
                continue
            if disjunct not in seen:
                seen.add(disjunct)
                kept.append(disjunct)
        self._disjuncts: tuple[Conjunction, ...] = tuple(kept)

    # -- constructors ------------------------------------------------------

    @classmethod
    def false(cls) -> "DNFFormula":
        return cls(())

    @classmethod
    def true(cls) -> "DNFFormula":
        return cls((Conjunction.true(),))

    # -- inspection --------------------------------------------------------

    @property
    def disjuncts(self) -> tuple[Conjunction, ...]:
        return self._disjuncts

    @property
    def variables(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for disjunct in self._disjuncts:
            result |= disjunct.variables
        return result

    def is_satisfiable(self) -> bool:
        return bool(self._disjuncts)

    def satisfied_by(self, assignment: Mapping[str, RationalLike]) -> bool:
        return any(d.satisfied_by(assignment) for d in self._disjuncts)

    # -- connectives -------------------------------------------------------

    def union(self, other: "DNFFormula") -> "DNFFormula":
        return DNFFormula(self._disjuncts + other._disjuncts)

    def conjoin(self, other: "DNFFormula | Conjunction | LinearConstraint") -> "DNFFormula":
        """Distribute a conjunction over the disjuncts."""
        if isinstance(other, (Conjunction, LinearConstraint)):
            budget_charge("dnf_clauses", len(self._disjuncts))
            return DNFFormula(d.conjoin(other) for d in self._disjuncts)
        # The distributed product is |self| × |other| clauses; charge the
        # DNF budget before building it.
        budget_charge("dnf_clauses", len(self._disjuncts) * len(other._disjuncts))
        return DNFFormula(
            mine.conjoin(theirs) for mine in self._disjuncts for theirs in other._disjuncts
        )

    def complement(self) -> "DNFFormula":
        """The negation, again in DNF.

        Each branch of the result picks one negated atom per disjunct; the
        product is built incrementally with unsatisfiable partial branches
        pruned early.
        """
        if not self._disjuncts:
            return DNFFormula.true()
        branches: list[Conjunction] = [Conjunction.true()]
        for disjunct in self._disjuncts:
            if disjunct.is_true:
                return DNFFormula.false()
            # Atom negations: list of alternatives (each itself one atom).
            alternatives: list[LinearConstraint] = []
            for atom in disjunct.atoms:
                alternatives.extend(atom.negate())
            # Each round multiplies the open branches by the alternatives;
            # this is the exponential frontier of complementation, so it is
            # charged (and deadline-checked) before being built.
            budget_checkpoint()
            budget_charge("dnf_clauses", len(branches) * len(alternatives))
            new_branches: list[Conjunction] = []
            for branch in branches:
                for alt in alternatives:
                    candidate = branch.conjoin(alt)
                    if candidate.is_satisfiable():
                        new_branches.append(candidate)
            if not new_branches:
                return DNFFormula.false()
            branches = new_branches
        return DNFFormula(branches)

    def difference(self, other: "DNFFormula") -> "DNFFormula":
        return self.conjoin(other.complement())

    def project(self, keep: Iterable[str]) -> "DNFFormula":
        keep = tuple(keep)
        return DNFFormula(d.project(keep) for d in self._disjuncts)

    # -- comparisons -------------------------------------------------------

    def entails(self, other: "DNFFormula") -> bool:
        """Whether every satisfying point of ``self`` satisfies ``other``."""
        return not self.difference(other).is_satisfiable()

    def equivalent(self, other: "DNFFormula") -> bool:
        """Semantic equivalence (Definition 2: equivalent relations have the
        same semantics)."""
        return self.entails(other) and other.entails(self)

    def simplify(self) -> "DNFFormula":
        """Drop disjuncts absorbed by (entailed by) another disjunct and
        simplify each survivor."""
        survivors: list[Conjunction] = []
        disjuncts = [d.simplify() for d in self._disjuncts]
        for i, candidate in enumerate(disjuncts):
            absorbed = False
            for j, other in enumerate(disjuncts):
                if i == j:
                    continue
                if candidate.entails(other) and not (other.entails(candidate) and j > i):
                    absorbed = True
                    break
            if not absorbed:
                survivors.append(candidate)
        return DNFFormula(survivors)

    # -- value semantics ---------------------------------------------------

    def __iter__(self) -> Iterator[Conjunction]:
        return iter(self._disjuncts)

    def __len__(self) -> int:
        return len(self._disjuncts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DNFFormula):
            return NotImplemented
        return self._disjuncts == other._disjuncts

    def __hash__(self) -> int:
        return hash(self._disjuncts)

    def __repr__(self) -> str:
        return f"DNFFormula({self})"

    def __str__(self) -> str:
        if not self._disjuncts:
            return "false"
        return " or ".join(f"({d})" for d in self._disjuncts)
