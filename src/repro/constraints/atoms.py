"""Constraint atoms: single rational linear constraints.

An atom is ``expression ⊙ 0`` with ``⊙ ∈ {≤, <, =}``; the richer surface
forms (``lhs ≥ rhs``, ``lhs > rhs``, two-sided comparisons) are normalised
into this shape at construction.  Keeping only three comparators makes the
Fourier–Motzkin elimination and negation rules small and easy to verify.

Atoms are canonicalised: coefficients are scaled to coprime integers with a
deterministic sign convention, so syntactically different spellings of the
same constraint (``2x <= 4`` and ``x <= 2``) compare and hash equal.
"""

from __future__ import annotations

import enum
from fractions import Fraction
from math import gcd
from typing import Mapping

from ..errors import ConstraintError
from ..rational import RationalLike, format_rational
from .terms import LinearExpression


class Comparator(enum.Enum):
    """The three normalised comparison operators of a constraint atom."""

    LE = "<="
    LT = "<"
    EQ = "="

    @property
    def is_strict(self) -> bool:
        return self is Comparator.LT


class LinearConstraint:
    """An immutable atom ``expression ⊙ 0``.

    Use the module-level factories (:func:`le`, :func:`lt`, :func:`eq`,
    :func:`ge`, :func:`gt`) or the comparison operators on
    :class:`~repro.constraints.terms.LinearExpression` rather than calling
    the constructor with a pre-moved expression.
    """

    __slots__ = ("_expression", "_comparator", "_hash", "_sort_key")

    def __init__(self, expression: LinearExpression, comparator: Comparator):
        if not isinstance(comparator, Comparator):
            raise ConstraintError(f"invalid comparator {comparator!r}")
        self._expression = _canonicalise(expression, comparator)
        self._comparator = comparator
        self._hash: int | None = None
        self._sort_key: tuple | None = None

    # -- inspection --------------------------------------------------------

    @property
    def expression(self) -> LinearExpression:
        """The canonicalised left-hand side (the atom is ``expression ⊙ 0``)."""
        return self._expression

    @property
    def comparator(self) -> Comparator:
        return self._comparator

    @property
    def variables(self) -> frozenset[str]:
        return self._expression.variables

    @property
    def is_trivial(self) -> bool:
        """True when the atom mentions no variables (ground truth/falsity)."""
        return self._expression.is_constant

    def truth_value(self) -> bool:
        """The truth value of a trivial atom; raises otherwise."""
        if not self.is_trivial:
            raise ConstraintError(f"{self} is not a ground constraint")
        value = self._expression.constant
        if self._comparator is Comparator.LE:
            return value <= 0
        if self._comparator is Comparator.LT:
            return value < 0
        return value == 0

    def satisfied_by(self, assignment: Mapping[str, RationalLike]) -> bool:
        """Whether the point ``assignment`` satisfies the atom."""
        value = self._expression.evaluate(assignment)
        if self._comparator is Comparator.LE:
            return value <= 0
        if self._comparator is Comparator.LT:
            return value < 0
        return value == 0

    # -- transformation ----------------------------------------------------

    def substitute(self, variable: str, replacement: LinearExpression) -> "LinearConstraint":
        return LinearConstraint(self._expression.substitute(variable, replacement), self._comparator)

    def rename(self, old: str, new: str) -> "LinearConstraint":
        return LinearConstraint(self._expression.rename(old, new), self._comparator)

    def negate(self) -> tuple["LinearConstraint", ...]:
        """Atoms whose *disjunction* is the negation of this atom.

        ``¬(e ≤ 0)`` is ``-e < 0``; ``¬(e < 0)`` is ``-e ≤ 0``;
        ``¬(e = 0)`` is ``e < 0 ∨ -e < 0`` (two atoms).
        """
        e = self._expression
        if self._comparator is Comparator.LE:
            return (LinearConstraint(-e, Comparator.LT),)
        if self._comparator is Comparator.LT:
            return (LinearConstraint(-e, Comparator.LE),)
        return (
            LinearConstraint(e, Comparator.LT),
            LinearConstraint(-e, Comparator.LT),
        )

    def split_equality(self) -> tuple["LinearConstraint", ...]:
        """An equality as the pair of opposing ``≤`` atoms; inequalities
        return themselves."""
        if self._comparator is not Comparator.EQ:
            return (self,)
        return (
            LinearConstraint(self._expression, Comparator.LE),
            LinearConstraint(-self._expression, Comparator.LE),
        )

    # -- value semantics ---------------------------------------------------

    @property
    def sort_key(self) -> tuple:
        """A cached, totally ordered canonical key.

        Built from the canonicalised coefficient items, the constant and
        the comparator, so sorting atoms by it is deterministic without
        rendering strings (construction-time ``sorted(key=str)`` was pure
        overhead on the hot path) and groups atoms over the same
        expression together.
        """
        if self._sort_key is None:
            coeffs, constant = self._expression._key()
            self._sort_key = (coeffs, constant, self._comparator.value)
        return self._sort_key

    def _key(self) -> tuple:
        return (self._expression, self._comparator)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearConstraint):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    def __repr__(self) -> str:
        return f"LinearConstraint({self})"

    def __str__(self) -> str:
        # Render with positive terms on the left for readability:
        # x - y <= 0 prints as "x - y <= 0" but x <= 3 prints naturally.
        coeffs = self._expression.coefficients
        constant = self._expression.constant
        lhs = LinearExpression(coeffs)
        if constant == 0:
            return f"{lhs} {self._comparator.value} 0"
        return f"{lhs} {self._comparator.value} {format_rational(-constant)}"


def _canonicalise(expression: LinearExpression, comparator: Comparator) -> LinearExpression:
    """Scale to coprime integer coefficients with a deterministic sign.

    Inequalities may only be scaled by *positive* rationals; equalities may
    additionally be negated, and we fix the sign so the lexicographically
    first variable has a positive coefficient.
    """
    coeffs = expression.coefficients
    if not coeffs:
        # Ground atom: normalise the constant's magnitude to 0 or +/-1 for
        # inequalities is unnecessary; keep as-is for faithful printing.
        return expression
    denominators = [c.denominator for c in coeffs.values()] + [expression.constant.denominator]
    lcm = 1
    for d in denominators:
        lcm = lcm * d // gcd(lcm, d)
    numerators = [abs(c.numerator * lcm // c.denominator) for c in coeffs.values()]
    if expression.constant != 0:
        numerators.append(abs(expression.constant.numerator * lcm // expression.constant.denominator))
    divisor = 0
    for n in numerators:
        divisor = gcd(divisor, n)
    scale = Fraction(lcm, divisor if divisor else 1)
    if comparator is Comparator.EQ:
        first_var = min(coeffs)
        if coeffs[first_var] < 0:
            scale = -scale
    return expression * scale


# -- factories -------------------------------------------------------------


def le(lhs: LinearExpression | RationalLike, rhs: LinearExpression | RationalLike) -> LinearConstraint:
    """The atom ``lhs ≤ rhs``."""
    return LinearConstraint(LinearExpression.coerce(lhs) - LinearExpression.coerce(rhs), Comparator.LE)


def lt(lhs: LinearExpression | RationalLike, rhs: LinearExpression | RationalLike) -> LinearConstraint:
    """The atom ``lhs < rhs``."""
    return LinearConstraint(LinearExpression.coerce(lhs) - LinearExpression.coerce(rhs), Comparator.LT)


def ge(lhs: LinearExpression | RationalLike, rhs: LinearExpression | RationalLike) -> LinearConstraint:
    """The atom ``lhs ≥ rhs`` (normalised to ``rhs ≤ lhs``)."""
    return le(rhs, lhs)


def gt(lhs: LinearExpression | RationalLike, rhs: LinearExpression | RationalLike) -> LinearConstraint:
    """The atom ``lhs > rhs`` (normalised to ``rhs < lhs``)."""
    return lt(rhs, lhs)


def eq(lhs: LinearExpression | RationalLike, rhs: LinearExpression | RationalLike) -> LinearConstraint:
    """The atom ``lhs = rhs``."""
    return LinearConstraint(LinearExpression.coerce(lhs) - LinearExpression.coerce(rhs), Comparator.EQ)


#: Ground atoms for truth and falsity, useful as neutral elements.
TRUE = le(0, 0)
FALSE = lt(0, 0)
