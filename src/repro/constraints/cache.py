"""Interning and memoization primitives for the layered solver.

Two small, dependency-free data structures used by
:mod:`repro.constraints.solver` and :class:`~repro.constraints.Conjunction`:

* :class:`InternTable` — a bounded atom intern table.  Every atom that
  passes through :class:`Conjunction` construction is replaced by the
  first-seen structurally equal instance, so structurally equal
  conjunctions hold *pointer-equal* atom tuples.  Tuple equality in
  CPython short-circuits on identity per element, which makes the memo
  cache's key comparisons O(n) pointer tests, and the atoms' cached
  hashes are computed once per distinct atom instead of once per copy.

* :class:`LRUCache` — a bounded least-recently-used mapping used as the
  satisfiability memo cache.  Keys are canonical atom tuples; values are
  booleans.  Eviction is strict LRU over an insertion-ordered dict.

Both tables are *pure accelerators*: clearing them at any point is always
safe (atom equality remains value-based; cached answers are pure facts
about the keyed formula).

Both are thread-safe: the parallel execution engine's thread-pool
fallback shares the process-wide solver caches across worker threads, so
lookups, insertions, and the hit/miss/eviction accounting are serialized
under a per-structure lock.  (The process-pool path needs no locking —
each worker process has its own copy-on-write caches — but the lock is
uncontended there and costs a fraction of a single solver call.)
"""

from __future__ import annotations

from typing import Generic, Hashable, TypeVar

from .._concurrency import new_lock

#: RT103 annotation: container contents and accounting counters are only
#: touched under each structure's lock ("repro devtools lint" checks it).
__lock_registry__ = {
    "LRUCache": {
        "_data": "_lock",
        "hits": "_lock",
        "misses": "_lock",
        "evictions": "_lock",
    },
    "InternTable": {"_table": "_lock", "epoch": "_lock"},
}

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A bounded LRU mapping with hit/miss/eviction accounting.

    ``get`` returns ``None`` on a miss (values stored here are never
    ``None``) and refreshes recency on a hit; ``put`` evicts the least
    recently used entry once ``capacity`` is exceeded.
    """

    __slots__ = ("capacity", "_data", "_lock", "hits", "misses", "evictions")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._data: dict[K, V] = {}
        self._lock = new_lock("constraints.cache")
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: K) -> V | None:
        with self._lock:
            data = self._data
            value = data.get(key)
            if value is None:
                self.misses += 1
                return None
            # Refresh recency: dicts preserve insertion order, so
            # re-inserting moves the key to the "most recent" end.
            del data[key]
            data[key] = value
            self.hits += 1
            return value

    def put(self, key: K, value: V) -> None:
        with self._lock:
            data = self._data
            if key in data:
                del data[key]
            elif len(data) >= self.capacity:
                del data[next(iter(data))]  # least recently used
                self.evictions += 1
            data[key] = value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        return key in self._data

    def info(self) -> dict[str, int]:
        """Accounting snapshot (sizes and lifetime hit/miss/evict counts)."""
        with self._lock:
            return {
                "size": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:
        return (
            f"<LRUCache {len(self._data)}/{self.capacity} "
            f"hits={self.hits} misses={self.misses}>"
        )


class InternTable(Generic[K]):
    """A bounded identity intern table: ``intern(x)`` returns the
    first-seen instance equal to ``x``.

    When the table fills up it is cleared wholesale (an *epoch* reset)
    rather than evicted entry-by-entry: interning is only an accelerator,
    and losing sharing across an epoch boundary costs nothing but a few
    duplicate instances.
    """

    __slots__ = ("capacity", "_table", "_lock", "epoch")

    def __init__(self, capacity: int = 1 << 16):
        if capacity < 1:
            raise ValueError(f"intern capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._table: dict[K, K] = {}
        self._lock = new_lock("constraints.cache")
        self.epoch = 0

    def intern(self, value: K) -> K:
        with self._lock:
            table = self._table
            existing = table.get(value)
            if existing is not None:
                return existing
            if len(table) >= self.capacity:
                table.clear()
                self.epoch += 1
            table[value] = value
            return value

    def clear(self) -> None:
        with self._lock:
            self._table.clear()
            self.epoch += 1

    def __len__(self) -> int:
        return len(self._table)

    def __repr__(self) -> str:
        return f"<InternTable {len(self._table)}/{self.capacity} epoch={self.epoch}>"
