"""The layered satisfiability front-end: decide cheaply, solve rarely.

Every satisfiability request in the engine (tuple construction, ``select``
survivors, every pair considered by ``natural_join``, DNF complement
branches, entailment checks) routes through :func:`is_satisfiable`, which
answers from the cheapest sufficient layer:

1. **Interval propagation** — a per-variable bound summary harvested from
   the single-variable atoms in one linear pass (:func:`summarise`).  An
   empty implied interval proves *unsatisfiability* in O(d) without
   touching Fourier–Motzkin; a *pure box* system (every atom
   single-variable) with consistent intervals is *satisfiable* outright,
   because its variables are independent.  The same summaries let joins
   reject non-overlapping tuple pairs (:func:`join_prunable`) before the
   combined conjunction is even built — the R\\*-tree's MBR-pruning idea
   pushed down into the solver layer.

2. **Memo cache** — a bounded LRU keyed on the canonical (deduplicated,
   sorted, interned) atom tuple.  Atom canonicalization happens at
   construction (:mod:`repro.constraints.atoms` scales to coprime
   integers) and interning (:func:`intern_atom`) makes structurally equal
   formulas pointer-equal, so repeated checks of the same polyhedron —
   ubiquitous in join loops and redundancy elimination — cost one hash
   and an O(n) pointer comparison.

3. **Adaptive dispatch** — cache misses run a full decision procedure:
   Fourier–Motzkin for the small, sparse systems it handles well, the
   exact rational simplex for dense/many-variable systems where FM's
   worst-case exponential blow-up bites.

Observability: every layer reports through the active
:class:`~repro.obs.MetricsRegistry` (``solver.requests``,
``solver.interval.*``, ``solver.cache.hits/misses``,
``solver.dispatch.*``), so ``EXPLAIN ANALYZE`` shows per-plan-node solver
savings.  ``solver.satisfiability_checks`` counts only *full* solves;
the gap to ``solver.requests`` is the work the fast paths saved.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, replace
from fractions import Fraction
from operator import attrgetter
from typing import Callable, Iterable, Iterator, Mapping

from ..governor.budget import checkpoint as budget_checkpoint
from ..rational import float_down, float_up
from ..obs import (
    SATISFIABILITY_CHECKS,
    SOLVER_BOX_DECIDED,
    SOLVER_CACHE_HITS,
    SOLVER_CACHE_MISSES,
    SOLVER_FM_ROUTED,
    SOLVER_INTERVAL_PRUNES,
    SOLVER_JOIN_PRUNES,
    SOLVER_REQUESTS,
    SOLVER_SIMPLEX_ROUTED,
    record,
)
from . import elimination, simplex
from .atoms import Comparator, LinearConstraint
from .cache import InternTable, LRUCache

#: A per-variable interval: ``(lower, lower_strict, upper, upper_strict)``
#: with ``None`` for an unbounded side.
Interval = tuple[Fraction | None, bool, Fraction | None, bool]

_UNBOUNDED: Interval = (None, False, None, False)
_SORT_KEY = attrgetter("sort_key")


# -- configuration -----------------------------------------------------------


@dataclass(frozen=True)
class SolverConfig:
    """Tuning knobs for the layered front-end.

    ``enabled=False`` bypasses every layer and routes straight to
    Fourier–Motzkin — the pre-fast-path behaviour, kept for A/B
    verification and benchmarking.
    """

    enabled: bool = True
    use_intervals: bool = True
    use_cache: bool = True
    cache_size: int = 8192
    #: Route to simplex when the system mentions at least this many variables…
    simplex_variable_threshold: int = 5
    #: …or contains at least this many atoms.
    simplex_atom_threshold: int = 16


_config = SolverConfig()
_CACHE: LRUCache[tuple[LinearConstraint, ...], bool] = LRUCache(_config.cache_size)
_INTERN: InternTable[LinearConstraint] = InternTable()


def get_config() -> SolverConfig:
    return _config


def configure(**changes) -> SolverConfig:
    """Update solver configuration; resizing the cache clears it."""
    global _config, _CACHE
    new = replace(_config, **changes)
    if new.cache_size != _CACHE.capacity:
        _CACHE = LRUCache(new.cache_size)
    _config = new
    return new


@contextmanager
def fast_path(enabled: bool) -> Iterator[SolverConfig]:
    """Temporarily enable/disable the layered fast paths (A/B testing)."""
    global _config
    previous = _config
    _config = replace(_config, enabled=enabled)
    try:
        yield _config
    finally:
        _config = previous


def clear_caches() -> None:
    """Drop the memo cache and the intern table (always safe)."""
    _CACHE.clear()
    _INTERN.clear()


def cache_info() -> dict[str, int]:
    """Lifetime accounting for the memo cache plus the intern table size."""
    info = _CACHE.info()
    info["interned_atoms"] = len(_INTERN)
    return info


def intern_atom(atom: LinearConstraint) -> LinearConstraint:
    """The canonical shared instance for this (already canonicalised) atom."""
    return _INTERN.intern(atom)


# -- layer 1: interval summaries ---------------------------------------------


@dataclass(frozen=True)
class IntervalSummary:
    """Per-variable bounds harvested from the single-variable atoms.

    ``bounds`` maps each variable mentioned by a single-variable atom to
    its tightest implied interval; multi-variable atoms contribute nothing
    (their presence clears ``pure_box``).  Every interval here is a sound
    consequence of the conjunction, so an empty interval proves
    unsatisfiability regardless of the atoms not summarised.
    """

    bounds: Mapping[str, Interval]
    #: True when *every* atom is single-variable: the system is an
    #: axis-aligned box and the summary decides satisfiability completely.
    pure_box: bool
    #: True when some variable's implied interval is empty (or a ground
    #: atom is false) — the conjunction is unsatisfiable.
    inconsistent: bool


def interval_is_empty(interval: Interval) -> bool:
    lower, lower_strict, upper, upper_strict = interval
    if lower is None or upper is None:
        return False
    return lower > upper or (lower == upper and (lower_strict or upper_strict))


def merge_intervals(a: Interval, b: Interval) -> Interval:
    """The intersection of two intervals over the same variable."""
    lower, lower_strict = _tighter(a[0], a[1], b[0], b[1], prefer_max=True)
    upper, upper_strict = _tighter(a[2], a[3], b[2], b[3], prefer_max=False)
    return (lower, lower_strict, upper, upper_strict)


def _tighter(
    x: Fraction | None, x_strict: bool, y: Fraction | None, y_strict: bool, prefer_max: bool
) -> tuple[Fraction | None, bool]:
    if x is None:
        return y, y_strict
    if y is None:
        return x, x_strict
    if x == y:
        return x, x_strict or y_strict
    if (x > y) == prefer_max:
        return x, x_strict
    return y, y_strict


def summarise(atoms: Iterable[LinearConstraint]) -> IntervalSummary:
    """One linear pass over the atoms → :class:`IntervalSummary`."""
    bounds: dict[str, Interval] = {}
    pure_box = True
    inconsistent = False
    for atom in atoms:
        expression = atom.expression
        variables = expression.variables
        if not variables:  # ground atom
            if not atom.truth_value():
                inconsistent = True
            continue
        if len(variables) > 1:
            pure_box = False
            continue
        (variable,) = variables
        coeff = expression.coefficient(variable)
        bound = -expression.constant / coeff
        strict = atom.comparator is Comparator.LT
        if atom.comparator is Comparator.EQ:
            contribution: Interval = (bound, False, bound, False)
        elif coeff > 0:  # coeff*v + k ⊙ 0  →  v ⊙ bound (upper)
            contribution = (None, False, bound, strict)
        else:  # sign flips: lower bound
            contribution = (bound, strict, None, False)
        current = bounds.get(variable, _UNBOUNDED)
        merged = merge_intervals(current, contribution)
        bounds[variable] = merged
        if interval_is_empty(merged):
            inconsistent = True
    return IntervalSummary(bounds=bounds, pure_box=pure_box, inconsistent=inconsistent)


def float_interval(interval: Interval) -> tuple[float, float]:
    """The widened float image of an exact interval: the lower bound is
    rounded toward −∞ and the upper toward +∞ (unbounded sides become
    ±∞), and strictness is dropped.  The float interval therefore always
    *contains* the exact one, which is the soundness invariant the
    columnar filter kernels rely on: an empty intersection of widened
    float intervals proves the exact intersection empty, never the
    reverse."""
    lower, _, upper, _ = interval
    return (
        -math.inf if lower is None else float_down(lower),
        math.inf if upper is None else float_up(upper),
    )


def float_bounds(summary: IntervalSummary) -> dict[str, tuple[float, float]]:
    """Per-variable widened float bounds of a summary — the array-export
    form :class:`repro.exec.columnar.SummaryBlock` packs into contiguous
    float64 columns."""
    return {
        variable: float_interval(interval)
        for variable, interval in summary.bounds.items()
    }


def summaries_disjoint(left: IntervalSummary, right: IntervalSummary) -> bool:
    """Whether the conjunction of the two summarised systems is *provably*
    unsatisfiable from intervals alone (sound, never complete)."""
    if left.inconsistent or right.inconsistent:
        return True
    small, large = (
        (left.bounds, right.bounds)
        if len(left.bounds) <= len(right.bounds)
        else (right.bounds, left.bounds)
    )
    for variable, interval in small.items():
        other = large.get(variable)
        if other is not None and interval_is_empty(merge_intervals(interval, other)):
            return True
    return False


def join_prunable(left: IntervalSummary, right: IntervalSummary) -> bool:
    """Join-pair pre-filter: True when the combined formula is provably
    unsatisfiable from the two sides' interval summaries, in which case
    the pair can be rejected without building the combined conjunction.
    Records the prune so ``EXPLAIN ANALYZE`` shows join-level savings."""
    if not (_config.enabled and _config.use_intervals):
        return False
    if summaries_disjoint(left, right):
        record(SOLVER_JOIN_PRUNES)
        record(SOLVER_INTERVAL_PRUNES)
        return True
    return False


# -- layers 2–3: memo cache and adaptive dispatch ----------------------------


def cache_key(atoms: Iterable[LinearConstraint]) -> tuple[LinearConstraint, ...]:
    """Canonical cache key: interned atoms, deduplicated, canonically
    sorted.  Two structurally equal systems — whatever order their atoms
    arrived in — produce pointer-identical key tuples."""
    return tuple(sorted(dict.fromkeys(map(intern_atom, atoms)), key=_SORT_KEY))


def _full_check(atoms: tuple[LinearConstraint, ...]) -> bool:
    """Adaptive dispatch to a full decision procedure."""
    if len(atoms) >= _config.simplex_atom_threshold:
        dense = True
    else:
        variables: set[str] = set()
        for atom in atoms:
            variables |= atom.expression.variables
        dense = len(variables) >= _config.simplex_variable_threshold
    if dense:
        record(SOLVER_SIMPLEX_ROUTED)
        record(SATISFIABILITY_CHECKS)  # elimination records its own; match it
        return simplex.is_satisfiable(atoms)
    record(SOLVER_FM_ROUTED)
    return elimination.is_satisfiable(atoms)


def is_satisfiable(
    atoms: Iterable[LinearConstraint],
    summary: IntervalSummary | Callable[[], IntervalSummary] | None = None,
) -> bool:
    """Layered satisfiability of a conjunction of atoms.

    ``summary`` may be a precomputed :class:`IntervalSummary` or a
    zero-argument callable producing one (so callers with a cached
    summary — :class:`~repro.constraints.Conjunction` — avoid the linear
    pass, and the pass is skipped entirely when intervals are disabled).
    """
    record(SOLVER_REQUESTS)
    # The finest-grained cooperative cancellation point: every join pair,
    # select survivor and complement branch asks satisfiability, so a
    # deadline fires here within one solve of the exhaustion instant.
    budget_checkpoint()
    atoms = tuple(atoms)
    if not atoms:
        return True
    if not _config.enabled:
        return elimination.is_satisfiable(atoms)
    if _config.use_intervals:
        if summary is None:
            summary = summarise(atoms)
        elif callable(summary):
            summary = summary()
        if summary.inconsistent:
            record(SOLVER_INTERVAL_PRUNES)
            return False
        if summary.pure_box:
            record(SOLVER_BOX_DECIDED)
            return True
    if not _config.use_cache:
        return _full_check(atoms)
    key = cache_key(atoms)
    cached = _CACHE.get(key)
    if cached is not None:
        record(SOLVER_CACHE_HITS)
        return cached
    record(SOLVER_CACHE_MISSES)
    result = _full_check(key)
    _CACHE.put(key, result)
    return result
