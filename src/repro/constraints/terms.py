"""Linear expressions over rational coefficients.

A :class:`LinearExpression` is an immutable value ``sum(coeff_i * var_i) +
constant`` with :class:`~fractions.Fraction` coefficients.  It is the shared
building block for constraint atoms (:mod:`repro.constraints.atoms`) and for
the query language's condition syntax.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator, Mapping

from ..errors import ConstraintError
from ..rational import RationalLike, ZERO, format_rational, to_rational


class LinearExpression:
    """An immutable rational linear expression.

    Instances are hashable and compare by value.  Arithmetic (``+``, ``-``,
    unary ``-``, and multiplication by rationals) always yields new
    instances; multiplying two non-constant expressions raises
    :class:`~repro.errors.ConstraintError` because the result would be
    non-linear.
    """

    __slots__ = ("_coefficients", "_constant", "_hash", "_cached_key")

    def __init__(
        self,
        coefficients: Mapping[str, RationalLike] | None = None,
        constant: RationalLike = 0,
    ):
        coeffs: dict[str, Fraction] = {}
        if coefficients:
            for var, raw in coefficients.items():
                if not isinstance(var, str) or not var:
                    raise ConstraintError(f"variable names must be non-empty strings, got {var!r}")
                value = to_rational(raw)
                if value != 0:
                    coeffs[var] = value
        self._coefficients: dict[str, Fraction] = coeffs
        self._constant: Fraction = to_rational(constant)
        self._hash: int | None = None
        self._cached_key: tuple | None = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def variable(cls, name: str) -> "LinearExpression":
        """The expression consisting of a single variable with coefficient 1."""
        return cls({name: 1})

    @classmethod
    def constant_expr(cls, value: RationalLike) -> "LinearExpression":
        """The constant expression ``value``."""
        return cls({}, value)

    @classmethod
    def coerce(cls, value: "LinearExpression | RationalLike") -> "LinearExpression":
        """Coerce a rational-like value or expression into an expression."""
        if isinstance(value, LinearExpression):
            return value
        return cls.constant_expr(value)

    # -- inspection --------------------------------------------------------

    @property
    def coefficients(self) -> Mapping[str, Fraction]:
        """Read-only view of the non-zero coefficients."""
        return dict(self._coefficients)

    @property
    def constant(self) -> Fraction:
        return self._constant

    @property
    def variables(self) -> frozenset[str]:
        return frozenset(self._coefficients)

    def coefficient(self, var: str) -> Fraction:
        """The coefficient of ``var`` (zero when absent)."""
        return self._coefficients.get(var, ZERO)

    @property
    def is_constant(self) -> bool:
        return not self._coefficients

    def evaluate(self, assignment: Mapping[str, RationalLike]) -> Fraction:
        """Evaluate at a point. All variables of the expression must be bound."""
        total = self._constant
        for var, coeff in self._coefficients.items():
            if var not in assignment:
                raise ConstraintError(f"no value for variable {var!r} in assignment")
            total += coeff * to_rational(assignment[var])
        return total

    def substitute(self, var: str, replacement: "LinearExpression") -> "LinearExpression":
        """Replace ``var`` with ``replacement`` (itself a linear expression)."""
        coeff = self._coefficients.get(var)
        if coeff is None:
            return self
        remaining = {v: c for v, c in self._coefficients.items() if v != var}
        base = LinearExpression(remaining, self._constant)
        return base + replacement * coeff

    def rename(self, old: str, new: str) -> "LinearExpression":
        """Rename variable ``old`` to ``new``; ``new`` must not collide."""
        if old not in self._coefficients:
            return self
        if new in self._coefficients:
            raise ConstraintError(f"cannot rename {old!r} to {new!r}: {new!r} already present")
        coeffs = dict(self._coefficients)
        coeffs[new] = coeffs.pop(old)
        return LinearExpression(coeffs, self._constant)

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "LinearExpression | RationalLike") -> "LinearExpression":
        other = LinearExpression.coerce(other)
        coeffs = dict(self._coefficients)
        for var, coeff in other._coefficients.items():
            coeffs[var] = coeffs.get(var, ZERO) + coeff
        return LinearExpression(coeffs, self._constant + other._constant)

    __radd__ = __add__

    def __sub__(self, other: "LinearExpression | RationalLike") -> "LinearExpression":
        return self + (-LinearExpression.coerce(other))

    def __rsub__(self, other: "LinearExpression | RationalLike") -> "LinearExpression":
        return LinearExpression.coerce(other) - self

    def __neg__(self) -> "LinearExpression":
        return self * Fraction(-1)

    def __mul__(self, scalar: RationalLike) -> "LinearExpression":
        if isinstance(scalar, LinearExpression):
            if scalar.is_constant:
                scalar = scalar.constant
            elif self.is_constant:
                return scalar * self._constant
            else:
                raise ConstraintError("product of two non-constant expressions is non-linear")
        factor = to_rational(scalar)
        coeffs = {var: coeff * factor for var, coeff in self._coefficients.items()}
        return LinearExpression(coeffs, self._constant * factor)

    __rmul__ = __mul__

    def __truediv__(self, scalar: RationalLike) -> "LinearExpression":
        factor = to_rational(scalar)
        if factor == 0:
            raise ConstraintError("division of an expression by zero")
        return self * (1 / factor)

    # -- constraint construction -------------------------------------------
    # ``x + y <= 5`` reads naturally in queries, tests and examples, so the
    # ordering operators build constraint atoms.  (``==`` keeps its value
    # semantics; use :func:`repro.constraints.atoms.eq` for equality atoms.)
    # The import is deferred because atoms.py imports this module.

    def __le__(self, other: "LinearExpression | RationalLike"):
        from .atoms import le

        return le(self, other)

    def __lt__(self, other: "LinearExpression | RationalLike"):
        from .atoms import lt

        return lt(self, other)

    def __ge__(self, other: "LinearExpression | RationalLike"):
        from .atoms import ge

        return ge(self, other)

    def __gt__(self, other: "LinearExpression | RationalLike"):
        from .atoms import gt

        return gt(self, other)

    # -- value semantics ---------------------------------------------------

    def _key(self) -> tuple:
        if self._cached_key is None:
            self._cached_key = (tuple(sorted(self._coefficients.items())), self._constant)
        return self._cached_key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearExpression):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    def __iter__(self) -> Iterator[tuple[str, Fraction]]:
        return iter(sorted(self._coefficients.items()))

    def __repr__(self) -> str:
        return f"LinearExpression({self})"

    def __str__(self) -> str:
        parts: list[str] = []
        for var, coeff in sorted(self._coefficients.items()):
            if coeff == 1:
                term = var
            elif coeff == -1:
                term = f"-{var}"
            else:
                term = f"{format_rational(coeff)}*{var}"
            if parts and not term.startswith("-"):
                parts.append(f"+ {term}")
            elif parts:
                parts.append(f"- {term[1:]}")
            else:
                parts.append(term)
        if self._constant != 0 or not parts:
            text = format_rational(self._constant)
            if parts and not text.startswith("-"):
                parts.append(f"+ {text}")
            elif parts:
                parts.append(f"- {text[1:]}")
            else:
                parts.append(text)
        return " ".join(parts)


def var(name: str) -> LinearExpression:
    """Shorthand for :meth:`LinearExpression.variable`, for expressive tests
    and examples: ``var("x") + 2 * var("y") <= 5`` (comparison operators on
    expressions are provided by :mod:`repro.constraints.atoms`)."""
    return LinearExpression.variable(name)
