"""Variable independence for constraint formulas.

Section 3.2 notes a side benefit of the C/R flag: "Attribute type plays a
role, for example, in establishing variable independence [Chomicki,
Goldin, Kuper, Toman]; if an attribute is known to be relational, it is
automatically independent of all other attributes."  Variable independence
is the property that lets a formula be stored and indexed per variable
block (it is exactly when the separate-index strategy of section 5 loses
nothing).

This module implements the conjunction-level test exactly and the
DNF-level test disjunct-wise:

* a conjunction C is a **product** over blocks (L, R) iff
  ``C ≡ π_L(C) ∧ π_R(C)`` — decidable with two entailment checks (the ⊨
  direction holds for every C by projection soundness);
* a DNF formula *has variable independence* when each disjunct of its
  simplified form is a product.  This is the standard sufficient condition
  (a disjunction of products); formulas that need *cross-block*
  disjunction re-grouping may be reported dependent.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import ConstraintError
from .conjunction import Conjunction
from .dnf import DNFFormula


def _split_blocks(
    variables: frozenset[str], left: Iterable[str], right: Iterable[str]
) -> tuple[frozenset[str], frozenset[str]]:
    left_set = frozenset(left)
    right_set = frozenset(right)
    overlap = left_set & right_set
    if overlap:
        raise ConstraintError(f"variable blocks overlap: {sorted(overlap)}")
    stray = variables - left_set - right_set
    if stray:
        raise ConstraintError(
            f"variables {sorted(stray)} belong to neither block; assign every "
            "variable of the formula to a block"
        )
    return left_set, right_set


def decompose(
    conjunction: Conjunction, left: Iterable[str], right: Iterable[str]
) -> tuple[Conjunction, Conjunction] | None:
    """The product decomposition ``(C_L, C_R)`` of a conjunction, or
    ``None`` when the blocks are genuinely entangled.

    ``C_L`` mentions only ``left`` variables and ``C_R`` only ``right``
    ones, with ``C ≡ C_L ∧ C_R``.
    """
    left_set, right_set = _split_blocks(conjunction.variables, left, right)
    if not conjunction.is_satisfiable():
        return Conjunction.false(), Conjunction.false()
    c_left = conjunction.project(left_set)
    c_right = conjunction.project(right_set)
    product = c_left.conjoin(c_right)
    # product ⊨ C is the only direction in question.
    if product.entails(conjunction):
        return c_left, c_right
    return None


def is_product(
    conjunction: Conjunction, left: Iterable[str], right: Iterable[str]
) -> bool:
    """Whether the conjunction's point set is the cross product of its
    projections onto the two blocks."""
    return decompose(conjunction, left, right) is not None


def has_variable_independence(
    formula: DNFFormula, left: Iterable[str], right: Iterable[str]
) -> bool:
    """Disjunct-wise variable independence of a DNF formula.

    True when every disjunct of the simplified formula is a product over
    the blocks — the formula is then a *disjunction of products*, the form
    the variable-independence literature calls independent.  (Sufficient
    condition: a dependent-looking disjunct cover of an independent set is
    reported dependent.)
    """
    left_set = frozenset(left)
    right_set = frozenset(right)
    return all(
        is_product(d, left_set & d.variables, right_set & d.variables)
        if d.variables
        else True
        for d in formula.simplify()
    )


def independent_attributes(relation, a: str, b: str) -> bool:
    """Whether attributes ``a`` and ``b`` of a heterogeneous relation are
    variable-independent.

    Implements the section 3.2 observation directly: a *relational*
    attribute is automatically independent of every other attribute (each
    tuple pins it to a single value, trivially a product).  Two constraint
    attributes are checked formula-by-formula, with the other constraint
    attributes eliminated first.
    """
    schema = relation.schema
    attr_a, attr_b = schema[a], schema[b]
    if attr_a.is_relational or attr_b.is_relational:
        return True
    for t in relation:
        restricted = t.formula.project((a, b))
        if not is_product(restricted, {a} & restricted.variables, {b} & restricted.variables):
            return False
    return True
