"""Heterogeneous constraint tuples.

A :class:`HTuple` is the generalised tuple of the heterogeneous data model
(§3.2): concrete values (possibly :data:`~repro.model.types.NULL`) for the
relational attributes, plus a conjunction of rational linear constraints
over the constraint attributes.

Semantics (Definition 1, refined by the C/R flag):

* the tuple denotes the set of points ``p`` such that ``p[a] == value[a]``
  for every relational attribute ``a`` (NULL matches nothing — *narrow*),
  and the constraint formula is satisfied by the constraint coordinates of
  ``p`` (an unmentioned constraint attribute admits all values — *broad*).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping

from ..constraints import Conjunction, LinearConstraint, LinearExpression
from ..errors import SchemaError
from ..rational import to_rational
from .schema import Schema
from .types import NULL, DataType, Null, Value, ValueLike, coerce_value, format_value


class HTuple:
    """An immutable heterogeneous tuple bound to a :class:`Schema`."""

    __slots__ = ("_schema", "_values", "_formula", "_hash")

    def __init__(
        self,
        schema: Schema,
        values: Mapping[str, ValueLike] | None = None,
        formula: Conjunction | Iterable[LinearConstraint] = (),
    ) -> None:
        if not isinstance(formula, Conjunction):
            formula = Conjunction(formula)
        values = dict(values or {})
        stored: dict[str, Value] = {}
        for attr in schema:
            if attr.is_relational:
                raw = values.pop(attr.name, NULL)
                stored[attr.name] = coerce_value(raw, attr.data_type)
        if values:
            extra = sorted(values)
            constraint_like = [n for n in extra if n in schema]
            if constraint_like:
                raise SchemaError(
                    f"attributes {constraint_like} are constraint attributes; "
                    "describe them in the formula, not the value map"
                )
            raise SchemaError(f"values for unknown attributes {extra}")
        constraint_names = set(schema.constraint_names)
        stray = formula.variables - constraint_names
        if stray:
            raise SchemaError(
                f"formula mentions non-constraint attributes {sorted(stray)}; "
                f"constraint attributes are {sorted(constraint_names)}"
            )
        self._schema = schema
        self._values = stored
        self._formula = formula
        self._hash: int | None = None

    # -- inspection --------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def values(self) -> Mapping[str, Value]:
        """Relational attribute values (every relational attribute is a key;
        missing inputs appear as NULL)."""
        return dict(self._values)

    @property
    def formula(self) -> Conjunction:
        return self._formula

    def value(self, name: str) -> Value:
        attr = self._schema[name]
        if not attr.is_relational:
            raise SchemaError(f"{name!r} is a constraint attribute; it has no single value")
        return self._values[name]

    def is_empty(self) -> bool:
        """True when the tuple denotes no points because its constraint
        formula is unsatisfiable.  (A NULL relational value also denotes no
        points, but such tuples are kept, as relational databases keep rows
        with NULLs.)"""
        return not self._formula.is_satisfiable()

    def contains_point(self, point: Mapping[str, ValueLike]) -> bool:
        """Whether the point (a full assignment to all attributes) is in the
        tuple's semantics."""
        for attr in self._schema:
            if attr.name not in point:
                raise SchemaError(f"point is missing attribute {attr.name!r}")
        assignment: dict[str, Fraction] = {}
        for attr in self._schema:
            given = point[attr.name]
            if attr.is_relational:
                mine = self._values[attr.name]
                if isinstance(mine, Null) or isinstance(given, Null):
                    return False  # narrow semantics: NULL matches nothing
                theirs = coerce_value(given, attr.data_type)
                if mine != theirs:
                    return False
            else:
                if isinstance(given, Null):
                    return False
                assignment[attr.name] = to_rational(given)  # type: ignore[arg-type]
        return self._formula.satisfied_by(assignment)

    def substitute_relational(self, expression: LinearExpression) -> LinearExpression | None:
        """Replace relational rational attributes in ``expression`` by this
        tuple's values.

        Returns ``None`` when a mentioned relational attribute is NULL
        (narrow semantics: the condition cannot hold).  String attributes in
        a linear expression are a schema error.
        """
        result = expression
        for name in expression.variables:
            attr = self._schema[name]
            if attr.is_constraint:
                continue
            if attr.data_type is DataType.STRING:
                raise SchemaError(f"string attribute {name!r} cannot appear in a linear constraint")
            value = self._values[name]
            if isinstance(value, Null):
                return None
            result = result.substitute(name, LinearExpression.constant_expr(value))
        return result

    # -- transformation ----------------------------------------------------

    def conjoin(self, atoms: Conjunction | LinearConstraint | Iterable[LinearConstraint]) -> "HTuple":
        """A new tuple with extra constraints conjoined onto the formula."""
        return HTuple(self._schema, self._values, self._formula.conjoin(atoms))

    def with_formula(self, formula: Conjunction) -> "HTuple":
        return HTuple(self._schema, self._values, formula)

    def project(self, names: Iterable[str]) -> "HTuple":
        """Restriction to ``names`` (π at the tuple level).  Constraint
        attributes outside ``names`` are eliminated from the formula.

        A NULL in a *dropped* relational attribute does not erase the
        tuple — the SQL-compatible reading required by upward
        compatibility (relational projections keep rows with NULLs in
        unprojected columns)."""
        names = list(names)
        sub_schema = self._schema.project(names)
        kept_values = {n: self._values[n] for n in sub_schema.relational_names}
        new_formula = self._formula.project(sub_schema.constraint_names)
        return HTuple(sub_schema, kept_values, new_formula)

    def rename(self, old: str, new: str) -> "HTuple":
        new_schema = self._schema.rename(old, new)
        values = dict(self._values)
        formula = self._formula
        if old in values:
            values[new] = values.pop(old)
        elif old in formula.variables:
            formula = formula.rename(old, new)
        return HTuple(new_schema, values, formula)

    def cast(self, schema: Schema) -> "HTuple":
        """Rebind to a union-compatible schema (possibly different attribute
        order)."""
        self._schema.union_compatible(schema)
        return HTuple(schema, self._values, self._formula)

    # -- value semantics ---------------------------------------------------

    def _key(self) -> tuple:
        rel = tuple(sorted(self._values.items(), key=lambda kv: kv[0]))
        return (self._schema, rel, self._formula)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HTuple):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    def __repr__(self) -> str:
        return f"HTuple({self})"

    def __str__(self) -> str:
        parts = [
            f"{name}={format_value(self._values[name])}"
            for name in self._schema.relational_names
        ]
        if not self._formula.is_true:
            parts.append(str(self._formula))
        elif self._schema.constraint_names:
            parts.append("true")
        return "(" + "; ".join(parts) + ")"


def point_tuple(schema: Schema, point: Mapping[str, ValueLike]) -> HTuple:
    """Build the tuple for a traditional data point: relational attributes
    take their values directly; constraint attributes become equality
    constraints (Example 1 — a relational tuple is a conjunction of
    equalities)."""
    from ..constraints import eq

    values: dict[str, ValueLike] = {}
    atoms: list[LinearConstraint] = []
    for attr in schema:
        if attr.name not in point:
            continue
        if attr.is_relational:
            values[attr.name] = point[attr.name]
        else:
            raw = point[attr.name]
            if isinstance(raw, Null):
                continue  # broad: leave unconstrained
            atoms.append(eq(LinearExpression.variable(attr.name), to_rational(raw)))  # type: ignore[arg-type]
    return HTuple(schema, values, atoms)
