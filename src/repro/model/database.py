"""A constraint database: a named catalog of constraint relations.

"A Constraint Database is a finite set of constraint relations"
(Definition 2).  :class:`Database` adds the catalog bookkeeping the query
front end and the storage layer need: registration, lookup, listing, and
(optionally) per-relation index management hooks used by the optimizer.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..errors import SchemaError
from .relation import ConstraintRelation


class Database:
    """A mutable catalog mapping names to immutable relations."""

    def __init__(self, relations: Mapping[str, ConstraintRelation] | None = None) -> None:
        self._relations: dict[str, ConstraintRelation] = {}
        if relations:
            for name, relation in relations.items():
                self.add(name, relation)

    def add(self, name: str, relation: ConstraintRelation, replace: bool = False) -> None:
        """Register ``relation`` under ``name``.

        Refuses to overwrite an existing name unless ``replace`` is true, so
        a mistyped script cannot silently clobber base data.
        """
        if not name or not isinstance(name, str):
            raise SchemaError(f"relation names must be non-empty strings, got {name!r}")
        if name in self._relations and not replace:
            raise SchemaError(f"relation {name!r} already exists (pass replace=True to overwrite)")
        self._relations[name] = relation.with_name(name) if relation.name != name else relation

    def get(self, name: str) -> ConstraintRelation:
        try:
            return self._relations[name]
        except KeyError:
            known = ", ".join(sorted(self._relations)) or "(none)"
            raise SchemaError(f"no relation named {name!r}; known relations: {known}") from None

    def drop(self, name: str) -> None:
        if name not in self._relations:
            raise SchemaError(f"no relation named {name!r}")
        del self._relations[name]

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> ConstraintRelation:
        return self.get(name)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._relations))

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._relations))

    def __repr__(self) -> str:
        return f"<Database: {len(self._relations)} relations ({', '.join(self.names())})>"
