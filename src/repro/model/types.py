"""Attribute kinds, data types and the NULL sentinel.

The heterogeneous data model (section 3.2 of the paper) annotates every
attribute with a **C/R flag**:

* ``RELATIONAL`` — traditional attribute.  A tuple holds a single concrete
  value (possibly ``NULL``); a missing value is interpreted *narrowly*: it
  matches no domain value.
* ``CONSTRAINT`` — the attribute is described by the tuple's constraint
  formula.  An attribute not mentioned by any constraint is interpreted
  *broadly*: it admits every domain value.

This flag is exactly what restores upward compatibility with relational
semantics (Proposition 1 / the claim in §3.2).
"""

from __future__ import annotations

import enum
from fractions import Fraction
from typing import Union

from ..errors import SchemaError
from ..rational import RationalLike, to_rational


class AttributeKind(enum.Enum):
    """The C/R flag of an attribute."""

    RELATIONAL = "relational"
    CONSTRAINT = "constraint"


class DataType(enum.Enum):
    """Domain of an attribute.

    Constraint attributes are always rational (the system is a *rational
    linear* constraint database); relational attributes may be strings or
    rationals.
    """

    STRING = "string"
    RATIONAL = "rational"


class Null:
    """Singleton marker for a missing relational value.

    Distinct from every domain value: all comparisons against ``NULL`` are
    false (narrow semantics), including ``NULL = NULL`` in *query
    predicates*.  For *set-level* tuple identity (union/difference
    deduplication) two NULLs are treated as the same marker, mirroring SQL's
    distinct-row treatment.
    """

    _instance: "Null | None" = None

    def __new__(cls) -> "Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self) -> tuple[type["Null"], tuple[()]]:
        return (Null, ())


#: The unique NULL marker.
NULL = Null()

#: A relational attribute value as stored in a tuple.
Value = Union[str, Fraction, Null]

#: Anything coercible to a stored value.
ValueLike = Union[str, RationalLike, Null]


def coerce_value(value: ValueLike, data_type: DataType) -> Value:
    """Validate and normalise a relational value for ``data_type``.

    Rationals are converted exactly (see :func:`repro.rational.to_rational`);
    strings must already be ``str``.  ``NULL`` passes through for either
    type.
    """
    if isinstance(value, Null):
        return NULL
    if data_type is DataType.STRING:
        if not isinstance(value, str):
            raise SchemaError(f"expected a string value, got {value!r}")
        return value
    if isinstance(value, str):
        # Allow numeric strings for rational columns ("2.5", "1/3").
        return to_rational(value)
    if isinstance(value, bool) or not isinstance(value, (int, float, Fraction)):
        raise SchemaError(f"expected a rational value, got {value!r}")
    return to_rational(value)


def format_value(value: Value) -> str:
    """Render a stored value for display and serialization."""
    from ..rational import format_rational

    if isinstance(value, Null):
        return "NULL"
    if isinstance(value, Fraction):
        return format_rational(value)
    return value
