"""Heterogeneous relation schemas.

A :class:`Schema` is an ordered set of :class:`Attribute` definitions, each
carrying a name, a :class:`~repro.model.types.DataType`, and the paper's C/R
flag (:class:`~repro.model.types.AttributeKind`).  Schemas know how to
project, rename and merge themselves — the schema-level halves of the CQA
operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..errors import SchemaError
from .types import AttributeKind, DataType


@dataclass(frozen=True)
class Attribute:
    """A single schema attribute: name, domain and C/R flag."""

    name: str
    data_type: DataType
    kind: AttributeKind

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute names must be non-empty strings, got {self.name!r}")
        if self.kind is AttributeKind.CONSTRAINT and self.data_type is not DataType.RATIONAL:
            raise SchemaError(
                f"constraint attribute {self.name!r} must be rational "
                "(CQA/CDB is a rational linear constraint database)"
            )

    @property
    def is_constraint(self) -> bool:
        return self.kind is AttributeKind.CONSTRAINT

    @property
    def is_relational(self) -> bool:
        return self.kind is AttributeKind.RELATIONAL

    def renamed(self, name: str) -> "Attribute":
        return Attribute(name, self.data_type, self.kind)

    def __str__(self) -> str:
        return f"{self.name}: {self.data_type.value}, {self.kind.value}"


def relational(name: str, data_type: DataType = DataType.STRING) -> Attribute:
    """Shorthand for a relational attribute (string-typed by default)."""
    return Attribute(name, data_type, AttributeKind.RELATIONAL)


def constraint(name: str) -> Attribute:
    """Shorthand for a (rational) constraint attribute."""
    return Attribute(name, DataType.RATIONAL, AttributeKind.CONSTRAINT)


class Schema:
    """An immutable ordered collection of attributes with unique names."""

    __slots__ = ("_attributes", "_by_name")

    def __init__(self, attributes: Iterable[Attribute]) -> None:
        attrs = tuple(attributes)
        by_name: dict[str, Attribute] = {}
        for attr in attrs:
            if not isinstance(attr, Attribute):
                raise SchemaError(f"expected an Attribute, got {attr!r}")
            if attr.name in by_name:
                raise SchemaError(f"duplicate attribute name {attr.name!r}")
            by_name[attr.name] = attr
        self._attributes = attrs
        self._by_name = by_name

    # -- inspection --------------------------------------------------------

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    @property
    def relational_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes if a.is_relational)

    @property
    def constraint_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes if a.is_constraint)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r} in schema ({', '.join(self.names)})") from None

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    # -- operator support ----------------------------------------------------

    def project(self, names: Iterable[str]) -> "Schema":
        """The schema restricted to ``names``, which must all exist.

        The projection's attribute order follows the argument order, as in
        ``project R0 on name, t`` (§3.3).
        """
        names = list(names)
        for name in names:
            self[name]  # raises SchemaError when missing
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute in projection list: {names}")
        return Schema(self._by_name[name] for name in names)

    def rename(self, old: str, new: str) -> "Schema":
        """Rename attribute ``old`` to ``new`` (CQA's ϱ operator)."""
        attr = self[old]
        if new in self._by_name:
            raise SchemaError(f"cannot rename {old!r} to {new!r}: name already in use")
        return Schema(a.renamed(new) if a is attr else a for a in self._attributes)

    def union_compatible(self, other: "Schema") -> None:
        """Raise unless the two schemas agree exactly (names, order ignored,
        types and C/R flags must match) — required by ∪ and −."""
        if set(self.names) != set(other.names):
            raise SchemaError(
                f"schemas are not union-compatible: {sorted(self.names)} vs {sorted(other.names)}"
            )
        for attr in self._attributes:
            theirs = other[attr.name]
            if attr.data_type is not theirs.data_type or attr.kind is not theirs.kind:
                raise SchemaError(
                    f"attribute {attr.name!r} differs between schemas: "
                    f"({attr.data_type.value}, {attr.kind.value}) vs "
                    f"({theirs.data_type.value}, {theirs.kind.value})"
                )

    def join(self, other: "Schema") -> "Schema":
        """The natural-join output schema: α(R₁) ∪ α(R₂).

        Shared attributes must agree on data type.  When the C/R flags
        differ, the joined attribute is *relational*: the join pins it to
        the concrete values of the relational side, which is the more
        restrictive interpretation.
        """
        merged: list[Attribute] = list(self._attributes)
        for attr in other._attributes:
            mine = self._by_name.get(attr.name)
            if mine is None:
                merged.append(attr)
                continue
            if mine.data_type is not attr.data_type:
                raise SchemaError(
                    f"shared attribute {attr.name!r} has conflicting types: "
                    f"{mine.data_type.value} vs {attr.data_type.value}"
                )
            if mine.kind is not attr.kind:
                resolved = Attribute(attr.name, attr.data_type, AttributeKind.RELATIONAL)
                merged[merged.index(mine)] = resolved
        return Schema(merged)

    def shared_names(self, other: "Schema") -> tuple[str, ...]:
        return tuple(name for name in self.names if name in other)

    # -- value semantics -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        return f"Schema([{', '.join(str(a) for a in self._attributes)}])"


def schema(definition: Mapping[str, tuple[DataType, AttributeKind]] | Iterable[Attribute]) -> Schema:
    """Build a schema from attributes or a ``{name: (type, kind)}`` mapping."""
    if isinstance(definition, Mapping):
        return Schema(Attribute(name, dt, kind) for name, (dt, kind) in definition.items())
    return Schema(definition)
