"""The nested (Dedale-style) data model: nest/unnest for constraint data.

Section 6.2, on avoiding duplicated non-spatial attributes:

    "Dedale chose to depart from the relational model and use the nested
    model instead.  The constraint part of all tuples representing the
    same feature are grouped into a set, and stored as one nested
    attribute value; the non-spatial attributes for each feature are only
    stored once, together with this nested value.  The nest and unnest
    operators in Dedale are necessary to work with this data model."

A :class:`NestedRelation` keeps one row per distinct relational-value
vector, whose constraint part is a :class:`~repro.constraints.DNFFormula`
(the grouped set of conjunctions).  :func:`nest` and :func:`unnest`
convert losslessly to and from the flat heterogeneous model, and
:meth:`NestedRelation.storage_cost` quantifies how much of redundancy 1
nesting eliminates (compare `RegionFeature.constraint_cost`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from ..constraints import Conjunction, DNFFormula
from ..errors import SchemaError
from .relation import ConstraintRelation
from .schema import Schema
from .tuples import HTuple
from .types import Value


@dataclass(frozen=True)
class NestedTuple:
    """One nested row: relational values stored once + a formula set."""

    values: tuple[tuple[str, Value], ...]  # sorted (name, value) pairs
    formula: DNFFormula

    def value(self, name: str) -> Value:
        for key, val in self.values:
            if key == name:
                return val
        raise SchemaError(f"no relational attribute {name!r} in nested tuple")


class NestedRelation:
    """An immutable nested relation over a heterogeneous schema."""

    __slots__ = ("_schema", "_rows")

    def __init__(self, schema: Schema, rows: Mapping[tuple, DNFFormula] | None = None) -> None:
        self._schema = schema
        materialised: dict[tuple, DNFFormula] = {}
        for key, formula in (rows or {}).items():
            # Unsatisfiable rows denote no points; drop them, mirroring
            # ConstraintRelation's treatment of unsatisfiable tuples.
            if formula.is_satisfiable():
                materialised[key] = formula
        self._rows = materialised

    @property
    def schema(self) -> Schema:
        return self._schema

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[NestedTuple]:
        for key in sorted(self._rows, key=repr):
            yield NestedTuple(key, self._rows[key])

    def storage_cost(self, per_value_cost: int = 1) -> dict[str, int]:
        """Counts comparable to §6.2's redundancy accounting:

        ``relational_values`` — relational cells stored (once per row);
        ``constraints`` — constraint atoms stored;
        ``flat_relational_values`` — what the flat model would store
        (once per constraint tuple), so the difference is redundancy 1.
        """
        relational_count = len(self._schema.relational_names)
        rows = len(self._rows)
        disjuncts = sum(len(f) for f in self._rows.values())
        atoms = sum(len(d) for f in self._rows.values() for d in f)
        return {
            "rows": rows,
            "relational_values": rows * relational_count * per_value_cost,
            "constraints": atoms,
            "flat_tuples": disjuncts,
            "flat_relational_values": disjuncts * relational_count * per_value_cost,
        }

    def __repr__(self) -> str:
        return f"<NestedRelation: {len(self._rows)} rows over ({', '.join(self._schema.names)})>"


def nest(relation: ConstraintRelation) -> NestedRelation:
    """Group the flat relation's tuples by relational values; each group's
    conjunctions become one nested DNF value."""
    groups: dict[tuple, list[Conjunction]] = {}
    for t in relation:
        key = tuple(sorted(t.values.items(), key=lambda kv: kv[0]))
        groups.setdefault(key, []).append(t.formula)
    return NestedRelation(
        relation.schema, {key: DNFFormula(formulas) for key, formulas in groups.items()}
    )


def unnest(nested: NestedRelation, name: str | None = None) -> ConstraintRelation:
    """Flatten back: one heterogeneous tuple per disjunct.

    ``unnest(nest(R))`` is semantically equivalent to ``R`` (and
    syntactically equal up to per-group deduplication)."""
    tuples = []
    for row in nested:
        values = dict(row.values)
        for disjunct in row.formula:
            tuples.append(HTuple(nested.schema, values, disjunct))
    return ConstraintRelation(nested.schema, tuples, name)
