"""Constraint relations: finite sets of heterogeneous tuples.

A :class:`ConstraintRelation` is Definition 2 of the paper lifted to the
heterogeneous data model: a schema plus a finite set of
:class:`~repro.model.tuples.HTuple`.  Its semantics φ(R) is the disjunction
of the tuple formulas, grouped by relational values.

Relations are immutable; the algebra (:mod:`repro.algebra`) produces new
relations rather than mutating inputs.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from ..constraints import Conjunction, DNFFormula
from ..errors import SchemaError
from .schema import Schema
from .tuples import HTuple, point_tuple
from .types import Value, ValueLike


class ConstraintRelation:
    """An immutable finite set of constraint tuples over one schema.

    Tuples whose formula is unsatisfiable denote no points and are dropped
    at construction; duplicates are removed (set semantics, Definition 2).
    """

    __slots__ = ("_schema", "_tuples", "_name", "_truncated", "_columnar")

    def __init__(
        self,
        schema: Schema,
        tuples: Iterable[HTuple] = (),
        name: str | None = None,
    ) -> None:
        self._truncated = False
        materialised: list[HTuple] = []
        seen: set[HTuple] = set()
        for t in tuples:
            if not isinstance(t, HTuple):
                raise SchemaError(f"expected an HTuple, got {t!r}")
            if t.schema != schema:
                raise SchemaError(
                    f"tuple schema {t.schema!r} does not match relation schema {schema!r}"
                )
            if t.is_empty():
                continue
            if t not in seen:
                seen.add(t)
                materialised.append(t)
        self._schema = schema
        self._tuples = tuple(materialised)
        self._name = name
        self._columnar: dict | None = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_points(
        cls,
        schema: Schema,
        points: Iterable[Mapping[str, ValueLike]],
        name: str | None = None,
    ) -> "ConstraintRelation":
        """Build a relation from traditional data points (each a mapping of
        attribute name to value); constraint attributes become equality
        constraints."""
        return cls(schema, (point_tuple(schema, p) for p in points), name)

    @classmethod
    def from_constraints(
        cls,
        schema: Schema,
        rows: Iterable[tuple[Mapping[str, ValueLike], Conjunction | Iterable]],
        name: str | None = None,
    ) -> "ConstraintRelation":
        """Build a relation from ``(relational-values, formula)`` pairs."""
        return cls(schema, (HTuple(schema, values, formula) for values, formula in rows), name)

    def with_name(self, name: str | None) -> "ConstraintRelation":
        """The same relation under a different name (satisfiability results
        are cached per formula, so revalidation is cheap)."""
        return ConstraintRelation(self._schema, self._tuples, name)

    # -- inspection --------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def name(self) -> str | None:
        return self._name

    @property
    def tuples(self) -> tuple[HTuple, ...]:
        return self._tuples

    @property
    def truncated(self) -> bool:
        """Whether this result was cut short by a resource budget running in
        ``on_exhausted="partial"`` mode (the tuples present are a sound
        prefix of the full answer, not the complete answer)."""
        return self._truncated

    def columnar_cache(self) -> dict:
        """The per-relation memo for columnar summary blocks (see
        :func:`repro.exec.columnar.block_for`).  Relations are immutable,
        so a block built over :attr:`tuples` stays valid for the
        relation's lifetime; repeated selections over one base relation
        pay the float export once."""
        cache = self._columnar
        if cache is None:
            cache = self._columnar = {}
        return cache

    def extended(self, tuples: Iterable[HTuple]) -> "ConstraintRelation":
        """A new relation with ``tuples`` appended (set semantics: empty
        and duplicate tuples are dropped exactly as at construction).

        This is the write path's append primitive: the receiver is left
        untouched — readers holding it (or a
        :class:`~repro.storage.snapshot.DatabaseSnapshot` pinning it) keep
        seeing the old version with its columnar caches intact, while the
        result starts with a *fresh, empty* columnar cache so no stale
        summary block can ever describe the appended tuples."""
        return ConstraintRelation(self._schema, (*self._tuples, *tuples), self._name)

    def invalidate_columnar(self) -> None:
        """Drop every cached columnar summary block for this relation.

        Relations are immutable, so the cache normally never goes stale;
        this is the explicit invalidation hook for code that rebuilds a
        relation's backing state in place (heap-file append, WAL replay
        into a live catalog) and must not let a reader pair old blocks
        with new tuples.  Clearing (rather than replacing) the dict means
        any consumer that already grabbed the cache object sees it
        emptied too."""
        if self._columnar:
            self._columnar.clear()

    def with_truncated(self, truncated: bool = True) -> "ConstraintRelation":
        """The same relation with the ``truncated`` marker set."""
        relation = ConstraintRelation(self._schema, self._tuples, self._name)
        relation._truncated = truncated
        return relation

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[HTuple]:
        return iter(self._tuples)

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def contains_point(self, point: Mapping[str, ValueLike]) -> bool:
        """Point membership R(t): whether any tuple's semantics contains the
        point."""
        return any(t.contains_point(point) for t in self._tuples)

    def groups(self) -> dict[tuple[tuple[str, Value], ...], DNFFormula]:
        """φ(R) factored by relational values.

        Maps each distinct relational-value vector (as a sorted item tuple;
        NULLs are compared as markers, mirroring SQL's distinct-row rule) to
        the DNF of the formulas of its tuples.
        """
        grouped: dict[tuple[tuple[str, Value], ...], list[Conjunction]] = {}
        for t in self._tuples:
            key = tuple(sorted(t.values.items(), key=lambda kv: kv[0]))
            grouped.setdefault(key, []).append(t.formula)
        return {key: DNFFormula(formulas) for key, formulas in grouped.items()}

    def equivalent(self, other: "ConstraintRelation") -> bool:
        """Semantic equivalence (Definition 2): same relational-value groups
        with logically equivalent constraint formulas."""
        self._schema.union_compatible(other._schema)
        mine = self.groups()
        theirs = other.groups()
        if set(mine) != set(theirs):
            return False
        return all(mine[key].equivalent(theirs[key]) for key in mine)

    def simplify(self) -> "ConstraintRelation":
        """Simplify each tuple's formula and drop tuples absorbed within
        their relational-value group."""
        result: list[HTuple] = []
        for t in self._tuples:
            result.append(t.with_formula(t.formula.simplify()))
        relation = ConstraintRelation(self._schema, result, self._name)
        # Absorption: within a group, drop disjuncts entailed by another.
        kept: list[HTuple] = []
        by_group: dict[tuple, list[HTuple]] = {}
        for t in relation._tuples:
            key = tuple(sorted(t.values.items(), key=lambda kv: kv[0]))
            by_group.setdefault(key, []).append(t)
        for group in by_group.values():
            for i, t in enumerate(group):
                absorbed = False
                for j, other in enumerate(group):
                    if i == j:
                        continue
                    if t.formula.entails(other.formula) and not (
                        other.formula.entails(t.formula) and j > i
                    ):
                        absorbed = True
                        break
                if not absorbed:
                    kept.append(t)
        return ConstraintRelation(self._schema, kept, self._name)

    def map_tuples(self, transform: Callable[[HTuple], HTuple | None]) -> "ConstraintRelation":
        """A new relation from ``transform`` applied to each tuple
        (``None`` results are dropped)."""
        produced = (transform(t) for t in self._tuples)
        schema: Schema | None = None
        materialised = []
        for t in produced:
            if t is None:
                continue
            if schema is None:
                schema = t.schema
            materialised.append(t)
        return ConstraintRelation(schema if schema is not None else self._schema, materialised, self._name)

    # -- value semantics ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Syntactic equality (same tuples); use :meth:`equivalent` for the
        semantic notion."""
        if not isinstance(other, ConstraintRelation):
            return NotImplemented
        return self._schema == other._schema and set(self._tuples) == set(other._tuples)

    def __hash__(self) -> int:
        return hash((self._schema, frozenset(self._tuples)))

    def __repr__(self) -> str:
        label = self._name or "relation"
        return f"<ConstraintRelation {label}: {len(self._tuples)} tuples over ({', '.join(self._schema.names)})>"

    def pretty(self, limit: int = 20) -> str:
        """A human-readable rendering of up to ``limit`` tuples."""
        header = self._name or "relation"
        lines = [f"{header} [{'; '.join(str(a) for a in self._schema)}]"]
        for t in self._tuples[:limit]:
            lines.append(f"  {t}")
        if len(self._tuples) > limit:
            lines.append(f"  ... ({len(self._tuples) - limit} more)")
        if not self._tuples:
            lines.append("  (empty)")
        return "\n".join(lines)
