"""The heterogeneous data model (section 3 of the paper).

Public surface:

* :class:`AttributeKind` (the C/R flag), :class:`DataType`, :data:`NULL`.
* :class:`Attribute`, :class:`Schema` and the :func:`relational` /
  :func:`constraint` attribute shorthands.
* :class:`HTuple` and :func:`point_tuple` — heterogeneous tuples.
* :class:`ConstraintRelation` — finite sets of constraint tuples.
* :class:`Database` — a named catalog of relations.
"""

from .database import Database
from .nested import NestedRelation, NestedTuple, nest, unnest
from .relation import ConstraintRelation
from .schema import Attribute, Schema, constraint, relational, schema
from .tuples import HTuple, point_tuple
from .types import NULL, AttributeKind, DataType, Null, Value, coerce_value, format_value

__all__ = [
    "Attribute",
    "AttributeKind",
    "ConstraintRelation",
    "Database",
    "DataType",
    "HTuple",
    "NULL",
    "NestedRelation",
    "NestedTuple",
    "Null",
    "Schema",
    "nest",
    "unnest",
    "Value",
    "coerce_value",
    "constraint",
    "format_value",
    "point_tuple",
    "relational",
    "schema",
]
