"""Textual serialization of constraint databases (the ``.cdb`` format).

A human-readable, diff-friendly line format::

    # comment
    relation Land
    attribute landId string relational
    attribute x rational constraint
    attribute y rational constraint
    tuple landId="A" | 2 <= x, x <= 6, 5 <= y, y <= 7
    end

* ``tuple`` lines have a relational-value part and, after ``|``, a
  constraint part parsed by :func:`repro.constraints.parse_constraints`
  (omitted or empty = the true formula).
* String values are double-quoted with backslash escapes; rationals are
  written exactly (``2.5`` or ``1/3``); ``NULL`` is the bare keyword.
* ``checksum COUNT CRC32HEX`` (written just before ``end``) records the
  tuple count and the CRC-32 of the relation's tuple lines; the loader
  verifies it when present and raises
  :class:`~repro.errors.CorruptPageError` on mismatch.  Files without
  checksum lines still load (older files stay readable), they just forgo
  corruption detection.

Round-tripping is exact: load(save(db)) reproduces the same relations.
"""

from __future__ import annotations

import io
import re
import zlib
from fractions import Fraction
from pathlib import Path
from typing import TextIO

from ..constraints import Conjunction, parse_constraints
from ..errors import CorruptPageError, StorageError
from ..model.database import Database
from ..model.relation import ConstraintRelation
from ..model.schema import Attribute, Schema
from ..model.tuples import HTuple
from ..model.types import NULL, AttributeKind, DataType, Null, Value
from ..rational import format_rational

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z_0-9]*$")


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _format_value(value: Value) -> str:
    if isinstance(value, Null):
        return "NULL"
    if isinstance(value, Fraction):
        return format_rational(value)
    return _quote(value)


def serialize_tuple(t: HTuple) -> str:
    """One ``tuple`` line (without the trailing newline)."""
    parts = []
    for name in t.schema.relational_names:
        parts.append(f"{name}={_format_value(t.values[name])}")
    values = ", ".join(parts)
    formula = "" if t.formula.is_true else str(_formula_text(t.formula))
    if formula:
        return f"tuple {values} | {formula}" if values else f"tuple | {formula}"
    return f"tuple {values}" if values else "tuple"


def _formula_text(formula: Conjunction) -> str:
    # Atom str() is already parseable by parse_constraints ("x + y <= 5");
    # join conjuncts with commas.
    return ", ".join(str(atom) for atom in formula)


def _tuple_lines_checksum(lines: list[str]) -> str:
    joined = "\n".join(lines)
    return f"{zlib.crc32(joined.encode('utf-8')) & 0xFFFFFFFF:08x}"


def save_relation(relation: ConstraintRelation, out: TextIO, name: str | None = None) -> None:
    name = name or relation.name
    if not name or not _NAME_RE.match(name):
        raise StorageError(f"relation needs a valid identifier name to serialize, got {name!r}")
    out.write(f"relation {name}\n")
    for attr in relation.schema:
        out.write(f"attribute {attr.name} {attr.data_type.value} {attr.kind.value}\n")
    lines = [serialize_tuple(t) for t in relation]
    for line in lines:
        out.write(line + "\n")
    out.write(f"checksum {len(lines)} {_tuple_lines_checksum(lines)}\n")
    out.write("end\n")


def save_database(database: Database, path: str | Path) -> None:
    """Write every relation of the database to ``path``."""
    with open(path, "w", encoding="utf-8") as out:
        out.write("# CQA/CDB database file\n")
        for name in database:
            save_relation(database[name], out, name)
            out.write("\n")


def dumps(database: Database) -> str:
    buffer = io.StringIO()
    buffer.write("# CQA/CDB database file\n")
    for name in database:
        save_relation(database[name], buffer, name)
        buffer.write("\n")
    return buffer.getvalue()


class _TupleLineParser:
    """Parses the value part of a ``tuple`` line."""

    def __init__(self, text: str, line_no: int):
        self._text = text
        self._pos = 0
        self._line_no = line_no

    def error(self, message: str) -> StorageError:
        return StorageError(f"line {self._line_no}: {message} (in {self._text!r})")

    def _skip_ws(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos] in " \t":
            self._pos += 1

    def at_end(self) -> bool:
        self._skip_ws()
        return self._pos >= len(self._text)

    def parse_pairs(self) -> dict[str, object]:
        values: dict[str, object] = {}
        first = True
        while not self.at_end():
            if not first:
                if self._text[self._pos] != ",":
                    raise self.error("expected ',' between values")
                self._pos += 1
                self._skip_ws()
            first = False
            match = _NAME_RE.match(self._text[self._pos :].split("=")[0].strip())
            eq_at = self._text.find("=", self._pos)
            if eq_at < 0 or match is None:
                raise self.error("expected name=value")
            name = self._text[self._pos : eq_at].strip()
            if not _NAME_RE.match(name):
                raise self.error(f"invalid attribute name {name!r}")
            self._pos = eq_at + 1
            self._skip_ws()
            values[name] = self._parse_value()
        return values

    def _parse_value(self) -> object:
        text = self._text
        if self._pos >= len(text):
            raise self.error("missing value")
        if text[self._pos] == '"':
            self._pos += 1
            chunks: list[str] = []
            while self._pos < len(text):
                ch = text[self._pos]
                if ch == "\\":
                    if self._pos + 1 >= len(text):
                        raise self.error("dangling escape")
                    chunks.append(text[self._pos + 1])
                    self._pos += 2
                    continue
                if ch == '"':
                    self._pos += 1
                    return "".join(chunks)
                chunks.append(ch)
                self._pos += 1
            raise self.error("unterminated string")
        # Bare token: NULL or a rational literal.
        end = self._pos
        while end < len(text) and text[end] not in ",":
            end += 1
        token = text[self._pos : end].strip()
        self._pos = end
        if not token:
            raise self.error("missing value")
        if token == "NULL":
            return NULL
        try:
            return Fraction(token)
        except (ValueError, ZeroDivisionError):
            raise self.error(f"cannot parse value {token!r}") from None


def parse_tuple_line(rest: str, line_no: int = 0) -> tuple[dict[str, object], Conjunction]:
    """Parse the body of a ``tuple`` line (everything after the keyword)
    into its relational values and constraint formula.  Shared by the
    ``.cdb`` loader and the WAL replay path (:mod:`repro.storage.wal`),
    which both store tuples in this line format."""
    value_part, formula_part = _split_tuple_line(rest, line_no)
    values = _TupleLineParser(value_part.strip(), line_no).parse_pairs()
    formula_part = formula_part.strip()
    formula = Conjunction(parse_constraints(formula_part)) if formula_part else Conjunction.true()
    return values, formula


def _split_tuple_line(text: str, line_no: int) -> tuple[str, str]:
    """Split a tuple line at the first ``|`` *outside* quoted strings
    (string values may legitimately contain the separator character)."""
    in_string = False
    i = 0
    while i < len(text):
        ch = text[i]
        if in_string:
            if ch == "\\":
                i += 2
                continue
            if ch == '"':
                in_string = False
        elif ch == '"':
            in_string = True
        elif ch == "|":
            return text[:i], text[i + 1 :]
        i += 1
    if in_string:
        raise StorageError(f"line {line_no}: unterminated string (in {text!r})")
    return text, ""


def load_database(source: str | Path | TextIO) -> Database:
    """Read a ``.cdb`` file (path, file object, or literal text containing a
    newline) into a fresh :class:`Database`."""
    if isinstance(source, (str, Path)):
        text = str(source)
        if isinstance(source, Path) or "\n" not in text:
            with open(source, "r", encoding="utf-8") as handle:
                return _load(handle)
        return _load(io.StringIO(text))
    return _load(source)


def loads(text: str) -> Database:
    return _load(io.StringIO(text))


def _numbered_lines(handle: TextIO):
    """Line iteration that surfaces undecodable bytes as a typed
    :class:`CorruptPageError` instead of an unhandled
    :class:`UnicodeDecodeError` (a ``.cdb`` path pointed at a binary or
    bit-rotted file must fail with the storage taxonomy)."""
    try:
        yield from enumerate(handle, start=1)
    except UnicodeDecodeError as exc:
        raise CorruptPageError(
            f"database file is not valid UTF-8 text ({exc}); "
            "binary garbage or corruption"
        ) from None


def _load(handle: TextIO) -> Database:
    database = Database()
    name: str | None = None
    attributes: list[Attribute] = []
    tuples: list[tuple[dict[str, object], Conjunction, int]] = []
    tuple_lines: list[str] = []
    for line_no, raw in _numbered_lines(handle):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        keyword, _, rest = line.partition(" ")
        rest = rest.strip()
        if keyword == "relation":
            if name is not None:
                raise StorageError(f"line {line_no}: nested relation (missing 'end')")
            if not _NAME_RE.match(rest):
                raise StorageError(f"line {line_no}: invalid relation name {rest!r}")
            name = rest
            attributes = []
            tuples = []
            tuple_lines = []
        elif keyword == "attribute":
            if name is None:
                raise StorageError(f"line {line_no}: attribute outside a relation")
            fields = rest.split()
            if len(fields) != 3:
                raise StorageError(f"line {line_no}: expected 'attribute NAME TYPE KIND'")
            attr_name, type_name, kind_name = fields
            try:
                attributes.append(
                    Attribute(attr_name, DataType(type_name), AttributeKind(kind_name))
                )
            except ValueError as exc:
                raise StorageError(f"line {line_no}: {exc}") from None
        elif keyword == "tuple" or line == "tuple":
            if name is None:
                raise StorageError(f"line {line_no}: tuple outside a relation")
            values, formula = parse_tuple_line(rest, line_no)
            tuples.append((values, formula, line_no))
            tuple_lines.append(line)
        elif keyword == "checksum":
            if name is None:
                raise StorageError(f"line {line_no}: checksum outside a relation")
            fields = rest.split()
            if len(fields) != 2:
                raise StorageError(f"line {line_no}: expected 'checksum COUNT CRC32HEX'")
            try:
                expected_count = int(fields[0])
            except ValueError:
                raise StorageError(f"line {line_no}: invalid tuple count {fields[0]!r}") from None
            expected_crc = fields[1].lower()
            if expected_count != len(tuple_lines):
                raise CorruptPageError(
                    f"line {line_no}: relation {name!r} records {expected_count} tuples "
                    f"but {len(tuple_lines)} were read (truncated or corrupted file)"
                )
            actual_crc = _tuple_lines_checksum(tuple_lines)
            if actual_crc != expected_crc:
                raise CorruptPageError(
                    f"line {line_no}: relation {name!r} checksum mismatch "
                    f"(recorded {expected_crc}, computed {actual_crc}) — tuple data corrupted"
                )
        elif keyword == "end" or line == "end":
            if name is None:
                raise StorageError(f"line {line_no}: 'end' outside a relation")
            schema = Schema(attributes)
            materialised = [
                HTuple(schema, values, formula) for values, formula, _ in tuples
            ]
            database.add(name, ConstraintRelation(schema, materialised, name))
            name = None
        else:
            raise StorageError(f"line {line_no}: unknown directive {keyword!r}")
    if name is not None:
        # A valid header followed by a body that stops mid-relation is the
        # signature of a truncated file: typed corruption naming the
        # relation (the text format's "page"), never a bare ValueError.
        raise CorruptPageError(
            f"relation {name!r} truncated: end of file after {len(tuple_lines)} "
            "tuple line(s) with no 'end' directive (file cut short?)"
        )
    return database
