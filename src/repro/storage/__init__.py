"""Simulated paged storage: the substrate behind the "disk access" metric.

Public surface:

* :class:`PageConfig`, :class:`PageStatistics` — page sizing and counters.
* :class:`BufferPool` — LRU page cache with hit/miss statistics.
* :class:`HeapFile` — paged unindexed relation storage (full-scan baseline).
* :func:`save_database` / :func:`load_database` / :func:`dumps` /
  :func:`loads` — the ``.cdb`` text format.
"""

from .buffer_pool import BufferPool, BufferPoolStatistics
from .heapfile import HeapFile
from .pages import PageConfig, PageStatistics
from .serialization import dumps, load_database, loads, save_database, serialize_tuple

__all__ = [
    "BufferPool",
    "BufferPoolStatistics",
    "HeapFile",
    "PageConfig",
    "PageStatistics",
    "dumps",
    "load_database",
    "loads",
    "save_database",
    "serialize_tuple",
]
