"""Simulated paged storage: the substrate behind the "disk access" metric.

Public surface:

* :class:`PageConfig`, :class:`PageStatistics` — page sizing and counters.
* :class:`BufferPool` — LRU page cache with hit/miss statistics.
* :class:`HeapFile` — paged unindexed relation storage (full-scan baseline).
* :func:`save_database` / :func:`load_database` / :func:`dumps` /
  :func:`loads` — the ``.cdb`` text format.
* :class:`WriteAheadLog` / :class:`DurableDatabase` / :func:`open_durable`
  — the checksummed write-ahead log and crash-recovering open
  (:mod:`repro.storage.wal`).
* :class:`DatabaseSnapshot` / :class:`SnapshotManager` — immutable
  catalog snapshots for readers during hot reload
  (:mod:`repro.storage.snapshot`).
"""

from .buffer_pool import BufferPool, BufferPoolStatistics
from .heapfile import HeapFile
from .pages import PageConfig, PageStatistics
from .serialization import dumps, load_database, loads, save_database, serialize_tuple
from .snapshot import DatabaseSnapshot, SnapshotManager
from .wal import (
    DurableDatabase,
    IngestTransaction,
    RecoveryReport,
    WalRecord,
    WriteAheadLog,
    open_durable,
    wal_path_for,
)

__all__ = [
    "BufferPool",
    "BufferPoolStatistics",
    "DatabaseSnapshot",
    "DurableDatabase",
    "HeapFile",
    "IngestTransaction",
    "PageConfig",
    "PageStatistics",
    "RecoveryReport",
    "SnapshotManager",
    "WalRecord",
    "WriteAheadLog",
    "dumps",
    "load_database",
    "loads",
    "open_durable",
    "save_database",
    "serialize_tuple",
    "wal_path_for",
]
