"""Disk-page model for the simulated storage layer.

The paper's Figures 4 and 5 report **disk accesses**.  Our substitute for
the original Java testbed's disk is explicit accounting: a node of the
R*-tree (or a heap-file page) is one disk page, and every visit counts as
one access.  :class:`PageConfig` turns a byte page size into index fanout
and heap-file rows per page, so experiments can sweep realistic page sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PageStatistics:
    """Read/write counters shared by a storage component."""

    reads: int = 0
    writes: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes


@dataclass(frozen=True)
class PageConfig:
    """Sizing of the simulated disk pages.

    ``page_size`` is in bytes; ``pointer_size`` and ``float_size`` model the
    on-disk footprint of child pointers / payload ids and rectangle
    coordinates.  The defaults (4 KiB pages, 8-byte words) give a 2-D R*
    fanout of ~102 and a 1-D fanout of ~170 — the 1-D trees of the separate
    strategy are shallower *per tree*, which the paper's experiment shapes
    reflect.
    """

    page_size: int = 4096
    pointer_size: int = 8
    float_size: int = 8

    def __post_init__(self) -> None:
        if self.page_size < 128:
            raise ValueError(f"page_size too small to hold a node: {self.page_size}")

    def index_entry_size(self, dimensions: int) -> int:
        """Bytes for one index entry: a k-dim rectangle plus a pointer."""
        return 2 * dimensions * self.float_size + self.pointer_size

    def index_fanout(self, dimensions: int) -> int:
        """Maximum entries per R*-tree node for this page size."""
        fanout = self.page_size // self.index_entry_size(dimensions)
        if fanout < 4:
            raise ValueError(
                f"page size {self.page_size} holds only {fanout} {dimensions}-D entries; "
                "R*-tree nodes need at least 4"
            )
        return fanout

    def rows_per_page(self, row_size: int) -> int:
        """Heap-file rows per page for a serialized row of ``row_size``
        bytes (at least one row per page: oversized rows spill)."""
        return max(1, self.page_size // max(1, row_size))


@dataclass
class PagedComponent:
    """Base helper giving a storage component page-access accounting."""

    config: PageConfig = field(default_factory=PageConfig)
    stats: PageStatistics = field(default_factory=PageStatistics)

    def record_read(self, pages: int = 1) -> None:
        self.stats.reads += pages

    def record_write(self, pages: int = 1) -> None:
        self.stats.writes += pages
