"""Heap files: unindexed paged storage for relations.

A heap file assigns serialized tuples to fixed-size pages; a full scan
reads every page.  This gives the experiments a *full-scan* disk-access
baseline against which index strategies are compared (e.g. experiment 3,
where the separate-index strategy degrades toward scan-like linear cost).

Since the durable write path landed (:mod:`repro.storage.wal`), heap
files are also *appendable*: :meth:`HeapFile.append` packs new tuples
into the tail page (spilling into fresh pages), counting one write per
page touched and **invalidating the columnar page cache** for every
mutated page — a reader must never pair a stale summary block with new
tuple contents.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import CorruptPageError
from ..governor.budget import charge_io as budget_charge_io
from ..model.relation import ConstraintRelation
from ..model.tuples import HTuple
from .pages import PageConfig, PageStatistics
from .serialization import serialize_tuple

#: RT201 annotation: ``_pages`` backs the per-page statistics memo
#: (:meth:`HeapFile.page_cache`); the linter checks every mutation pairs
#: with ``invalidate_page_cache`` in the same function.
__cache_registry__ = {"_pages": "invalidate_page_cache"}


class HeapFile:
    """A paged layout of one relation.

    Tuples are packed greedily into pages by serialized size.  ``scan``
    yields tuples while counting one read per page touched;
    ``page_count`` is the file's size in pages.
    """

    def __init__(self, relation: ConstraintRelation, config: PageConfig | None = None):
        self.config = config or PageConfig()
        self.stats = PageStatistics()
        self._pages: list[list[HTuple]] = []
        self._tail_used = 0
        current: list[HTuple] = []
        used = 0
        for t in relation:
            size = self._row_size(t)
            if current and used + size > self.config.page_size:
                self._pages.append(current)
                current = []
                used = 0
            current.append(t)
            used += size
        if current:
            self._pages.append(current)
            self._tail_used = used
        self._relation = relation
        self._page_caches: dict[int, dict] = {}

    @staticmethod
    def _row_size(t: HTuple) -> int:
        return len(serialize_tuple(t).encode("utf-8")) + 1

    @property
    def relation(self) -> ConstraintRelation:
        return self._relation

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def __len__(self) -> int:
        return len(self._relation)

    def scan(self) -> Iterator[HTuple]:
        """Yield all tuples, reading each page exactly once."""
        for page in self._pages:
            self.stats.reads += 1
            budget_charge_io()
            yield from page

    def read_page(self, index: int) -> list[HTuple]:
        """Tuples of one page (one read).  An index outside the file is a
        typed :class:`~repro.errors.CorruptPageError` naming the page —
        the storage taxonomy, not an unhandled :class:`IndexError` — so a
        directory or catalog pointing past the end of a truncated file
        fails loudly and structurally."""
        if not 0 <= index < len(self._pages):
            raise CorruptPageError(
                f"page {index} out of range: heap file "
                f"{self._relation.name or '(anonymous)'} has {len(self._pages)} page(s)"
            )
        self.stats.reads += 1
        budget_charge_io()
        return list(self._pages[index])

    # -- the write path ----------------------------------------------------

    def append(self, tuples: Iterable[HTuple]) -> int:
        """Append ``tuples``, packing into the tail page first; returns
        the number of pages written (mutated or newly allocated).

        Every mutated page's columnar cache entry is dropped
        (:meth:`invalidate_page_cache`) and the backing relation is
        rebuilt via :meth:`~repro.model.relation.ConstraintRelation.extended`,
        whose result carries a fresh columnar cache — both stale-read
        hazards a write introduces are closed here, not left to callers.
        """
        appended: list[HTuple] = []
        touched: set[int] = set()
        for t in tuples:
            appended.append(t)
            size = self._row_size(t)
            if self._pages and self._tail_used + size <= self.config.page_size:
                self._pages[-1].append(t)
                self._tail_used += size
            else:
                self._pages.append([t])
                self._tail_used = size
            touched.add(len(self._pages) - 1)
        for index in touched:
            self.stats.writes += 1
            self.invalidate_page_cache(index)
        if appended:
            self._relation = self._relation.extended(appended)
        return len(touched)

    def invalidate_page_cache(self, index: int | None = None) -> None:
        """Drop the cached columnar summary blocks for one page (or all
        pages when ``index`` is ``None``).  Called automatically by
        :meth:`append` for every page it mutates; exposed for callers
        that rewrite page contents through other means."""
        if index is None:
            self._page_caches.clear()
        else:
            self._page_caches.pop(index, None)

    def page_cache(self, index: int) -> dict:
        """The columnar summary-block memo for one page (pages are
        immutable between writes, so blocks built over them stay valid
        until :meth:`append` touches the page; repeated columnar scans
        pay the float export once per page).  Building or reusing a
        cached block charges no IO — only :meth:`read_page` does."""
        cache = self._page_caches.get(index)
        if cache is None:
            cache = self._page_caches[index] = {}
        return cache
