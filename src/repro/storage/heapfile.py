"""Heap files: unindexed paged storage for relations.

A heap file assigns serialized tuples to fixed-size pages; a full scan
reads every page.  This gives the experiments a *full-scan* disk-access
baseline against which index strategies are compared (e.g. experiment 3,
where the separate-index strategy degrades toward scan-like linear cost).
"""

from __future__ import annotations

from typing import Iterator

from ..governor.budget import charge_io as budget_charge_io
from ..model.relation import ConstraintRelation
from ..model.tuples import HTuple
from .pages import PageConfig, PageStatistics
from .serialization import serialize_tuple


class HeapFile:
    """A read-only paged layout of one relation.

    Tuples are packed greedily into pages by serialized size.  ``scan``
    yields tuples while counting one read per page touched;
    ``page_count`` is the file's size in pages.
    """

    def __init__(self, relation: ConstraintRelation, config: PageConfig | None = None):
        self.config = config or PageConfig()
        self.stats = PageStatistics()
        self._pages: list[list[HTuple]] = []
        current: list[HTuple] = []
        used = 0
        for t in relation:
            size = len(serialize_tuple(t).encode("utf-8")) + 1
            if current and used + size > self.config.page_size:
                self._pages.append(current)
                current = []
                used = 0
            current.append(t)
            used += size
        if current:
            self._pages.append(current)
        self._relation = relation
        self._page_caches: dict[int, dict] = {}

    @property
    def relation(self) -> ConstraintRelation:
        return self._relation

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def __len__(self) -> int:
        return len(self._relation)

    def scan(self) -> Iterator[HTuple]:
        """Yield all tuples, reading each page exactly once."""
        for page in self._pages:
            self.stats.reads += 1
            budget_charge_io()
            yield from page

    def read_page(self, index: int) -> list[HTuple]:
        """Tuples of one page (one read)."""
        self.stats.reads += 1
        budget_charge_io()
        return list(self._pages[index])

    def page_cache(self, index: int) -> dict:
        """The columnar summary-block memo for one page (pages are
        immutable, so blocks built over them stay valid; repeated columnar
        scans pay the float export once per page).  Building or reusing a
        cached block charges no IO — only :meth:`read_page` does."""
        cache = self._page_caches.get(index)
        if cache is None:
            cache = self._page_caches[index] = {}
        return cache
