"""Snapshot isolation for readers: immutable pinned views of a catalog.

The catalog publication discipline (:mod:`repro.storage.wal` replaces the
:class:`~repro.model.database.Database` object on every commit;
:class:`~repro.model.relation.ConstraintRelation` is immutable) means a
reader that captures a catalog reference sees a frozen, internally
consistent database for as long as it holds the reference — including
every derived structure built over it: heap-file pages, columnar summary
caches, R*-tree boxes, and index versions all hang off the pinned
relation objects.

:class:`DatabaseSnapshot` makes that capture explicit and *observable*:
a version number for the swap protocol and a pin count so the server can
report (and tests can assert) how many readers still sit on a retired
snapshot during hot reload.  :class:`SnapshotManager` is the single
mutation point — :meth:`SnapshotManager.swap` atomically installs a new
catalog and returns the retired snapshot so the caller can drain it.

Everything here is thread-safe: the server touches snapshots both from
its event loop and from executor threads running queries.  The lock
discipline is machine-checked two ways: rule RT103 of ``repro devtools
lint`` verifies every mutation of the fields in ``__lock_registry__``
below sits inside the declared lock, and under ``REPRO_SANITIZE=1`` the
locks come from :func:`repro._concurrency.new_lock` tracked, with every
``pin()``/``unpin()`` reported to the RT502 balance checker.
"""

from __future__ import annotations

from typing import Callable

from .._concurrency import new_lock
from ..devtools import sanitize as _sanitize
from ..model.database import Database

#: RT103 annotation: these fields may only be mutated under the named
#: lock attribute (checked statically by ``repro devtools lint``).
__lock_registry__ = {
    "DatabaseSnapshot": {"_pins": "_lock", "_retired": "_lock"},
    "SnapshotManager": {"_current": "_lock"},
}


class DatabaseSnapshot:
    """One immutable, pinned view of a catalog.

    ``pin()``/``unpin()`` bracket a reader's use; ``readers`` is the
    live pin count.  A snapshot never blocks anything — retirement is
    cooperative (the swap happens immediately; old readers simply finish
    on the old object) — but the count is what lets a drain loop wait
    for quiescence and what proves, in the torn-read tests, that every
    reply was served entirely from one snapshot.
    """

    __slots__ = ("database", "version", "_pins", "_lock", "_retired")

    def __init__(self, database: Database, version: int) -> None:
        self.database = database
        self.version = version
        self._pins = 0
        self._lock = new_lock("storage.snapshot")
        self._retired = False

    @property
    def readers(self) -> int:
        """How many readers currently pin this snapshot."""
        with self._lock:
            return self._pins

    @property
    def retired(self) -> bool:
        """Whether a newer snapshot has been swapped in over this one."""
        with self._lock:
            return self._retired

    def pin(self) -> "DatabaseSnapshot":
        with self._lock:
            self._pins += 1
        _sanitize.note_pin(self)
        return self

    def unpin(self) -> None:
        with self._lock:
            if self._pins <= 0:
                raise RuntimeError(
                    f"snapshot v{self.version} unpinned more times than pinned"
                )
            self._pins -= 1
        _sanitize.note_unpin(self)

    def _retire(self) -> None:
        with self._lock:
            self._retired = True

    def __enter__(self) -> "DatabaseSnapshot":
        return self.pin()

    def __exit__(self, *exc_info: object) -> None:
        self.unpin()

    def __repr__(self) -> str:
        return (
            f"<DatabaseSnapshot v{self.version}: {len(self.database)} relations, "
            f"{self.readers} reader(s){', retired' if self.retired else ''}>"
        )


class SnapshotManager:
    """The single swap point between a live catalog and its readers.

    ``current()`` hands out the active snapshot; ``swap(database)``
    atomically installs a new one (bumping the version) and returns the
    retired snapshot.  ``drain(retired, timeout)`` waits for the retired
    snapshot's pin count to reach zero — the hot-reload path calls it so
    in-flight queries finish on their old view before the old catalog is
    released for collection.
    """

    def __init__(self, database: Database, version: int = 1) -> None:
        self._lock = new_lock("storage.snapshot_manager")
        self._current = DatabaseSnapshot(database, version)

    def current(self) -> DatabaseSnapshot:
        with self._lock:
            return self._current

    @property
    def version(self) -> int:
        return self.current().version

    def swap(self, database: Database) -> DatabaseSnapshot:
        """Install ``database`` as the new current snapshot; returns the
        retired one (its readers keep running on it undisturbed)."""
        with self._lock:
            retired = self._current
            self._current = DatabaseSnapshot(database, retired.version + 1)
        retired._retire()
        return retired

    def drain(
        self,
        retired: DatabaseSnapshot,
        timeout: float,
        *,
        poll: float = 0.005,
        wait: Callable[[float], None] | None = None,
    ) -> bool:
        """Wait until ``retired`` has no pinned readers; returns whether
        quiescence was reached within ``timeout`` seconds.  ``wait`` is
        injectable for tests (defaults to ``time.sleep``)."""
        import time

        sleep = wait if wait is not None else time.sleep
        deadline = time.monotonic() + timeout
        while retired.readers > 0:
            if time.monotonic() >= deadline:
                return False
            sleep(min(poll, max(0.0, deadline - time.monotonic())))
        return True


__all__ = ["DatabaseSnapshot", "SnapshotManager"]
