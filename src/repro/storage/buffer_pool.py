"""An LRU buffer pool over simulated pages.

The paper's access counts are *logical* node accesses.  Real systems sit a
buffer pool between the index and the disk; this module lets experiments
report both logical accesses (every request) and *physical* accesses
(misses only), and is exercised by the page-size ablation bench.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..errors import StorageError


@dataclass
class BufferPoolStatistics:
    requests: int = 0
    hits: int = 0
    evictions: int = 0

    @property
    def misses(self) -> int:
        return self.requests - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def reset(self) -> None:
        self.requests = 0
        self.hits = 0
        self.evictions = 0


class BufferPool:
    """A fixed-capacity LRU cache of page identifiers.

    Pages are opaque hashable identifiers (e.g. ``(tree_id, node_id)``).
    ``access`` returns True on a hit, False on a miss (a simulated disk
    read); misses beyond capacity evict the least recently used page.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise StorageError(f"buffer pool capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._pages: OrderedDict[object, None] = OrderedDict()
        self.stats = BufferPoolStatistics()

    def access(self, page_id: object) -> bool:
        self.stats.requests += 1
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.stats.hits += 1
            return True
        self._pages[page_id] = None
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
            self.stats.evictions += 1
        return False

    def __contains__(self, page_id: object) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def clear(self) -> None:
        self._pages.clear()

    def __repr__(self) -> str:
        return (
            f"<BufferPool {len(self._pages)}/{self.capacity} pages, "
            f"hit rate {self.stats.hit_rate:.1%}>"
        )
