"""An LRU buffer pool over simulated pages.

The paper's access counts are *logical* node accesses.  Real systems sit a
buffer pool between the index and the disk; this module lets experiments
report both logical accesses (every request) and *physical* accesses
(misses only), and is exercised by the page-size ablation bench.

Page identifiers must be **stable**: the R*-tree keys pages as
``(tree_id, node_id)`` with monotonic never-reused ids (keying on
``id(node)`` inflates hit rates with phantom hits once CPython recycles a
discarded node's address).

Reset contract (shared with :meth:`repro.indexing.RStarTree.reset_counters`):
``clear()`` drops the cached pages *and* zeroes :attr:`stats`; a tree's
``reset_counters()`` zeroes the attached pool's stats while leaving pages
resident.  Either way, no counter survives a reset half-zeroed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..errors import StorageError
from ..obs import (
    POOL_EVICTIONS,
    POOL_HITS,
    POOL_MISSES,
    POOL_REQUESTS,
    MetricsRegistry,
)


@dataclass
class BufferPoolStatistics:
    requests: int = 0
    hits: int = 0
    evictions: int = 0

    @property
    def misses(self) -> int:
        return self.requests - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def reset(self) -> None:
        self.requests = 0
        self.hits = 0
        self.evictions = 0


class BufferPool:
    """A fixed-capacity LRU cache of page identifiers.

    Pages are opaque hashable identifiers (e.g. ``(tree_id, node_id)``).
    ``access`` returns True on a hit, False on a miss (a simulated disk
    read); misses beyond capacity evict the least recently used page.
    """

    def __init__(self, capacity: int, registry: MetricsRegistry | None = None):
        if capacity < 1:
            raise StorageError(f"buffer pool capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._pages: OrderedDict[object, None] = OrderedDict()
        self.stats = BufferPoolStatistics()
        self._registry = registry

    def bind_registry(self, registry: MetricsRegistry | None) -> None:
        """Report requests/hits/misses/evictions to ``registry`` too."""
        self._registry = registry

    def access(self, page_id: object) -> bool:
        self.stats.requests += 1
        registry = self._registry
        if registry is not None:
            registry.add(POOL_REQUESTS)
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.stats.hits += 1
            if registry is not None:
                registry.add(POOL_HITS)
            return True
        if registry is not None:
            registry.add(POOL_MISSES)
        self._pages[page_id] = None
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
            self.stats.evictions += 1
            if registry is not None:
                registry.add(POOL_EVICTIONS)
        return False

    def __contains__(self, page_id: object) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def clear(self) -> None:
        """Drop every cached page and zero the statistics (see the module
        docstring for the reset contract)."""
        self._pages.clear()
        self.stats.reset()

    def __repr__(self) -> str:
        return (
            f"<BufferPool {len(self._pages)}/{self.capacity} pages, "
            f"hit rate {self.stats.hit_rate:.1%}>"
        )
