"""The durable write path: a checksummed write-ahead log over ``.cdb``.

The read-mostly ``.cdb`` image (:mod:`repro.storage.serialization`) gains
a crash-safe mutation protocol:

1. every mutation is first appended to a **write-ahead log** (the
   ``<db>.cdb.wal`` sidecar) as a length-prefixed, CRC32-checksummed
   binary record;
2. a transaction becomes durable when its ``commit`` record is written
   and the log is ``fsync``\\ ed — only then is the in-memory catalog
   updated (and only by *publishing a fresh* :class:`Database`, so
   readers pinned to the old catalog never observe a half-applied
   transaction);
3. **recovery-on-open** scans the log, truncates any torn tail (a crash
   mid-append leaves a partial record; an fsync barrier guarantees
   nothing *before* the tail is torn), and replays exactly the
   transactions whose commit record survived — every crash point
   recovers to the last committed state, a property the crash-injection
   matrix in ``tests/fault/test_wal_crash.py`` proves byte by byte;
4. :meth:`DurableDatabase.checkpoint` folds the log into the image
   (atomic ``write-temp → fsync → rename``) and resets the log, bounding
   recovery time.

Record framing
--------------

The log starts with the 8-byte magic ``CDBWAL01``.  Each record is::

    [4-byte big-endian payload length][4-byte big-endian CRC32][payload]

where the payload is one UTF-8 JSON object.  A record whose bytes are
all present but whose CRC32 disagrees is *corruption* (bit rot) and
raises :class:`~repro.errors.CorruptPageError`; a record cut short at
end-of-file is a *torn write* (crash) and is truncated away.  Payload
rows reuse the ``.cdb`` ``tuple`` line format, so the two layers share
one serializer and one parser.

Record kinds: ``begin``/``commit`` bracket a transaction; ``put``
(create or replace a whole relation), ``append`` (add tuples to an
existing relation), and ``drop`` are the operations.  Uncommitted
records are left in place but never replayed — they are dead weight
reclaimed by the next checkpoint.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Callable, Iterable, Iterator, Mapping

from ..errors import CorruptPageError, StorageError
from ..model.database import Database
from ..model.relation import ConstraintRelation
from ..model.schema import Attribute, Schema
from ..model.tuples import HTuple
from ..model.types import AttributeKind, DataType
from ..obs import (
    WAL_APPENDS,
    WAL_CHECKPOINTS,
    WAL_COMMITS,
    WAL_FSYNCS,
    WAL_RECOVERIES,
    WAL_REPLAYED,
    WAL_TRUNCATED_BYTES,
    record as obs_record,
)
from .serialization import load_database, parse_tuple_line, save_relation, serialize_tuple

MAGIC = b"CDBWAL01"
_HEADER = struct.Struct(">II")

#: Operations a WAL record may carry.
BEGIN = "begin"
COMMIT = "commit"
PUT = "put"
APPEND = "append"
DROP = "drop"
_OPS = (BEGIN, COMMIT, PUT, APPEND, DROP)

#: Default sidecar suffix: ``db.cdb`` logs to ``db.cdb.wal``.
WAL_SUFFIX = ".wal"


def wal_path_for(database_path: str | Path) -> Path:
    """The sidecar log path for a database image path."""
    path = Path(database_path)
    return path.with_name(path.name + WAL_SUFFIX)


# -- records -------------------------------------------------------------------


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record.

    ``schema`` holds ``(name, type, kind)`` triples and ``rows`` the
    ``.cdb`` tuple-line bodies — both empty for ``begin``/``commit``/
    ``drop`` records.
    """

    op: str
    txn: int
    relation: str | None = None
    schema: tuple[tuple[str, str, str], ...] = ()
    rows: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise StorageError(f"unknown WAL operation {self.op!r}")
        if self.op in (PUT, APPEND, DROP) and not self.relation:
            raise StorageError(f"WAL {self.op!r} record needs a relation name")

    def to_payload(self) -> dict:
        payload: dict = {"op": self.op, "txn": self.txn}
        if self.relation is not None:
            payload["relation"] = self.relation
        if self.schema:
            payload["schema"] = [list(spec) for spec in self.schema]
        if self.rows:
            payload["rows"] = list(self.rows)
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping) -> "WalRecord":
        try:
            return cls(
                op=payload["op"],
                txn=int(payload["txn"]),
                relation=payload.get("relation"),
                schema=tuple(tuple(spec) for spec in payload.get("schema", ())),
                rows=tuple(payload.get("rows", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptPageError(f"malformed WAL record payload: {exc}") from None


def encode_record(record: WalRecord) -> bytes:
    """Frame one record: length prefix, CRC32, JSON payload."""
    payload = json.dumps(record.to_payload(), separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _HEADER.pack(len(payload), crc) + payload


def decode_payload(payload: bytes) -> WalRecord:
    try:
        decoded = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptPageError(
            f"WAL record passed its checksum but is not valid JSON: {exc}"
        ) from None
    if not isinstance(decoded, dict):
        raise CorruptPageError(
            f"WAL record payload must be a JSON object, got {type(decoded).__name__}"
        )
    return WalRecord.from_payload(decoded)


# -- the log -------------------------------------------------------------------


@dataclass(frozen=True)
class StructuralRecovery:
    """What opening the log found: the valid records and any torn tail."""

    records: tuple[WalRecord, ...]
    truncated_bytes: int
    scanned_bytes: int


def scan_log_bytes(data: bytes) -> StructuralRecovery:
    """Scan raw log bytes into valid records plus the torn-tail size.

    Pure (no IO): the crash-matrix tests call it directly on byte
    prefixes.  A structurally complete record failing its CRC raises
    :class:`CorruptPageError`; an incomplete record at the tail — the
    only kind of damage an append-only crash can cause — is reported as
    ``truncated_bytes`` for the caller to cut off.
    """
    if not data:
        return StructuralRecovery((), 0, 0)
    if len(data) < len(MAGIC):
        # Crash while writing the very first header bytes.
        return StructuralRecovery((), len(data), 0)
    if data[: len(MAGIC)] != MAGIC:
        raise CorruptPageError(
            f"WAL header mismatch: expected {MAGIC!r}, found {data[:len(MAGIC)]!r}"
        )
    records: list[WalRecord] = []
    offset = len(MAGIC)
    good = offset
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            break  # torn header
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        if start + length > len(data):
            break  # torn payload
        payload = data[start : start + length]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise CorruptPageError(
                f"WAL record at byte {offset} failed its CRC32 check "
                f"(recorded {crc:08x}, computed {zlib.crc32(payload) & 0xFFFFFFFF:08x})"
            )
        records.append(decode_payload(payload))
        offset = start + length
        good = offset
    return StructuralRecovery(tuple(records), len(data) - good, good)


class WriteAheadLog:
    """An append-only checksummed record log with fsync discipline.

    Opening performs structural recovery: the file is scanned, any torn
    tail is truncated, and the valid records are available via
    :attr:`records`.  ``fsync=False`` trades durability for speed
    (benchmarks; tests that drive thousands of logs).

    ``file_wrapper`` wraps the append handle — the crash-injection
    hook used by :func:`repro.governor.faultinject.FaultyWAL`.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: bool = True,
        file_wrapper: Callable[[BinaryIO], BinaryIO] | None = None,
    ) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self.truncated_bytes = 0
        self._records: list[WalRecord] = []
        self._closed = False
        self._recover_structure()
        raw: BinaryIO = open(self.path, "ab")
        self._file: BinaryIO = file_wrapper(raw) if file_wrapper is not None else raw
        if self.position == 0:
            self._write(MAGIC)
            self.sync()

    def _recover_structure(self) -> None:
        if not self.path.exists():
            self._position = 0
            return
        data = self.path.read_bytes()
        recovery = scan_log_bytes(data)
        self._records = list(recovery.records)
        if recovery.truncated_bytes:
            keep = len(data) - recovery.truncated_bytes
            with open(self.path, "r+b") as handle:
                handle.truncate(keep)
                handle.flush()
                os.fsync(handle.fileno())
            self.truncated_bytes = recovery.truncated_bytes
            obs_record(WAL_TRUNCATED_BYTES, recovery.truncated_bytes)
            self._position = keep
        else:
            self._position = len(data)

    # -- append path -------------------------------------------------------

    @property
    def position(self) -> int:
        """The append offset: bytes of durable-format log so far."""
        return self._position

    @property
    def records(self) -> tuple[WalRecord, ...]:
        """Every structurally valid record currently in the log."""
        return tuple(self._records)

    def _write(self, data: bytes) -> None:
        try:
            self._file.write(data)
        finally:
            # A partial write (crash injection) still moved the file
            # position; recovery only ever trusts on-disk bytes, so the
            # in-memory position is best-effort from here on.
            self._position += len(data)

    def append(self, record: WalRecord) -> int:
        """Append one record (no fsync — call :meth:`sync` to make it
        durable); returns the record's end offset."""
        if self._closed:
            raise StorageError(f"WAL {self.path} is closed")
        self._write(encode_record(record))
        self._records.append(record)
        obs_record(WAL_APPENDS)
        return self._position

    def sync(self) -> None:
        """Flush and (unless ``fsync=False``) ``fsync`` the log — the
        durability barrier of the commit protocol."""
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())
        obs_record(WAL_FSYNCS)

    def reset(self) -> None:
        """Truncate the log back to a bare header (post-checkpoint)."""
        self._file.close()
        with open(self.path, "wb") as handle:
            handle.write(MAGIC)
            handle.flush()
            os.fsync(handle.fileno())
        self._records = []
        self._position = len(MAGIC)
        self.truncated_bytes = 0
        self._file = open(self.path, "ab")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.flush()
        except ValueError:  # already closed underneath us
            pass
        self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- replay --------------------------------------------------------------------


def committed_transactions(records: Iterable[WalRecord]) -> list[list[WalRecord]]:
    """Group records into transactions and keep only committed ones, in
    commit order.  A ``begin`` without a ``commit`` (crash before the
    barrier) is rolled back by omission."""
    ops: dict[int, list[WalRecord]] = {}
    committed: list[list[WalRecord]] = []
    for record in records:
        if record.op == BEGIN:
            ops[record.txn] = []
        elif record.op == COMMIT:
            committed.append(ops.pop(record.txn, []))
        else:
            ops.setdefault(record.txn, []).append(record)
    return committed


def _relation_from_record(record: WalRecord, line_no: int = 0) -> ConstraintRelation:
    try:
        attributes = [
            Attribute(name, DataType(type_name), AttributeKind(kind_name))
            for name, type_name, kind_name in record.schema
        ]
    except (TypeError, ValueError) as exc:
        raise CorruptPageError(f"WAL put record carries a bad schema: {exc}") from None
    schema = Schema(attributes)
    tuples = []
    for row in record.rows:
        values, formula = parse_tuple_line(row, line_no)
        tuples.append(HTuple(schema, values, formula))
    return ConstraintRelation(schema, tuples, record.relation)


def apply_record(database: Database, record: WalRecord) -> None:
    """Apply one ``put``/``append``/``drop`` record to a catalog."""
    assert record.relation is not None
    if record.op == PUT:
        database.add(record.relation, _relation_from_record(record), replace=True)
    elif record.op == APPEND:
        base = database.get(record.relation)
        appended = []
        for row in record.rows:
            values, formula = parse_tuple_line(row, 0)
            appended.append(HTuple(base.schema, values, formula))
        database.add(record.relation, base.extended(appended), replace=True)
    elif record.op == DROP:
        database.drop(record.relation)
    else:  # pragma: no cover - begin/commit never reach apply
        raise StorageError(f"cannot apply WAL control record {record.op!r}")


def replay(database: Database, records: Iterable[WalRecord]) -> int:
    """Replay every committed transaction into ``database``; returns the
    number of operation records applied."""
    applied = 0
    for transaction in committed_transactions(records):
        for record in transaction:
            apply_record(database, record)
            applied += 1
    if applied:
        obs_record(WAL_REPLAYED, applied)
    return applied


# -- transactions --------------------------------------------------------------


def _schema_specs(schema: Schema) -> tuple[tuple[str, str, str], ...]:
    return tuple(
        (attr.name, attr.data_type.value, attr.kind.value) for attr in schema
    )


def _tuple_rows(tuples: Iterable[HTuple]) -> tuple[str, ...]:
    # serialize_tuple emits "tuple <body>"; the WAL stores just the body.
    rows = []
    for t in tuples:
        line = serialize_tuple(t)
        rows.append(line[len("tuple") :].lstrip())
    return tuple(rows)


class IngestTransaction:
    """One write transaction against a :class:`DurableDatabase`.

    Operations are logged immediately (write-ahead); nothing touches the
    live catalog until :meth:`commit` has made the log durable.  Leaving
    the ``with`` block without committing *aborts*: the logged records
    stay in the file but, lacking a commit record, are never replayed.
    """

    def __init__(self, durable: "DurableDatabase", txn: int) -> None:
        self._durable = durable
        self._txn = txn
        self._ops: list[WalRecord] = []
        self.committed = False
        durable.wal.append(WalRecord(BEGIN, txn))

    def _log(self, record: WalRecord) -> None:
        if self.committed:
            raise StorageError("transaction already committed")
        self._durable.wal.append(record)
        self._ops.append(record)

    def put_relation(self, name: str, relation: ConstraintRelation) -> None:
        """Create or replace ``name`` with ``relation``'s contents."""
        self._log(
            WalRecord(
                PUT,
                self._txn,
                relation=name,
                schema=_schema_specs(relation.schema),
                rows=_tuple_rows(relation),
            )
        )

    def append_tuples(self, name: str, tuples: Iterable[HTuple]) -> None:
        """Append ``tuples`` to the existing relation ``name``."""
        base = self._durable.database.get(name)  # validates existence now
        materialized = list(tuples)
        for t in materialized:
            if t.schema != base.schema:
                raise StorageError(
                    f"appended tuple schema does not match relation {name!r}"
                )
        self._log(WalRecord(APPEND, self._txn, relation=name, rows=_tuple_rows(materialized)))

    def drop_relation(self, name: str) -> None:
        self._durable.database.get(name)  # validates existence now
        self._log(WalRecord(DROP, self._txn, relation=name))

    def commit(self) -> None:
        """Write the commit record, fsync (the durability point), then
        publish a fresh catalog with the transaction applied."""
        if self.committed:
            raise StorageError("transaction already committed")
        self._durable.wal.append(WalRecord(COMMIT, self._txn))
        self._durable.wal.sync()
        self.committed = True
        obs_record(WAL_COMMITS)
        self._durable._publish(self._ops)

    def __enter__(self) -> "IngestTransaction":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        # Clean exit without an explicit commit() commits; an exception
        # aborts (no commit record -> rolled back at recovery).
        if exc_type is None and not self.committed:
            self.commit()


# -- the durable database ------------------------------------------------------


@dataclass(frozen=True)
class RecoveryReport:
    """What recovery-on-open did."""

    records: int  #: structurally valid records found in the log
    committed_transactions: int
    replayed_records: int  #: operation records applied to the image
    rolled_back_transactions: int  #: begun but never committed
    truncated_bytes: int  #: torn tail cut off the log

    def to_dict(self) -> dict[str, int]:
        return {
            "records": self.records,
            "committed_transactions": self.committed_transactions,
            "replayed_records": self.replayed_records,
            "rolled_back_transactions": self.rolled_back_transactions,
            "truncated_bytes": self.truncated_bytes,
        }


class DurableDatabase:
    """A ``.cdb`` image plus its write-ahead log, recovered on open.

    :attr:`database` is the current catalog — the image with every
    committed log transaction replayed.  Each committed transaction
    publishes a *new* :class:`Database` (relations shared by reference),
    so any snapshot of a previous catalog stays internally consistent.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: bool = True,
        wal: WriteAheadLog | None = None,
    ) -> None:
        self.path = Path(path)
        self.wal = wal if wal is not None else WriteAheadLog(wal_path_for(path), fsync=fsync)
        if self.path.exists():
            database = load_database(self.path)
        else:
            database = Database()
        records = self.wal.records
        committed = committed_transactions(records)
        begun = {r.txn for r in records if r.op == BEGIN}
        done = {r.txn for r in records if r.op == COMMIT}
        replayed = replay(database, records)
        self._database = database
        self.version = 1
        self.recovery = RecoveryReport(
            records=len(records),
            committed_transactions=len(committed),
            replayed_records=replayed,
            rolled_back_transactions=len(begun - done),
            truncated_bytes=self.wal.truncated_bytes,
        )
        if records or self.wal.truncated_bytes:
            obs_record(WAL_RECOVERIES)
        self._next_txn = 1 + max((r.txn for r in records), default=0)

    @property
    def database(self) -> Database:
        """The current catalog (replace-on-publish: safe to snapshot)."""
        return self._database

    def begin(self) -> IngestTransaction:
        txn = self._next_txn
        self._next_txn += 1
        return IngestTransaction(self, txn)

    def _publish(self, ops: list[WalRecord]) -> None:
        fresh = Database({name: self._database[name] for name in self._database})
        for record in ops:
            apply_record(fresh, record)
        self._database = fresh
        self.version += 1

    def checkpoint(self) -> None:
        """Fold the log into the image: atomically rewrite the ``.cdb``
        (write temp, fsync, rename, fsync directory) and reset the log.
        Crash-ordering: the image is durable *before* the log is
        truncated, so a crash between the two replays harmlessly (replay
        of an already-applied ``put`` is idempotent; ``append``/``drop``
        records are subsumed by the rewritten image and the reset)."""
        buffer = io.StringIO()
        buffer.write("# CQA/CDB database file\n")
        for name in self._database:
            save_relation(self._database[name], buffer, name)
            buffer.write("\n")
        atomic_write_text(self.path, buffer.getvalue())
        self.wal.reset()
        obs_record(WAL_CHECKPOINTS)

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "DurableDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def open_durable(
    path: str | Path, *, fsync: bool = True, wal: WriteAheadLog | None = None
) -> DurableDatabase:
    """Open a database image with crash recovery: load the ``.cdb``,
    truncate any torn WAL tail, replay committed transactions.  The
    returned handle's :attr:`~DurableDatabase.recovery` reports what was
    done."""
    return DurableDatabase(path, fsync=fsync, wal=wal)


def atomic_write_text(path: str | Path, text: str) -> None:
    """Durably replace ``path``'s contents: write a sibling temp file,
    fsync it, ``os.replace`` into place, fsync the directory — a reader
    (or a crash) sees either the old file or the new one, never a
    partial write."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    directory = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(directory)
    finally:
        os.close(directory)


def iter_log_records(path: str | Path) -> Iterator[WalRecord]:
    """Read-only scan of a log file's valid records (diagnostics/CLI)."""
    log_path = Path(path)
    if not log_path.exists():
        return iter(())
    return iter(scan_log_bytes(log_path.read_bytes()).records)


__all__ = [
    "APPEND",
    "BEGIN",
    "COMMIT",
    "DROP",
    "DurableDatabase",
    "IngestTransaction",
    "MAGIC",
    "PUT",
    "RecoveryReport",
    "StructuralRecovery",
    "WAL_SUFFIX",
    "WalRecord",
    "WriteAheadLog",
    "apply_record",
    "atomic_write_text",
    "committed_transactions",
    "decode_payload",
    "encode_record",
    "iter_log_records",
    "open_durable",
    "replay",
    "scan_log_bytes",
    "wal_path_for",
]
