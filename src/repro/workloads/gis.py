"""Synthetic GIS scenarios for the whole-feature operators.

The paper motivates Buffer-Join and k-Nearest with GIS workloads (parcels
near a road, the closest shelters).  This generator builds a town map as
feature sets / spatial constraint relations:

* ``parcels`` — a jittered grid of rectangular land parcels;
* ``roads`` — monotone polylines crossing the map (as unions of degenerate
  convex parts, the section 6.2 trajectory representation);
* ``shelters`` — small square features scattered across the map.

Everything is seeded; coordinates are kept as exact rationals with limited
denominators so constraint conversions stay small.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction

from ..model.database import Database
from ..spatial.features import Feature, FeatureSet
from ..spatial.geometry import Point
from ..spatial.polygon import ConvexPolygon
from ..spatial.vector import PolylineFeature


@dataclass
class GisScenario:
    """A generated town map."""

    parcels: FeatureSet
    roads: FeatureSet
    shelters: FeatureSet
    map_size: Fraction

    def to_database(self) -> Database:
        """The spatial constraint relation form of every layer."""
        return Database(
            {
                "Parcels": self.parcels.to_relation("Parcels"),
                "Roads": self.roads.to_relation("Roads"),
                "Shelters": self.shelters.to_relation("Shelters"),
            }
        )


def _jitter(rng: random.Random, magnitude: int) -> Fraction:
    return Fraction(rng.randint(-magnitude, magnitude), 10)


def generate_gis_scenario(
    parcels_per_side: int = 8,
    roads: int = 4,
    shelters: int = 12,
    seed: int = 99,
) -> GisScenario:
    """Build a scenario; all feature sets share one coordinate frame."""
    rng = random.Random(seed)
    cell = Fraction(10)
    map_size = parcels_per_side * cell

    parcel_features = []
    for row in range(parcels_per_side):
        for col in range(parcels_per_side):
            x0 = col * cell + Fraction(1) + _jitter(rng, 5)
            y0 = row * cell + Fraction(1) + _jitter(rng, 5)
            width = cell - Fraction(2) + _jitter(rng, 8)
            height = cell - Fraction(2) + _jitter(rng, 8)
            parcel_features.append(
                Feature(
                    f"parcel_{row}_{col}",
                    [ConvexPolygon.box(x0, y0, x0 + width, y0 + height)],
                )
            )

    road_features = []
    for i in range(roads):
        y = Fraction(rng.randint(0, int(map_size)))
        points = [Point(Fraction(0), y)]
        x = Fraction(0)
        while x < map_size:
            x = min(map_size, x + rng.randint(5, 15))
            y = max(Fraction(0), min(map_size, y + rng.randint(-8, 8)))
            points.append(Point(x, y))
        road_features.append(PolylineFeature(f"road_{i}", points).to_feature())

    shelter_features = []
    for i in range(shelters):
        x0 = Fraction(rng.randint(0, int(map_size) - 2))
        y0 = Fraction(rng.randint(0, int(map_size) - 2))
        shelter_features.append(
            Feature(f"shelter_{i}", [ConvexPolygon.box(x0, y0, x0 + 1, y0 + 1)])
        )

    return GisScenario(
        parcels=FeatureSet(parcel_features),
        roads=FeatureSet(road_features),
        shelters=FeatureSet(shelter_features),
        map_size=map_size,
    )
