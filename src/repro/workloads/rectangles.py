"""The section 5.4 synthetic rectangle workload.

The paper's recipe, verbatim:

1. "Randomly generate 10,000 bounding boxes representing data tuples, with
   height and width in [1,100]; store them in the data file."
2. "Randomly generate 100 queries, which are rectangles of height and width
   in [1,100] … For experiment 3, generate 500 queries."
3. "All rectangles are obtained by randomly generating (a) the upper-left
   coordinates, and (b) the height and width of each rectangle.  All
   coordinates are between [0, 3000]."

Constraint-attribute relations (experiments 1-A/2-A) store each box as a
constraint tuple over ``x``/``y`` ranges; relational-attribute relations
(1-B/2-B) store "a single value for any given tuple" — the box's
upper-left corner point.  Everything is seeded for reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from ..constraints import Conjunction, LinearExpression, ge, le
from ..model.relation import ConstraintRelation
from ..model.schema import Schema, constraint, relational
from ..model.tuples import HTuple
from ..model.types import DataType


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle: upper-left corner plus width/height.

    Following the paper's convention, the rectangle extends right and
    *down* from the upper-left corner: x spans [x, x+width], y spans
    [y-height, y].
    """

    x: float
    y: float
    width: float
    height: float

    @property
    def x_interval(self) -> tuple[float, float]:
        return (self.x, self.x + self.width)

    @property
    def y_interval(self) -> tuple[float, float]:
        return (self.y - self.height, self.y)

    @property
    def area(self) -> float:
        return self.width * self.height

    def intersects(self, other: "Rect") -> bool:
        ax0, ax1 = self.x_interval
        bx0, bx1 = other.x_interval
        ay0, ay1 = self.y_interval
        by0, by1 = other.y_interval
        return ax0 <= bx1 and bx0 <= ax1 and ay0 <= by1 and by0 <= ay1

    def intersects_x(self, other: "Rect") -> bool:
        ax0, ax1 = self.x_interval
        bx0, bx1 = other.x_interval
        return ax0 <= bx1 and bx0 <= ax1

    def contains_point(self, x: float, y: float) -> bool:
        x0, x1 = self.x_interval
        y0, y1 = self.y_interval
        return x0 <= x <= x1 and y0 <= y <= y1

    def contains_point_x(self, x: float) -> bool:
        x0, x1 = self.x_interval
        return x0 <= x <= x1


COORDINATE_RANGE = (0.0, 3000.0)
EXTENT_RANGE = (1.0, 100.0)
DATA_SIZE = 10_000
QUERY_COUNT = 100
QUERY_COUNT_EXPT3 = 500


def _random_rect(rng: random.Random) -> Rect:
    return Rect(
        x=rng.uniform(*COORDINATE_RANGE),
        y=rng.uniform(*COORDINATE_RANGE),
        width=rng.uniform(*EXTENT_RANGE),
        height=rng.uniform(*EXTENT_RANGE),
    )


def generate_data(count: int = DATA_SIZE, seed: int = 54) -> list[Rect]:
    """The data file: ``count`` random bounding boxes."""
    rng = random.Random(seed)
    return [_random_rect(rng) for _ in range(count)]


def generate_queries(count: int = QUERY_COUNT, seed: int = 5403) -> list[Rect]:
    """The query file: ``count`` random query rectangles."""
    rng = random.Random(seed)
    return [_random_rect(rng) for _ in range(count)]


def generate_correlated_data(
    count: int = DATA_SIZE, seed: int = 57, spread: float = 100.0
) -> list[Rect]:
    """Diagonally correlated boxes: y ≈ x ± ``spread``.

    This realises the section 5.3 scenario behind experiment 3: with data
    on the diagonal, the conjuncts ``x < a`` and ``y > b`` (for ``b``
    comfortably above ``a``) each keep roughly half the tuples, yet almost
    no tuple satisfies both — the conjunction selects an off-diagonal
    corner.
    """
    rng = random.Random(seed)
    low, high = COORDINATE_RANGE
    data = []
    for _ in range(count):
        x = rng.uniform(low, high)
        y = min(high, max(low, x + rng.uniform(-spread, spread)))
        data.append(
            Rect(
                x=x,
                y=y,
                width=rng.uniform(*EXTENT_RANGE),
                height=rng.uniform(*EXTENT_RANGE),
            )
        )
    return data


def _fraction(value: float) -> Fraction:
    # 6 decimal places keeps the constraint coefficients small while
    # preserving the generated geometry to far beyond query resolution.
    return Fraction(round(value * 1_000_000), 1_000_000)


def constraint_schema() -> Schema:
    return Schema([constraint("x"), constraint("y")])


def relational_schema() -> Schema:
    return Schema(
        [relational("x", DataType.RATIONAL), relational("y", DataType.RATIONAL)]
    )


def build_constraint_relation(rects: Sequence[Rect], name: str = "boxes") -> ConstraintRelation:
    """Experiments 1-A / 2-A: both attributes are constraint attributes;
    each tuple is the box's x/y range constraints."""
    schema = constraint_schema()
    x = LinearExpression.variable("x")
    y = LinearExpression.variable("y")
    tuples = []
    for rect in rects:
        x0, x1 = (_fraction(v) for v in rect.x_interval)
        y0, y1 = (_fraction(v) for v in rect.y_interval)
        formula = Conjunction([ge(x, x0), le(x, x1), ge(y, y0), le(y, y1)])
        tuples.append(HTuple(schema, {}, formula))
    return ConstraintRelation(schema, tuples, name)


def build_relational_relation(rects: Sequence[Rect], name: str = "points") -> ConstraintRelation:
    """Experiments 1-B / 2-B: both attributes are relational — each tuple
    is a single point (the box's upper-left corner)."""
    schema = relational_schema()
    tuples = [
        HTuple(schema, {"x": _fraction(rect.x), "y": _fraction(rect.y)})
        for rect in rects
    ]
    return ConstraintRelation(schema, tuples, name)


def query_box_two_attributes(query: Rect) -> dict[str, tuple[float, float]]:
    """The index query box when both attributes are constrained."""
    return {"x": query.x_interval, "y": query.y_interval}


def query_box_one_attribute(query: Rect, attribute: str = "x") -> dict[str, tuple[float, float]]:
    """The index query box when only one attribute is constrained; for the
    joint index "the bound of the other attribute is set from minimum to
    maximum" (handled inside the strategy)."""
    interval = query.x_interval if attribute == "x" else query.y_interval
    return {attribute: interval}


def halfopen_queries(
    count: int = QUERY_COUNT_EXPT3, seed: int = 5405, gap: float = 300.0
) -> list[dict[str, tuple[float, float]]]:
    """Experiment 3 queries: half-open conjunctions ``x < a ∧ y > b``.

    ``a`` is drawn near the middle of the domain and ``b = a + gap``, so
    each conjunct alone keeps roughly 40-55% of uniformly or diagonally
    distributed data.  Over :func:`generate_correlated_data` (diagonal
    data, ``spread < gap``) "very few tuples satisfy both of these
    constraints simultaneously" — section 5.3's scenario verbatim.
    """
    rng = random.Random(seed)
    low, high = COORDINATE_RANGE
    mid = (low + high) / 2
    queries = []
    for _ in range(count):
        a = rng.uniform(mid - 200.0, mid + 100.0)  # x < a keeps ~43-53%
        b = a + gap  # y > b keeps ~37-47%
        queries.append({"x": (low - 1.0, a), "y": (b, high + 101.0)})
    return queries


def brute_force_matches(
    rects: Iterable[Rect],
    box: dict[str, tuple[float, float]],
    as_points: bool = False,
) -> set[int]:
    """Reference evaluation of an interval query against the raw data
    (used by tests to validate both index strategies).

    ``as_points=True`` evaluates against the relational representation
    (each tuple is the box's upper-left corner point).
    """
    matches = set()
    for i, rect in enumerate(rects):
        ok = True
        for attribute, (low, high) in box.items():
            if as_points:
                value = rect.x if attribute == "x" else rect.y
                r_low = r_high = value
            else:
                r_low, r_high = rect.x_interval if attribute == "x" else rect.y_interval
            if r_high < low or high < r_low:
                ok = False
                break
        if ok:
            matches.add(i)
    return matches
