"""Workload generators for the paper's experiments and case studies.

* :mod:`~repro.workloads.rectangles` — the section 5.4 random-rectangle
  data and query files.
* :mod:`~repro.workloads.hurricane` — the Figure 2 Hurricane database,
  the five section 3.3 query scripts, and a scalable generator.
* :mod:`~repro.workloads.gis` — synthetic town maps for the whole-feature
  operators.
"""

from .gis import GisScenario, generate_gis_scenario
from .hurricane import (
    figure2_database,
    generate_hurricane_database,
    hurricane_schema,
    land_schema,
    landownership_schema,
    paper_queries,
    path_segment_tuple,
)
from .rectangles import (
    COORDINATE_RANGE,
    DATA_SIZE,
    EXTENT_RANGE,
    QUERY_COUNT,
    QUERY_COUNT_EXPT3,
    Rect,
    brute_force_matches,
    build_constraint_relation,
    build_relational_relation,
    constraint_schema,
    generate_correlated_data,
    generate_data,
    generate_queries,
    halfopen_queries,
    query_box_one_attribute,
    query_box_two_attributes,
    relational_schema,
)

__all__ = [
    "COORDINATE_RANGE",
    "DATA_SIZE",
    "EXTENT_RANGE",
    "GisScenario",
    "QUERY_COUNT",
    "QUERY_COUNT_EXPT3",
    "Rect",
    "brute_force_matches",
    "build_constraint_relation",
    "build_relational_relation",
    "constraint_schema",
    "figure2_database",
    "generate_correlated_data",
    "generate_data",
    "generate_gis_scenario",
    "generate_hurricane_database",
    "generate_queries",
    "halfopen_queries",
    "hurricane_schema",
    "land_schema",
    "landownership_schema",
    "paper_queries",
    "path_segment_tuple",
    "query_box_one_attribute",
    "query_box_two_attributes",
    "relational_schema",
]
