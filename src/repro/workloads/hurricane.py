"""The Hurricane database: the paper's heterogeneous case study (§3.3).

Three relations::

    Land          [landId: string, relational; x, y: rational, constraint]
    Landownership [name: string, relational; t: rational, constraint;
                   landID: string, relational]
    Hurricane     [t, x, y: rational, constraint]

:func:`figure2_database` builds a concrete instance in the spirit of
Figure 2: four rectangular land parcels, a cadastral history, and a
piecewise-linear hurricane path whose position is a linear function of
time within each segment (so ``t``, ``x`` and ``y`` are tied by rational
linear constraints — the canonical spatiotemporal constraint data).

:func:`paper_queries` returns the five CQA scripts of section 3.3 (queries
1–3 verbatim from the paper; 4 and 5 reconstructed in the same style, as
the surviving text names five queries but prints three).

:func:`generate_hurricane_database` scales the same shape up for
benchmarks.
"""

from __future__ import annotations

import random
from fractions import Fraction

from ..constraints import Conjunction, LinearExpression, eq, ge, le
from ..model.database import Database
from ..model.relation import ConstraintRelation
from ..model.schema import Schema, constraint, relational
from ..model.tuples import HTuple
from ..rational import to_rational


def land_schema() -> Schema:
    return Schema([relational("landId"), constraint("x"), constraint("y")])


def landownership_schema() -> Schema:
    # The paper's schema prints the attribute as "landID" here and "landId"
    # in Land; natural join matches attributes *by name*, and Query 3 joins
    # the two relations on it, so we normalise both to "landId".
    return Schema([relational("name"), constraint("t"), relational("landId")])


def hurricane_schema() -> Schema:
    return Schema([constraint("t"), constraint("x"), constraint("y")])


def _box_tuple(schema: Schema, land_id: str, x0, x1, y0, y1) -> HTuple:
    x = LinearExpression.variable("x")
    y = LinearExpression.variable("y")
    formula = Conjunction([ge(x, x0), le(x, x1), ge(y, y0), le(y, y1)])
    return HTuple(schema, {"landId": land_id}, formula)


def _ownership_tuple(schema: Schema, name: str, land_id: str, t0=None, t1=None) -> HTuple:
    t = LinearExpression.variable("t")
    atoms = []
    if t0 is not None:
        atoms.append(ge(t, t0))
    if t1 is not None:
        atoms.append(le(t, t1))
    return HTuple(schema, {"name": name, "landId": land_id}, Conjunction(atoms))


def path_segment_tuple(
    schema: Schema,
    t0,
    t1,
    start: tuple,
    end: tuple,
) -> HTuple:
    """One hurricane path segment: for t in [t0, t1] the position moves
    linearly from ``start`` to ``end`` — three-variable linear equalities,
    exactly the constraint tuples of section 6.2's trajectory discussion."""
    t0f, t1f = to_rational(t0), to_rational(t1)
    if t1f <= t0f:
        raise ValueError(f"segment needs t1 > t0, got [{t0}, {t1}]")
    (x0, y0) = (to_rational(start[0]), to_rational(start[1]))
    (x1, y1) = (to_rational(end[0]), to_rational(end[1]))
    duration = t1f - t0f
    t = LinearExpression.variable("t")
    x = LinearExpression.variable("x")
    y = LinearExpression.variable("y")
    # x = x0 + (x1-x0) * (t-t0)/duration  ==  duration*x - (x1-x0)*t = duration*x0 - (x1-x0)*t0
    formula = Conjunction(
        [
            eq(duration * x - (x1 - x0) * t, duration * x0 - (x1 - x0) * t0f),
            eq(duration * y - (y1 - y0) * t, duration * y0 - (y1 - y0) * t0f),
            ge(t, t0f),
            le(t, t1f),
        ]
    )
    return HTuple(schema, {}, formula)


def figure2_database() -> Database:
    """The Figure 2 instance: parcels A–D in a 2×2 layout on [0,10]²,
    a three-owner cadastral history, and a hurricane crossing the map
    between t=0 and t=12."""
    land = ConstraintRelation(
        land_schema(),
        [
            _box_tuple(land_schema(), "A", 0, 4, 6, 10),
            _box_tuple(land_schema(), "B", 5, 9, 6, 10),
            _box_tuple(land_schema(), "C", 0, 4, 0, 5),
            _box_tuple(land_schema(), "D", 5, 9, 0, 5),
        ],
        "Land",
    )
    ownership = ConstraintRelation(
        landownership_schema(),
        [
            _ownership_tuple(landownership_schema(), "Smith", "A", 0, 10),
            _ownership_tuple(landownership_schema(), "Jones", "A", 10, None),
            _ownership_tuple(landownership_schema(), "Lee", "B", 0, None),
            _ownership_tuple(landownership_schema(), "Garcia", "C", 0, 6),
            _ownership_tuple(landownership_schema(), "Chen", "C", 6, None),
            _ownership_tuple(landownership_schema(), "Patel", "D", 2, None),
        ],
        "Landownership",
    )
    hurricane = ConstraintRelation(
        hurricane_schema(),
        [
            # The hurricane enters at the south-west, sweeps through C,
            # clips B, and exits north-east missing A and D — so the case
            # study exercises both hit and missed parcels.
            path_segment_tuple(hurricane_schema(), 0, 4, (0, 1), (3, 4)),
            path_segment_tuple(hurricane_schema(), 4, 8, (3, 4), (6, 8)),
            path_segment_tuple(hurricane_schema(), 8, 12, (6, 8), (10, 10)),
        ],
        "Hurricane",
    )
    return Database({"Land": land, "Landownership": ownership, "Hurricane": hurricane})


def paper_queries() -> dict[str, str]:
    """The five section 3.3 queries as multi-step ASCII scripts."""
    return {
        # Query 1: who owned Land A and when (verbatim structure).
        "q1_owners_of_A": (
            "R0 = select landId=A from Landownership\n"
            "R1 = project R0 on name, t\n"
        ),
        # Query 2: all landIDs that the hurricane passed.
        "q2_lands_hit": (
            "R0 = join Hurricane and Land\n"
            "R1 = project R0 on landId\n"
        ),
        # Query 3: names of those whose land was hit between time 4 and 9.
        # Joining ownership to parcels ties each owner to a region; the
        # join with Hurricane shares t, x and y, so it asks for a hurricane
        # position inside the parcel *during* the ownership period; the
        # time selection restricts to [4, 9].
        "q3_names_hit_4_9": (
            "R0 = join Landownership and Land\n"
            "R1 = select t>=4, t<=9 from R0\n"
            "R2 = join R1 and Hurricane\n"
            "R3 = project R2 on name\n"
        ),
        # Query 4 (reconstructed): when did the hurricane cross each parcel.
        "q4_crossing_times": (
            "R0 = join Hurricane and Land\n"
            "R1 = project R0 on landId, t\n"
        ),
        # Query 5 (reconstructed): parcels the hurricane never touched.
        "q5_lands_missed": (
            "R0 = project Land on landId\n"
            "R1 = join Hurricane and Land\n"
            "R2 = project R1 on landId\n"
            "R3 = diff R0 and R2\n"
        ),
    }


def generate_hurricane_database(
    parcels_per_side: int = 10,
    owners_per_parcel: int = 2,
    path_segments: int = 24,
    seed: int = 12,
) -> Database:
    """A scaled Hurricane database with the same schema and shape.

    ``parcels_per_side``² parcels tile a square map; each parcel has a
    chain of owners over time; the hurricane is a random monotone walk
    across the map.
    """
    rng = random.Random(seed)
    side = parcels_per_side
    extent = Fraction(10)  # each parcel is 10x10 with a 1-unit gap
    land_tuples = []
    ownership_tuples = []
    names = [f"owner{i}" for i in range(side * side * owners_per_parcel)]
    name_index = 0
    for row in range(side):
        for col in range(side):
            land_id = f"P{row}_{col}"
            x0 = Fraction(col) * (extent + 1)
            y0 = Fraction(row) * (extent + 1)
            land_tuples.append(
                _box_tuple(land_schema(), land_id, x0, x0 + extent, y0, y0 + extent)
            )
            boundary = Fraction(0)
            for k in range(owners_per_parcel):
                next_boundary = boundary + rng.randint(2, 12)
                last = k == owners_per_parcel - 1
                ownership_tuples.append(
                    _ownership_tuple(
                        landownership_schema(),
                        names[name_index],
                        land_id,
                        boundary,
                        None if last else next_boundary,
                    )
                )
                boundary = next_boundary
                name_index += 1
    map_size = float(side * (extent + 1))
    hurricane_tuples = []
    t = Fraction(0)
    x = Fraction(0)
    y = Fraction(round(rng.uniform(0.0, map_size)))
    step = Fraction(round(map_size)) / path_segments
    for _ in range(path_segments):
        nt = t + rng.randint(1, 4)
        nx = x + step
        ny = min(
            Fraction(round(map_size)),
            max(Fraction(0), y + Fraction(rng.randint(-12, 12))),
        )
        hurricane_tuples.append(
            path_segment_tuple(hurricane_schema(), t, nt, (x, y), (nx, ny))
        )
        t, x, y = nt, nx, ny
    return Database(
        {
            "Land": ConstraintRelation(land_schema(), land_tuples, "Land"),
            "Landownership": ConstraintRelation(
                landownership_schema(), ownership_tuples, "Landownership"
            ),
            "Hurricane": ConstraintRelation(
                hurricane_schema(), hurricane_tuples, "Hurricane"
            ),
        }
    )
