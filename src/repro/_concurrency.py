"""Shared thread-local stacks and sanitizer-aware lock factories.

Four subsystems activate per-thread state the same way — a thread-local
stack whose top governs the current evaluation: the obs registry stack
(:mod:`repro.obs.registry`), the governor budget stack
(:mod:`repro.governor.budget`), the execution-engine stack
(:mod:`repro.exec.engine`), and the columnar-mode stack
(:mod:`repro.exec.columnar`).  Until PR 9 each carried its own private
``_ActiveStack(threading.local)`` copy; :class:`ThreadLocalStack` is the
one shared implementation, and the ``repro devtools lint`` rule RT102
enforces the discipline every user of it must follow: a push is only
correct when the matching pop sits in a ``finally`` block (or the
:meth:`ThreadLocalStack.pushed` context manager is used, which brackets
for you).

The module also owns the lock factories :func:`new_lock` and
:func:`new_async_lock`.  In normal operation they return plain
``threading.Lock`` / ``asyncio.Lock`` objects; when the RT5xx runtime
sanitizer is installed (``REPRO_SANITIZE=1`` — see
:mod:`repro.devtools.sanitize`) they return *tracked* locks that feed the
lock-order deadlock detector.  Repro-owned locks should be created
through these factories so test runs under the sanitizer observe every
acquisition.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator


class ThreadLocalStack(threading.local):
    """A per-thread activation stack (one independent stack per thread).

    The canonical usage is a guarded push::

        _STACK.push(value)
        try:
            ...
        finally:
            _STACK.pop()

    or equivalently ``with _STACK.pushed(value): ...``.  An unguarded
    push leaks the activation into unrelated work on the same thread —
    exactly the bug class rule RT102 of ``repro devtools lint`` exists
    to catch statically.
    """

    def __init__(self) -> None:
        self.items: list[Any] = []

    def push(self, item: Any) -> None:
        self.items.append(item)

    def pop(self) -> Any:
        return self.items.pop()

    def top(self) -> Any | None:
        """The active item for this thread, or ``None`` when empty."""
        items = self.items
        return items[-1] if items else None

    def clear(self) -> None:
        """Drop every activation on this thread (worker-pool plumbing: a
        forked worker inherits the submitting thread's stack and must
        never re-enter it)."""
        self.items.clear()

    def __bool__(self) -> bool:
        return bool(self.items)

    def __len__(self) -> int:
        return len(self.items)

    @contextmanager
    def pushed(self, item: Any) -> Iterator[Any]:
        """Push ``item`` for the dynamic extent of the block."""
        self.items.append(item)
        try:
            yield item
        finally:
            self.items.pop()


def new_lock(name: str) -> Any:
    """A ``threading.Lock`` for repro-owned shared state.

    ``name`` labels the lock's role (e.g. ``"storage.snapshot"``) — it is
    the node identity the sanitizer's lock-order graph uses, so every
    lock created for the same role shares one ordering constraint.
    Returns a plain lock unless the RT5xx sanitizer is installed.
    """
    from .devtools.sanitize import active_sanitizer

    sanitizer = active_sanitizer()
    if sanitizer is not None:
        return sanitizer.tracked_lock(name)
    return threading.Lock()


def new_async_lock(name: str) -> Any:
    """An ``asyncio.Lock`` for repro-owned shared state (see
    :func:`new_lock` for the naming contract)."""
    import asyncio

    from .devtools.sanitize import active_sanitizer

    sanitizer = active_sanitizer()
    if sanitizer is not None:
        return sanitizer.tracked_async_lock(name)
    return asyncio.Lock()


__all__ = ["ThreadLocalStack", "new_lock", "new_async_lock"]
