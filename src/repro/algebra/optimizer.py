"""A rule-based optimizer for CQA plans.

"CQA queries can be optimized for efficient evaluation, through the use of
indexing and through operator reordering" (section 1.1).  The rewriter
applies, to a fixed point:

* **merge-selects** — collapse stacked selections into one conjunction;
* **selection pushdown** — through project, rename, union, difference and
  (split by side) natural join;
* **merge-projects** — collapse stacked projections;
* **index selection** — replace ``Select(Scan(R))`` by an
  :class:`~repro.algebra.plan.IndexScan` when the context's index catalog
  has an index whose attributes are constrained by the selection (this is
  where the paper's joint multi-attribute indexes pay off, section 5).

All rewrites are semantics-preserving; the test suite checks every rule by
comparing evaluation results before and after rewriting.
"""

from __future__ import annotations

from typing import Mapping

from ..constraints import LinearConstraint
from ..model.database import Database
from ..model.schema import Schema
from .plan import Difference, IndexScan, Join, PlanNode, Project, Rename, Scan, Select, Union
from .predicates import Predicate, StringPredicate


def predicate_attributes(predicate: Predicate) -> frozenset[str]:
    """The attribute names a predicate mentions."""
    if isinstance(predicate, StringPredicate):
        names = {predicate.attribute}
        if predicate.is_attribute:
            names.add(predicate.value)
        return frozenset(names)
    return predicate.variables


def rename_predicate(predicate: Predicate, old: str, new: str) -> Predicate:
    """The predicate with attribute ``old`` renamed to ``new``."""
    if isinstance(predicate, StringPredicate):
        attribute = new if predicate.attribute == old else predicate.attribute
        value = predicate.value
        if predicate.is_attribute and value == old:
            value = new
        return StringPredicate(attribute, value, predicate.negated, predicate.is_attribute)
    return predicate.rename(old, new)


def infer_schema(plan: PlanNode, database: Database) -> Schema | None:
    """Best-effort output schema of a plan; ``None`` for node types the
    optimizer does not know (rules needing schemas then skip)."""
    if isinstance(plan, Scan):
        return database.get(plan.relation_name).schema
    if isinstance(plan, IndexScan):
        return database.get(plan.relation_name).schema
    if isinstance(plan, Select):
        return infer_schema(plan.child, database)
    if isinstance(plan, Project):
        child = infer_schema(plan.child, database)
        return None if child is None else child.project(plan.attributes)
    if isinstance(plan, Rename):
        child = infer_schema(plan.child, database)
        return None if child is None else child.rename(plan.old, plan.new)
    if isinstance(plan, Join):
        left = infer_schema(plan.left, database)
        right = infer_schema(plan.right, database)
        if left is None or right is None:
            return None
        return left.join(right)
    if isinstance(plan, (Union, Difference)):
        return infer_schema(plan.left, database)
    inferrer = getattr(plan, "infer_schema", None)
    if inferrer is not None:
        return inferrer(database)
    return None


class Optimizer:
    """Rewrites plans against a database (for schemas) and an index catalog
    (for index selection)."""

    def __init__(
        self,
        database: Database,
        indexes: Mapping[str, Mapping[frozenset[str], object]] | None = None,
        max_passes: int = 10,
        reorder_joins: bool = True,
    ):
        self._database = database
        self._indexes = {k: dict(v) for k, v in (indexes or {}).items()}
        self._max_passes = max_passes
        self._reorder_joins = reorder_joins
        self._stats_cache: dict[str, object] = {}

    def optimize(self, plan: PlanNode) -> PlanNode:
        for _ in range(self._max_passes):
            rewritten = self._rewrite(plan)
            if rewritten is plan:
                return plan
            plan = rewritten
        return plan

    # -- rewriting ----------------------------------------------------------

    def _rewrite(self, plan: PlanNode) -> PlanNode:
        children = plan.children
        new_children = tuple(self._rewrite(child) for child in children)
        if any(n is not o for n, o in zip(new_children, children)):
            plan = plan.with_children(new_children)
        return self._rewrite_node(plan)

    def _rewrite_node(self, plan: PlanNode) -> PlanNode:
        if isinstance(plan, Select):
            return self._rewrite_select(plan)
        if isinstance(plan, Project) and isinstance(plan.child, Project):
            # π_Y(π_X(R)) = π_Y(R) whenever Y ⊆ X (guaranteed by validity).
            return Project(plan.child.child, plan.attributes)
        if self._reorder_joins and isinstance(plan, Join):
            reordered = self._maybe_reorder_joins(plan)
            if reordered is not None:
                return reordered
        return plan

    # -- join ordering --------------------------------------------------------

    def _maybe_reorder_joins(self, join: Join) -> PlanNode | None:
        """Greedy smallest-intermediate-first ordering of a join chain.

        Returns ``None`` when the chain is too short, a leaf's statistics
        cannot be derived, or the greedy order matches the current one.
        The reordered tree is wrapped in a projection restoring the
        original attribute order, so results are bit-identical.
        """
        from .stats import estimate_join_size

        leaves: list[PlanNode] = []
        self._flatten_join(join, leaves)
        if len(leaves) < 3:
            return None
        annotated = []
        for leaf in leaves:
            info = self._leaf_statistics(leaf)
            if info is None:
                return None
            annotated.append((leaf, *info))  # (plan, schema, stats)
        original_schema = infer_schema(join, self._database)
        if original_schema is None:
            return None

        remaining = list(range(len(annotated)))

        def join_estimate(i: int, j: int) -> float:
            _, s1, st1 = annotated[i]
            _, s2, st2 = annotated[j]
            return estimate_join_size(st1, st2, s1.shared_names(s2), s1, s2)

        # Seed with the cheapest pair (prefer pairs that actually share
        # attributes so we do not start with a cross product).
        best_pair = min(
            (
                (i, j)
                for x, i in enumerate(remaining)
                for j in remaining[x + 1 :]
            ),
            key=lambda pair: (
                not annotated[pair[0]][1].shared_names(annotated[pair[1]][1]),
                join_estimate(*pair),
                pair,
            ),
        )
        order = [best_pair[0], best_pair[1]]
        remaining = [i for i in remaining if i not in order]
        current_schema = annotated[order[0]][1].join(annotated[order[1]][1])
        from .stats import RelationStatistics

        current_stats = RelationStatistics(
            tuple_count=max(1, int(join_estimate(order[0], order[1])))
        )
        current_stats.attributes = {
            **annotated[order[0]][2].attributes,
            **annotated[order[1]][2].attributes,
        }
        def cost(i: int, schema, stats) -> tuple:
            _, schema_i, stats_i = annotated[i]
            shared = schema.shared_names(schema_i)
            return (
                not shared,  # defer cross products
                estimate_join_size(stats, stats_i, shared, schema, schema_i),
                i,
            )

        while remaining:
            nxt = min(
                remaining,
                key=lambda i, s=current_schema, st=current_stats: cost(i, s, st),
            )
            _, schema_n, stats_n = annotated[nxt]
            shared = current_schema.shared_names(schema_n)
            size = estimate_join_size(current_stats, stats_n, shared, current_schema, schema_n)
            current_schema = current_schema.join(schema_n)
            merged = RelationStatistics(tuple_count=max(1, int(size)))
            merged.attributes = {**current_stats.attributes, **stats_n.attributes}
            current_stats = merged
            order.append(nxt)
            remaining.remove(nxt)
        if order == list(range(len(annotated))):
            return None  # already in greedy order
        rebuilt: PlanNode = annotated[order[0]][0]
        for i in order[1:]:
            rebuilt = Join(rebuilt, annotated[i][0])
        return Project(rebuilt, original_schema.names)

    def _flatten_join(self, plan: PlanNode, out: list[PlanNode]) -> None:
        if isinstance(plan, Join):
            self._flatten_join(plan.left, out)
            self._flatten_join(plan.right, out)
        else:
            out.append(plan)

    def _leaf_statistics(self, leaf: PlanNode):
        """(schema, statistics) for a join leaf, or ``None`` if unknown."""
        from .stats import DEFAULT_PREDICATE_SELECTIVITY, RelationStatistics, collect_statistics

        def base_stats(name: str) -> "RelationStatistics":
            if name not in self._stats_cache:
                self._stats_cache[name] = collect_statistics(self._database.get(name))
            return self._stats_cache[name]  # type: ignore[return-value]

        if isinstance(leaf, Scan):
            return self._database.get(leaf.relation_name).schema, base_stats(leaf.relation_name)
        if isinstance(leaf, IndexScan):
            stats = base_stats(leaf.relation_name)
            scaled = RelationStatistics(
                tuple_count=max(
                    1,
                    int(
                        stats.tuple_count
                        * DEFAULT_PREDICATE_SELECTIVITY ** len(leaf.predicates)
                    ),
                ),
                attributes=dict(stats.attributes),
            )
            return self._database.get(leaf.relation_name).schema, scaled
        if isinstance(leaf, Select) and isinstance(leaf.child, Scan):
            stats = base_stats(leaf.child.relation_name)
            scaled = RelationStatistics(
                tuple_count=max(
                    1,
                    int(
                        stats.tuple_count
                        * DEFAULT_PREDICATE_SELECTIVITY ** len(leaf.predicates)
                    ),
                ),
                attributes=dict(stats.attributes),
            )
            return self._database.get(leaf.child.relation_name).schema, scaled
        return None

    def _rewrite_select(self, plan: Select) -> PlanNode:
        child = plan.child
        predicates = plan.predicates
        if isinstance(child, Select):
            return Select(child.child, tuple(child.predicates) + tuple(predicates))
        if isinstance(child, Project):
            # Predicates of a valid plan only mention projected attributes.
            return Project(Select(child.child, predicates), child.attributes)
        if isinstance(child, Rename):
            inner = tuple(rename_predicate(p, child.new, child.old) for p in predicates)
            return Rename(Select(child.child, inner), child.old, child.new)
        if isinstance(child, Union):
            return Union(Select(child.left, predicates), Select(child.right, predicates))
        if isinstance(child, Difference):
            # ς_p(A − B) = ς_p(A) − ς_p(B): shrink both sides.
            return Difference(Select(child.left, predicates), Select(child.right, predicates))
        if isinstance(child, Join):
            pushed = self._push_into_join(child, predicates)
            return plan if pushed is None else pushed
        if isinstance(child, Scan):
            indexed = self._maybe_index_scan(child, predicates)
            return plan if indexed is None else indexed
        return plan

    def _push_into_join(self, join: Join, predicates: tuple[Predicate, ...]) -> PlanNode | None:
        """Push predicates into the join sides; ``None`` when nothing moves."""
        left_schema = infer_schema(join.left, self._database)
        right_schema = infer_schema(join.right, self._database)
        if left_schema is None or right_schema is None:
            return None
        left_names = set(left_schema.names)
        right_names = set(right_schema.names)
        to_left: list[Predicate] = []
        to_right: list[Predicate] = []
        stay: list[Predicate] = []
        for predicate in predicates:
            attrs = predicate_attributes(predicate)
            # A predicate on shared attributes is pushed to *both* sides:
            # it prunes each input and remains correct under natural join.
            pushed = False
            if attrs <= left_names:
                to_left.append(predicate)
                pushed = True
            if attrs <= right_names:
                to_right.append(predicate)
                pushed = True
            if not pushed:
                stay.append(predicate)
        if not to_left and not to_right:
            return None
        left = Select(join.left, tuple(to_left)) if to_left else join.left
        right = Select(join.right, tuple(to_right)) if to_right else join.right
        rebuilt: PlanNode = Join(left, right)
        if stay:
            rebuilt = Select(rebuilt, tuple(stay))
        return rebuilt

    def _maybe_index_scan(self, scan: Scan, predicates: tuple[Predicate, ...]) -> PlanNode | None:
        """An :class:`IndexScan` replacement, or ``None`` when no index helps."""
        strategies = self._indexes.get(scan.relation_name)
        if not strategies:
            return None
        constrained = set()
        for predicate in predicates:
            if isinstance(predicate, LinearConstraint):
                constrained |= predicate.variables
        if not constrained:
            return None
        # Pick the index sharing the most attributes with the selection;
        # ties break toward the smaller index (fewer wasted dimensions).
        best: frozenset[str] | None = None
        best_key: tuple[int, int] | None = None
        for attrs in strategies:
            overlap = len(attrs & constrained)
            if overlap == 0:
                continue
            key = (-overlap, len(attrs))
            if best_key is None or key < best_key:
                best_key = key
                best = attrs
        if best is None:
            return None
        return IndexScan(scan.relation_name, predicates, best)


def optimize(
    plan: PlanNode,
    database: Database,
    indexes: Mapping[str, Mapping[frozenset[str], object]] | None = None,
) -> PlanNode:
    """Convenience wrapper around :class:`Optimizer`."""
    return Optimizer(database, indexes).optimize(plan)
