"""Selection predicates for CQA's ς operator.

A selection condition ξ is "a conjunction of constraints over α(R)"
(section 2.4).  In the heterogeneous model that conjunction mixes:

* :class:`~repro.constraints.LinearConstraint` atoms over constraint
  attributes — and, as a convenience, over *rational relational* attributes,
  whose concrete values are substituted per tuple (a NULL value fails the
  condition: narrow semantics);
* :class:`StringPredicate` — equality/inequality of a string relational
  attribute against a constant or another string attribute.  NULL never
  matches anything, including another NULL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from ..constraints import LinearConstraint
from ..errors import SchemaError
from ..model.schema import Schema
from ..model.tuples import HTuple
from ..model.types import DataType, Null


@dataclass(frozen=True)
class StringPredicate:
    """``attribute = value`` / ``attribute != value`` over string attributes.

    ``value`` is either a string constant or, when ``is_attribute`` is true,
    the name of another string relational attribute of the same relation.
    """

    attribute: str
    value: str
    negated: bool = False
    is_attribute: bool = False

    def validate(self, schema: Schema) -> None:
        attr = schema[self.attribute]
        if not attr.is_relational or attr.data_type is not DataType.STRING:
            raise SchemaError(
                f"string predicate requires a string relational attribute; "
                f"{self.attribute!r} is ({attr.data_type.value}, {attr.kind.value})"
            )
        if self.is_attribute:
            other = schema[self.value]
            if not other.is_relational or other.data_type is not DataType.STRING:
                raise SchemaError(
                    f"string predicate requires a string relational attribute; "
                    f"{self.value!r} is ({other.data_type.value}, {other.kind.value})"
                )

    def matches(self, t: HTuple) -> bool:
        left = t.value(self.attribute)
        if isinstance(left, Null):
            return False
        right: object = self.value
        if self.is_attribute:
            right = t.value(self.value)
            if isinstance(right, Null):
                return False
        return (left != right) if self.negated else (left == right)

    def __str__(self) -> str:
        op = "!=" if self.negated else "="
        rhs = self.value if self.is_attribute else repr(self.value)
        return f"{self.attribute} {op} {rhs}"


#: A single conjunct of a selection condition.
Predicate = Union[LinearConstraint, StringPredicate]


def validate_predicates(schema: Schema, predicates: Sequence[Predicate]) -> None:
    """Check every conjunct against the schema before evaluation starts, so
    errors surface as schema errors rather than mid-scan surprises."""
    for predicate in predicates:
        if isinstance(predicate, StringPredicate):
            predicate.validate(schema)
            continue
        if not isinstance(predicate, LinearConstraint):
            raise SchemaError(f"unsupported predicate {predicate!r}")
        for name in predicate.variables:
            attr = schema[name]  # raises when unknown
            if attr.is_relational and attr.data_type is DataType.STRING:
                raise SchemaError(
                    f"string attribute {name!r} cannot appear in a linear constraint; "
                    "use a string predicate"
                )
