"""Cardinality statistics and join-size estimation.

Section 1.1: CQA plans are "optimized for efficient evaluation, through
the use of indexing and through operator reordering".  This module feeds
the reordering half: per-relation statistics (tuple counts, distinct
counts for relational attributes, bounding intervals for constraint
attributes) and a textbook join-size estimator adapted to the
heterogeneous model:

* a shared **relational** attribute contributes the classic
  ``1 / max(V(L, a), V(R, a))`` selectivity;
* a shared **constraint** attribute contributes the fraction of the two
  sides' bounding-interval union their overlap covers — two tuples can
  only join when their intervals intersect, so this bounds the pairing
  rate (heuristically, assuming roughly uniform placement).

Estimates steer the greedy join-order search in the optimizer; they never
affect results, only plan shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..indexing.strategy import DOMAIN_CLAMP, tuple_interval
from ..model.relation import ConstraintRelation
from ..model.types import DataType, Null


@dataclass
class AttributeStatistics:
    """Summary of one attribute across a relation."""

    distinct: int = 0  # relational attributes: number of distinct values
    low: float = 0.0  # constraint/rational attributes: bounding interval
    high: float = 0.0
    nulls: int = 0

    @property
    def width(self) -> float:
        return max(0.0, self.high - self.low)


@dataclass
class RelationStatistics:
    tuple_count: int
    attributes: dict[str, AttributeStatistics] = field(default_factory=dict)


def collect_statistics(relation: ConstraintRelation) -> RelationStatistics:
    """One pass over the relation; cheap enough to run per query."""
    stats = RelationStatistics(tuple_count=len(relation))
    schema = relation.schema
    values_seen: dict[str, set] = {a.name: set() for a in schema if a.is_relational}
    intervals: dict[str, tuple[float, float]] = {}
    nulls: dict[str, int] = {}
    for t in relation:
        for attr in schema:
            name = attr.name
            if attr.is_relational:
                value = t.values[name]
                if isinstance(value, Null):
                    nulls[name] = nulls.get(name, 0) + 1
                else:
                    values_seen[name].add(value)
                    if attr.data_type is DataType.RATIONAL:
                        v = float(value)
                        low, high = intervals.get(name, (v, v))
                        intervals[name] = (min(low, v), max(high, v))
            else:
                low, high = tuple_interval(t, name)
                if abs(low) >= DOMAIN_CLAMP or abs(high) >= DOMAIN_CLAMP:
                    low, high = -DOMAIN_CLAMP, DOMAIN_CLAMP
                cur = intervals.get(name)
                intervals[name] = (
                    (low, high) if cur is None else (min(cur[0], low), max(cur[1], high))
                )
    for attr in schema:
        name = attr.name
        low, high = intervals.get(name, (0.0, 0.0))
        stats.attributes[name] = AttributeStatistics(
            distinct=len(values_seen.get(name, ())),
            low=low,
            high=high,
            nulls=nulls.get(name, 0),
        )
    return stats


#: Assumed selectivity of one selection conjunct when nothing better is
#: known (used to discount Select(Scan) leaves during join ordering).
DEFAULT_PREDICATE_SELECTIVITY = 0.3


def estimate_join_size(
    left: RelationStatistics,
    right: RelationStatistics,
    shared: tuple[str, ...],
    left_schema,
    right_schema,
) -> float:
    """Estimated tuple count of ``left ⋈ right``."""
    size = float(left.tuple_count * right.tuple_count)
    for name in shared:
        l_attr, r_attr = left_schema[name], right_schema[name]
        l_stats = left.attributes.get(name, AttributeStatistics())
        r_stats = right.attributes.get(name, AttributeStatistics())
        if l_attr.is_relational and r_attr.is_relational:
            distinct = max(l_stats.distinct, r_stats.distinct, 1)
            size /= distinct
        else:
            union_low = min(l_stats.low, r_stats.low)
            union_high = max(l_stats.high, r_stats.high)
            union_width = max(union_high - union_low, 1e-9)
            overlap = max(
                0.0, min(l_stats.high, r_stats.high) - max(l_stats.low, r_stats.low)
            )
            # Fraction of random pairs whose intervals can intersect;
            # floor at a small constant so joint bounds never zero out a
            # genuinely joinable pair.
            size *= max(overlap / union_width, 0.05)
    return max(size, 0.0)
