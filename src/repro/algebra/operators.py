"""The six CQA primitive operators over heterogeneous constraint relations.

Each operator follows the paper's three-clause definition (section 2.4):
syntax (the function signature), argument conditions and result arity (the
schema computation), and semantics (sets of points).  The implementations
manipulate the finite representation — relational values and constraint
conjunctions — and the test suite verifies the *semantic closure principle*
(section 2.5): the results agree with relational algebra over the
corresponding infinite point sets.

All operators return new relations; inputs are never mutated.

Tuple-producing loops are governed: each row boundary consults the active
:class:`~repro.governor.Budget` (deadline + output-tuple cap) through a
:class:`~repro.governor.ProducerGuard`, which is a single attribute test
when no budget is active.  In ``on_exhausted="partial"`` mode exhaustion
truncates the loop — the operator returns the tuples materialized so far —
instead of raising.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..constraints import Conjunction, DNFFormula, LinearConstraint, LinearExpression, solver
from ..errors import AlgebraError, ResourceExhausted
from ..exec import columnar, parallel_engine, run_parallel
from ..governor.budget import ProducerGuard
from ..model.relation import ConstraintRelation
from ..model.schema import Schema
from ..model.tuples import HTuple
from ..model.types import Null, Value
from ..obs import (
    COLUMNAR_BATCHES,
    COLUMNAR_BYPASSED,
    COLUMNAR_FALLBACK,
    COLUMNAR_FILTERED,
    record,
)
from .predicates import Predicate, StringPredicate, validate_predicates


def _select_survivor(t: HTuple, predicates: Sequence[Predicate]) -> HTuple | None:
    """One tuple's selection work: predicate evaluation, conjoining, and
    the satisfiability decision.  ``None`` means the tuple vanishes.

    This is the unit of work both the serial loop and the parallel
    morsel task run, so the two paths are the same code by construction.
    """
    atoms: list[LinearConstraint] = []
    for predicate in predicates:
        if isinstance(predicate, StringPredicate):
            if not predicate.matches(t):
                return None
            continue
        substituted = t.substitute_relational(predicate.expression)
        if substituted is None:  # a NULL relational value was mentioned
            return None
        atom = LinearConstraint(substituted, predicate.comparator)
        if atom.is_trivial:
            if not atom.truth_value():
                return None
            continue
        atoms.append(atom)
    survivor = t.conjoin(atoms) if atoms else t
    # Decide satisfiability here, inside the guarded row, so the solve is
    # cancellable/absorbable; the relation constructor's own emptiness
    # check then hits the per-formula cache.  (The cached verdict also
    # survives pickling, so a worker-side solve is never repeated by the
    # parent's merge.)
    if survivor.is_empty():
        return None
    return survivor


def filter_tuples(
    tuples: Sequence[HTuple],
    predicates: Sequence[Predicate],
    columnar_on: bool | None = None,
    block_cache: dict | None = None,
) -> list[HTuple]:
    """The governed selection loop over pre-validated predicates.

    Shared by :func:`select` and the heapfile sequential scan; runs as
    the morsel task on workers (each bound to its own sub-budget through
    the thread-local guard machinery).

    With the columnar fast path on (``columnar_on``; ``None`` consults
    the thread-local mode — workers receive the parent's flag in the
    task payload instead, since thread-locals don't cross pools) a
    vectorized interval filter masks out provably doomed tuples first and
    only candidates run the exact per-tuple work; results are
    bit-identical (see :mod:`repro.exec.columnar`).
    """
    if columnar_on is None:
        columnar_on = columnar.columnar_active()
    mask = _columnar_mask(tuples, predicates, block_cache) if columnar_on else None
    guard = ProducerGuard()
    result: list[HTuple] = []
    for i, t in enumerate(tuples):
        if not guard.start_row():
            break
        if mask is not None and not mask[i]:
            continue
        try:
            survivor = _select_survivor(t, predicates)
        except ResourceExhausted as exc:
            if not guard.absorb(exc):
                raise
            break
        if survivor is None:
            continue
        if not guard.produced():
            break
        result.append(survivor)
    return result


def _columnar_mask(
    tuples: Sequence[HTuple],
    predicates: Sequence[Predicate],
    block_cache: dict | None = None,
):
    """The candidate mask for one batch, or ``None`` when the probe
    bypasses (too small, no numpy, or no vectorizable predicate bounds).
    Counter contract: one ``columnar.batches`` per vectorized batch,
    ``filtered``/``fallback`` split the batch, one ``bypassed`` per
    probed-and-declined batch."""
    if len(tuples) < columnar.MIN_BATCH or not predicates:
        return None
    plan = columnar.selection_plan(predicates, tuples[0].schema)
    if plan is None:
        record(COLUMNAR_BYPASSED)
        return None
    block = columnar.block_for(tuples, plan.variables, cache=block_cache)
    mask = columnar.candidate_mask(block, plan)
    candidates = int(mask.sum())
    record(COLUMNAR_BATCHES)
    record(COLUMNAR_FILTERED, len(tuples) - candidates)
    record(COLUMNAR_FALLBACK, candidates)
    return mask


def _filter_task(
    payload: tuple[tuple[Predicate, ...], bool], morsel: tuple[HTuple, ...]
) -> list[HTuple]:
    """Worker-side morsel task for selection/refinement filtering; the
    payload carries the parent's columnar flag across the pool."""
    predicates, columnar_on = payload
    return filter_tuples(morsel, predicates, columnar_on=columnar_on)


def filter_tuples_parallel(
    tuples: Sequence[HTuple],
    predicates: Sequence[Predicate],
    label: str = "select",
    block_cache: dict | None = None,
) -> list[HTuple]:
    """Morsel-parallel :func:`filter_tuples` when an engine is active,
    the serial loop otherwise.  Results are bit-identical either way."""
    engine = parallel_engine(len(tuples))
    columnar_on = columnar.columnar_active()
    if engine is None:
        return filter_tuples(tuples, predicates, columnar_on, block_cache)
    return run_parallel(
        engine, _filter_task, (tuple(predicates), columnar_on), tuples, label=label
    )


def filter_pages_columnar(
    pages: Sequence[Sequence[HTuple]],
    predicates: Sequence[Predicate],
    heap=None,
) -> list[HTuple] | None:
    """The paged columnar sequential-scan filter: one governed guard
    across all pages (so governor behaviour matches the flat loop over
    the concatenated tuples exactly) with one summary block per page,
    memoised on ``heap`` so repeated scans pay the float export once per
    page.  Returns ``None`` to signal bypass — columnar off, a parallel
    engine active (the flat morsel path composes with workers instead),
    too few tuples, or no vectorizable predicate bounds — in which case
    the caller runs :func:`filter_tuples_parallel` over the flat list.
    """
    if not columnar.columnar_active() or not predicates:
        return None
    total = sum(len(page) for page in pages)
    if total < columnar.MIN_BATCH or parallel_engine(total) is not None:
        return None
    first = next((page[0] for page in pages if page), None)
    if first is None:
        return []
    plan = columnar.selection_plan(predicates, first.schema)
    if plan is None:
        record(COLUMNAR_BYPASSED)
        return None
    guard = ProducerGuard()
    result: list[HTuple] = []
    for page_index, page in enumerate(pages):
        if not page:
            continue
        cache = heap.page_cache(page_index) if heap is not None else None
        block = columnar.block_for(page, plan.variables, cache=cache)
        mask = columnar.candidate_mask(block, plan)
        candidates = int(mask.sum())
        record(COLUMNAR_BATCHES)
        record(COLUMNAR_FILTERED, len(page) - candidates)
        record(COLUMNAR_FALLBACK, candidates)
        for i, t in enumerate(page):
            if not guard.start_row():
                return result
            if not mask[i]:
                continue
            try:
                survivor = _select_survivor(t, predicates)
            except ResourceExhausted as exc:
                if not guard.absorb(exc):
                    raise
                return result
            if survivor is None:
                continue
            if not guard.produced():
                return result
            result.append(survivor)
    return result


def select(relation: ConstraintRelation, predicates: Sequence[Predicate]) -> ConstraintRelation:
    """ς — selection by a conjunction of predicates.

    Linear atoms over constraint attributes are conjoined onto each tuple's
    formula; atoms over rational relational attributes have the tuple's
    values substituted first (a NULL value fails the tuple — narrow
    semantics).  Tuples whose augmented formula is unsatisfiable vanish.

    The per-tuple filter+solve work is morsel-parallel when the session
    runs with ``workers > 1`` (see :mod:`repro.exec`).
    """
    validate_predicates(relation.schema, list(predicates))
    result = filter_tuples_parallel(
        relation.tuples, predicates, block_cache=relation.columnar_cache()
    )
    return ConstraintRelation(relation.schema, result)


def project(relation: ConstraintRelation, attributes: Sequence[str]) -> ConstraintRelation:
    """π — projection onto ``attributes`` (⊆ α(R)).

    Constraint attributes outside the projection list are eliminated from
    each tuple's formula by Fourier–Motzkin, yielding exactly the geometric
    projection of the tuple's point set.
    """
    out_schema = relation.schema.project(attributes)
    guard = ProducerGuard()
    result: list[HTuple] = []
    for t in relation:
        if not guard.start_row():
            break
        try:
            projected = t.project(attributes)
        except ResourceExhausted as exc:
            if not guard.absorb(exc):
                raise
            break
        if not guard.produced():
            break
        result.append(projected)
    return ConstraintRelation(out_schema, result)


def natural_join(left: ConstraintRelation, right: ConstraintRelation) -> ConstraintRelation:
    """⋈ — natural join; α(E) = α(R₁) ∪ α(R₂).

    Cross-product (no shared attributes) and intersection (identical
    schemas) are special cases, per the paper's remark.  Shared attributes
    join as follows:

    * relational/relational: values must be equal and non-NULL;
    * constraint/constraint: the formulas are conjoined (same variable);
    * relational/constraint: the concrete value is substituted into the
      constraint side's formula and the output attribute is relational.
    """
    out_schema = left.schema.join(right.schema)
    shared = left.schema.shared_names(right.schema)
    guard = ProducerGuard()
    result: list[HTuple] = []
    stopped = False
    for lt_ in left:
        if stopped:
            break
        for rt in right:
            if not guard.start_row():
                stopped = True
                break
            try:
                combined = _join_pair(lt_, rt, out_schema, shared)
            except ResourceExhausted as exc:
                if not guard.absorb(exc):
                    raise
                stopped = True
                break
            if combined is not None:
                if not guard.produced():
                    stopped = True
                    break
                result.append(combined)
    return ConstraintRelation(out_schema, result)


def _join_pair(
    lt_: HTuple, rt: HTuple, out_schema: Schema, shared: Iterable[str]
) -> HTuple | None:
    left_schema, right_schema = lt_.schema, rt.schema
    left_formula, right_formula = lt_.formula, rt.formula
    values: dict[str, Value] = {}
    for name in shared:
        l_attr, r_attr = left_schema[name], right_schema[name]
        if l_attr.is_relational and r_attr.is_relational:
            lv, rv = lt_.value(name), rt.value(name)
            if isinstance(lv, Null) or isinstance(rv, Null) or lv != rv:
                return None  # NULL joins nothing (narrow semantics)
            values[name] = lv
        elif l_attr.is_constraint and r_attr.is_constraint:
            pass  # same variable name: conjunction below unifies them
        else:
            rel_side, con_formula = (
                (lt_, right_formula) if l_attr.is_relational else (rt, left_formula)
            )
            value = rel_side.value(name)
            if isinstance(value, Null):
                return None
            substituted = con_formula.substitute(name, LinearExpression.constant_expr(value))
            if l_attr.is_relational:
                right_formula = substituted
            else:
                left_formula = substituted
            values[name] = value
    for name in out_schema.relational_names:
        if name in values:
            continue
        if name in left_schema and left_schema[name].is_relational:
            values[name] = lt_.value(name)
        elif name in right_schema and right_schema[name].is_relational:
            values[name] = rt.value(name)
    # Interval pre-filter: each side's per-variable bound summary is cached
    # on its conjunction, so rejecting a non-overlapping pair costs O(d)
    # comparisons — no combined conjunction is built and no full
    # satisfiability solve runs (the dominant cost of join-heavy plans).
    if solver.join_prunable(
        left_formula.interval_summary(), right_formula.interval_summary()
    ):
        return None
    combined = left_formula.conjoin(right_formula)
    if not combined.is_satisfiable():
        return None
    return HTuple(out_schema, values, combined)


def union(left: ConstraintRelation, right: ConstraintRelation) -> ConstraintRelation:
    """∪ — requires union-compatible schemas; α(E) = α(R₁)."""
    left.schema.union_compatible(right.schema)
    guard = ProducerGuard()
    result: list[HTuple] = []
    stopped = False
    for t in left:
        if not guard.start_row() or not guard.produced():
            stopped = True
            break
        result.append(t)
    if not stopped:
        for t in right:
            if not guard.start_row() or not guard.produced():
                break
            result.append(t.cast(left.schema))
    return ConstraintRelation(left.schema, result)


def rename(relation: ConstraintRelation, old: str, new: str) -> ConstraintRelation:
    """ϱ — rename attribute ``old`` to ``new``."""
    out_schema = relation.schema.rename(old, new)
    return ConstraintRelation(out_schema, (t.rename(old, new) for t in relation))


def difference(left: ConstraintRelation, right: ConstraintRelation) -> ConstraintRelation:
    """− — set difference; requires union-compatible schemas.

    For each left tuple, the subtrahend is the DNF of the formulas of the
    right tuples with the *same relational values* (NULL markers compare
    equal for set operations, as in SQL's distinct-row rule); the result is
    ``φ(t) ∧ ¬φ(subtrahend)`` distributed back into constraint tuples.
    """
    left.schema.union_compatible(right.schema)
    by_group: dict[tuple[tuple[str, Value], ...], list[Conjunction]] = {}
    for rt in right:
        key = tuple(sorted(rt.values.items(), key=lambda kv: kv[0]))
        by_group.setdefault(key, []).append(rt.formula)
    guard = ProducerGuard()
    result: list[HTuple] = []
    stopped = False
    for t in left:
        if stopped or not guard.start_row():
            break
        try:
            key = tuple(sorted(t.values.items(), key=lambda kv: kv[0]))
            formulas = by_group.get(key)
            if not formulas:
                if not guard.produced():
                    break
                result.append(t)
                continue
            remainder = DNFFormula([t.formula]).difference(DNFFormula(formulas))
        except ResourceExhausted as exc:
            if not guard.absorb(exc):
                raise
            break
        for disjunct in remainder:
            if not guard.produced():
                stopped = True
                break
            result.append(t.with_formula(disjunct))
    return ConstraintRelation(left.schema, result)


def intersection(left: ConstraintRelation, right: ConstraintRelation) -> ConstraintRelation:
    """∩ — a special case of natural join over identical schemas."""
    left.schema.union_compatible(right.schema)
    return natural_join(left, right.map_tuples(lambda t: t.cast(left.schema)))


def cross_product(left: ConstraintRelation, right: ConstraintRelation) -> ConstraintRelation:
    """× — a special case of natural join over disjoint schemas."""
    shared = left.schema.shared_names(right.schema)
    if shared:
        raise AlgebraError(
            f"cross product requires disjoint schemas; shared attributes: {list(shared)} "
            "(rename them first, or use natural_join)"
        )
    return natural_join(left, right)
