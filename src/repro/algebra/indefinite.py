"""Possible/certain selection under indefinite information (section 3.1).

The paper distinguishes constraint tuples from *incomplete information*:

    "Incomplete information can be specified by constraints … The
    semantics is disjunctive rather than conjunctive; one of the values
    satisfying the constraints is correct, rather than all of them, as
    for constraint tuples."

Under that disjunctive reading a tuple's formula describes a set of
*candidate worlds*, exactly one of which is real.  A selection then has
two meaningful answers:

* **possible** — tuples whose formula is *consistent* with the condition
  (the true value might satisfy it): ``φ(t) ∧ ξ`` satisfiable;
* **certain** — tuples whose formula *entails* the condition (the true
  value satisfies it no matter which candidate it is): ``φ(t) ⊨ ξ``.

``certain ⊆ possible`` always, and both coincide with ordinary selection
on definite (equality-pinned) tuples.  String and NULL handling follows
the narrow relational semantics of ordinary selection.
"""

from __future__ import annotations

from typing import Sequence

from ..constraints import Conjunction, LinearConstraint
from ..model.relation import ConstraintRelation
from ..model.tuples import HTuple
from .predicates import Predicate, StringPredicate, validate_predicates


def _resolve_atoms(t: HTuple, predicates: Sequence[Predicate]) -> list[LinearConstraint] | None:
    """Relational-value substitution shared by both modes; ``None`` means
    the tuple fails outright (string mismatch, NULL, or ground-false)."""
    atoms: list[LinearConstraint] = []
    for predicate in predicates:
        if isinstance(predicate, StringPredicate):
            if not predicate.matches(t):
                return None
            continue
        substituted = t.substitute_relational(predicate.expression)
        if substituted is None:
            return None
        atom = LinearConstraint(substituted, predicate.comparator)
        if atom.is_trivial:
            if not atom.truth_value():
                return None
            continue
        atoms.append(atom)
    return atoms


def select_possible(
    relation: ConstraintRelation, predicates: Sequence[Predicate]
) -> ConstraintRelation:
    """Tuples whose indefinite value *may* satisfy the condition.

    The output keeps each qualifying tuple's formula narrowed by the
    condition — the remaining candidate worlds."""
    validate_predicates(relation.schema, list(predicates))
    kept = []
    for t in relation:
        atoms = _resolve_atoms(t, predicates)
        if atoms is None:
            continue
        narrowed = t.formula.conjoin(atoms)
        if narrowed.is_satisfiable():
            kept.append(t.with_formula(narrowed))
    return ConstraintRelation(relation.schema, kept)


def select_certain(
    relation: ConstraintRelation, predicates: Sequence[Predicate]
) -> ConstraintRelation:
    """Tuples whose indefinite value satisfies the condition in *every*
    candidate world (φ(t) entails each conjunct).

    Qualifying tuples keep their original formulas: certainty adds no
    information about which world is real."""
    validate_predicates(relation.schema, list(predicates))
    kept = []
    for t in relation:
        atoms = _resolve_atoms(t, predicates)
        if atoms is None:
            continue
        if not t.formula.is_satisfiable():
            continue  # no candidate world at all
        if t.formula.entails(Conjunction(atoms)):
            kept.append(t)
    return ConstraintRelation(relation.schema, kept)
