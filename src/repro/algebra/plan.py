"""Logical query plans for CQA.

"The algebraic expressions represent a 'plan' or a 'recipe' for evaluating
a query" (section 2.2).  A plan is a tree of :class:`PlanNode`; evaluation
walks the tree bottom-up against an :class:`EvaluationContext` (database +
optional index catalog + metrics).  The optimizer
(:mod:`repro.algebra.optimizer`) rewrites plan trees before evaluation.

Spatial whole-feature operators (Buffer-Join, k-Nearest) define their own
node classes in :mod:`repro.spatial.plan_nodes`, subclassing
:class:`PlanNode`; the algebra core stays independent of the spatial layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..errors import AlgebraError
from ..governor.budget import checkpoint as budget_checkpoint
from ..model.database import Database
from ..model.relation import ConstraintRelation
from ..obs import LOGICAL_NODE_ACCESSES, TUPLES_PRODUCED, MetricsRegistry
from . import operators
from .predicates import Predicate


@dataclass
class Metrics:
    """Counters accumulated during plan evaluation.

    A thin per-context view kept for backwards compatibility; every count
    is mirrored into the context's :class:`~repro.obs.MetricsRegistry`
    (``operator.<name>.calls`` / ``operator.<name>.rows``), which is the
    authoritative store new consumers should read.
    """

    operator_calls: dict[str, int] = field(default_factory=dict)
    tuples_produced: int = 0
    index_node_accesses: int = 0
    index_candidates: int = 0
    registry: MetricsRegistry | None = None

    def count(self, operator: str, produced: int) -> None:
        self.operator_calls[operator] = self.operator_calls.get(operator, 0) + 1
        self.tuples_produced += produced
        if self.registry is not None:
            self.registry.add(f"operator.{operator}.calls")
            self.registry.add(f"operator.{operator}.rows", produced)
            self.registry.add(TUPLES_PRODUCED, produced)


class EvaluationContext:
    """Everything a plan needs at run time.

    ``indexes`` maps relation name → {frozenset(attribute names) → index
    strategy} (see :mod:`repro.indexing.strategy`); plans produced by the
    optimizer's index-selection rule consult it.  Every strategy in the
    catalog is bound to the context's metrics ``registry`` so node
    accesses are attributable with scoped counters.
    """

    def __init__(
        self,
        database: Database,
        indexes: Mapping[str, Mapping[frozenset[str], object]] | None = None,
        registry: MetricsRegistry | None = None,
        heapfiles: Mapping[str, object] | None = None,
    ):
        self.database = database
        self.indexes = {k: dict(v) for k, v in (indexes or {}).items()}
        #: relation name → :class:`~repro.storage.HeapFile`; consulted by
        #: :class:`SeqScan` so base-table scans read paged storage (and
        #: charge per-page IO) instead of the in-memory relation.
        self.heapfiles = dict(heapfiles or {})
        self.registry = registry if registry is not None else MetricsRegistry()
        self.metrics = Metrics(registry=self.registry)
        for strategies in self.indexes.values():
            for strategy in strategies.values():
                bind = getattr(strategy, "bind_registry", None)
                if bind is not None:
                    bind(self.registry)


class PlanNode:
    """Base class of all plan nodes.

    ``safe`` declares whether the operator's output stays within the
    system's constraint class (section 2.4's closed-form requirement); the
    safety checker (:mod:`repro.algebra.safety`) rejects plans containing
    unsafe nodes before evaluation.

    :meth:`evaluate` is a template method: it opens a tracing span on the
    context's registry (wall-clock via ``perf_counter``, scoped counter
    capture, output row count) around the operator logic in
    :meth:`_evaluate`, which is what subclasses implement.
    """

    safe: bool = True

    @property
    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def evaluate(self, context: EvaluationContext) -> ConstraintRelation:
        """Evaluate under a span named after the operator; the nested span
        tree of one top-level call is ``registry.last_trace`` afterwards
        (what ``EXPLAIN ANALYZE`` renders)."""
        budget_checkpoint()  # coarse per-node cancellation point
        with context.registry.trace(self.describe(), kind=type(self).__name__) as span:
            result = self._evaluate(context)
            span.rows = len(result)
            return result

    def _evaluate(self, context: EvaluationContext) -> ConstraintRelation:
        raise NotImplementedError

    def with_children(self, children: Sequence["PlanNode"]) -> "PlanNode":
        """Rebuild this node over new children (used by rewrite rules)."""
        if children:
            raise AlgebraError(f"{type(self).__name__} takes no children")
        return self

    def describe(self) -> str:
        """One-line description used in plan pretty-printing."""
        return type(self).__name__

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


class Scan(PlanNode):
    """Read a named base relation from the database."""

    def __init__(self, relation_name: str):
        self.relation_name = relation_name

    def _evaluate(self, context: EvaluationContext) -> ConstraintRelation:
        relation = context.database.get(self.relation_name)
        context.metrics.count("scan", len(relation))
        return relation

    def describe(self) -> str:
        return f"Scan({self.relation_name})"


class Select(PlanNode):
    """ς — selection by a conjunction of predicates."""

    def __init__(self, child: PlanNode, predicates: Sequence[Predicate]):
        self.child = child
        self.predicates = tuple(predicates)

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> "Select":
        (child,) = children
        return Select(child, self.predicates)

    def _evaluate(self, context: EvaluationContext) -> ConstraintRelation:
        result = operators.select(self.child.evaluate(context), self.predicates)
        context.metrics.count("select", len(result))
        return result

    def describe(self) -> str:
        return f"Select({', '.join(str(p) for p in self.predicates)})"


class Project(PlanNode):
    """π — projection onto an attribute list."""

    def __init__(self, child: PlanNode, attributes: Sequence[str]):
        self.child = child
        self.attributes = tuple(attributes)

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> "Project":
        (child,) = children
        return Project(child, self.attributes)

    def _evaluate(self, context: EvaluationContext) -> ConstraintRelation:
        result = operators.project(self.child.evaluate(context), self.attributes)
        context.metrics.count("project", len(result))
        return result

    def describe(self) -> str:
        return f"Project({', '.join(self.attributes)})"


class Join(PlanNode):
    """⋈ — natural join."""

    def __init__(self, left: PlanNode, right: PlanNode):
        self.left = left
        self.right = right

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[PlanNode]) -> "Join":
        left, right = children
        return Join(left, right)

    def _evaluate(self, context: EvaluationContext) -> ConstraintRelation:
        result = operators.natural_join(
            self.left.evaluate(context), self.right.evaluate(context)
        )
        context.metrics.count("join", len(result))
        return result


class Union(PlanNode):
    """∪ — union of union-compatible relations."""

    def __init__(self, left: PlanNode, right: PlanNode):
        self.left = left
        self.right = right

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[PlanNode]) -> "Union":
        left, right = children
        return Union(left, right)

    def _evaluate(self, context: EvaluationContext) -> ConstraintRelation:
        result = operators.union(self.left.evaluate(context), self.right.evaluate(context))
        context.metrics.count("union", len(result))
        return result


class Difference(PlanNode):
    """− — set difference of union-compatible relations."""

    def __init__(self, left: PlanNode, right: PlanNode):
        self.left = left
        self.right = right

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[PlanNode]) -> "Difference":
        left, right = children
        return Difference(left, right)

    def _evaluate(self, context: EvaluationContext) -> ConstraintRelation:
        result = operators.difference(
            self.left.evaluate(context), self.right.evaluate(context)
        )
        context.metrics.count("difference", len(result))
        return result


class Rename(PlanNode):
    """ϱ — attribute rename."""

    def __init__(self, child: PlanNode, old: str, new: str):
        self.child = child
        self.old = old
        self.new = new

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> "Rename":
        (child,) = children
        return Rename(child, self.old, self.new)

    def _evaluate(self, context: EvaluationContext) -> ConstraintRelation:
        result = operators.rename(self.child.evaluate(context), self.old, self.new)
        context.metrics.count("rename", len(result))
        return result

    def describe(self) -> str:
        return f"Rename({self.old} -> {self.new})"


class SeqScan(PlanNode):
    """Sequential scan of a base relation's heap file with an optional
    pushed-down predicate list.

    When the context registers a :class:`~repro.storage.HeapFile` for the
    relation, pages are read through it (charging one IO per page); the
    per-tuple predicate filtering then runs through the same governed
    filter loop as :class:`Select` — morsel-parallel when the session has
    ``workers > 1`` — so ``SeqScan(name, preds)`` always equals
    ``Select(Scan(name), preds)``.  Without a registered heap file it
    degrades to an in-memory scan (no page IO, same result).
    """

    def __init__(self, relation_name: str, predicates: Sequence[Predicate] = ()):
        self.relation_name = relation_name
        self.predicates = tuple(predicates)

    def _evaluate(self, context: EvaluationContext) -> ConstraintRelation:
        from .predicates import validate_predicates

        relation = context.database.get(self.relation_name)
        heap = context.heapfiles.get(self.relation_name)
        pages: list | None = None
        if heap is not None:
            pages = [heap.read_page(i) for i in range(heap.page_count)]
            tuples: Sequence = [t for page in pages for t in page]
        else:
            tuples = relation.tuples
        if self.predicates:
            validate_predicates(relation.schema, list(self.predicates))
            result_tuples = None
            if pages is not None:
                # Columnar paged path: per-page summary blocks cached on
                # the heap file; bypasses (returns None) when columnar is
                # off or a parallel engine should take the flat path.
                result_tuples = operators.filter_pages_columnar(
                    pages, self.predicates, heap
                )
            if result_tuples is None:
                result_tuples = operators.filter_tuples_parallel(
                    tuples, self.predicates, label="seq_scan"
                )
        else:
            result_tuples = list(tuples)
        result = ConstraintRelation(relation.schema, result_tuples)
        context.metrics.count("seq_scan", len(result))
        return result

    def describe(self) -> str:
        if self.predicates:
            preds = ", ".join(str(p) for p in self.predicates)
            return f"SeqScan({self.relation_name}; {preds})"
        return f"SeqScan({self.relation_name})"


class IndexScan(PlanNode):
    """Index-assisted selection over a base relation.

    Produced by the optimizer when an index covers (a subset of) the
    attributes a selection constrains.  The index prunes to candidate
    tuples; the full predicate list is then applied exactly, so the result
    equals ``Select(Scan(name), predicates)``.
    """

    def __init__(
        self,
        relation_name: str,
        predicates: Sequence[Predicate],
        index_attributes: frozenset[str],
    ):
        self.relation_name = relation_name
        self.predicates = tuple(predicates)
        self.index_attributes = index_attributes

    def _evaluate(self, context: EvaluationContext) -> ConstraintRelation:
        from ..indexing.strategy import query_box_for_predicates

        strategies = context.indexes.get(self.relation_name, {})
        strategy = strategies.get(self.index_attributes)
        if strategy is None:
            raise AlgebraError(
                f"no index on {sorted(self.index_attributes)} for relation "
                f"{self.relation_name!r}; optimizer and context disagree"
            )
        relation = context.database.get(self.relation_name)
        box = query_box_for_predicates(self.predicates, self.index_attributes)
        # Scoped attribution: capture only the node accesses this query
        # makes, even when other operators in the plan share the index (a
        # delta-read of ``strategy.accesses`` cannot tell them apart).
        bind = getattr(strategy, "bind_registry", None)
        if bind is not None:
            bind(context.registry)
        with context.registry.scope("index_scan") as scoped:
            candidate_ids = strategy.query(box)
        context.metrics.index_node_accesses += scoped.get(LOGICAL_NODE_ACCESSES, 0)
        context.metrics.index_candidates += len(candidate_ids)
        candidates = ConstraintRelation(
            relation.schema, (relation.tuples[i] for i in sorted(candidate_ids))
        )
        result = operators.select(candidates, self.predicates)
        context.metrics.count("index_scan", len(result))
        return result

    def describe(self) -> str:
        return (
            f"IndexScan({self.relation_name} via {sorted(self.index_attributes)}; "
            f"{', '.join(str(p) for p in self.predicates)})"
        )


def evaluate(plan: PlanNode, context: EvaluationContext) -> ConstraintRelation:
    """Evaluate a plan after checking it is safe (section 2.4)."""
    from .safety import check_safe

    check_safe(plan)
    return plan.evaluate(context)
