"""Query safety: the closed-form requirement of section 2.4.

"For each input, the queries must be evaluable in closed form" — the output
must be representable in the same constraint class as the input.  Every CQA
primitive is safe by the closure principle (section 2.5).  Operators that
*compute* new quantities can break this: a raw Euclidean ``distance``
between constraint points is the classic unsafe example the paper gives in
section 4, because ``d = sqrt(dx² + dy²)`` is not expressible with linear
constraints.  The whole-feature operators Buffer-Join and k-Nearest are the
safe alternatives: they return relations of feature IDs (relational
attributes), never an unrepresentable quantity.

:func:`find_unsafe` walks a plan and reports *which* operator is unsafe
and *where* it sits (a root-relative path), instead of the bare boolean
the original checker produced; :func:`check_safe` keeps its raising
contract on top of it, and the static analyzer renders each site as a
``CQA102`` diagnostic.

:class:`UnsafeDistance` is provided deliberately so that applications (and
tests) can demonstrate the safety check; evaluating it always fails.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.diagnostics import Diagnostic, diagnostic
from ..errors import SafetyError
from .plan import EvaluationContext, PlanNode


class UnsafeDistance(PlanNode):
    """A hypothetical ``distance`` operator that would add an output
    attribute holding the Euclidean distance between two constraint points.

    Its output leaves the rational linear constraint class, so the plan is
    unsafe: :func:`check_safe` rejects it and :meth:`evaluate` refuses to
    run.  Use :class:`repro.spatial.plan_nodes.BufferJoinNode` or
    :class:`repro.spatial.plan_nodes.KNearestNode` instead.
    """

    safe = False

    def __init__(self, left: PlanNode, right: PlanNode, output_attribute: str = "distance"):
        self.left = left
        self.right = right
        self.output_attribute = output_attribute

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, children):
        left, right = children
        return UnsafeDistance(left, right, self.output_attribute)

    def unsafe_reason(self) -> str:
        return (
            f"output attribute {self.output_attribute!r} would hold a Euclidean "
            "distance, which is not representable with rational linear "
            "constraints (section 4)"
        )

    def _evaluate(self, context: EvaluationContext):
        raise SafetyError(
            f"operator {self.describe()} is unsafe: Euclidean distance is not "
            "representable with rational linear constraints (section 4); use "
            "Buffer-Join or k-Nearest whole-feature operators instead"
        )

    def describe(self) -> str:
        return f"UnsafeDistance(-> {self.output_attribute})"


@dataclass(frozen=True)
class UnsafeSite:
    """One unsafe operator found in a plan: the node, its root-relative
    path (``plan.left.right``…), and why its output leaves the class."""

    node: PlanNode
    path: str
    reason: str

    def describe(self) -> str:
        return f"{self.node.describe()} at {self.path}: {self.reason}"

    def to_diagnostic(self) -> Diagnostic:
        return diagnostic(
            "CQA102",
            f"plan operator {self.node.describe()} at {self.path} is unsafe: {self.reason}",
            hint="use the Buffer-Join or k-Nearest whole-feature operators instead",
        )


def _node_reason(node: PlanNode) -> str:
    reason = getattr(node, "unsafe_reason", None)
    if callable(reason):
        return str(reason())
    return "its output is not representable within the linear constraint class"


def find_unsafe(plan: PlanNode, path: str = "plan") -> list[UnsafeSite]:
    """Every unsafe operator in ``plan``, with provenance paths, in
    pre-order.  An empty list means the plan is safe."""
    sites: list[UnsafeSite] = []
    if not plan.safe:
        sites.append(UnsafeSite(plan, path, _node_reason(plan)))
    children = plan.children
    if len(children) == 1:
        sites.extend(find_unsafe(children[0], f"{path}.child"))
    elif len(children) == 2:
        sites.extend(find_unsafe(children[0], f"{path}.left"))
        sites.extend(find_unsafe(children[1], f"{path}.right"))
    else:
        for i, child in enumerate(children):
            sites.extend(find_unsafe(child, f"{path}.child[{i}]"))
    return sites


def check_safe(plan: PlanNode) -> None:
    """Raise :class:`SafetyError` when any node of the plan is unsafe,
    naming the offending operator(s) and where they sit."""
    sites = find_unsafe(plan)
    if sites:
        detail = "; ".join(site.describe() for site in sites)
        raise SafetyError(
            f"plan contains {len(sites)} unsafe operator(s) — {detail} — so its "
            "output is not evaluable in closed form within the linear constraint class"
        )


def is_safe(plan: PlanNode) -> bool:
    """Boolean form of :func:`check_safe`."""
    return not find_unsafe(plan)
