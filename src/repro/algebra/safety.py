"""Query safety: the closed-form requirement of section 2.4.

"For each input, the queries must be evaluable in closed form" — the output
must be representable in the same constraint class as the input.  Every CQA
primitive is safe by the closure principle (section 2.5).  Operators that
*compute* new quantities can break this: a raw Euclidean ``distance``
between constraint points is the classic unsafe example the paper gives in
section 4, because ``d = sqrt(dx² + dy²)`` is not expressible with linear
constraints.  The whole-feature operators Buffer-Join and k-Nearest are the
safe alternatives: they return relations of feature IDs (relational
attributes), never an unrepresentable quantity.

:class:`UnsafeDistance` is provided deliberately so that applications (and
tests) can demonstrate the safety check; evaluating it always fails.
"""

from __future__ import annotations

from ..errors import SafetyError
from .plan import EvaluationContext, PlanNode


class UnsafeDistance(PlanNode):
    """A hypothetical ``distance`` operator that would add an output
    attribute holding the Euclidean distance between two constraint points.

    Its output leaves the rational linear constraint class, so the plan is
    unsafe: :func:`check_safe` rejects it and :meth:`evaluate` refuses to
    run.  Use :class:`repro.spatial.plan_nodes.BufferJoinNode` or
    :class:`repro.spatial.plan_nodes.KNearestNode` instead.
    """

    safe = False

    def __init__(self, left: PlanNode, right: PlanNode, output_attribute: str = "distance"):
        self.left = left
        self.right = right
        self.output_attribute = output_attribute

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, children):
        left, right = children
        return UnsafeDistance(left, right, self.output_attribute)

    def _evaluate(self, context: EvaluationContext):
        raise SafetyError(
            f"operator {self.describe()} is unsafe: Euclidean distance is not "
            "representable with rational linear constraints (section 4); use "
            "Buffer-Join or k-Nearest whole-feature operators instead"
        )

    def describe(self) -> str:
        return f"UnsafeDistance(-> {self.output_attribute})"


def check_safe(plan: PlanNode) -> None:
    """Raise :class:`SafetyError` when any node of the plan is unsafe."""
    if not plan.safe:
        raise SafetyError(
            f"plan contains the unsafe operator {plan.describe()}; its output is "
            "not evaluable in closed form within the linear constraint class"
        )
    for child in plan.children:
        check_safe(child)


def is_safe(plan: PlanNode) -> bool:
    """Boolean form of :func:`check_safe`."""
    try:
        check_safe(plan)
    except SafetyError:
        return False
    return True
