"""The Constraint Query Algebra (CQA) — section 2.4 of the paper.

Public surface:

* :mod:`~repro.algebra.operators` — the six primitives as functions over
  relations: :func:`select`, :func:`project`, :func:`natural_join`,
  :func:`union`, :func:`rename`, :func:`difference` (plus the
  :func:`intersection` / :func:`cross_product` special cases).
* :mod:`~repro.algebra.plan` — plan nodes and :func:`evaluate`.
* :mod:`~repro.algebra.optimizer` — rule-based plan rewriting.
* :mod:`~repro.algebra.safety` — the closed-form safety check.
* :class:`StringPredicate` — relational string selection conjuncts.
"""

from .indefinite import select_certain, select_possible
from .operators import (
    cross_product,
    difference,
    intersection,
    natural_join,
    project,
    rename,
    select,
    union,
)
from .plan import (
    Difference,
    EvaluationContext,
    IndexScan,
    Join,
    Metrics,
    PlanNode,
    Project,
    Rename,
    Scan,
    Select,
    SeqScan,
    Union,
    evaluate,
)
from .optimizer import Optimizer, optimize
from .predicates import Predicate, StringPredicate
from .safety import UnsafeDistance, check_safe, is_safe

__all__ = [
    "Difference",
    "EvaluationContext",
    "IndexScan",
    "Join",
    "Metrics",
    "Optimizer",
    "PlanNode",
    "Predicate",
    "Project",
    "Rename",
    "Scan",
    "Select",
    "SeqScan",
    "StringPredicate",
    "Union",
    "UnsafeDistance",
    "check_safe",
    "cross_product",
    "difference",
    "evaluate",
    "intersection",
    "is_safe",
    "natural_join",
    "optimize",
    "project",
    "rename",
    "select",
    "select_certain",
    "select_possible",
    "union",
]
