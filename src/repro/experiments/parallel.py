"""Parallel experiment harness: fig4/fig5 at ``workers=N``.

The figure experiments decompose naturally at the *(variant × strategy)*
level: each of the four series — {constraint, relational} × {joint,
separate} — builds its own indexes and runs every query against them,
sharing nothing with the other three.  One worker task therefore owns one
whole series; the task envelope carries only the generator seeds and
sizing knobs (workers regenerate the rectangle data deterministically),
so dispatch cost is independent of ``data_size``.

Determinism: the per-query access counts and candidate-id sets a worker
returns are exactly what the serial loop measures — same seeds, same
index builds, same query order — and the parent re-assembles the series
in the serial order, re-running :func:`~repro.experiments.runner.check_consistency`
across the joint/separate task pair of each variant.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping

from ..exec import (
    ExecutionConfig,
    ExecutionEngine,
    rebuild_exhaustion,
    reconcile_consumed,
)
from ..governor.budget import current_budget
from ..indexing.strategy import JointIndex, SeparateIndexes
from ..obs import MetricsRegistry, current_registry
from ..storage.pages import PageConfig
from ..workloads import rectangles
from .runner import (
    ExperimentResult,
    ExperimentSeries,
    QueryMeasurement,
    check_consistency,
    measured_query,
)

#: The four independent series of one figure run, in merge order.
_VARIANTS = ("constraint", "relational")
_STRATEGIES = ("joint", "separate")


@dataclass(frozen=True)
class SeriesSpec:
    """One worker task: one (variant, strategy) series of a figure."""

    figure: str  # "fig4" | "fig5"
    variant: str  # "constraint" | "relational"
    strategy: str  # "joint" | "separate"


def _series_task(
    payload: Mapping[str, Any], morsel: tuple[SeriesSpec, ...]
) -> list[tuple[int, tuple[int, ...]]]:
    """Worker-side task: regenerate the workload from seeds, build one
    index strategy, and run every query — returning per-query
    ``(node accesses, sorted candidate ids)`` in query order."""
    spec = morsel[0]
    config = PageConfig(**payload["config"])
    data = rectangles.generate_data(payload["data_size"], payload["data_seed"])
    queries = rectangles.generate_queries(payload["query_count"], payload["query_seed"])
    if spec.variant == "constraint":
        relation = rectangles.build_constraint_relation(data)
    else:
        relation = rectangles.build_relational_relation(data)
    fanout = config.index_fanout(2) if payload["equal_fanout"] else None
    if spec.strategy == "joint":
        strategy: JointIndex | SeparateIndexes = JointIndex(
            relation, ["x", "y"], config=config, max_entries=fanout
        )
    else:
        strategy = SeparateIndexes(relation, ["x", "y"], config=config, max_entries=fanout)
    registry = current_registry()
    strategy.bind_registry(registry)
    results: list[tuple[int, tuple[int, ...]]] = []
    for query in queries:
        if spec.figure == "fig4":
            box = rectangles.query_box_two_attributes(query)
        else:
            box = rectangles.query_box_one_attribute(query, payload["attribute"])
        strategy.reset_counters()
        hits, accesses = measured_query(registry, spec.strategy, strategy, box)
        results.append((accesses, tuple(sorted(hits))))
    return results


def run_parallel(
    figure: str,
    *,
    experiment_id: str,
    title: str,
    variant_labels: Mapping[str, str],
    x_label: str,
    notes: str,
    data_size: int,
    query_count: int,
    data_seed: int,
    query_seed: int,
    config: PageConfig,
    equal_fanout: bool,
    attribute: str = "x",
    workers: int = 2,
    mode: str = "auto",
) -> ExperimentResult:
    """Dispatch one figure's four series to a worker pool and merge.

    The merged :class:`ExperimentResult` carries the same measurements, in
    the same order, as the serial ``run()`` — only wall-clock differs."""
    registry = MetricsRegistry()
    payload = {
        "data_size": data_size,
        "query_count": query_count,
        "data_seed": data_seed,
        "query_seed": query_seed,
        "config": asdict(config),
        "equal_fanout": equal_fanout,
        "attribute": attribute,
    }
    specs = [
        SeriesSpec(figure, variant, strategy)
        for variant in _VARIANTS
        for strategy in _STRATEGIES
    ]
    budget = current_budget()
    with ExecutionEngine(ExecutionConfig(workers=workers, mode=mode)) as engine:
        engine.begin_statement()
        with registry.activate(), registry.timed(f"experiments.{figure}.parallel"):
            outcomes = engine.map_morsels(
                _series_task, payload, [(spec,) for spec in specs], label=figure
            )
            per_spec: dict[SeriesSpec, list[tuple[int, tuple[int, ...]]]] = {}
            for spec, outcome in zip(specs, outcomes):
                engine.merge_counters(registry, outcome)
                if outcome.failure is not None:
                    raise rebuild_exhaustion(outcome.failure)
                reconcile_consumed(budget, outcome.consumed)
                per_spec[spec] = outcome.output
        summary = engine.statement_summary()
    queries = rectangles.generate_queries(query_count, query_seed)
    series: list[ExperimentSeries] = []
    for variant in _VARIANTS:
        joint_rows = per_spec[SeriesSpec(figure, variant, "joint")]
        separate_rows = per_spec[SeriesSpec(figure, variant, "separate")]
        one = ExperimentSeries(variant_labels[variant], x_label=x_label)
        for query, (joint_accesses, joint_hits), (separate_accesses, separate_hits) in zip(
            queries, joint_rows, separate_rows
        ):
            check_consistency(joint_hits, separate_hits)
            if figure == "fig4":
                x_value = query.area
            else:
                x_value = query.width if attribute == "x" else query.height
            one.measurements.append(
                QueryMeasurement(
                    x_value=x_value,
                    joint_accesses=joint_accesses,
                    separate_accesses=separate_accesses,
                    result_count=len(joint_hits),
                )
            )
        series.append(one)
    if summary is not None:
        notes = f"{notes}; {summary}"
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        series=series,
        notes=notes,
        metrics=registry.snapshot(),
    )
