"""Shared experiment plumbing: measurements, binning and table printing.

Each experiment module (:mod:`fig4`, :mod:`fig5`, :mod:`expt3`, …) produces
:class:`ExperimentResult` objects; the paper's figures are scatter/line
plots of disk accesses, so results carry raw per-query measurements plus a
binned summary suitable for a text table (and for asserting the shape —
who wins, by what factor — in tests and EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Mapping, Sequence

from ..obs import LOGICAL_NODE_ACCESSES, MetricsRegistry


@dataclass(frozen=True)
class QueryMeasurement:
    """One query's outcome under both strategies.

    ``x_value`` is the figure's x-coordinate (query area for Figure 4,
    query length for Figure 5, data size for experiment 3).
    """

    x_value: float
    joint_accesses: int
    separate_accesses: int
    result_count: int


@dataclass
class ExperimentSeries:
    """All measurements of one experiment variant (e.g. '1-A')."""

    label: str
    x_label: str
    measurements: list[QueryMeasurement] = field(default_factory=list)

    @property
    def mean_joint(self) -> float:
        return mean(m.joint_accesses for m in self.measurements)

    @property
    def mean_separate(self) -> float:
        return mean(m.separate_accesses for m in self.measurements)

    @property
    def joint_advantage(self) -> float:
        """separate/joint mean access ratio (>1 means joint wins)."""
        joint = self.mean_joint
        return self.mean_separate / joint if joint else float("inf")

    def binned(self, bins: int = 8) -> list[tuple[float, float, float, int]]:
        """``(bin center x, mean joint, mean separate, count)`` rows over
        equal-width x bins (empty bins are skipped)."""
        if not self.measurements:
            return []
        xs = [m.x_value for m in self.measurements]
        low, high = min(xs), max(xs)
        if high == low:
            return [(low, self.mean_joint, self.mean_separate, len(self.measurements))]
        width = (high - low) / bins
        rows = []
        for b in range(bins):
            bin_low = low + b * width
            bin_high = high if b == bins - 1 else bin_low + width
            members = [
                m
                for m in self.measurements
                if bin_low <= m.x_value <= bin_high
                and (b == 0 or m.x_value > bin_low)
            ]
            if not members:
                continue
            # A singleton bin reports its exact x (sweeps over a handful of
            # data sizes read better than synthetic bin centers).
            x = members[0].x_value if len(members) == 1 else bin_low + width / 2
            rows.append(
                (
                    x,
                    mean(m.joint_accesses for m in members),
                    mean(m.separate_accesses for m in members),
                    len(members),
                )
            )
        return rows


@dataclass
class ExperimentResult:
    """A complete experiment: id, description and its variant series."""

    experiment_id: str
    title: str
    series: list[ExperimentSeries]
    notes: str = ""
    #: Registry snapshot taken when the experiment finished (totals across
    #: every query of every series) — the same counters the figures plot.
    metrics: Mapping[str, float] | None = None

    def format_table(self, bins: int = 8) -> str:
        lines = [f"{self.experiment_id}: {self.title}"]
        if self.notes:
            lines.append(f"  {self.notes}")
        for series in self.series:
            lines.append(f"\n  [{series.label}]  ({len(series.measurements)} points)")
            lines.append(
                f"    {series.x_label:>16} | {'joint':>8} | {'separate':>9} | {'n':>4}"
            )
            lines.append("    " + "-" * 48)
            for x, joint, separate, count in series.binned(bins):
                lines.append(
                    f"    {x:16.1f} | {joint:8.1f} | {separate:9.1f} | {count:4d}"
                )
            lines.append(
                f"    mean: joint={series.mean_joint:.1f}  "
                f"separate={series.mean_separate:.1f}  "
                f"advantage(sep/joint)={series.joint_advantage:.2f}x"
            )
        if self.metrics:
            interesting = {
                name: value for name, value in self.metrics.items() if value
            }
            if interesting:
                lines.append("\n  registry totals:")
                for name, value in interesting.items():
                    shown = f"{value:.3f}" if isinstance(value, float) and not value.is_integer() else f"{int(value)}"
                    lines.append(f"    {name} = {shown}")
        return "\n".join(lines)


def print_result(result: ExperimentResult, bins: int = 8) -> None:
    print(result.format_table(bins))


def measured_query(
    registry: MetricsRegistry, label: str, strategy, box
) -> tuple[set[int], int]:
    """Run one strategy query under a scoped counter.

    Returns ``(candidate ids, logical node accesses attributed to exactly
    this query)``.  The strategy must be bound to ``registry``
    (``strategy.bind_registry``); the scoped capture replaces the
    reset-then-read-``.accesses`` pattern and stays correct even when
    several strategies (or queries) share the registry.
    """
    with registry.scope(label) as scoped:
        hits = strategy.query(box)
    return hits, scoped.get(LOGICAL_NODE_ACCESSES, 0)


def check_consistency(
    joint_hits: Sequence[int] | set[int], separate_hits: Sequence[int] | set[int]
) -> None:
    """Both strategies must return the same candidate sets — they index the
    same intervals; raise loudly if an experiment run ever disagrees."""
    if set(joint_hits) != set(separate_hits):
        raise AssertionError(
            f"strategy disagreement: joint found {len(set(joint_hits))} candidates, "
            f"separate found {len(set(separate_hits))}"
        )
