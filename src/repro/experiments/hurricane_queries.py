"""Figure 2 / section 3.3 — the Hurricane case-study queries.

Runs the five multi-step CQA scripts against the Figure 2 instance and
reports each result relation with the evaluator's operator metrics.  This
is the functional reproduction of the case study: the expected outputs
(who owned parcel A, which parcels the hurricane crossed, and so on) are
asserted exactly in ``tests/integration/test_hurricane_case_study.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..model.database import Database
from ..model.relation import ConstraintRelation
from ..query import QuerySession
from ..workloads.hurricane import figure2_database, paper_queries


@dataclass
class CaseStudyResult:
    query_name: str
    script: str
    result: ConstraintRelation
    operator_calls: dict[str, int] = field(default_factory=dict)

    def format(self) -> str:
        lines = [f"== {self.query_name} =="]
        lines.extend(f"  | {line}" for line in self.script.strip().splitlines())
        lines.append(self.result.simplify().pretty())
        ops = ", ".join(f"{op}×{n}" for op, n in sorted(self.operator_calls.items()))
        lines.append(f"  operators: {ops}")
        return "\n".join(lines)


def run(database: Database | None = None, use_optimizer: bool = True) -> list[CaseStudyResult]:
    database = database or figure2_database()
    results = []
    for name, script in paper_queries().items():
        session = QuerySession(database, use_optimizer=use_optimizer)
        relation = session.run_script(script)
        results.append(
            CaseStudyResult(
                query_name=name,
                script=script,
                result=relation,
                operator_calls=dict(session.metrics.operator_calls),
            )
        )
    return results


def main() -> None:  # pragma: no cover - exercised via examples/benches
    for result in run():
        print(result.format())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
