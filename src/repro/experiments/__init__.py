"""Experiment harnesses: one module per paper figure/experiment.

* :mod:`~repro.experiments.fig4` — Figure 4 (two-attribute queries).
* :mod:`~repro.experiments.fig5` — Figure 5 (one-attribute queries).
* :mod:`~repro.experiments.expt3` — experiment 3 (low joint selectivity;
  reconstructed, see the module docstring).
* :mod:`~repro.experiments.hurricane_queries` — Figure 2 / §3.3 case study.
* :mod:`~repro.experiments.representation` — §6.2 representation costs.

Each module exposes ``run(...)`` returning structured results and a
``main()`` that prints the paper-style table; the ``benchmarks/`` tree
wraps these for ``pytest-benchmark``.
"""

from .runner import (
    ExperimentResult,
    ExperimentSeries,
    QueryMeasurement,
    check_consistency,
    print_result,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSeries",
    "QueryMeasurement",
    "check_consistency",
    "print_result",
]
