"""Figure 4 — querying both attributes: joint vs separate indexes.

Experiments 1-A (both attributes constraint) and 1-B (both relational):
10,000 random boxes, 100 rectangle queries over *both* attributes; the
figure plots disk accesses against the query rectangle's area.

Expected shape (§5.4.1): "for both relational and constraint attributes,
if the query involves both of the attributes, it is more efficient to have
them stored in the same index structure", with (1) the joint advantage
larger for constraint attributes at small query areas and (2) the joint
index's access count depending far less on query area.
"""

from __future__ import annotations

from ..indexing.strategy import JointIndex, SeparateIndexes
from ..model.relation import ConstraintRelation
from ..obs import MetricsRegistry
from ..storage.pages import PageConfig
from ..workloads import rectangles
from .runner import (
    ExperimentResult,
    ExperimentSeries,
    QueryMeasurement,
    check_consistency,
    measured_query,
)


def _measure_variant(
    label: str,
    relation: ConstraintRelation,
    queries: list[rectangles.Rect],
    config: PageConfig,
    equal_fanout: bool,
    registry: MetricsRegistry,
) -> ExperimentSeries:
    # The paper's trees share one branching factor; byte-packed pages would
    # give the 1-D trees ~70% more fanout, overstating the separate
    # strategy everywhere (kept as an ablation via equal_fanout=False).
    fanout = config.index_fanout(2) if equal_fanout else None
    joint = JointIndex(relation, ["x", "y"], config=config, max_entries=fanout)
    separate = SeparateIndexes(relation, ["x", "y"], config=config, max_entries=fanout)
    # Per-query accesses come from the registry's scoped counters — the
    # observability layer the paper's figures now read — with the trees'
    # own counters reset per query under the cascading reset contract.
    joint.bind_registry(registry)
    separate.bind_registry(registry)
    series = ExperimentSeries(label, x_label="query area")
    with registry.timed(f"experiments.fig4.{label}"):
        for query in queries:
            box = rectangles.query_box_two_attributes(query)
            joint.reset_counters()
            separate.reset_counters()
            joint_hits, joint_accesses = measured_query(registry, "joint", joint, box)
            separate_hits, separate_accesses = measured_query(
                registry, "separate", separate, box
            )
            check_consistency(joint_hits, separate_hits)
            series.measurements.append(
                QueryMeasurement(
                    x_value=query.area,
                    joint_accesses=joint_accesses,
                    separate_accesses=separate_accesses,
                    result_count=len(joint_hits),
                )
            )
    return series


def run(
    data_size: int = rectangles.DATA_SIZE,
    query_count: int = rectangles.QUERY_COUNT,
    data_seed: int = 54,
    query_seed: int = 5403,
    config: PageConfig | None = None,
    equal_fanout: bool = True,
    workers: int = 1,
) -> ExperimentResult:
    """Run both Figure 4 panels and return the measured series.

    ``workers >= 2`` dispatches the four (variant × strategy) series to a
    worker pool (:mod:`repro.experiments.parallel`); measurements are
    identical to the serial run."""
    config = config or PageConfig()
    if workers >= 2:
        from .parallel import run_parallel

        return run_parallel(
            "fig4",
            experiment_id="figure-4",
            title="Querying both attributes: disk accesses vs query area",
            variant_labels={
                "constraint": "expt 1-A (constraint attributes)",
                "relational": "expt 1-B (relational attributes)",
            },
            x_label="query area",
            notes=(
                f"{data_size} data boxes, {query_count} rectangle queries; "
                f"page size {config.page_size}B, fanout {config.index_fanout(2)}"
                + ("" if equal_fanout else f" (2-D) / {config.index_fanout(1)} (1-D)")
            ),
            data_size=data_size,
            query_count=query_count,
            data_seed=data_seed,
            query_seed=query_seed,
            config=config,
            equal_fanout=equal_fanout,
            workers=workers,
        )
    registry = MetricsRegistry()
    data = rectangles.generate_data(data_size, data_seed)
    queries = rectangles.generate_queries(query_count, query_seed)
    constraint_rel = rectangles.build_constraint_relation(data)
    relational_rel = rectangles.build_relational_relation(data)
    return ExperimentResult(
        experiment_id="figure-4",
        title="Querying both attributes: disk accesses vs query area",
        series=[
            _measure_variant(
                "expt 1-A (constraint attributes)",
                constraint_rel,
                queries,
                config,
                equal_fanout,
                registry,
            ),
            _measure_variant(
                "expt 1-B (relational attributes)",
                relational_rel,
                queries,
                config,
                equal_fanout,
                registry,
            ),
        ],
        notes=(
            f"{data_size} data boxes, {query_count} rectangle queries; "
            f"page size {config.page_size}B, fanout {config.index_fanout(2)}"
            + ("" if equal_fanout else f" (2-D) / {config.index_fanout(1)} (1-D)")
        ),
        metrics=registry.snapshot(),
    )


def main() -> None:  # pragma: no cover - exercised via examples/benches
    from .runner import print_result

    print_result(run())


if __name__ == "__main__":  # pragma: no cover
    main()
