"""Figure 5 — querying one attribute: joint vs separate indexes.

Experiments 2-A (constraint attributes) and 2-B (relational attributes):
the same 10,000 boxes, but each query constrains only the ``x`` attribute;
for the joint index "the bound of the other attribute is set from minimum
to maximum".  The figure plots disk accesses against the query *length*.

Expected shape (§5.4.2): "it is better to have separate indices when
queries only use one attribute … However, this advantage is not as
significant as the advantage of joint indices when queries use both
attributes."
"""

from __future__ import annotations

from ..indexing.strategy import JointIndex, SeparateIndexes
from ..model.relation import ConstraintRelation
from ..obs import MetricsRegistry
from ..storage.pages import PageConfig
from ..workloads import rectangles
from .runner import (
    ExperimentResult,
    ExperimentSeries,
    QueryMeasurement,
    check_consistency,
    measured_query,
)


def _measure_variant(
    label: str,
    relation: ConstraintRelation,
    queries: list[rectangles.Rect],
    config: PageConfig,
    attribute: str,
    equal_fanout: bool,
    registry: MetricsRegistry,
) -> ExperimentSeries:
    fanout = config.index_fanout(2) if equal_fanout else None
    joint = JointIndex(relation, ["x", "y"], config=config, max_entries=fanout)
    separate = SeparateIndexes(relation, ["x", "y"], config=config, max_entries=fanout)
    joint.bind_registry(registry)
    separate.bind_registry(registry)
    series = ExperimentSeries(label, x_label="query length")
    with registry.timed(f"experiments.fig5.{label}"):
        for query in queries:
            box = rectangles.query_box_one_attribute(query, attribute)
            joint.reset_counters()
            separate.reset_counters()
            joint_hits, joint_accesses = measured_query(registry, "joint", joint, box)
            separate_hits, separate_accesses = measured_query(
                registry, "separate", separate, box
            )
            check_consistency(joint_hits, separate_hits)
            length = query.width if attribute == "x" else query.height
            series.measurements.append(
                QueryMeasurement(
                    x_value=length,
                    joint_accesses=joint_accesses,
                    separate_accesses=separate_accesses,
                    result_count=len(joint_hits),
                )
            )
    return series


def run(
    data_size: int = rectangles.DATA_SIZE,
    query_count: int = rectangles.QUERY_COUNT,
    data_seed: int = 54,
    query_seed: int = 5404,
    config: PageConfig | None = None,
    attribute: str = "x",
    equal_fanout: bool = True,
    workers: int = 1,
) -> ExperimentResult:
    """Run both Figure 5 panels and return the measured series.

    ``workers >= 2`` dispatches the four (variant × strategy) series to a
    worker pool (:mod:`repro.experiments.parallel`); measurements are
    identical to the serial run."""
    config = config or PageConfig()
    if workers >= 2:
        from .parallel import run_parallel

        return run_parallel(
            "fig5",
            experiment_id="figure-5",
            title="Querying one attribute: disk accesses vs query length",
            variant_labels={
                "constraint": "expt 2-A (constraint attributes)",
                "relational": "expt 2-B (relational attributes)",
            },
            x_label="query length",
            notes=(
                f"{data_size} data boxes, {query_count} single-attribute "
                f"({attribute}) queries; page size {config.page_size}B"
            ),
            data_size=data_size,
            query_count=query_count,
            data_seed=data_seed,
            query_seed=query_seed,
            config=config,
            equal_fanout=equal_fanout,
            attribute=attribute,
            workers=workers,
        )
    registry = MetricsRegistry()
    data = rectangles.generate_data(data_size, data_seed)
    queries = rectangles.generate_queries(query_count, query_seed)
    constraint_rel = rectangles.build_constraint_relation(data)
    relational_rel = rectangles.build_relational_relation(data)
    return ExperimentResult(
        experiment_id="figure-5",
        title="Querying one attribute: disk accesses vs query length",
        series=[
            _measure_variant(
                "expt 2-A (constraint attributes)",
                constraint_rel,
                queries,
                config,
                attribute,
                equal_fanout,
                registry,
            ),
            _measure_variant(
                "expt 2-B (relational attributes)",
                relational_rel,
                queries,
                config,
                attribute,
                equal_fanout,
                registry,
            ),
        ],
        notes=(
            f"{data_size} data boxes, {query_count} single-attribute ({attribute}) queries; "
            f"page size {config.page_size}B"
        ),
        metrics=registry.snapshot(),
    )


def main() -> None:  # pragma: no cover - exercised via examples/benches
    from .runner import print_result

    print_result(run())


if __name__ == "__main__":  # pragma: no cover
    main()
