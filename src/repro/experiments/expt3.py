"""Experiment 3 — low joint selectivity: logarithmic vs linear behaviour.

The surviving text names five experiments and says "For experiment 3,
generate 500 queries" without printing its panel; we reconstruct it from
the scenario section 5.3 uses to motivate joint indexing:

    "suppose that the selection condition is x < a and y > b … the
    selectivity [of each conjunct] is very low; that is, about half of all
    the tuples … However, very few tuples satisfy both … reducing the time
    performance from linear to logarithmic in the size of data."

So: 500 half-open conjunctive queries over *diagonally correlated* data
(y ≈ x): each conjunct alone keeps ~40–55% of the tuples, but their
conjunction selects an off-diagonal corner that is essentially empty.  The
separate strategy must retrieve ~half the tuples from each 1-D index
(linear in data size); the joint index descends straight to the empty
corner (logarithmic).  This reconstruction is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from statistics import mean

from ..indexing.strategy import JointIndex, SeparateIndexes
from ..obs import MetricsRegistry
from ..storage.pages import PageConfig
from ..workloads import rectangles
from .runner import (
    ExperimentResult,
    ExperimentSeries,
    QueryMeasurement,
    check_consistency,
    measured_query,
)


def run(
    data_sizes: tuple[int, ...] = (1_000, 2_000, 4_000, 8_000, 16_000),
    query_count: int = rectangles.QUERY_COUNT_EXPT3,
    data_seed: int = 54,
    query_seed: int = 5405,
    config: PageConfig | None = None,
    equal_fanout: bool = True,
) -> ExperimentResult:
    """Sweep data sizes; x-axis is the data size, y the mean accesses over
    the 500 half-open queries."""
    config = config or PageConfig()
    registry = MetricsRegistry()
    fanout = config.index_fanout(2) if equal_fanout else None
    queries = rectangles.halfopen_queries(query_count, query_seed)
    series = ExperimentSeries("expt 3 (x < a and y > b)", x_label="data size")
    selectivities = []
    per_attribute = []
    for size in data_sizes:
        data = rectangles.generate_correlated_data(size, data_seed)
        relation = rectangles.build_constraint_relation(data)
        joint = JointIndex(relation, ["x", "y"], config=config, max_entries=fanout)
        separate = SeparateIndexes(relation, ["x", "y"], config=config, max_entries=fanout)
        joint.bind_registry(registry)
        separate.bind_registry(registry)
        joint_counts = []
        separate_counts = []
        result_counts = []
        for box in queries:
            joint.reset_counters()
            separate.reset_counters()
            joint_hits, joint_accesses = measured_query(registry, "joint", joint, box)
            separate_hits, separate_accesses = measured_query(
                registry, "separate", separate, box
            )
            check_consistency(joint_hits, separate_hits)
            joint_counts.append(joint_accesses)
            separate_counts.append(separate_accesses)
            result_counts.append(len(joint_hits))
        series.measurements.append(
            QueryMeasurement(
                x_value=float(size),
                joint_accesses=round(mean(joint_counts)),
                separate_accesses=round(mean(separate_counts)),
                result_count=round(mean(result_counts)),
            )
        )
        selectivities.append(mean(result_counts) / size)
        # Per-attribute selectivity, sampled on a few queries (reported so
        # the "about half" premise of §5.3 is visible in the output).
        sample = queries[:20]
        per_attribute.append(
            mean(
                len(rectangles.brute_force_matches(data, {"x": box["x"]})) / size
                for box in sample
            )
        )
    return ExperimentResult(
        experiment_id="experiment-3",
        title="Low joint selectivity: mean disk accesses vs data size",
        series=[series],
        notes=(
            f"{query_count} half-open queries over diagonal data; mean joint "
            f"selectivity {mean(selectivities):.3%} of tuples vs per-attribute "
            f"selectivity {mean(per_attribute):.1%}"
        ),
        metrics=registry.snapshot(),
    )


def main() -> None:  # pragma: no cover - exercised via examples/benches
    from .runner import print_result

    print_result(run())


if __name__ == "__main__":  # pragma: no cover
    main()
