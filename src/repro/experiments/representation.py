"""Section 6.2 — constraint vs vector representation cost.

Not a numbered figure, but the paper's quantitative argument for the
constraint-neutral middle layer: linear features need "three constraints
… for every segment", concave regions decompose into unions of convex
polyhedra, non-spatial attributes are duplicated per tuple, and boundary
constraints are duplicated between neighbours.  This experiment sweeps
feature complexity and tabulates both representations' storage costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from ..spatial.geometry import Point
from ..spatial.vector import PolylineFeature, RegionFeature, RepresentationCost


@dataclass
class RepresentationRow:
    kind: str
    segments: int
    constraint: RepresentationCost
    vector: RepresentationCost

    @property
    def coordinate_ratio(self) -> float:
        return self.constraint.coordinates / self.vector.coordinates


def _zigzag_polyline(segments: int) -> PolylineFeature:
    """A digitised road: unit steps right with alternating rises."""
    points = [Point(0, 0)]
    for i in range(segments):
        points.append(Point(i + 1, (i % 2) + Fraction(i, segments + 1)))
    return PolylineFeature(f"polyline_{segments}", points)


def _star_region(spikes: int) -> RegionFeature:
    """A concave star outline with ``2 * spikes`` vertices; rational
    coordinates approximate the trig ring to keep geometry exact."""
    outline = []
    for i in range(2 * spikes):
        angle = math.pi * i / spikes
        radius = 10 if i % 2 == 0 else 4
        outline.append(
            Point(
                Fraction(round(radius * math.cos(angle) * 1000), 1000),
                Fraction(round(radius * math.sin(angle) * 1000), 1000),
            )
        )
    return RegionFeature(f"star_{spikes}", outline)


def run(
    polyline_sizes: tuple[int, ...] = (4, 8, 16, 32, 64),
    region_spikes: tuple[int, ...] = (4, 6, 8, 12, 16),
    extra_attributes: int = 3,
) -> list[RepresentationRow]:
    """Tabulate both representations over growing feature complexity.

    ``extra_attributes`` models the non-spatial attributes a real relation
    would carry (owner, name, zoning, …) — the quantity redundancy 1
    duplicates per constraint tuple.
    """
    rows: list[RepresentationRow] = []
    for segments in polyline_sizes:
        feature = _zigzag_polyline(segments)
        rows.append(
            RepresentationRow(
                kind="polyline",
                segments=segments,
                constraint=feature.constraint_cost(extra_attributes),
                vector=feature.vector_cost(extra_attributes),
            )
        )
    for spikes in region_spikes:
        feature = _star_region(spikes)
        rows.append(
            RepresentationRow(
                kind="region",
                segments=len(feature.outline),
                constraint=feature.constraint_cost(extra_attributes),
                vector=feature.vector_cost(extra_attributes),
            )
        )
    return rows


def format_table(rows: list[RepresentationRow]) -> str:
    lines = [
        "section 6.2: constraint vs vector representation cost "
        "(tuples / constraints / coordinates / duplicated attrs / shared boundaries)"
    ]
    header = (
        f"  {'kind':>8} {'size':>5} | {'c.tuples':>8} {'c.atoms':>8} {'c.coords':>9} "
        f"{'c.dup':>6} {'c.shared':>9} | {'v.coords':>9} | {'ratio':>6}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for row in rows:
        lines.append(
            f"  {row.kind:>8} {row.segments:>5} | {row.constraint.tuples:>8} "
            f"{row.constraint.constraints:>8} {row.constraint.coordinates:>9} "
            f"{row.constraint.duplicated_attributes:>6} "
            f"{row.constraint.shared_boundary_constraints:>9} | "
            f"{row.vector.coordinates:>9} | {row.coordinate_ratio:>6.2f}"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - exercised via examples/benches
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
