"""Joint vs separate indexing strategies (section 5 of the paper).

Given a heterogeneous relation and a set of attributes to index, there are
two strategies:

* :class:`JointIndex` — one multidimensional R*-tree over all the
  attributes ("a single indexing structure for both attributes");
* :class:`SeparateIndexes` — one 1-D R*-tree per attribute; a
  multi-attribute query runs one subquery per index and intersects the
  resulting tuple-id sets, and "the overall number of disk accesses [is]
  the sum of the numbers for the two subqueries" (§5.4.1).

Both strategies index *bounding intervals*: a constraint attribute
contributes the tightest interval its tuple formula implies (section 5.2's
"indexing constraint tuples" via bounding boxes); a relational attribute
contributes a degenerate point interval.  A NULL relational value is mapped
to an out-of-domain sentinel coordinate so that constrained queries (which
stay within the clamped domain) never match it, while unqueried dimensions
(widened to the full sentinel-inclusive range) do not exclude it —
exactly narrow semantics.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..constraints import Comparator, Conjunction, LinearConstraint
from ..errors import IndexStructureError, SchemaError
from ..obs import MetricsRegistry
from ..model.relation import ConstraintRelation
from ..model.tuples import HTuple
from ..model.types import DataType, Null
from ..storage.pages import PageConfig
from .mbr import MBR
from .rstar import RStarTree

#: Unbounded constraint sides are clamped to +/- this value.
DOMAIN_CLAMP = 1e18
#: NULL relational values are indexed at this out-of-domain coordinate.
NULL_SENTINEL = 4e18
#: The range used for an *unqueried* dimension of a joint index: wide
#: enough to include the NULL sentinel ("the bound of the other attribute
#: is set from minimum to maximum", §5.4).
FULL_RANGE = (-5e18, 5e18)


def tuple_interval(t: HTuple, attribute: str) -> tuple[float, float]:
    """The bounding interval of one tuple along one attribute."""
    attr = t.schema[attribute]
    if attr.is_relational:
        if attr.data_type is DataType.STRING:
            raise SchemaError(f"cannot index string attribute {attribute!r} in an R*-tree")
        value = t.values[attribute]
        if isinstance(value, Null):
            return (NULL_SENTINEL, NULL_SENTINEL)
        as_float = float(value)
        return (as_float, as_float)
    lower, upper = _constraint_bounds(t, attribute)
    low = -DOMAIN_CLAMP if lower is None else max(-DOMAIN_CLAMP, float(lower))
    high = DOMAIN_CLAMP if upper is None else min(DOMAIN_CLAMP, float(upper))
    if low > high:  # can only arise from clamping an extreme bound
        low = high
    return (low, high)


def _constraint_bounds(t: HTuple, attribute: str):
    """Bounds of ``attribute`` under the tuple formula.

    Fast path: when every atom mentioning the attribute is single-variable
    (axis-aligned box formulas — the §5.4 workload), read the bounds off
    the atoms directly; otherwise fall back to exact elimination.
    """
    lower = upper = None
    for atom in t.formula:
        if attribute not in atom.variables:
            continue
        if len(atom.variables) > 1:
            full = t.formula.bounds(attribute)
            return full[0], full[2]
        coeff = atom.expression.coefficient(attribute)
        bound = -atom.expression.constant / coeff
        if atom.comparator is Comparator.EQ:
            lower = bound if lower is None else max(lower, bound)
            upper = bound if upper is None else min(upper, bound)
        elif coeff > 0:  # upper bound
            upper = bound if upper is None else min(upper, bound)
        else:
            lower = bound if lower is None else max(lower, bound)
    return lower, upper


def _clamp_query(interval: tuple[float, float]) -> tuple[float, float]:
    low = max(-DOMAIN_CLAMP, interval[0])
    high = min(DOMAIN_CLAMP, interval[1])
    return (low, high)


class IndexStrategy:
    """Common interface of the two strategies."""

    def __init__(self, attributes: Sequence[str]):
        if not attributes:
            raise IndexStructureError("an index needs at least one attribute")
        if len(set(attributes)) != len(attributes):
            raise IndexStructureError(f"duplicate attributes in index: {attributes}")
        self.attributes = tuple(attributes)

    @property
    def accesses(self) -> int:
        """Total node (disk) accesses accumulated by queries."""
        raise NotImplementedError

    def reset_counters(self) -> None:
        """Zero access counters; cascades to any attached buffer pools
        (the tree-level reset contract)."""
        raise NotImplementedError

    def bind_registry(self, registry: MetricsRegistry | None) -> None:
        """Report the underlying trees' node accesses to ``registry`` so
        consumers can use scoped counters instead of delta-reading
        :attr:`accesses`."""
        raise NotImplementedError

    def attach_buffer_pool(self, pool) -> None:
        """Route every tree's node visits through one shared buffer pool
        (page keys are ``(tree_id, node_id)``, so sharing is safe)."""
        raise NotImplementedError

    def query(self, box: Mapping[str, tuple[float, float]] | None) -> set[int]:
        """Candidate tuple ids whose bounding intervals intersect ``box``.

        ``box`` maps attribute name → (low, high); attributes not present
        are unconstrained.  ``None`` (an unsatisfiable condition) returns
        the empty set without touching the index.
        """
        raise NotImplementedError


class JointIndex(IndexStrategy):
    """One ``len(attributes)``-dimensional R*-tree."""

    def __init__(
        self,
        relation: ConstraintRelation,
        attributes: Sequence[str],
        config: PageConfig | None = None,
        max_entries: int | None = None,
        forced_reinsert: bool = True,
    ):
        super().__init__(attributes)
        config = config or PageConfig()
        fanout = max_entries if max_entries is not None else config.index_fanout(len(self.attributes))
        self.tree = RStarTree(
            dimensions=len(self.attributes),
            max_entries=fanout,
            forced_reinsert=forced_reinsert,
        )
        self.size = len(relation)
        for i, t in enumerate(relation):
            intervals = [tuple_interval(t, a) for a in self.attributes]
            self.tree.insert(MBR([iv[0] for iv in intervals], [iv[1] for iv in intervals]), i)

    @property
    def accesses(self) -> int:
        return self.tree.search_accesses

    def reset_counters(self) -> None:
        self.tree.reset_counters()

    def bind_registry(self, registry: MetricsRegistry | None) -> None:
        self.tree.bind_registry(registry)

    def attach_buffer_pool(self, pool) -> None:
        self.tree.attach_buffer_pool(pool)

    def query(self, box: Mapping[str, tuple[float, float]] | None) -> set[int]:
        if box is None:
            return set()
        mins: list[float] = []
        maxs: list[float] = []
        for attribute in self.attributes:
            if attribute in box:
                low, high = _clamp_query(box[attribute])
                if low > high:
                    return set()
            else:
                low, high = FULL_RANGE
            mins.append(low)
            maxs.append(high)
        return set(self.tree.search(MBR(mins, maxs)))


class SeparateIndexes(IndexStrategy):
    """One 1-D R*-tree per attribute, intersected at query time."""

    def __init__(
        self,
        relation: ConstraintRelation,
        attributes: Sequence[str],
        config: PageConfig | None = None,
        max_entries: int | None = None,
        forced_reinsert: bool = True,
    ):
        super().__init__(attributes)
        config = config or PageConfig()
        fanout = max_entries if max_entries is not None else config.index_fanout(1)
        self.trees: dict[str, RStarTree] = {}
        self.size = len(relation)
        self._all_ids = frozenset(range(len(relation)))
        for attribute in self.attributes:
            tree = RStarTree(dimensions=1, max_entries=fanout, forced_reinsert=forced_reinsert)
            for i, t in enumerate(relation):
                low, high = tuple_interval(t, attribute)
                tree.insert(MBR((low,), (high,)), i)
            self.trees[attribute] = tree

    @property
    def accesses(self) -> int:
        return sum(tree.search_accesses for tree in self.trees.values())

    def reset_counters(self) -> None:
        for tree in self.trees.values():
            tree.reset_counters()

    def bind_registry(self, registry: MetricsRegistry | None) -> None:
        for tree in self.trees.values():
            tree.bind_registry(registry)

    def attach_buffer_pool(self, pool) -> None:
        for tree in self.trees.values():
            tree.attach_buffer_pool(pool)

    def query(self, box: Mapping[str, tuple[float, float]] | None) -> set[int]:
        if box is None:
            return set()
        result: set[int] | None = None
        for attribute in self.attributes:
            if attribute not in box:
                continue
            low, high = _clamp_query(box[attribute])
            if low > high:
                return set()
            hits = set(self.trees[attribute].search(MBR((low,), (high,))))
            # Every subquery runs (no early exit): the paper's accounting is
            # "the sum of the numbers for the two subqueries" (§5.4.1).
            result = hits if result is None else (result & hits)
        if result is None:  # no indexed attribute was queried
            return set(self._all_ids)
        return result


def query_box_for_predicates(
    predicates: Iterable[object], attributes: Iterable[str]
) -> dict[str, tuple[float, float]] | None:
    """Derive the index query box implied by a selection's linear atoms.

    Uses exact variable-bound elimination over the conjunction of linear
    predicates, so multi-attribute atoms (``x + y <= 3``) contribute their
    implied per-attribute bounds.  Returns ``None`` when the conjunction is
    unsatisfiable (the selection is empty).  String predicates are ignored
    (they are applied exactly after pruning).
    """
    atoms = [p for p in predicates if isinstance(p, LinearConstraint)]
    if not atoms:
        return {}
    conjunction = Conjunction(atoms)
    if not conjunction.is_satisfiable():
        return None
    box: dict[str, tuple[float, float]] = {}
    mentioned = conjunction.variables
    for attribute in attributes:
        if attribute not in mentioned:
            continue
        lower, _, upper, _ = conjunction.bounds(attribute)
        if lower is None and upper is None:
            continue
        low = -DOMAIN_CLAMP if lower is None else float(lower)
        high = DOMAIN_CLAMP if upper is None else float(upper)
        box[attribute] = (low, high)
    return box
