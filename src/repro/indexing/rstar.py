"""An R*-tree (Beckmann, Kriegel, Schneider, Seeger, SIGMOD 1990).

This is the index structure the paper's section 5.4 experiments use ("An
R* tree was used as the index data structure").  The implementation follows
the original algorithms:

* **ChooseSubtree** — minimum *overlap* enlargement when the children are
  leaves (ties: area enlargement, then area), minimum *area* enlargement
  above the leaf level;
* **OverflowTreatment** — forced reinsertion of the ``reinsert_fraction``
  entries whose centers lie furthest from the node's center, once per level
  per insertion, before resorting to a split;
* **Split** — choose the split axis by minimum margin-sum over all
  distributions, then the distribution with minimum overlap (ties: minimum
  area).

Disk accesses are modelled by counting node visits: every node touched
during a search increments :attr:`RStarTree.search_accesses`, the unit on
the y-axis of the paper's Figures 4 and 5.  (Node = disk page; see
:mod:`repro.storage.pages` for the page-size → fanout computation.)
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from ..errors import IndexStructureError
from ..governor.budget import charge_io as budget_charge_io
from ..obs import (
    LOGICAL_NODE_ACCESSES,
    PHYSICAL_NODE_ACCESSES,
    WRITE_NODE_ACCESSES,
    MetricsRegistry,
)
from .mbr import MBR

#: RT201 annotation: ``entries`` backs the cached corner arrays
#: (:meth:`_Node.boxes`); ``repro devtools lint`` checks every mutation
#: of ``<node>.entries`` pairs with ``<node>.invalidate()`` in the same
#: function.
__cache_registry__ = {"entries": "invalidate"}

#: Stable monotonic ids.  ``id(node)`` is NOT a usable page identity:
#: CPython recycles addresses as soon as a node is garbage-collected
#: (condense discards underfull nodes, reinserts drop and rebuild), so an
#: ``id()``-keyed buffer pool records phantom hits against pages that no
#: longer exist.  Node ids are process-global and never reused; page keys
#: are ``(tree_id, node_id)`` so pools can be shared across trees.
_NODE_IDS = itertools.count()
_TREE_IDS = itertools.count()


class _Entry:
    """A slot in a node: an MBR plus either a child node or a payload."""

    __slots__ = ("mbr", "child", "payload")

    def __init__(self, mbr: MBR, child: "_Node | None" = None, payload: Any = None):
        self.mbr = mbr
        self.child = child
        self.payload = payload


class _Node:
    """A tree node; ``level`` 0 is the leaf level."""

    __slots__ = ("level", "entries", "node_id", "_boxes")

    def __init__(self, level: int, entries: list[_Entry] | None = None):
        self.level = level
        self.entries = entries if entries is not None else []
        self.node_id = next(_NODE_IDS)
        self._boxes = None

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def mbr(self) -> MBR:
        return MBR.union_all(e.mbr for e in self.entries)

    def invalidate(self) -> None:
        """Drop the cached entry-box arrays.  Must be called at every site
        that appends/reorders/replaces ``entries`` or rewrites an entry's
        ``mbr`` in place, so the cache can never serve stale boxes."""
        self._boxes = None

    def boxes(self) -> tuple[np.ndarray, np.ndarray]:
        """The entries' boxes as cached ``(n, d)`` min/max corner arrays,
        row ``i`` = ``entries[i]`` (the columnar form the vectorized
        search kernels broadcast against)."""
        boxes = self._boxes
        if boxes is None:
            mins = np.array([e.mbr.mins for e in self.entries])
            maxs = np.array([e.mbr.maxs for e in self.entries])
            boxes = self._boxes = (mins, maxs)
        return boxes


class RStarTree:
    """An in-memory R*-tree over float MBRs with access accounting.

    ``max_entries`` is the node fanout (page capacity); ``min_entries``
    defaults to 40% of it, per the R* paper's recommendation.  Set
    ``forced_reinsert=False`` to ablate the R*'s signature improvement and
    fall back to plain split-on-overflow (used by
    ``benchmarks/bench_rstar_ablation.py``).
    """

    #: Below this many entries the per-node numpy dispatch overhead beats
    #: the saved Python box tests; such nodes use the scalar loop.
    _VECTOR_MIN = 8

    def __init__(
        self,
        dimensions: int,
        max_entries: int = 50,
        min_entries: int | None = None,
        forced_reinsert: bool = True,
        reinsert_fraction: float = 0.3,
        vectorized: bool = True,
    ):
        if dimensions < 1:
            raise IndexStructureError(f"dimensions must be >= 1, got {dimensions}")
        if max_entries < 4:
            raise IndexStructureError(f"max_entries must be >= 4, got {max_entries}")
        self.dimensions = dimensions
        self.max_entries = max_entries
        self.min_entries = min_entries if min_entries is not None else max(2, int(round(0.4 * max_entries)))
        if not 2 <= self.min_entries <= max_entries // 2:
            raise IndexStructureError(
                f"min_entries must be in [2, {max_entries // 2}], got {self.min_entries}"
            )
        self.forced_reinsert = forced_reinsert
        self.reinsert_fraction = reinsert_fraction
        #: Vectorize the per-entry box tests of search/nearest over the
        #: node's cached box arrays.  The kernels are elementwise-identical
        #: to the scalar tests (pure comparisons and per-dimension
        #: gap-squared accumulation in the same order), so results, visit
        #: order, and access counters are unchanged; ``False`` forces the
        #: scalar loops (the tests' A/B hook).
        self.vectorized = vectorized
        self._root = _Node(level=0)
        self._size = 0
        #: Stable identity used in buffer-pool page keys ``(tree_id, node_id)``.
        self.tree_id = next(_TREE_IDS)
        #: Node visits accumulated by search/nearest; reset with reset_counters().
        self.search_accesses = 0
        #: Node visits accumulated by insert/delete (write I/O model).
        self.write_accesses = 0
        #: Optional buffer pool: when attached, every node visit is also
        #: recorded against it, separating logical accesses (this counter)
        #: from simulated physical reads (pool misses).
        self._buffer_pool = None
        #: Optional metrics registry; when bound, every visit is also
        #: reported as ``index.node_accesses.*`` so scoped consumers can
        #: attribute work without delta-reading ``search_accesses``.
        self._registry: MetricsRegistry | None = None

    def attach_buffer_pool(self, pool) -> None:
        """Route node visits through a :class:`repro.storage.BufferPool`
        so experiments can report physical (miss) I/O alongside the
        logical node-access counts the paper's figures use.  Pages are
        keyed ``(tree_id, node_id)``, so one pool may serve many trees."""
        self._buffer_pool = pool

    def bind_registry(self, registry: MetricsRegistry | None) -> None:
        """Report node accesses to ``registry`` (None detaches)."""
        self._registry = registry

    def _visit(self, node: "_Node") -> None:
        self.search_accesses += 1
        budget_charge_io()  # one simulated disk access against the IO budget
        registry = self._registry
        if registry is not None:
            registry.add(LOGICAL_NODE_ACCESSES)
        if self._buffer_pool is not None:
            hit = self._buffer_pool.access((self.tree_id, node.node_id))
            if registry is not None and not hit:
                registry.add(PHYSICAL_NODE_ACCESSES)
        elif registry is not None:
            # No pool: the simulation has no cache, every read hits "disk".
            registry.add(PHYSICAL_NODE_ACCESSES)

    def _count_writes(self, n: int) -> None:
        self.write_accesses += n
        if self._registry is not None:
            self._registry.add(WRITE_NODE_ACCESSES, n)

    # -- public API ---------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._root.level + 1

    @property
    def node_count(self) -> int:
        return sum(1 for _ in self._iter_nodes())

    def reset_counters(self) -> None:
        """Zero the access counters.

        Reset contract: cascades to the attached buffer pool's statistics
        (the pool's *cached pages* stay resident — only the accounting is
        zeroed), so a reset always leaves every counter a consumer can
        observe at zero.  Conversely ``BufferPool.clear()`` drops pages
        *and* zeroes its stats."""
        self.search_accesses = 0
        self.write_accesses = 0
        if self._buffer_pool is not None:
            self._buffer_pool.stats.reset()

    def insert(self, mbr: MBR, payload: Any) -> None:
        """Insert one entry; ``payload`` is opaque to the tree."""
        self._check_dims(mbr)
        self._insert_entry(_Entry(mbr, payload=payload), level=0, reinserted_levels=set())
        self._size += 1

    def _intersecting_entries(self, node: _Node, query: MBR) -> Iterable[_Entry]:
        """The node's entries whose MBR intersects ``query``, in entry
        order.  Vectorized over the cached box arrays when profitable:
        the mask is the per-dimension closed-interval overlap test
        ``lo <= q_hi and q_lo <= hi`` — the exact comparisons
        :meth:`MBR.intersects` makes, batched."""
        entries = node.entries
        if not self.vectorized or len(entries) < self._VECTOR_MIN:
            return (e for e in entries if e.mbr.intersects(query))
        mins, maxs = node.boxes()
        mask = ((mins <= np.asarray(query.maxs)) & (np.asarray(query.mins) <= maxs)).all(axis=1)
        return (entries[i] for i in np.nonzero(mask)[0])

    def _entry_mindists_sq(self, node: _Node, target: MBR) -> np.ndarray:
        """Squared MINDIST from ``target`` to every entry box of ``node``,
        vectorized.  Per-dimension gaps accumulate in dimension order with
        the same ``max``/``*``/``+`` operations as
        :meth:`MBR.min_distance_sq`, so each element is bit-identical to
        the scalar call."""
        mins, maxs = node.boxes()
        total = np.zeros(len(node.entries))
        for dim in range(self.dimensions):
            low = target.mins[dim]
            high = target.maxs[dim]
            gap = np.maximum(np.maximum(low - maxs[:, dim], mins[:, dim] - high), 0.0)
            total += gap * gap
        return total

    def search(self, query: MBR) -> list[Any]:
        """Payloads of all entries whose MBR intersects ``query``, counting
        one access per node visited (the paper's disk-access metric)."""
        self._check_dims(query)
        found: list[Any] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self._visit(node)
            for entry in self._intersecting_entries(node, query):
                if node.is_leaf:
                    found.append(entry.payload)
                else:
                    stack.append(entry.child)  # type: ignore[arg-type]
        return found

    def nearest(self, target: MBR, k: int = 1) -> list[tuple[float, Any]]:
        """The ``k`` entries with smallest MINDIST to ``target`` as
        ``(distance, payload)`` pairs, via best-first search
        (Hjaltason & Samet).  Distances are Euclidean."""
        self._check_dims(target)
        if k < 1:
            raise IndexStructureError(f"k must be >= 1, got {k}")
        results: list[tuple[float, Any]] = []
        counter = 0  # tie-breaker so heap never compares payloads
        heap: list[tuple[float, int, bool, Any]] = [(0.0, counter, False, self._root)]
        while heap and len(results) < k:
            distance_sq, _, is_payload, item = heapq.heappop(heap)
            if is_payload:
                results.append((distance_sq**0.5, item))
                continue
            node: _Node = item
            self._visit(node)
            dists = (
                self._entry_mindists_sq(node, target)
                if self.vectorized and len(node.entries) >= self._VECTOR_MIN
                else None
            )
            for idx, entry in enumerate(node.entries):
                counter += 1
                d = (
                    float(dists[idx])
                    if dists is not None
                    else target.min_distance_sq(entry.mbr)
                )
                if node.is_leaf:
                    heapq.heappush(heap, (d, counter, True, entry.payload))
                else:
                    heapq.heappush(heap, (d, counter, False, entry.child))
        return results

    def nearest_iter(self, target: MBR) -> Iterator[tuple[float, Any]]:
        """Lazily yield ``(mindist, payload)`` pairs in non-decreasing
        MINDIST order — the incremental nearest-neighbour stream used by
        the k-Nearest whole-feature operator, whose exact refinement step
        needs to keep pulling candidates until the next lower bound exceeds
        the best exact distances found so far."""
        self._check_dims(target)
        counter = 0
        heap: list[tuple[float, int, bool, Any]] = [(0.0, counter, False, self._root)]
        while heap:
            distance_sq, _, is_payload, item = heapq.heappop(heap)
            if is_payload:
                yield distance_sq**0.5, item
                continue
            node: _Node = item
            self._visit(node)
            dists = (
                self._entry_mindists_sq(node, target)
                if self.vectorized and len(node.entries) >= self._VECTOR_MIN
                else None
            )
            for idx, entry in enumerate(node.entries):
                counter += 1
                d = (
                    float(dists[idx])
                    if dists is not None
                    else target.min_distance_sq(entry.mbr)
                )
                if node.is_leaf:
                    heapq.heappush(heap, (d, counter, True, entry.payload))
                else:
                    heapq.heappush(heap, (d, counter, False, entry.child))

    def delete(self, mbr: MBR, payload: Any) -> bool:
        """Remove the entry with this exact MBR and payload; returns whether
        it was found.  Underfull nodes are condensed: their remaining
        entries are reinserted at their original level."""
        self._check_dims(mbr)
        path = self._find_leaf(self._root, mbr, payload, [])
        if path is None:
            return False
        leaf = path[-1]
        leaf.entries = [
            e for e in leaf.entries if not (e.mbr == mbr and e.payload == payload)
        ]
        leaf.invalidate()
        self._size -= 1
        self._condense(path)
        return True

    def items(self) -> Iterator[tuple[MBR, Any]]:
        """All (mbr, payload) pairs, in arbitrary order."""
        for node in self._iter_nodes():
            if node.is_leaf:
                for entry in node.entries:
                    yield entry.mbr, entry.payload

    def check_invariants(self) -> None:
        """Raise when any structural invariant is violated (test hook):
        parent MBRs cover children, fanout bounds hold (except the root),
        all leaves share level 0, size is consistent."""
        counted = 0
        stack: list[tuple[_Node, MBR | None]] = [(self._root, None)]
        while stack:
            node, parent_mbr = stack.pop()
            if node is not self._root:
                if not self.min_entries <= len(node.entries) <= self.max_entries:
                    raise IndexStructureError(
                        f"node at level {node.level} has {len(node.entries)} entries "
                        f"(bounds {self.min_entries}..{self.max_entries})"
                    )
            elif len(node.entries) > self.max_entries:
                raise IndexStructureError(f"root has {len(node.entries)} entries (> {self.max_entries})")
            if parent_mbr is not None and node.entries and not parent_mbr.contains(node.mbr()):
                raise IndexStructureError(f"parent MBR does not cover node at level {node.level}")
            for entry in node.entries:
                if node.is_leaf:
                    counted += 1
                    if entry.child is not None:
                        raise IndexStructureError("leaf entry with a child pointer")
                else:
                    if entry.child is None:
                        raise IndexStructureError("internal entry without a child")
                    if entry.child.level != node.level - 1:
                        raise IndexStructureError("child level mismatch")
                    stack.append((entry.child, entry.mbr))
        if counted != self._size:
            raise IndexStructureError(f"size mismatch: counted {counted}, recorded {self._size}")

    # -- insertion machinery -------------------------------------------------

    def _check_dims(self, mbr: MBR) -> None:
        if mbr.dimensions != self.dimensions:
            raise IndexStructureError(
                f"MBR has {mbr.dimensions} dimensions; tree expects {self.dimensions}"
            )

    def _insert_entry(self, entry: _Entry, level: int, reinserted_levels: set[int]) -> None:
        path = self._choose_path(entry.mbr, level)
        node = path[-1]
        node.entries.append(entry)
        node.invalidate()
        self._count_writes(len(path))
        self._handle_overflow(path, reinserted_levels)

    def _choose_path(self, mbr: MBR, level: int) -> list[_Node]:
        """Descend from the root to the node at ``level`` best suited for
        ``mbr`` (ChooseSubtree)."""
        node = self._root
        path = [node]
        while node.level > level:
            if node.level == 1:  # children are leaves: minimise overlap growth
                best = self._least_overlap_child(node, mbr)
            else:  # minimise area enlargement
                best = min(
                    node.entries,
                    key=lambda e: (e.mbr.enlargement(mbr), e.mbr.area()),
                )
            node = best.child  # type: ignore[assignment]
            path.append(node)
        return path

    #: Overlap enlargement is evaluated only for this many least-area-
    #: enlargement candidates, per the R* paper's own optimisation ("the
    #: nearly minimum overlap cost" with p = 32): the full computation is
    #: quadratic in the fanout.
    _OVERLAP_CANDIDATES = 32

    def _least_overlap_child(self, node: _Node, mbr: MBR) -> _Entry:
        """Vectorised: enlargements and pairwise overlaps are computed with
        numpy over the node's entry boxes (pure-Python loops here dominate
        insert cost at realistic fanouts)."""
        entries = node.entries
        n = len(entries)
        mins = np.array([e.mbr.mins for e in entries])  # (n, d)
        maxs = np.array([e.mbr.maxs for e in entries])
        new_min = np.array(mbr.mins)
        new_max = np.array(mbr.maxs)
        areas = np.prod(maxs - mins, axis=1)
        grown_mins = np.minimum(mins, new_min)
        grown_maxs = np.maximum(maxs, new_max)
        grown_areas = np.prod(grown_maxs - grown_mins, axis=1)
        enlargements = grown_areas - areas
        if n > self._OVERLAP_CANDIDATES:
            order = np.lexsort((areas, enlargements))
            candidate_idx = order[: self._OVERLAP_CANDIDATES]
        else:
            candidate_idx = np.arange(n)

        def total_overlap(box_min: np.ndarray, box_max: np.ndarray, skip: int) -> float:
            extent = np.minimum(maxs, box_max) - np.maximum(mins, box_min)
            inter = np.prod(np.clip(extent, 0.0, None), axis=1)
            return float(inter.sum() - inter[skip])

        best_i = -1
        best_key: tuple[float, float, float] | None = None
        for i in candidate_idx:
            growth = total_overlap(grown_mins[i], grown_maxs[i], i) - total_overlap(
                mins[i], maxs[i], i
            )
            key = (growth, float(enlargements[i]), float(areas[i]))
            if best_key is None or key < best_key:
                best_key = key
                best_i = int(i)
        return entries[best_i]

    def _handle_overflow(self, path: list[_Node], reinserted_levels: set[int]) -> None:
        """Walk back up the path resolving overflows by forced reinsert or
        split; grows a new root if the old one splits."""
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            if len(node.entries) > self.max_entries:
                is_root = depth == 0
                if (
                    self.forced_reinsert
                    and not is_root
                    and node.level not in reinserted_levels
                ):
                    reinserted_levels.add(node.level)
                    self._reinsert(node, path[:depth], reinserted_levels)
                    return  # _reinsert re-enters _insert_entry, which re-resolves
                split_node = self._split(node)
                if is_root:
                    new_root = _Node(level=node.level + 1)
                    # Freshly built node: boxes() has never run, there is
                    # no cache to invalidate yet.
                    new_root.entries = [  # devtools: allow[RT201]
                        _Entry(node.mbr(), child=node),
                        _Entry(split_node.mbr(), child=split_node),
                    ]
                    self._root = new_root
                    return
                parent = path[depth - 1]
                parent.entries.append(_Entry(split_node.mbr(), child=split_node))
                parent.invalidate()
                self._count_writes(2)
            if depth > 0:
                parent = path[depth - 1]
                for entry in parent.entries:
                    if entry.child is node:
                        entry.mbr = node.mbr()
                        parent.invalidate()
                        break

    def _tighten(self, path: list[_Node]) -> None:
        """Refresh parent MBRs bottom-up along ``path``."""
        for depth in range(len(path) - 1, 0, -1):
            child = path[depth]
            parent = path[depth - 1]
            for entry in parent.entries:
                if entry.child is child:
                    entry.mbr = child.mbr()
                    parent.invalidate()
                    break

    def _reinsert(self, node: _Node, ancestors: list[_Node], reinserted_levels: set[int]) -> None:
        """Forced reinsert: remove the furthest-from-center entries and
        insert them again from the top (close reinsert order)."""
        count = max(1, int(round(self.reinsert_fraction * len(node.entries))))
        node_center_mbr = node.mbr()
        node.entries.sort(key=lambda e: e.mbr.center_distance_sq(node_center_mbr))
        evicted = node.entries[-count:]
        node.entries = node.entries[:-count]
        node.invalidate()
        self._tighten(ancestors + [node])
        for entry in evicted:
            self._insert_entry(entry, level=node.level, reinserted_levels=reinserted_levels)

    def _split(self, node: _Node) -> _Node:
        """R* topological split; mutates ``node`` to the first group and
        returns a new sibling holding the second.

        Prefix/suffix cumulative unions make each sort order O(M) instead
        of O(M²) in union work.
        """
        entries = node.entries
        m = self.min_entries
        per_axis: list[tuple[float, list[tuple[list[_Entry], list[MBR], list[MBR]]]]] = []
        for axis in range(self.dimensions):
            margin_sum = 0.0
            orders = []
            for sort_key in (
                lambda e: (e.mbr.mins[axis], e.mbr.maxs[axis]),
                lambda e: (e.mbr.maxs[axis], e.mbr.mins[axis]),
            ):
                ordered = sorted(entries, key=sort_key)
                prefix: list[MBR] = []
                for entry in ordered:
                    prefix.append(entry.mbr if not prefix else prefix[-1].union(entry.mbr))
                suffix: list[MBR] = [None] * len(ordered)  # type: ignore[list-item]
                for i in range(len(ordered) - 1, -1, -1):
                    suffix[i] = (
                        ordered[i].mbr
                        if i == len(ordered) - 1
                        else suffix[i + 1].union(ordered[i].mbr)
                    )
                for split_at in range(m, len(ordered) - m + 1):
                    margin_sum += prefix[split_at - 1].margin() + suffix[split_at].margin()
                orders.append((ordered, prefix, suffix))
            per_axis.append((margin_sum, orders))
        best_axis = min(range(self.dimensions), key=lambda a: per_axis[a][0])
        best_distribution: tuple[list[_Entry], list[_Entry]] | None = None
        best_key: tuple[float, float] | None = None
        for ordered, prefix, suffix in per_axis[best_axis][1]:
            for split_at in range(m, len(ordered) - m + 1):
                left_mbr = prefix[split_at - 1]
                right_mbr = suffix[split_at]
                key = (
                    left_mbr.overlap_area(right_mbr),
                    left_mbr.area() + right_mbr.area(),
                )
                if best_key is None or key < best_key:
                    best_key = key
                    best_distribution = (list(ordered[:split_at]), list(ordered[split_at:]))
        assert best_distribution is not None
        node.entries = best_distribution[0]
        node.invalidate()
        sibling = _Node(level=node.level, entries=best_distribution[1])
        return sibling

    # -- deletion machinery ---------------------------------------------------

    def _find_leaf(
        self, node: _Node, mbr: MBR, payload: Any, path: list[_Node]
    ) -> list[_Node] | None:
        path = path + [node]
        if node.is_leaf:
            for entry in node.entries:
                if entry.mbr == mbr and entry.payload == payload:
                    return path
            return None
        for entry in node.entries:
            if entry.mbr.contains(mbr):
                found = self._find_leaf(entry.child, mbr, payload, path)  # type: ignore[arg-type]
                if found is not None:
                    return found
        return None

    def _condense(self, path: list[_Node]) -> None:
        orphans: list[tuple[_Entry, int]] = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            if len(node.entries) < self.min_entries:
                parent.entries = [e for e in parent.entries if e.child is not node]
                parent.invalidate()
                orphans.extend((entry, node.level) for entry in node.entries)
            else:
                for entry in parent.entries:
                    if entry.child is node:
                        entry.mbr = node.mbr()
                        parent.invalidate()
                        break
        for entry, level in orphans:
            self._insert_entry(entry, level=level, reinserted_levels=set())
        # Shrink the root when it has a single internal child.
        while self._root.level > 0 and len(self._root.entries) == 1:
            self._root = self._root.entries[0].child  # type: ignore[assignment]
        if self._root.level > 0 and not self._root.entries:
            self._root = _Node(level=0)

    # -- iteration -------------------------------------------------------------

    def _iter_nodes(self) -> Iterator[_Node]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(e.child for e in node.entries)  # type: ignore[misc]


def bulk_load(
    tree_factory: Callable[[], RStarTree],
    items: Iterable[tuple[MBR, Any]],
) -> RStarTree:
    """Build a tree by repeated insertion (the paper's trees are built the
    same way: 'We read in the data file, building … R* trees')."""
    tree = tree_factory()
    for mbr, payload in items:
        tree.insert(mbr, payload)
    return tree
