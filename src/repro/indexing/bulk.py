"""Sort-Tile-Recursive (STR) bulk loading for the R*-tree.

Leutenegger, López & Edgington's STR packing builds a near-100%-full tree
directly from a static dataset: sort by the first dimension, cut into
vertical slabs of √(n/M) tiles, sort each slab by the next dimension, and
recurse level by level.  For the paper's static experiment data it builds
an order of magnitude faster than repeated R* insertion and usually
queries at least as well — `benchmarks/bench_rstar_ablation.py` quantifies
the trade-off.

The packed tree is a regular :class:`~repro.indexing.rstar.RStarTree`
(same search/NN/delete machinery and access accounting); only its
construction differs, so experiments can swap builders freely.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence

from ..errors import IndexStructureError
from .mbr import MBR
from .rstar import RStarTree, _Entry, _Node


def _balanced_chunks(entries: list[_Entry], count: int) -> list[list[_Entry]]:
    """Split into ``count`` contiguous chunks whose sizes differ by ≤ 1."""
    base, extra = divmod(len(entries), count)
    chunks: list[list[_Entry]] = []
    start = 0
    for j in range(count):
        size = base + (1 if j < extra else 0)
        chunks.append(entries[start : start + size])
        start += size
    return chunks


def _tile(
    entries: list[_Entry],
    capacity: int,
    min_entries: int,
    dimensions: int,
    axis: int,
) -> list[list[_Entry]]:
    """Recursively tile entries into groups of ``min_entries..capacity``.

    Balanced chunking (instead of fixed-size slices) keeps every group —
    including the tail each slab would otherwise leave — above the R*
    minimum fanout.
    """
    if len(entries) <= capacity:
        return [entries]
    entries = sorted(entries, key=lambda e: e.mbr.center()[axis])
    if axis == dimensions - 1:
        count = math.ceil(len(entries) / capacity)
        if count > 1 and len(entries) // count < min_entries:
            count = max(1, len(entries) // min_entries)
        return _balanced_chunks(entries, count)
    # Number of slabs along this axis: ceil((n / capacity)^(1/remaining)).
    leaf_pages = math.ceil(len(entries) / capacity)
    remaining_axes = dimensions - axis
    slabs = min(len(entries), math.ceil(leaf_pages ** (1.0 / remaining_axes)))
    groups: list[list[_Entry]] = []
    for slab in _balanced_chunks(entries, slabs):
        groups.extend(_tile(slab, capacity, min_entries, dimensions, axis + 1))
    return groups


def str_bulk_load(
    items: Iterable[tuple[MBR, Any]],
    dimensions: int,
    max_entries: int = 50,
    min_entries: int | None = None,
    fill_factor: float = 1.0,
) -> RStarTree:
    """Build a packed R*-tree from ``items`` with STR.

    ``fill_factor`` < 1 leaves headroom in each node for later inserts
    (a fully packed node splits on its first insertion).
    """
    if not 0.25 < fill_factor <= 1.0:
        raise IndexStructureError(f"fill_factor must be in (0.25, 1], got {fill_factor}")
    tree = RStarTree(dimensions, max_entries=max_entries, min_entries=min_entries)
    entries = [_Entry(mbr, payload=payload) for mbr, payload in items]
    for entry in entries:
        if entry.mbr.dimensions != dimensions:
            raise IndexStructureError(
                f"MBR has {entry.mbr.dimensions} dimensions; expected {dimensions}"
            )
    if not entries:
        return tree
    capacity = max(tree.min_entries * 2, int(max_entries * fill_factor))
    level = 0
    current = entries
    while len(current) > max_entries:
        groups = _tile(current, capacity, tree.min_entries, dimensions, axis=0)
        current = [
            _Entry(MBR.union_all(e.mbr for e in group), child=_Node(level, list(group)))
            for group in groups
        ]
        level += 1
    root = _Node(level, list(current))
    tree._root = root
    tree._size = len(entries)
    tree.check_invariants()
    return tree


def str_bulk_load_relation(
    relation, attributes: Sequence[str], max_entries: int = 50, fill_factor: float = 1.0
) -> RStarTree:
    """STR-pack the bounding intervals of a relation's tuples (payloads
    are tuple indexes, as in the query strategies)."""
    from .strategy import tuple_interval

    items = []
    for i, t in enumerate(relation):
        intervals = [tuple_interval(t, a) for a in attributes]
        items.append(
            (MBR([iv[0] for iv in intervals], [iv[1] for iv in intervals]), i)
        )
    return str_bulk_load(
        items, dimensions=len(attributes), max_entries=max_entries, fill_factor=fill_factor
    )
