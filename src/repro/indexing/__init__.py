"""Indexing for constraint databases (section 5 of the paper).

Public surface:

* :class:`MBR` — k-dimensional bounding rectangles.
* :class:`RStarTree` — the R*-tree with disk-access accounting.
* :class:`JointIndex` / :class:`SeparateIndexes` — the two strategies the
  paper compares, plus :func:`tuple_interval` and
  :func:`query_box_for_predicates` glue used by the plan evaluator.
* :func:`recommend_grouping` — a heuristic for the paper's open
  attribute-grouping problem.
"""

from .advisor import Recommendation, WorkloadQuery, estimate_query_cost, recommend_grouping
from .bulk import str_bulk_load, str_bulk_load_relation
from .mbr import MBR
from .rstar import RStarTree, bulk_load
from .strategy import (
    DOMAIN_CLAMP,
    FULL_RANGE,
    NULL_SENTINEL,
    IndexStrategy,
    JointIndex,
    SeparateIndexes,
    query_box_for_predicates,
    tuple_interval,
)

__all__ = [
    "DOMAIN_CLAMP",
    "FULL_RANGE",
    "IndexStrategy",
    "JointIndex",
    "MBR",
    "NULL_SENTINEL",
    "Recommendation",
    "RStarTree",
    "SeparateIndexes",
    "WorkloadQuery",
    "bulk_load",
    "estimate_query_cost",
    "query_box_for_predicates",
    "recommend_grouping",
    "str_bulk_load",
    "str_bulk_load_relation",
    "tuple_interval",
]
