"""Attribute-grouping advisor: a heuristic for the paper's open problem.

    "Given a constraint relation over attributes X = {x₁, …, x_k},
    determine a set of subsets of X that should correspond to indices
    over X, with one index per subset." (section 5.4)

The paper observes that the answer depends on "the selectivity of various
attributes and the kinds of queries that are 'typical'".  This module
implements a workload-driven heuristic:

1. Build a co-occurrence graph over attributes, weighting each edge by the
   frequency with which the two attributes are queried together.
2. Threshold the graph and take connected components as candidate groups
   (attributes queried together belong in one joint index — the Figure 4
   result; attributes queried alone get their own 1-D index — Figure 5).
3. Score candidate groupings with a disk-access cost model calibrated to
   the experiments' shape, and keep the cheapest.

This is explicitly a *heuristic* for an open problem; the tests assert its
qualitative behaviour (joint for co-queried attributes, separate for
independently queried ones), not optimality.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import networkx as nx

from ..errors import IndexStructureError


@dataclass(frozen=True)
class WorkloadQuery:
    """One query template: the set of attributes it constrains, its
    relative frequency, and the per-attribute selectivity (fraction of
    tuples matching that attribute's range)."""

    attributes: frozenset[str]
    frequency: float = 1.0
    selectivity: float = 0.1

    def __post_init__(self) -> None:
        if not self.attributes:
            raise IndexStructureError("a workload query must constrain at least one attribute")
        if not 0 < self.selectivity <= 1:
            raise IndexStructureError(f"selectivity must be in (0, 1], got {self.selectivity}")
        if self.frequency <= 0:
            raise IndexStructureError(f"frequency must be positive, got {self.frequency}")


@dataclass
class Recommendation:
    """The advisor's output: attribute groups plus the estimated cost."""

    groups: tuple[frozenset[str], ...]
    estimated_cost: float
    alternatives: list[tuple[tuple[frozenset[str], ...], float]] = field(default_factory=list)

    def __str__(self) -> str:
        rendered = ", ".join("{" + ", ".join(sorted(g)) + "}" for g in self.groups)
        return f"index groups [{rendered}] (estimated cost {self.estimated_cost:.1f})"


def estimate_query_cost(
    query: WorkloadQuery,
    grouping: Sequence[frozenset[str]],
    relation_size: int,
    fanout: int = 50,
) -> float:
    """Disk accesses for one query under a grouping.

    Model (calibrated to the section 5.4 shapes):

    * each index over group ``g`` with ``q = g ∩ query`` queried dimensions
      is searched once; unqueried dimensions are unconstrained, so the
      candidate fraction is ``selectivity^|q|``;
    * a search costs the root-to-leaf height plus one access per ``fanout``
      candidates (leaf scanning dominates at low selectivity);
    * with several groups touched, costs *add* (the paper's sum rule), and
      the id-set intersection is free (done in memory).

    Groups disjoint from the query cost nothing; if no group covers some
    queried attribute, the uncovered attribute simply does not prune
    (the exact post-filter handles it), which the model charges as a full
    scan fallback only when *no* queried attribute is covered.
    """
    if relation_size <= 0:
        return 0.0
    height = max(1.0, math.log(max(relation_size, fanout), fanout))
    total = 0.0
    covered: set[str] = set()
    for group in grouping:
        queried = group & query.attributes
        if not queried:
            continue
        covered |= queried
        candidate_fraction = query.selectivity ** len(queried)
        # Unqueried dimensions of a joint index widen to the full domain,
        # adding dead space along the search path (the Figure 5 effect:
        # separate 1-D indexes mildly beat a joint index for one-attribute
        # queries).  Charge 50% extra leaf work per unused dimension.
        dead_space = 1.0 + 0.5 * (len(group) - len(queried))
        leaf_pages = max(1.0, relation_size * candidate_fraction / fanout) * dead_space
        total += height + leaf_pages
    if not covered:
        return relation_size / fanout  # full scan
    return total


def _candidate_groupings(attributes: Sequence[str], graph: nx.Graph) -> list[tuple[frozenset[str], ...]]:
    """Candidate groupings: thresholded connected components at every
    distinct edge weight, plus the all-separate and all-joint extremes."""
    candidates: list[tuple[frozenset[str], ...]] = []
    seen: set[tuple[frozenset[str], ...]] = set()

    def push(groups: Iterable[frozenset[str]]) -> None:
        key = tuple(sorted((frozenset(g) for g in groups), key=sorted))
        if key not in seen:
            seen.add(key)
            candidates.append(key)

    push(frozenset({a}) for a in attributes)
    push([frozenset(attributes)])
    weights = sorted({data["weight"] for _, _, data in graph.edges(data=True)}, reverse=True)
    for threshold in weights:
        kept = nx.Graph()
        kept.add_nodes_from(attributes)
        kept.add_edges_from(
            (u, v)
            for u, v, data in graph.edges(data=True)
            if data["weight"] >= threshold
        )
        push(frozenset(component) for component in nx.connected_components(kept))
    return candidates


def recommend_grouping(
    attributes: Sequence[str],
    workload: Sequence[WorkloadQuery],
    relation_size: int,
    fanout: int = 50,
) -> Recommendation:
    """Choose index groups for ``attributes`` given a query workload."""
    attributes = list(dict.fromkeys(attributes))
    if not attributes:
        raise IndexStructureError("no attributes to group")
    if not workload:
        raise IndexStructureError("an empty workload cannot guide grouping")
    unknown = {a for q in workload for a in q.attributes} - set(attributes)
    if unknown:
        raise IndexStructureError(f"workload queries unknown attributes {sorted(unknown)}")
    graph = nx.Graph()
    graph.add_nodes_from(attributes)
    for query in workload:
        for a, b in itertools.combinations(sorted(query.attributes), 2):
            weight = graph.edges[a, b]["weight"] + query.frequency if graph.has_edge(a, b) else query.frequency
            graph.add_edge(a, b, weight=weight)
    scored: list[tuple[tuple[frozenset[str], ...], float]] = []
    for grouping in _candidate_groupings(attributes, graph):
        cost = sum(
            q.frequency * estimate_query_cost(q, grouping, relation_size, fanout)
            for q in workload
        )
        scored.append((grouping, cost))
    scored.sort(key=lambda pair: (pair[1], sum(len(g) for g in pair[0])))
    best_groups, best_cost = scored[0]
    return Recommendation(best_groups, best_cost, alternatives=scored[1:])
