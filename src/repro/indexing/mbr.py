"""Minimum bounding rectangles in k dimensions.

The R*-tree stores float MBRs.  Floats (not rationals) are deliberate and
faithful: the index is an *approximate* pruning structure over bounding
boxes — the paper's own experiments index bounding boxes — and every index
hit is re-checked exactly by the constraint engine, so float rounding can
only cost a false candidate, never a wrong answer.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import IndexStructureError


class MBR:
    """An immutable k-dimensional closed box ``[min_i, max_i]``."""

    __slots__ = ("mins", "maxs")

    def __init__(self, mins: Sequence[float], maxs: Sequence[float]):
        mins = tuple(float(v) for v in mins)
        maxs = tuple(float(v) for v in maxs)
        if len(mins) != len(maxs) or not mins:
            raise IndexStructureError(f"malformed MBR: mins={mins}, maxs={maxs}")
        for low, high in zip(mins, maxs):
            if low > high:
                raise IndexStructureError(f"empty MBR: {mins} > {maxs}")
        self.mins = mins
        self.maxs = maxs

    # -- constructors ------------------------------------------------------

    @classmethod
    def point(cls, coordinates: Sequence[float]) -> "MBR":
        return cls(coordinates, coordinates)

    @classmethod
    def union_all(cls, boxes: Iterable["MBR"]) -> "MBR":
        boxes = list(boxes)
        if not boxes:
            raise IndexStructureError("union of zero MBRs")
        dims = boxes[0].dimensions
        mins = [min(b.mins[d] for b in boxes) for d in range(dims)]
        maxs = [max(b.maxs[d] for b in boxes) for d in range(dims)]
        return cls(mins, maxs)

    # -- geometry ----------------------------------------------------------

    @property
    def dimensions(self) -> int:
        return len(self.mins)

    def area(self) -> float:
        """The k-dimensional volume (the R*-tree literature says 'area')."""
        result = 1.0
        for low, high in zip(self.mins, self.maxs):
            result *= high - low
        return result

    def margin(self) -> float:
        """The sum of edge lengths (the R* split criterion)."""
        return sum(high - low for low, high in zip(self.mins, self.maxs))

    def center(self) -> tuple[float, ...]:
        return tuple((low + high) / 2.0 for low, high in zip(self.mins, self.maxs))

    def union(self, other: "MBR") -> "MBR":
        return MBR(
            tuple(min(a, b) for a, b in zip(self.mins, other.mins)),
            tuple(max(a, b) for a, b in zip(self.maxs, other.maxs)),
        )

    def intersects(self, other: "MBR") -> bool:
        return all(
            low <= other_high and other_low <= high
            for low, high, other_low, other_high in zip(
                self.mins, self.maxs, other.mins, other.maxs
            )
        )

    def contains(self, other: "MBR") -> bool:
        return all(
            low <= other_low and other_high <= high
            for low, high, other_low, other_high in zip(
                self.mins, self.maxs, other.mins, other.maxs
            )
        )

    def overlap_area(self, other: "MBR") -> float:
        result = 1.0
        for low, high, other_low, other_high in zip(self.mins, self.maxs, other.mins, other.maxs):
            extent = min(high, other_high) - max(low, other_low)
            if extent <= 0:
                return 0.0
            result *= extent
        return result

    def enlargement(self, other: "MBR") -> float:
        """Area growth needed to absorb ``other``."""
        return self.union(other).area() - self.area()

    def center_distance_sq(self, other: "MBR") -> float:
        return sum((a - b) ** 2 for a, b in zip(self.center(), other.center()))

    def min_distance_sq(self, other: "MBR") -> float:
        """Squared minimum distance between the two boxes (0 if they
        intersect); the MINDIST of R-tree nearest-neighbour search."""
        total = 0.0
        for low, high, other_low, other_high in zip(self.mins, self.maxs, other.mins, other.maxs):
            if other_high < low:
                gap = low - other_high
            elif high < other_low:
                gap = other_low - high
            else:
                continue
            total += gap * gap
        return total

    # -- value semantics ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return self.mins == other.mins and self.maxs == other.maxs

    def __hash__(self) -> int:
        return hash((self.mins, self.maxs))

    def __repr__(self) -> str:
        intervals = ", ".join(f"[{lo:g}, {hi:g}]" for lo, hi in zip(self.mins, self.maxs))
        return f"MBR({intervals})"
