"""CQA/CDB — a rational linear Constraint Database system in Python.

A from-scratch reproduction of the system behind *"The Constraint Database
Framework: Lessons Learned from CQA/CDB"* (Goldin, Kutlu, Song, Yang, ICDE
2003) and its companion paper *"Extending The Constraint Database
Framework"* (PCK50 2003).

The public API re-exports the main entry points of each layer; see the
subpackages for the full surface:

* :mod:`repro.constraints` — rational linear constraints, conjunctions,
  DNF formulas, Fourier–Motzkin elimination, exact simplex.
* :mod:`repro.model` — the heterogeneous data model (C/R-flagged schemas,
  constraint tuples and relations, databases).
* :mod:`repro.algebra` — the Constraint Query Algebra and its optimizer.
* :mod:`repro.query` — the ASCII multi-step query language front end.
* :mod:`repro.spatial` — convex geometry, feature sets, Buffer-Join and
  k-Nearest whole-feature operators, the vector model.
* :mod:`repro.indexing` — R*-tree and joint/separate indexing strategies.
* :mod:`repro.storage` — the simulated paged storage layer.
* :mod:`repro.workloads` — paper workload generators (Hurricane DB, §5.4
  rectangles, synthetic GIS).
* :mod:`repro.experiments` — harnesses regenerating each figure.
"""

from .constraints import (
    Conjunction,
    DNFFormula,
    LinearConstraint,
    LinearExpression,
    eq,
    ge,
    gt,
    le,
    lt,
    parse_constraints,
    parse_expression,
    var,
)
from .errors import (
    AlgebraError,
    ConstraintError,
    GeometryError,
    ParseError,
    QueryError,
    ReproError,
    SafetyError,
    SchemaError,
    StorageError,
)

__version__ = "1.0.0"

__all__ = [
    "AlgebraError",
    "Conjunction",
    "ConstraintError",
    "DNFFormula",
    "GeometryError",
    "LinearConstraint",
    "LinearExpression",
    "ParseError",
    "QueryError",
    "ReproError",
    "SafetyError",
    "SchemaError",
    "StorageError",
    "eq",
    "ge",
    "gt",
    "le",
    "lt",
    "parse_constraints",
    "parse_expression",
    "var",
    "__version__",
]
