"""Exception hierarchy for the CQA/CDB reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Subclasses mirror the layers of
the system (constraints, schema/model, algebra, query language, spatial,
storage) described in DESIGN.md.

Two structured sub-taxonomies matter for robustness:

* :class:`ResourceExhausted` — a query ran into a limit of its
  :class:`~repro.governor.Budget` (deadline, solver steps, DNF clauses,
  output tuples, IO accesses).  Each instance carries the consumed-resource
  snapshot taken when the limit fired, so callers get diagnostics instead
  of a hung or OOM-killed process.
* :class:`StorageError` and its :class:`TransientStorageError` /
  :class:`CorruptPageError` children — the storage failure model.
  Transient errors are retryable (see
  :mod:`repro.governor.faultinject`); corruption is permanent and is
  detected by the serialization checksum layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:
    from .analysis.diagnostics import Diagnostics


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConstraintError(ReproError):
    """Invalid constraint construction or manipulation."""


class NonLinearError(ConstraintError):
    """An operation would leave the linear constraint class."""


class SchemaError(ReproError):
    """Schema violations: unknown attributes, arity/type mismatches."""


class AlgebraError(ReproError):
    """Invalid algebraic operation over constraint relations."""


class SafetyError(AlgebraError):
    """A query is unsafe: its output is not representable in closed form
    within the system's constraint class (section 2.4 of the paper)."""


class QueryError(ReproError):
    """Errors in the CQA query language front end."""


class ParseError(QueryError):
    """Syntax errors in the ASCII query language.

    Carries the bare ``message`` plus the 1-based ``line``/``column`` it
    points at, so diagnostic renderers can place their own caret instead
    of re-parsing the formatted string."""

    def __init__(
        self, message: str, line: int | None = None, column: int | None = None
    ) -> None:
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        elif column is not None:
            location = f" at column {column}"
        super().__init__(f"{message}{location}")
        self.message = message
        self.line = line
        self.column = column


class StaticAnalysisError(QueryError):
    """Strict-mode static analysis rejected a statement before execution.

    ``diagnostics`` holds the full :class:`~repro.analysis.Diagnostics`
    report (errors and any accompanying warnings) that caused the
    rejection."""

    def __init__(self, message: str, diagnostics: Diagnostics | None = None) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics


class GeometryError(ReproError):
    """Invalid geometric input (unbounded regions, degenerate polygons)."""


class ProtocolError(ReproError):
    """A malformed wire frame or request reached the query server
    (:mod:`repro.server`): oversized frame, invalid JSON, non-object
    payload, or an unknown operation.  Maps to a 400-style reply."""


class StorageError(ReproError):
    """Errors in the simulated storage layer or serialization format."""


class TransientStorageError(StorageError):
    """A storage operation failed in a way that may succeed on retry
    (simulated flaky read).  The retry helpers in
    :mod:`repro.governor.faultinject` retry exactly this class; every
    other :class:`StorageError` is permanent."""


class CorruptPageError(StorageError):
    """Stored data failed an integrity check (checksum/length mismatch).
    Permanent: retrying reads the same corrupt bytes."""


class IndexStructureError(ReproError):
    """Errors in index construction or search (named to avoid shadowing
    the builtin :class:`IndexError`)."""


#: Deprecated alias for :class:`IndexStructureError` (the pre-rename
#: spelling); kept so existing ``except IndexError_`` code keeps working.
IndexError_ = IndexStructureError


class ResourceExhausted(ReproError):
    """A query exceeded one of its :class:`~repro.governor.Budget` limits.

    ``resource`` names the exhausted budget knob, ``consumed``/``limit``
    quantify it, and ``snapshot`` is the governor's consumed-resources
    snapshot (including obs-registry counters) at the moment the limit
    fired — the partial diagnostics a bounded failure should carry.
    """

    def __init__(
        self,
        message: str,
        *,
        resource: str = "",
        consumed: float | int | None = None,
        limit: float | int | None = None,
        snapshot: Mapping[str, float] | None = None,
    ):
        super().__init__(message)
        self.resource = resource
        self.consumed = consumed
        self.limit = limit
        self.snapshot = dict(snapshot) if snapshot is not None else {}


class DeadlineExceeded(ResourceExhausted):
    """The query's wall-clock deadline passed."""


class SolverBudgetExceeded(ResourceExhausted):
    """The solver-step / elimination-atom budget ran out (typically a
    Fourier–Motzkin blow-up)."""


class DNFBudgetExceeded(ResourceExhausted):
    """The DNF clause cap was hit while distributing or complementing a
    formula (difference/complement blow-up)."""


class OutputLimitExceeded(ResourceExhausted):
    """The query materialized more tuples than its output cap allows."""


class IOBudgetExceeded(ResourceExhausted):
    """The query performed more simulated IO (index node visits, heap
    page reads) than its budget allows."""
