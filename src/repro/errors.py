"""Exception hierarchy for the CQA/CDB reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Subclasses mirror the layers of
the system (constraints, schema/model, algebra, query language, spatial,
storage) described in DESIGN.md.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConstraintError(ReproError):
    """Invalid constraint construction or manipulation."""


class NonLinearError(ConstraintError):
    """An operation would leave the linear constraint class."""


class SchemaError(ReproError):
    """Schema violations: unknown attributes, arity/type mismatches."""


class AlgebraError(ReproError):
    """Invalid algebraic operation over constraint relations."""


class SafetyError(AlgebraError):
    """A query is unsafe: its output is not representable in closed form
    within the system's constraint class (section 2.4 of the paper)."""


class QueryError(ReproError):
    """Errors in the CQA query language front end."""


class ParseError(QueryError):
    """Syntax errors in the ASCII query language."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class GeometryError(ReproError):
    """Invalid geometric input (unbounded regions, degenerate polygons)."""


class StorageError(ReproError):
    """Errors in the simulated storage layer or serialization format."""


class IndexError_(ReproError):
    """Errors in index construction or search (named to avoid shadowing
    the builtin :class:`IndexError`)."""
