"""Exact rational arithmetic helpers.

CQA/CDB is a *rational linear* constraint database: all constraint
coefficients and constants are rational numbers, and query evaluation is
exact ("there is no approximation involved in evaluating CQA/CDB queries").
This module centralises conversion into :class:`fractions.Fraction` and
human-readable formatting back out.
"""

from __future__ import annotations

import math
import sys
from fractions import Fraction
from typing import Union

from .errors import ConstraintError

#: Types accepted wherever the library expects a rational number.
RationalLike = Union[int, Fraction, str, float]


def to_rational(value: RationalLike) -> Fraction:
    """Convert ``value`` to an exact :class:`Fraction`.

    Accepted inputs:

    * ``int`` and ``Fraction`` — taken as-is.
    * ``str`` — decimal (``"2.5"``) or ratio (``"1/3"``) notation, parsed
      exactly.
    * ``float`` — converted via its decimal repr (``2.5`` becomes ``5/2``,
      not the exact binary expansion), because users writing ``0.1`` mean
      the decimal one tenth.

    Raises :class:`ConstraintError` for anything else (including ``bool``,
    which is deliberately rejected despite being an ``int`` subclass, and
    non-finite floats).
    """
    if isinstance(value, bool):
        raise ConstraintError(f"cannot interpret {value!r} as a rational number")
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ConstraintError(f"cannot interpret {value!r} as a rational number")
        return Fraction(repr(value))
    if isinstance(value, str):
        try:
            return Fraction(value.strip())
        except (ValueError, ZeroDivisionError) as exc:
            raise ConstraintError(f"cannot parse {value!r} as a rational number") from exc
    raise ConstraintError(f"cannot interpret {value!r} as a rational number")


def format_rational(value: Fraction) -> str:
    """Render a :class:`Fraction` compactly.

    Integers render without a denominator; fractions with a power-of-ten
    denominator render as decimals (``5/2`` → ``"2.5"``); everything else
    renders as ``"p/q"``.
    """
    if value.denominator == 1:
        return str(value.numerator)
    # Detect denominators of the form 2^a * 5^b, which have exact decimal
    # expansions of length max(a, b).
    den = value.denominator
    twos = 0
    while den % 2 == 0:
        den //= 2
        twos += 1
    fives = 0
    while den % 5 == 0:
        den //= 5
        fives += 1
    if den == 1:
        digits = max(twos, fives)
        scaled = value * Fraction(10) ** digits
        text = f"{scaled.numerator:0{digits + 1}d}" if scaled >= 0 else f"-{-scaled.numerator:0{digits + 1}d}"
        sign = "-" if text.startswith("-") else ""
        body = text.lstrip("-")
        whole, frac = body[:-digits] or "0", body[-digits:]
        return f"{sign}{whole}.{frac}"
    return f"{value.numerator}/{value.denominator}"


def float_down(value: Fraction) -> float:
    """The largest float ``<= value`` (round toward −∞).

    ``float(Fraction)`` rounds to nearest, which can land *above* the
    exact value — narrowing an interval's lower bound and making a float
    summary claim more than the rational one proves.  The columnar filter
    (:mod:`repro.exec.columnar`) only stays sound if every float lower
    bound under-approximates its exact counterpart, so rounding is
    corrected here with one ``nextafter`` step when needed.
    """
    try:
        f = float(value)
    except OverflowError:
        return sys.float_info.max if value > 0 else -math.inf
    if Fraction(f) <= value:
        return f
    return math.nextafter(f, -math.inf)


def float_up(value: Fraction) -> float:
    """The smallest float ``>= value`` (round toward +∞); the upper-bound
    dual of :func:`float_down`."""
    try:
        f = float(value)
    except OverflowError:
        return -sys.float_info.max if value < 0 else math.inf
    if Fraction(f) >= value:
        return f
    return math.nextafter(f, math.inf)


ZERO = Fraction(0)
ONE = Fraction(1)
